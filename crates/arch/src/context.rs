//! Context identifiers and their binary encoding (the paper's Table 2).
//!
//! Contexts are switched by a `k`-bit context ID where `k = ceil(log2 n)`.
//! For the paper's running example of four contexts the two ID bits are
//! `(S1, S0)` and the encoding is:
//!
//! | context | S1 | S0 |
//! |---------|----|----|
//! | 0       | 0  | 0  |
//! | 1       | 0  | 1  |
//! | 2       | 1  | 0  |
//! | 3       | 1  | 1  |

use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// The context-ID encoding for a device with a fixed number of contexts.
///
/// This is a tiny value type: it only remembers the context count and
/// derives everything else (`S_i` bit values, bit width) arithmetically, so
/// it is freely copyable into hot loops like decoder evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ContextId {
    n_contexts: usize,
}

impl ContextId {
    /// Maximum supported context count. Configuration columns store one bit
    /// per context in a `u32`.
    pub const MAX_CONTEXTS: usize = 32;

    /// Create an encoding for `n_contexts` contexts.
    pub fn new(n_contexts: usize) -> Result<Self, ArchError> {
        if n_contexts < 2 {
            return Err(ArchError::TooFewContexts(n_contexts));
        }
        if n_contexts > Self::MAX_CONTEXTS {
            return Err(ArchError::TooManyContexts(n_contexts));
        }
        Ok(ContextId { n_contexts })
    }

    /// Number of contexts.
    #[inline]
    pub fn n_contexts(&self) -> usize {
        self.n_contexts
    }

    /// Number of context-ID bits `k = ceil(log2 n)`.
    #[inline]
    pub fn n_bits(&self) -> usize {
        usize::BITS as usize - (self.n_contexts - 1).leading_zeros() as usize
    }

    /// Value of ID bit `S_bit` in context `context` (the paper's Table 2).
    ///
    /// Panics if `context` or `bit` is out of range; these are programming
    /// errors, not data errors.
    #[inline]
    pub fn id_bit(&self, context: usize, bit: usize) -> bool {
        assert!(context < self.n_contexts, "context {context} out of range");
        assert!(bit < self.n_bits(), "ID bit {bit} out of range");
        (context >> bit) & 1 == 1
    }

    /// Iterator over all context indices.
    pub fn contexts(&self) -> impl Iterator<Item = usize> + Clone {
        0..self.n_contexts
    }

    /// The full Table 2: for each ID bit (row), the bit's value in each
    /// context (columns, context 0 first).
    pub fn table(&self) -> Vec<Vec<bool>> {
        (0..self.n_bits())
            .map(|bit| (0..self.n_contexts).map(|c| self.id_bit(c, bit)).collect())
            .collect()
    }

    /// Render Table 2 as text, matching the paper's layout (context 3 ..
    /// context 0 left-to-right for n = 4).
    pub fn table_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let header: Vec<String> = (0..self.n_contexts)
            .rev()
            .map(|c| format!("ctx{c}"))
            .collect();
        let _ = writeln!(out, "      {}", header.join(" "));
        for bit in 0..self.n_bits() {
            let row: Vec<String> = (0..self.n_contexts)
                .rev()
                .map(|c| format!("   {}", u8::from(self.id_bit(c, bit))))
                .collect();
            let _ = writeln!(out, "S{bit}: {}", row.join(" "));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_context_encoding_matches_table_2() {
        let id = ContextId::new(4).unwrap();
        assert_eq!(id.n_bits(), 2);
        // S0 row: contexts 0..3 -> 0, 1, 0, 1
        let table = id.table();
        assert_eq!(table[0], vec![false, true, false, true]);
        // S1 row: contexts 0..3 -> 0, 0, 1, 1
        assert_eq!(table[1], vec![false, false, true, true]);
    }

    #[test]
    fn bit_width_covers_non_power_of_two() {
        assert_eq!(ContextId::new(2).unwrap().n_bits(), 1);
        assert_eq!(ContextId::new(3).unwrap().n_bits(), 2);
        assert_eq!(ContextId::new(4).unwrap().n_bits(), 2);
        assert_eq!(ContextId::new(5).unwrap().n_bits(), 3);
        assert_eq!(ContextId::new(8).unwrap().n_bits(), 3);
        assert_eq!(ContextId::new(9).unwrap().n_bits(), 4);
        assert_eq!(ContextId::new(32).unwrap().n_bits(), 5);
    }

    #[test]
    fn rejects_degenerate_counts() {
        assert!(matches!(
            ContextId::new(0),
            Err(ArchError::TooFewContexts(0))
        ));
        assert!(matches!(
            ContextId::new(1),
            Err(ArchError::TooFewContexts(1))
        ));
        assert!(matches!(
            ContextId::new(33),
            Err(ArchError::TooManyContexts(33))
        ));
    }

    #[test]
    fn id_bits_reconstruct_context_index() {
        for n in [2usize, 3, 4, 6, 8, 16] {
            let id = ContextId::new(n).unwrap();
            for c in 0..n {
                let mut rebuilt = 0usize;
                for b in 0..id.n_bits() {
                    if id.id_bit(c, b) {
                        rebuilt |= 1 << b;
                    }
                }
                assert_eq!(rebuilt, c);
            }
        }
    }

    #[test]
    fn table_string_mentions_every_bit() {
        let id = ContextId::new(4).unwrap();
        let s = id.table_string();
        assert!(s.contains("S0"));
        assert!(s.contains("S1"));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// ID bits always reconstruct the context index, and the bit width
        /// is minimal.
        #[test]
        fn encoding_is_minimal_and_invertible(n in 2usize..=32) {
            let id = ContextId::new(n).unwrap();
            let k = id.n_bits();
            prop_assert!(1usize << k >= n, "width covers all contexts");
            prop_assert!(k == 1 || 1usize << (k - 1) < n, "width is minimal");
            for c in 0..n {
                let rebuilt: usize = (0..k)
                    .filter(|&b| id.id_bit(c, b))
                    .map(|b| 1usize << b)
                    .sum();
                prop_assert_eq!(rebuilt, c);
            }
        }
    }
}
