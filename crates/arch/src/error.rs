//! Error type shared by architecture validation.

use std::fmt;

/// Errors raised while validating an architecture description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The context count must be at least 2 (a single-context device is a
    /// plain FPGA and has no context-ID bits to decode).
    TooFewContexts(usize),
    /// The context count exceeds what the configuration-column machinery
    /// supports (columns are stored in a `u32` bit per context).
    TooManyContexts(usize),
    /// Grid dimensions must be non-zero.
    EmptyGrid,
    /// Channel width must be non-zero.
    NoTracks,
    /// LUT geometry is inconsistent (see message).
    BadLutGeometry(String),
    /// Requested LUT mode does not preserve the memory-bit pool.
    BadLutMode { inputs: usize, planes: usize },
    /// Double-length-line fraction must leave at least one single-length track.
    BadSegmentSplit { tracks: usize, double_length: usize },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::TooFewContexts(n) => {
                write!(f, "multi-context device needs >= 2 contexts, got {n}")
            }
            ArchError::TooManyContexts(n) => {
                write!(f, "at most 32 contexts are supported, got {n}")
            }
            ArchError::EmptyGrid => write!(f, "grid dimensions must be non-zero"),
            ArchError::NoTracks => write!(f, "channel width must be non-zero"),
            ArchError::BadLutGeometry(msg) => write!(f, "inconsistent LUT geometry: {msg}"),
            ArchError::BadLutMode { inputs, planes } => write!(
                f,
                "LUT mode ({inputs} inputs, {planes} planes) does not preserve the bit pool"
            ),
            ArchError::BadSegmentSplit {
                tracks,
                double_length,
            } => write!(
                f,
                "cannot dedicate {double_length} of {tracks} tracks to double-length lines"
            ),
        }
    }
}

impl std::error::Error for ArchError {}
