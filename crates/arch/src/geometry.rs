//! Grid geometry: cell coordinates and the overall array of Fig. 1.
//!
//! The MC-FPGA is an array of cells; each cell holds a logic block and the
//! switch-block fabric (RCM) next to it. Channels run between cells.

use serde::{Deserialize, Serialize};

/// A cell coordinate. `(0, 0)` is the bottom-left logic block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Coord {
    pub x: u16,
    pub y: u16,
}

impl Coord {
    pub fn new(x: u16, y: u16) -> Self {
        Coord { x, y }
    }

    /// Manhattan distance to another coordinate.
    pub fn manhattan(&self, other: &Coord) -> u32 {
        self.x.abs_diff(other.x) as u32 + self.y.abs_diff(other.y) as u32
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// One side of a cell, used to name channel segments and switch-block pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Side {
    North,
    East,
    South,
    West,
}

impl Side {
    pub const ALL: [Side; 4] = [Side::North, Side::East, Side::South, Side::West];

    /// The opposite side (`North <-> South`, `East <-> West`).
    pub fn opposite(self) -> Side {
        match self {
            Side::North => Side::South,
            Side::South => Side::North,
            Side::East => Side::West,
            Side::West => Side::East,
        }
    }
}

/// Logic-block grid dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GridDim {
    pub width: u16,
    pub height: u16,
}

impl GridDim {
    pub fn new(width: u16, height: u16) -> Self {
        GridDim { width, height }
    }

    /// Total number of logic-block sites.
    pub fn n_cells(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Whether `c` lies inside the grid.
    pub fn contains(&self, c: Coord) -> bool {
        c.x < self.width && c.y < self.height
    }

    /// Row-major site index for a coordinate, for dense per-site tables.
    pub fn index(&self, c: Coord) -> usize {
        debug_assert!(self.contains(c));
        c.y as usize * self.width as usize + c.x as usize
    }

    /// Inverse of [`GridDim::index`].
    pub fn coord(&self, index: usize) -> Coord {
        let w = self.width as usize;
        Coord::new((index % w) as u16, (index / w) as u16)
    }

    /// Iterator over all coordinates in row-major order.
    pub fn coords(&self) -> impl Iterator<Item = Coord> + '_ {
        let w = self.width;
        let h = self.height;
        (0..h).flat_map(move |y| (0..w).map(move |x| Coord::new(x, y)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn manhattan_distance() {
        let a = Coord::new(1, 2);
        let b = Coord::new(4, 0);
        assert_eq!(a.manhattan(&b), 5);
        assert_eq!(b.manhattan(&a), 5);
        assert_eq!(a.manhattan(&a), 0);
    }

    #[test]
    fn sides_pair_up() {
        for s in Side::ALL {
            assert_eq!(s.opposite().opposite(), s);
            assert_ne!(s.opposite(), s);
        }
    }

    #[test]
    fn grid_indexing_roundtrip() {
        let g = GridDim::new(5, 3);
        assert_eq!(g.n_cells(), 15);
        for (i, c) in g.coords().enumerate() {
            assert_eq!(g.index(c), i);
            assert_eq!(g.coord(i), c);
            assert!(g.contains(c));
        }
        assert!(!g.contains(Coord::new(5, 0)));
        assert!(!g.contains(Coord::new(0, 3)));
    }

    proptest! {
        #[test]
        fn index_roundtrip_random(w in 1u16..64, h in 1u16..64, x in 0u16..64, y in 0u16..64) {
            let g = GridDim::new(w, h);
            if x < w && y < h {
                let c = Coord::new(x, y);
                prop_assert_eq!(g.coord(g.index(c)), c);
            }
        }

        #[test]
        fn manhattan_is_symmetric_and_triangular(
            ax in 0u16..100, ay in 0u16..100,
            bx in 0u16..100, by in 0u16..100,
            cx in 0u16..100, cy in 0u16..100,
        ) {
            let a = Coord::new(ax, ay);
            let b = Coord::new(bx, by);
            let c = Coord::new(cx, cy);
            prop_assert_eq!(a.manhattan(&b), b.manhattan(&a));
            prop_assert!(a.manhattan(&c) <= a.manhattan(&b) + b.manhattan(&c));
        }
    }
}
