//! Architecture description for the multi-context FPGA (MC-FPGA) reproduced
//! from Chong, Ogata, Hariyama and Kameyama, *Architecture of a Multi-Context
//! FPGA Using Reconfigurable Context Memory*, IPDPS 2005.
//!
//! This crate owns the *static* description of a device: how many contexts it
//! supports and how they are encoded into context-ID bits (the paper's
//! Table 2), the logic-block LUT geometry including the multi-granularity
//! modes of Fig. 12, the routing fabric geometry (channel widths, single and
//! double-length lines of Fig. 10), and the overall cell grid of Fig. 1.
//!
//! Everything downstream — configuration-bit classification, RCM decoder
//! synthesis, mapping, placement, routing, simulation and the area model —
//! consumes an [`ArchSpec`].

pub mod context;
pub mod error;
pub mod geometry;
pub mod lut_geometry;
pub mod routing_geometry;
pub mod spec;

pub use context::ContextId;
pub use error::ArchError;
pub use geometry::{Coord, GridDim, Side};
pub use lut_geometry::{LutGeometry, LutMode};
pub use routing_geometry::{RoutingGeometry, SegmentKind};
pub use spec::ArchSpec;
