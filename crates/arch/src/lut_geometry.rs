//! Geometry of the multi-context multi-granularity LUT (MCMG-LUT, Fig. 12).
//!
//! An MCMG-LUT owns a fixed pool of memory bits per output. The pool can be
//! organised as `p` configuration planes of a `k`-input LUT as long as
//! `2^k * p` equals the pool size. The paper's example is a 64-bit pool:
//! a 4-input LUT with four configuration planes, or a 5-input LUT with two
//! planes (and, implicitly, a 6-input LUT with a single plane).
//!
//! A *configuration plane* is the group of memory bits selected under one
//! context-ID state; growing the LUT converts plane-select address bits into
//! ordinary data inputs.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// One way of organising the MCMG-LUT bit pool: `inputs`-input LUT with
/// `planes` distinct configuration planes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LutMode {
    pub inputs: usize,
    pub planes: usize,
}

impl LutMode {
    /// Memory bits consumed per output: `2^inputs * planes`.
    pub fn bits(&self) -> usize {
        (1usize << self.inputs) * self.planes
    }

    /// Number of context-ID bits consumed to select among `planes`.
    pub fn plane_select_bits(&self) -> usize {
        if self.planes <= 1 {
            0
        } else {
            usize::BITS as usize - (self.planes - 1).leading_zeros() as usize
        }
    }
}

impl std::fmt::Display for LutMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-input x {} planes", self.inputs, self.planes)
    }
}

/// Static geometry of the logic-block LUTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LutGeometry {
    /// Independent outputs per logic block (the paper evaluates 2).
    pub outputs: usize,
    /// Smallest LUT input count (`k_min`); with all planes in use the LUT is
    /// a `k_min`-input LUT with `max_planes` planes.
    pub min_inputs: usize,
    /// Largest LUT input count (`k_max`); with a single plane the LUT is a
    /// `k_max`-input LUT. `k_max = k_min + log2(max_planes)`.
    pub max_inputs: usize,
}

impl LutGeometry {
    /// The paper's evaluation geometry: 6-input 2-output MCMG-LUTs with
    /// four contexts, i.e. `k` from 4 to 6 and up to 4 planes.
    pub fn paper_default() -> Self {
        LutGeometry {
            outputs: 2,
            min_inputs: 4,
            max_inputs: 6,
        }
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.outputs == 0 {
            return Err(ArchError::BadLutGeometry("zero outputs".into()));
        }
        if self.min_inputs == 0 {
            return Err(ArchError::BadLutGeometry("zero-input LUT".into()));
        }
        if self.max_inputs < self.min_inputs {
            return Err(ArchError::BadLutGeometry(format!(
                "max_inputs {} < min_inputs {}",
                self.max_inputs, self.min_inputs
            )));
        }
        if self.max_inputs > 16 {
            return Err(ArchError::BadLutGeometry(format!(
                "max_inputs {} too large for truth-table storage",
                self.max_inputs
            )));
        }
        Ok(())
    }

    /// Maximum plane count (at `min_inputs`): `2^(k_max - k_min)`.
    pub fn max_planes(&self) -> usize {
        1usize << (self.max_inputs - self.min_inputs)
    }

    /// Memory bits in the pool, per output: `2^max_inputs`.
    pub fn pool_bits(&self) -> usize {
        1usize << self.max_inputs
    }

    /// All pool-preserving modes, largest plane count first
    /// (Fig. 12: 4-in x 4 planes, 5-in x 2 planes, 6-in x 1 plane).
    pub fn modes(&self) -> Vec<LutMode> {
        (self.min_inputs..=self.max_inputs)
            .map(|k| LutMode {
                inputs: k,
                planes: 1usize << (self.max_inputs - k),
            })
            .collect()
    }

    /// The mode with exactly `planes` planes, if the pool supports it.
    pub fn mode_with_planes(&self, planes: usize) -> Result<LutMode, ArchError> {
        self.modes()
            .into_iter()
            .find(|m| m.planes == planes)
            .ok_or(ArchError::BadLutMode { inputs: 0, planes })
    }

    /// The smallest mode (fewest planes, hence most inputs) that still offers
    /// at least `planes` distinct planes.
    pub fn smallest_mode_with_at_least(&self, planes: usize) -> Option<LutMode> {
        self.modes()
            .into_iter()
            .rev() // fewest planes first
            .find(|m| m.planes >= planes)
    }

    /// Check that a mode belongs to this geometry's pool.
    pub fn check_mode(&self, mode: LutMode) -> Result<(), ArchError> {
        if mode.inputs >= self.min_inputs
            && mode.inputs <= self.max_inputs
            && mode.bits() == self.pool_bits()
        {
            Ok(())
        } else {
            Err(ArchError::BadLutMode {
                inputs: mode.inputs,
                planes: mode.planes,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_geometry_matches_fig_12() {
        let g = LutGeometry::paper_default();
        g.validate().unwrap();
        assert_eq!(g.pool_bits(), 64);
        assert_eq!(g.max_planes(), 4);
        let modes = g.modes();
        assert_eq!(
            modes,
            vec![
                LutMode {
                    inputs: 4,
                    planes: 4
                },
                LutMode {
                    inputs: 5,
                    planes: 2
                },
                LutMode {
                    inputs: 6,
                    planes: 1
                },
            ]
        );
        for m in modes {
            assert_eq!(m.bits(), 64);
        }
    }

    #[test]
    fn plane_select_bits() {
        assert_eq!(
            LutMode {
                inputs: 4,
                planes: 4
            }
            .plane_select_bits(),
            2
        );
        assert_eq!(
            LutMode {
                inputs: 5,
                planes: 2
            }
            .plane_select_bits(),
            1
        );
        assert_eq!(
            LutMode {
                inputs: 6,
                planes: 1
            }
            .plane_select_bits(),
            0
        );
        assert_eq!(
            LutMode {
                inputs: 3,
                planes: 3
            }
            .plane_select_bits(),
            2
        );
    }

    #[test]
    fn smallest_mode_selection() {
        let g = LutGeometry::paper_default();
        assert_eq!(
            g.smallest_mode_with_at_least(1).unwrap(),
            LutMode {
                inputs: 6,
                planes: 1
            }
        );
        assert_eq!(
            g.smallest_mode_with_at_least(2).unwrap(),
            LutMode {
                inputs: 5,
                planes: 2
            }
        );
        assert_eq!(
            g.smallest_mode_with_at_least(3).unwrap(),
            LutMode {
                inputs: 4,
                planes: 4
            }
        );
        assert_eq!(
            g.smallest_mode_with_at_least(4).unwrap(),
            LutMode {
                inputs: 4,
                planes: 4
            }
        );
        assert_eq!(g.smallest_mode_with_at_least(5), None);
    }

    #[test]
    fn rejects_bad_geometry() {
        let mut g = LutGeometry::paper_default();
        g.outputs = 0;
        assert!(g.validate().is_err());
        let g = LutGeometry {
            outputs: 1,
            min_inputs: 5,
            max_inputs: 4,
        };
        assert!(g.validate().is_err());
    }

    #[test]
    fn check_mode_enforces_pool() {
        let g = LutGeometry::paper_default();
        assert!(g
            .check_mode(LutMode {
                inputs: 5,
                planes: 2
            })
            .is_ok());
        assert!(g
            .check_mode(LutMode {
                inputs: 5,
                planes: 4
            })
            .is_err());
        assert!(g
            .check_mode(LutMode {
                inputs: 3,
                planes: 8
            })
            .is_err());
    }

    proptest! {
        #[test]
        fn all_modes_preserve_pool(min_k in 1usize..6, extra in 0usize..4, outs in 1usize..4) {
            let g = LutGeometry { outputs: outs, min_inputs: min_k, max_inputs: min_k + extra };
            g.validate().unwrap();
            for m in g.modes() {
                prop_assert_eq!(m.bits(), g.pool_bits());
                g.check_mode(m).unwrap();
            }
            prop_assert_eq!(g.modes().len(), extra + 1);
        }
    }
}
