//! Routing-fabric geometry: channels of single-length RCM-switched wires plus
//! the high-speed double-length lines of Fig. 10.
//!
//! Signals routed through many switch elements in series are slow, so the
//! architecture complements the RCM with double-length lines that bypass
//! alternate diamond switches (Fig. 10/11); critical nets prefer them.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;

/// Kind of wire segment in a routing channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegmentKind {
    /// Length-1 wire switched by RCM switch elements at every cell boundary.
    Single,
    /// Length-2 high-speed line connected through diamond switches, bypassing
    /// every other switch point.
    Double,
}

impl SegmentKind {
    /// Span of the segment in cell units.
    pub fn length(self) -> u16 {
        match self {
            SegmentKind::Single => 1,
            SegmentKind::Double => 2,
        }
    }
}

/// Channel composition of the routing fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RoutingGeometry {
    /// Total tracks per channel (per direction pair).
    pub tracks_per_channel: usize,
    /// How many of those tracks are double-length lines.
    pub double_length_tracks: usize,
    /// Logic-block input pins reachable from each adjacent channel
    /// (connection-block flexibility is modelled as a full crossbar onto
    /// these pins).
    pub conn_block_pins: usize,
}

impl RoutingGeometry {
    /// A small default suitable for the paper's demonstrations: 8 tracks,
    /// 2 of them double-length.
    pub fn paper_default() -> Self {
        RoutingGeometry {
            tracks_per_channel: 8,
            double_length_tracks: 2,
            conn_block_pins: 6,
        }
    }

    pub fn validate(&self) -> Result<(), ArchError> {
        if self.tracks_per_channel == 0 {
            return Err(ArchError::NoTracks);
        }
        if self.double_length_tracks >= self.tracks_per_channel {
            return Err(ArchError::BadSegmentSplit {
                tracks: self.tracks_per_channel,
                double_length: self.double_length_tracks,
            });
        }
        Ok(())
    }

    /// Number of single-length tracks.
    pub fn single_tracks(&self) -> usize {
        self.tracks_per_channel - self.double_length_tracks
    }

    /// The segment kind of a given track index. Double-length tracks occupy
    /// the top of the channel.
    pub fn track_kind(&self, track: usize) -> SegmentKind {
        debug_assert!(track < self.tracks_per_channel);
        if track >= self.single_tracks() {
            SegmentKind::Double
        } else {
            SegmentKind::Single
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_is_valid() {
        let g = RoutingGeometry::paper_default();
        g.validate().unwrap();
        assert_eq!(g.single_tracks(), 6);
    }

    #[test]
    fn track_kinds_partition_the_channel() {
        let g = RoutingGeometry {
            tracks_per_channel: 5,
            double_length_tracks: 2,
            conn_block_pins: 4,
        };
        let kinds: Vec<SegmentKind> = (0..5).map(|t| g.track_kind(t)).collect();
        assert_eq!(
            kinds,
            vec![
                SegmentKind::Single,
                SegmentKind::Single,
                SegmentKind::Single,
                SegmentKind::Double,
                SegmentKind::Double,
            ]
        );
    }

    #[test]
    fn rejects_all_double_channels() {
        let g = RoutingGeometry {
            tracks_per_channel: 4,
            double_length_tracks: 4,
            conn_block_pins: 4,
        };
        assert!(g.validate().is_err());
        let g = RoutingGeometry {
            tracks_per_channel: 0,
            double_length_tracks: 0,
            conn_block_pins: 4,
        };
        assert!(matches!(g.validate(), Err(ArchError::NoTracks)));
    }

    #[test]
    fn segment_lengths() {
        assert_eq!(SegmentKind::Single.length(), 1);
        assert_eq!(SegmentKind::Double.length(), 2);
    }
}
