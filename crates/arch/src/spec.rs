//! The top-level architecture specification consumed by the whole flow.

use serde::{Deserialize, Serialize};

use crate::context::ContextId;
use crate::error::ArchError;
use crate::geometry::GridDim;
use crate::lut_geometry::LutGeometry;
use crate::routing_geometry::RoutingGeometry;

/// Complete static description of one MC-FPGA device family member.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchSpec {
    /// Logic-block grid (Fig. 1's cell array).
    pub grid: GridDim,
    /// Number of contexts held on chip.
    pub n_contexts: usize,
    /// Logic-block LUT geometry (Fig. 12).
    pub lut: LutGeometry,
    /// Channel composition (Fig. 10).
    pub routing: RoutingGeometry,
}

impl ArchSpec {
    /// The paper's evaluation point: 4 contexts, 6-input 2-output MCMG-LUTs,
    /// on a modest grid with double-length lines.
    pub fn paper_default() -> Self {
        ArchSpec {
            grid: GridDim::new(8, 8),
            n_contexts: 4,
            lut: LutGeometry::paper_default(),
            routing: RoutingGeometry::paper_default(),
        }
    }

    /// Same architecture scaled to a different grid.
    pub fn with_grid(mut self, width: u16, height: u16) -> Self {
        self.grid = GridDim::new(width, height);
        self
    }

    /// Same architecture with a different context count.
    pub fn with_contexts(mut self, n: usize) -> Self {
        self.n_contexts = n;
        self
    }

    /// Validate the whole specification.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.grid.n_cells() == 0 {
            return Err(ArchError::EmptyGrid);
        }
        // Constructing the encoding validates the context count.
        let _ = ContextId::new(self.n_contexts)?;
        self.lut.validate()?;
        self.routing.validate()?;
        Ok(())
    }

    /// The context-ID encoding for this device.
    pub fn context_id(&self) -> ContextId {
        ContextId::new(self.n_contexts).expect("validated spec")
    }

    /// Logic-block count.
    pub fn n_logic_blocks(&self) -> usize {
        self.grid.n_cells()
    }

    /// Per-device LUT capacity: logic blocks x outputs x max planes.
    /// This is the number of `min_inputs`-input LUT functions the device can
    /// hold with every plane in use.
    pub fn lut_capacity(&self) -> usize {
        self.n_logic_blocks() * self.lut.outputs * self.lut.max_planes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        let spec = ArchSpec::paper_default();
        spec.validate().unwrap();
        assert_eq!(spec.n_contexts, 4);
        assert_eq!(spec.context_id().n_bits(), 2);
        assert_eq!(spec.lut_capacity(), 8 * 8 * 2 * 4);
    }

    #[test]
    fn builders_compose() {
        let spec = ArchSpec::paper_default().with_grid(4, 2).with_contexts(8);
        spec.validate().unwrap();
        assert_eq!(spec.n_logic_blocks(), 8);
        assert_eq!(spec.context_id().n_bits(), 3);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let spec = ArchSpec::paper_default().with_grid(0, 4);
        assert!(matches!(spec.validate(), Err(ArchError::EmptyGrid)));
        let spec = ArchSpec::paper_default().with_contexts(1);
        assert!(spec.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let spec = ArchSpec::paper_default();
        let json = serde_json::to_string(&spec).unwrap();
        let back: ArchSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
    }
}
