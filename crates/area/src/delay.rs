//! Delay models: serial-SE routing vs double-length lines (Figs. 10–11) and
//! the context-switch decode path.

use serde::{Deserialize, Serialize};

/// Delay constants (arbitrary units, consistent with the routing graph's
/// hop delays).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayParams {
    /// Delay through one RCM switch element (pass gate + wire segment).
    pub se_hop: f64,
    /// Delay of a double-length line crossing two cells through a diamond
    /// switch.
    pub double_hop: f64,
    /// Delay of one decoder mux stage during a context switch.
    pub decode_stage: f64,
    /// Global context-ID wire distribution delay (high-speed wires).
    pub id_distribution: f64,
}

impl Default for DelayParams {
    fn default() -> Self {
        DelayParams {
            se_hop: 2.0,
            double_hop: 2.4,
            id_distribution: 1.0,
            decode_stage: 0.8,
        }
    }
}

/// Routing delay for a path of `cells` cell-to-cell hops, with and without
/// double-length lines. Without them every hop threads an RCM SE; with
/// them, pairs of hops collapse onto double-length lines (Fig. 10) and only
/// the remainder uses SEs.
pub fn routing_delay(cells: usize, use_double: bool, p: &DelayParams) -> f64 {
    if !use_double {
        return cells as f64 * p.se_hop;
    }
    let doubles = cells / 2;
    let singles = cells % 2;
    doubles as f64 * p.double_hop + singles as f64 * p.se_hop
}

/// Context-switch latency: distribute the new context ID on global wires,
/// then let every local decoder settle through its worst mux-tree depth.
/// `max_decoder_depth` comes from the synthesised RCM programs (0 for
/// constant/single-bit columns — the common case).
pub fn context_switch_delay(max_decoder_depth: usize, p: &DelayParams) -> f64 {
    p.id_distribution + max_decoder_depth as f64 * p.decode_stage
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn double_length_lines_win_on_long_paths() {
        let p = DelayParams::default();
        for cells in [2usize, 4, 8, 16] {
            let serial = routing_delay(cells, false, &p);
            let fast = routing_delay(cells, true, &p);
            assert!(fast < serial, "{cells} cells: {fast} !< {serial}");
        }
        // Speedup approaches se_hop*2/double_hop for long paths.
        let speedup = routing_delay(100, false, &p) / routing_delay(100, true, &p);
        assert!((speedup - 2.0 * p.se_hop / p.double_hop).abs() < 0.01);
    }

    #[test]
    fn single_hop_gains_nothing() {
        let p = DelayParams::default();
        assert_eq!(routing_delay(1, true, &p), routing_delay(1, false, &p));
        assert_eq!(routing_delay(0, true, &p), 0.0);
    }

    #[test]
    fn context_switch_is_fast_for_cheap_patterns() {
        let p = DelayParams::default();
        // Constant/single-bit decoders have depth 0: switching costs only
        // the ID distribution.
        assert_eq!(context_switch_delay(0, &p), p.id_distribution);
        assert!(context_switch_delay(3, &p) > context_switch_delay(1, &p));
    }
}
