//! Area, power and delay models for the MC-FPGA comparison (Section 5).
//!
//! The paper compares the proposed architecture (RCM switch blocks +
//! adaptive MCMG logic blocks) against a *typical* MC-FPGA (fixed context
//! memory: `n` SRAM bits + an `n:1` context multiplexer behind every
//! configuration bit) under the constraint of equal context count, with 5%
//! of configuration data changing between contexts. Its results: proposed
//! area = **45%** of conventional in CMOS, **37%** with ferroelectric
//! functional pass-gates (FePGs, which halve the switch-element area and
//! eliminate storage leakage).
//!
//! The authors derived their numbers from transistor-level designs that
//! were never published; this crate rebuilds the comparison as an explicit
//! transistor-count model. Every constant sits in [`AreaParams`] and is
//! printed by the experiment harness, and the workload-dependent inputs
//! (switch-column pattern mix, logic-block plane demand) come either from
//! the analytic change-rate model ([`model::ColumnDistribution`]) or from
//! measured compiled designs. Absolute counts are not the paper's; the
//! reproduced claim is the *shape*: proposed ≪ conventional, CMOS around
//! 45%, FePG below it, advantage decaying as the change rate grows.

pub mod delay;
pub mod logic;
pub mod model;
pub mod params;
pub mod power;
pub mod switch;

pub use delay::{context_switch_delay, routing_delay, DelayParams};
pub use logic::{conventional_lb_area, proposed_lb_area, LbWorkload};
pub use model::{area_comparison, AreaComparison, ColumnDistribution, FabricWeights};
pub use params::{AreaParams, Technology};
pub use power::{static_power, PowerParams, PowerReport};
pub use switch::{conventional_switch_area, rcm_column_area, se_area};
