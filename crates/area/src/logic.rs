//! Logic-block area: fixed context memory vs the adaptive MCMG-LUT.
//!
//! Both architectures expose the same capability per logic-block output —
//! `n` contexts of `k_min`-input functions. The conventional block backs
//! every one of the `2^k_min` LUT configuration bits with `n` memory bits
//! and an `n:1` context multiplexer. The adaptive block stores one plain
//! plane per *distinct* function (shared logic collapses, Figs. 13–14) and
//! selects planes through the input multiplexer tree, steered by an
//! RCM-synthesised local size controller.
//!
//! The adaptive block's plane count is a workload property; [`LbWorkload`]
//! carries it either from the analytic change-rate model or from a measured
//! compiled design.

use mcfpga_arch::LutGeometry;

use crate::params::{AreaParams, Technology};
use crate::switch::se_area;

/// Workload-dependent inputs of the adaptive logic-block model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LbWorkload {
    /// Mean configuration planes provisioned per logic block (1..=n).
    pub mean_planes: f64,
    /// Mean size-controller switch elements per logic block.
    pub mean_controller_ses: f64,
}

impl LbWorkload {
    /// Analytic model: each logic block's function tuple changes between
    /// consecutive contexts with probability `q`; every change needs a new
    /// plane, so over `n` contexts `E[planes] = 1 + (n-1) q`. With a
    /// per-output function-change rate `rho` and `outputs` outputs,
    /// `q = 1 - (1-rho)^outputs`.
    ///
    /// The controller estimate charges 1 SE per plane-select bit for shared
    /// blocks (constant columns) rising towards the ID-bit cost as planes
    /// diverge.
    pub fn from_change_rate(rho: f64, geometry: &LutGeometry, n_contexts: usize) -> Self {
        let q = 1.0 - (1.0 - rho).powi(geometry.outputs as i32);
        let mean_planes = (1.0 + (n_contexts - 1) as f64 * q).min(geometry.max_planes() as f64);
        let select_bits = {
            // Bits needed for the provisioned plane count.
            let p = mean_planes.ceil() as usize;
            if p <= 1 {
                0
            } else {
                usize::BITS as usize - (p - 1).leading_zeros() as usize
            }
        };
        LbWorkload {
            mean_planes,
            // One SE per select bit (constant or single-ID-bit columns
            // dominate at low change rates; see the decoder cost model).
            mean_controller_ses: select_bits as f64,
        }
    }
}

/// Conventional multi-context logic block area (per block).
pub fn conventional_lb_area(geometry: &LutGeometry, n_contexts: usize, p: &AreaParams) -> f64 {
    let bits_per_output = 1usize << geometry.min_inputs;
    let per_bit = n_contexts as f64 * p.sram_bit + n_contexts as f64 * p.ctx_mux_per_context;
    let input_tree = (bits_per_output - 1) as f64 * p.mux2;
    geometry.outputs as f64 * (bits_per_output as f64 * per_bit + input_tree + p.dff + p.buffer)
}

/// Adaptive MCMG logic block area (per block) for a workload.
pub fn proposed_lb_area(
    geometry: &LutGeometry,
    workload: &LbWorkload,
    tech: Technology,
    p: &AreaParams,
) -> f64 {
    let bits_per_output = 1usize << geometry.min_inputs;
    let mem_bits = bits_per_output as f64 * workload.mean_planes;
    // Address tree spans data inputs plus plane-select lines: one mux2 per
    // stored bit (a 2^m:1 tree has 2^m - 1 muxes; we charge mem_bits to stay
    // monotone in the fractional plane count).
    let input_tree = mem_bits * p.mux2;
    let per_output = mem_bits * p.sram_bit + input_tree + p.dff + p.buffer;
    let controller = workload.mean_controller_ses * se_area(tech, p);
    geometry.outputs as f64 * per_output + controller
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> LutGeometry {
        LutGeometry::paper_default()
    }

    fn p() -> AreaParams {
        AreaParams::paper_default()
    }

    #[test]
    fn analytic_planes_match_hand_computation() {
        // rho = 0.05, outputs = 2: q = 1 - 0.95^2 = 0.0975;
        // planes = 1 + 3q = 1.2925.
        let w = LbWorkload::from_change_rate(0.05, &geo(), 4);
        assert!((w.mean_planes - 1.2925).abs() < 1e-9, "{}", w.mean_planes);
        // Zero change: exactly one plane, no controller.
        let w0 = LbWorkload::from_change_rate(0.0, &geo(), 4);
        assert_eq!(w0.mean_planes, 1.0);
        assert_eq!(w0.mean_controller_ses, 0.0);
        // Total change: saturates at the pool's plane count.
        let w1 = LbWorkload::from_change_rate(1.0, &geo(), 4);
        assert_eq!(w1.mean_planes, 4.0);
    }

    #[test]
    fn proposed_lb_beats_conventional_at_low_change() {
        let w = LbWorkload::from_change_rate(0.05, &geo(), 4);
        let prop = proposed_lb_area(&geo(), &w, Technology::Cmos, &p());
        let conv = conventional_lb_area(&geo(), 4, &p());
        let ratio = prop / conv;
        assert!(
            ratio > 0.2 && ratio < 0.6,
            "LB ratio at 5% change: {ratio:.3}"
        );
    }

    #[test]
    fn advantage_decays_with_change_rate() {
        let conv = conventional_lb_area(&geo(), 4, &p());
        let mut prev = 0.0;
        for rho in [0.0, 0.05, 0.2, 0.5, 1.0] {
            let w = LbWorkload::from_change_rate(rho, &geo(), 4);
            let ratio = proposed_lb_area(&geo(), &w, Technology::Cmos, &p()) / conv;
            assert!(ratio >= prev, "ratio must grow with change rate");
            prev = ratio;
        }
        // Even at 100% change the proposed block stays cheaper than the
        // conventional one: it drops the per-bit context multiplexers.
        assert!(prev < 1.0);
    }

    #[test]
    fn conventional_area_scales_with_contexts() {
        let a4 = conventional_lb_area(&geo(), 4, &p());
        let a8 = conventional_lb_area(&geo(), 8, &p());
        assert!(a8 > 1.5 * a4);
    }

    #[test]
    fn fepg_only_touches_the_controller() {
        let w = LbWorkload {
            mean_planes: 2.0,
            mean_controller_ses: 4.0,
        };
        let cmos = proposed_lb_area(&geo(), &w, Technology::Cmos, &p());
        let fepg = proposed_lb_area(&geo(), &w, Technology::Fepg, &p());
        let se_delta = 4.0 * (se_area(Technology::Cmos, &p()) - se_area(Technology::Fepg, &p()));
        assert!((cmos - fepg - se_delta).abs() < 1e-9);
    }
}
