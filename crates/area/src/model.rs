//! The fabric-level area comparison (Section 5's 45% / 37% numbers).

use mcfpga_arch::{ArchSpec, ContextId};
use mcfpga_config::{classify, ConfigColumn, PatternClass};
use mcfpga_rcm::synthesize;
use serde::{Deserialize, Serialize};

use crate::logic::{conventional_lb_area, proposed_lb_area, LbWorkload};
use crate::params::{AreaParams, Technology};
use crate::switch::{conventional_switch_area, rcm_column_area};

/// The exact probability distribution of configuration columns under the
/// paper's change model: the context-0 value is uniform, and the bit flips
/// between consecutive contexts with probability `r` (the evaluation sets
/// `r = 0.05`, citing Kennedy's <3% measurement).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDistribution {
    pub ctx: ContextId,
    pub change_rate: f64,
    /// (column, probability) for every `2^n` pattern.
    pub entries: Vec<(ConfigColumn, f64)>,
}

impl ColumnDistribution {
    pub fn new(ctx: ContextId, change_rate: f64) -> Self {
        let n = ctx.n_contexts();
        let entries = ConfigColumn::enumerate_all(n)
            .into_iter()
            .map(|col| {
                let changes = col.n_changes() as f64;
                let stays = (n - 1) as f64 - changes;
                let p = 0.5 * change_rate.powf(changes) * (1.0 - change_rate).powf(stays);
                (col, p)
            })
            .collect();
        ColumnDistribution {
            ctx,
            change_rate,
            entries,
        }
    }

    /// Probabilities sum to one (sanity invariant).
    pub fn total_probability(&self) -> f64 {
        self.entries.iter().map(|(_, p)| p).sum()
    }

    /// Expected switch elements per column under RCM decoding.
    pub fn expected_ses(&self) -> f64 {
        self.entries
            .iter()
            .map(|(col, p)| p * synthesize(*col, self.ctx).cost().n_ses as f64)
            .sum()
    }

    /// Expected RCM area per column.
    pub fn expected_column_area(&self, tech: Technology, params: &AreaParams) -> f64 {
        self.entries
            .iter()
            .map(|(col, p)| {
                let cost = synthesize(*col, self.ctx).cost();
                p * rcm_column_area(&cost, tech, params)
            })
            .sum()
    }

    /// Class probabilities `(constant, single-bit, general)` — the
    /// frequency companion to Figs. 3–5.
    pub fn class_probabilities(&self) -> (f64, f64, f64) {
        let mut acc = (0.0, 0.0, 0.0);
        for (col, p) in &self.entries {
            match classify(*col, self.ctx) {
                PatternClass::Constant { .. } => acc.0 += p,
                PatternClass::SingleBit { .. } => acc.1 += p,
                PatternClass::General => acc.2 += p,
            }
        }
        acc
    }
}

/// How many of each resource one fabric cell carries. The routing-dominant
/// split (~60% of FPGA area in interconnect) follows standard island-style
/// data; the default gives each cell 24 multi-context routing switches plus
/// its logic block.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricWeights {
    /// Multi-context routing/connection switches per cell.
    pub switches_per_cell: f64,
}

impl Default for FabricWeights {
    fn default() -> Self {
        FabricWeights {
            switches_per_cell: 24.0,
        }
    }
}

/// Result of the Section 5 comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaComparison {
    pub n_contexts: usize,
    pub change_rate: f64,
    /// Per-cell areas, unit transistors.
    pub conventional_cell: f64,
    pub proposed_cell: f64,
    /// The headline ratio (proposed / conventional).
    pub ratio: f64,
    /// Component breakdown.
    pub conventional_switches: f64,
    pub proposed_switches: f64,
    pub conventional_lb: f64,
    pub proposed_lb: f64,
}

/// Run the Section 5 comparison for an architecture at a given change rate
/// and technology.
pub fn area_comparison(
    arch: &ArchSpec,
    change_rate: f64,
    tech: Technology,
    params: &AreaParams,
    weights: &FabricWeights,
) -> AreaComparison {
    let ctx = arch.context_id();
    let n = ctx.n_contexts();
    let dist = ColumnDistribution::new(ctx, change_rate);

    let conv_switch = conventional_switch_area(n, params) * weights.switches_per_cell;
    let prop_switch = dist.expected_column_area(tech, params) * weights.switches_per_cell;

    let lb_workload = LbWorkload::from_change_rate(change_rate, &arch.lut, n);
    let conv_lb = conventional_lb_area(&arch.lut, n, params);
    let prop_lb = proposed_lb_area(&arch.lut, &lb_workload, tech, params);

    let conventional_cell = conv_switch + conv_lb;
    let proposed_cell = prop_switch + prop_lb;
    AreaComparison {
        n_contexts: n,
        change_rate,
        conventional_cell,
        proposed_cell,
        ratio: proposed_cell / conventional_cell,
        conventional_switches: conv_switch,
        proposed_switches: prop_switch,
        conventional_lb: conv_lb,
        proposed_lb: prop_lb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn distribution_is_normalised() {
        for n in [2usize, 4, 8] {
            for r in [0.0, 0.05, 0.3, 1.0] {
                let d = ColumnDistribution::new(ContextId::new(n).unwrap(), r);
                assert!(
                    (d.total_probability() - 1.0).abs() < 1e-9,
                    "n={n} r={r}: {}",
                    d.total_probability()
                );
            }
        }
    }

    #[test]
    fn zero_change_is_all_constant() {
        let d = ColumnDistribution::new(ContextId::new(4).unwrap(), 0.0);
        let (c, s, g) = d.class_probabilities();
        assert!((c - 1.0).abs() < 1e-12);
        assert!(s.abs() < 1e-12 && g.abs() < 1e-12);
        assert!((d.expected_ses() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn five_percent_change_matches_hand_numbers() {
        // P(constant) = (1-r)^3 = 0.857375;
        // single-bit mass = S1-type flips (one specific transition):
        // 2 patterns of prob r(1-r)^2 / 2 each ... total r(1-r)^2.
        let d = ColumnDistribution::new(ContextId::new(4).unwrap(), 0.05);
        let (c, s, g) = d.class_probabilities();
        assert!((c - 0.857375).abs() < 1e-9, "constant {c}");
        let s_expected: f64 = {
            // Patterns 0011/1100 (=S1 and complement) have exactly one
            // change at the middle transition: 2 * 0.5 * r * (1-r)^2.
            // Patterns 0101/1010 (=S0) change at all three transitions:
            // 2 * 0.5 * r^3.
            0.05f64 * 0.95 * 0.95 + 0.05f64.powi(3)
        };
        assert!((s - s_expected).abs() < 1e-9, "single {s} vs {s_expected}");
        assert!((c + s + g - 1.0).abs() < 1e-9);
        // Expected SEs: cheap mass at 1 SE, the rest at 4.
        let cheap = c + s;
        assert!((d.expected_ses() - (cheap + 4.0 * (1.0 - cheap))).abs() < 1e-9);
    }

    #[test]
    fn headline_cmos_ratio_is_in_the_45_percent_region() {
        let cmp = area_comparison(
            &arch(),
            0.05,
            Technology::Cmos,
            &AreaParams::paper_default(),
            &FabricWeights::default(),
        );
        assert!(
            cmp.ratio > 0.35 && cmp.ratio < 0.55,
            "CMOS ratio {:.3} (paper: 0.45)",
            cmp.ratio
        );
    }

    #[test]
    fn headline_fepg_ratio_is_below_cmos() {
        let params = AreaParams::paper_default();
        let cmos = area_comparison(
            &arch(),
            0.05,
            Technology::Cmos,
            &params,
            &FabricWeights::default(),
        );
        let fepg = area_comparison(
            &arch(),
            0.05,
            Technology::Fepg,
            &params,
            &FabricWeights::default(),
        );
        assert!(fepg.ratio < cmos.ratio, "FePG must improve on CMOS");
        assert!(
            fepg.ratio > 0.25 && fepg.ratio < 0.47,
            "FePG ratio {:.3} (paper: 0.37)",
            fepg.ratio
        );
    }

    #[test]
    fn ratio_grows_with_change_rate_in_the_low_change_regime() {
        // Monotone only for small r: as r -> 1 the columns *alternate*,
        // which is again regular (the S0 pattern) and cheap for the RCM —
        // a genuine property of the pattern taxonomy, not a model bug.
        let params = AreaParams::paper_default();
        let w = FabricWeights::default();
        let mut prev = 0.0;
        for r in [0.0, 0.05, 0.1, 0.2, 0.3] {
            let cmp = area_comparison(&arch(), r, Technology::Cmos, &params, &w);
            assert!(cmp.ratio > prev, "r={r}: {} <= {prev}", cmp.ratio);
            prev = cmp.ratio;
        }
        // And the fully-alternating extreme is cheaper than the midpoint.
        let mid = area_comparison(&arch(), 0.5, Technology::Cmos, &params, &w);
        let alt = area_comparison(&arch(), 1.0, Technology::Cmos, &params, &w);
        assert!(alt.proposed_switches < mid.proposed_switches);
    }

    #[test]
    fn proposed_always_wins_at_the_paper_point() {
        for n in [2usize, 4, 8] {
            let a = arch().with_contexts(n);
            let cmp = area_comparison(
                &a,
                0.05,
                Technology::Cmos,
                &AreaParams::paper_default(),
                &FabricWeights::default(),
            );
            assert!(cmp.ratio < 1.0, "n={n}: ratio {}", cmp.ratio);
        }
    }

    #[test]
    fn breakdown_sums_to_cell_totals() {
        let cmp = area_comparison(
            &arch(),
            0.05,
            Technology::Cmos,
            &AreaParams::paper_default(),
            &FabricWeights::default(),
        );
        assert!(
            (cmp.conventional_switches + cmp.conventional_lb - cmp.conventional_cell).abs() < 1e-9
        );
        assert!((cmp.proposed_switches + cmp.proposed_lb - cmp.proposed_cell).abs() < 1e-9);
    }
}
