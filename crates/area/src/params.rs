//! Transistor-count parameters.
//!
//! Counts follow standard static-CMOS conventions: a 6T SRAM cell, 2T
//! transmission/pass gates, pass-transistor 2:1 multiplexers with their
//! select inverter amortised across a bit column. The FePG entry implements
//! the paper's Section 5 statement verbatim: "the area of an FePG-based SE
//! is 50% of that of a CMOS-based SE".

use serde::{Deserialize, Serialize};

/// Implementation technology for the RCM switch elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Technology {
    /// Static CMOS switch elements.
    Cmos,
    /// Ferroelectric functional pass-gates (logic and non-volatile storage
    /// merged at device level, Fig. 15).
    Fepg,
}

/// All area-model constants, in unit transistors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AreaParams {
    /// 6T SRAM configuration bit.
    pub sram_bit: f64,
    /// 2:1 pass multiplexer (2 pass transistors + amortised select
    /// inverter).
    pub mux2: f64,
    /// Routing pass gate (transmission gate).
    pub pass_gate: f64,
    /// Plain inverter.
    pub inverter: f64,
    /// Signal buffer (two inverters).
    pub buffer: f64,
    /// D flip-flop.
    pub dff: f64,
    /// Per-bit `n:1` context multiplexer of the conventional MC-FPGA,
    /// expressed as transistors per *context* (pass transistor + its share
    /// of the one-hot decode). `mux_n = n * ctx_mux_per_context`.
    pub ctx_mux_per_context: f64,
    /// FePG scaling of a switch element (paper: 0.5).
    pub fepg_se_scale: f64,
}

impl AreaParams {
    /// Defaults used throughout the reproduction (documented in
    /// EXPERIMENTS.md next to the measured ratios).
    pub fn paper_default() -> Self {
        AreaParams {
            sram_bit: 6.0,
            mux2: 3.0,
            pass_gate: 2.0,
            inverter: 2.0,
            buffer: 4.0,
            dff: 16.0,
            ctx_mux_per_context: 3.0,
            fepg_se_scale: 0.5,
        }
    }
}

impl Default for AreaParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive_and_sane() {
        let p = AreaParams::paper_default();
        for v in [
            p.sram_bit,
            p.mux2,
            p.pass_gate,
            p.inverter,
            p.buffer,
            p.dff,
            p.ctx_mux_per_context,
        ] {
            assert!(v > 0.0);
        }
        assert!(p.fepg_se_scale > 0.0 && p.fepg_se_scale < 1.0);
        assert_eq!(p.fepg_se_scale, 0.5, "the paper's stated FePG scaling");
    }

    #[test]
    fn serde_roundtrip() {
        let p = AreaParams::paper_default();
        let s = serde_json::to_string(&p).unwrap();
        let q: AreaParams = serde_json::from_str(&s).unwrap();
        assert_eq!(p, q);
    }
}
