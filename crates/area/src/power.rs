//! Static power model: the FePG's second claim.
//!
//! Conventional MC-FPGAs leak in every SRAM plane whether or not the
//! context is active. CMOS RCM reduces the bit count; FePG storage is
//! non-volatile ferroelectric and contributes no static leakage at all
//! (Section 5 / reference \[5\]).

use mcfpga_arch::ArchSpec;
use serde::{Deserialize, Serialize};

use crate::logic::LbWorkload;
use crate::model::{ColumnDistribution, FabricWeights};
use crate::params::Technology;

/// Power-model constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Leakage per SRAM bit (arbitrary units).
    pub sram_leak: f64,
    /// Leakage per FePG storage element (the paper's claim: ~0).
    pub fepg_leak: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            sram_leak: 1.0,
            fepg_leak: 0.0,
        }
    }
}

/// Static-power report (per cell, arbitrary units).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    pub conventional: f64,
    pub proposed: f64,
    pub ratio: f64,
}

/// Count configuration storage bits per cell and price their leakage.
pub fn static_power(
    arch: &ArchSpec,
    change_rate: f64,
    tech: Technology,
    params: &PowerParams,
    weights: &FabricWeights,
) -> PowerReport {
    let ctx = arch.context_id();
    let n = ctx.n_contexts() as f64;
    // Conventional: n bits per switch, n bits per LUT bit.
    let lut_bits = (arch.lut.outputs * (1usize << arch.lut.min_inputs)) as f64;
    let conv_bits = weights.switches_per_cell * n + lut_bits * n;

    // Proposed: 2 bits per SE for switches; plane-demand bits for LUTs.
    let dist = ColumnDistribution::new(ctx, change_rate);
    let se_bits = dist.expected_ses() * 2.0;
    let lb = LbWorkload::from_change_rate(change_rate, &arch.lut, ctx.n_contexts());
    let prop_bits = weights.switches_per_cell * se_bits + lut_bits * lb.mean_planes;

    let leak = match tech {
        Technology::Cmos => params.sram_leak,
        Technology::Fepg => params.fepg_leak,
    };
    // LUT planes stay SRAM in both technologies; only the RCM storage (and
    // switch planes) moves to FePG.
    let conventional = conv_bits * params.sram_leak;
    let proposed =
        weights.switches_per_cell * se_bits * leak + lut_bits * lb.mean_planes * params.sram_leak;
    let _ = prop_bits;
    PowerReport {
        conventional,
        proposed,
        ratio: proposed / conventional,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;

    #[test]
    fn proposed_leaks_less_than_conventional() {
        let arch = ArchSpec::paper_default();
        let r = static_power(
            &arch,
            0.05,
            Technology::Cmos,
            &PowerParams::default(),
            &FabricWeights::default(),
        );
        assert!(r.ratio < 1.0, "CMOS RCM ratio {}", r.ratio);
    }

    #[test]
    fn fepg_eliminates_switch_storage_leakage() {
        let arch = ArchSpec::paper_default();
        let cmos = static_power(
            &arch,
            0.05,
            Technology::Cmos,
            &PowerParams::default(),
            &FabricWeights::default(),
        );
        let fepg = static_power(
            &arch,
            0.05,
            Technology::Fepg,
            &PowerParams::default(),
            &FabricWeights::default(),
        );
        assert!(fepg.proposed < cmos.proposed);
        // Remaining leakage is exactly the SRAM LUT planes.
        let arch_bits = (arch.lut.outputs * 16) as f64; // 2 outputs x 2^4
        let lb = LbWorkload::from_change_rate(0.05, &arch.lut, 4);
        assert!((fepg.proposed - arch_bits * lb.mean_planes).abs() < 1e-9);
    }

    #[test]
    fn power_ratio_monotone_in_the_low_change_regime() {
        // See the area-model tests: alternating columns at r -> 1 are
        // regular again, so monotonicity only holds for small r.
        let arch = ArchSpec::paper_default();
        let mut prev = 0.0;
        for r in [0.0, 0.1, 0.2, 0.3] {
            let rep = static_power(
                &arch,
                r,
                Technology::Cmos,
                &PowerParams::default(),
                &FabricWeights::default(),
            );
            assert!(rep.ratio >= prev);
            prev = rep.ratio;
        }
    }
}
