//! Switch-block area: conventional multi-context switch vs RCM decoder.

use mcfpga_rcm::DecoderCost;

use crate::params::{AreaParams, Technology};

/// Conventional multi-context switch (Fig. 2): `n` SRAM bits, an `n:1`
/// context multiplexer with its level-restoring buffer (a multi-stage
/// pass-transistor mux degrades the gate drive; the RCM's single-stage SE
/// does not need one), and the routing pass gate it drives.
pub fn conventional_switch_area(n_contexts: usize, p: &AreaParams) -> f64 {
    n_contexts as f64 * (p.sram_bit + p.ctx_mux_per_context) + p.buffer + p.pass_gate
}

/// One switch element (Fig. 8): two memory bits, a 2:1 multiplexer, and a
/// pass gate. FePGs merge the storage into the device and halve the area
/// (Section 5 / Fig. 15).
pub fn se_area(tech: Technology, p: &AreaParams) -> f64 {
    let cmos = 2.0 * p.sram_bit + p.mux2 + p.pass_gate;
    match tech {
        Technology::Cmos => cmos,
        Technology::Fepg => cmos * p.fepg_se_scale,
    }
}

/// Area of one input controller (Fig. 7(c)): a memory bit selecting
/// straight or inverted polarity through a 2:1 mux.
pub fn input_controller_area(p: &AreaParams) -> f64 {
    p.sram_bit + p.inverter + p.mux2
}

/// Area of one programmable cross-point (Fig. 7(b)).
pub fn programmable_switch_area(p: &AreaParams) -> f64 {
    p.sram_bit + p.pass_gate
}

/// Area of one RCM-decoded configuration column: the synthesised decoder's
/// switch elements plus its share of cross-points and input controllers,
/// plus the routing pass gate the generated bit drives.
pub fn rcm_column_area(cost: &DecoderCost, tech: Technology, p: &AreaParams) -> f64 {
    cost.n_ses as f64 * se_area(tech, p)
        + cost.n_pass_stages as f64 * programmable_switch_area(p)
        + cost.n_inverters as f64 * input_controller_area(p)
        + p.pass_gate
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ContextId;
    use mcfpga_config::ConfigColumn;
    use mcfpga_rcm::synthesize;

    fn p() -> AreaParams {
        AreaParams::paper_default()
    }

    #[test]
    fn conventional_switch_grows_linearly_with_contexts() {
        let a2 = conventional_switch_area(2, &p());
        let a4 = conventional_switch_area(4, &p());
        let a8 = conventional_switch_area(8, &p());
        assert!((a4 - a2) - (a8 - a4) / 2.0 < 1e-9);
        assert!(a8 > a4 && a4 > a2);
    }

    #[test]
    fn fepg_se_is_half_of_cmos() {
        let cmos = se_area(Technology::Cmos, &p());
        let fepg = se_area(Technology::Fepg, &p());
        assert!((fepg / cmos - 0.5).abs() < 1e-12, "paper Section 5");
    }

    #[test]
    fn constant_column_beats_conventional_switch() {
        // The core of the paper's argument: a never-changing configuration
        // bit costs one SE instead of four memory planes.
        let ctx = ContextId::new(4).unwrap();
        let cost = synthesize(ConfigColumn::constant(true, 4), ctx).cost();
        let rcm = rcm_column_area(&cost, Technology::Cmos, &p());
        let conv = conventional_switch_area(4, &p());
        assert!(
            rcm < 0.6 * conv,
            "constant column {rcm} should be well under conventional {conv}"
        );
    }

    #[test]
    fn general_column_costs_more_than_conventional() {
        // Fig. 5 patterns are the RCM's worst case; the win relies on their
        // rarity.
        let ctx = ContextId::new(4).unwrap();
        let cost = synthesize(ConfigColumn::from_mask(0b1000, 4), ctx).cost();
        let rcm = rcm_column_area(&cost, Technology::Cmos, &p());
        let conv = conventional_switch_area(4, &p());
        assert!(rcm > conv);
    }

    #[test]
    fn fepg_reduces_every_column() {
        let ctx = ContextId::new(4).unwrap();
        for col in ConfigColumn::enumerate_all(4) {
            let cost = synthesize(col, ctx).cost();
            let cmos = rcm_column_area(&cost, Technology::Cmos, &p());
            let fepg = rcm_column_area(&cost, Technology::Fepg, &p());
            assert!(fepg < cmos, "pattern {}", col.pattern_string());
        }
    }
}
