//! Bench: Section 5 area model (analytic + sweeps + power).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga::area::{
    area_comparison, static_power, AreaParams, ColumnDistribution, FabricWeights, PowerParams,
    Technology,
};
use mcfpga::prelude::*;

fn bench(c: &mut Criterion) {
    let arch = ArchSpec::paper_default();
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    c.bench_function("area45_headline", |b| {
        b.iter(|| area_comparison(black_box(&arch), 0.05, Technology::Cmos, &params, &weights))
    });
    c.bench_function("area37_headline", |b| {
        b.iter(|| area_comparison(black_box(&arch), 0.05, Technology::Fepg, &params, &weights))
    });
    c.bench_function("sweep_change_11points", |b| {
        b.iter(|| {
            for r in [0.0, 0.01, 0.02, 0.03, 0.05, 0.08, 0.1, 0.15, 0.2, 0.3, 0.5] {
                black_box(area_comparison(
                    &arch,
                    r,
                    Technology::Cmos,
                    &params,
                    &weights,
                ));
            }
        })
    });
    let ctx8 = arch.clone().with_contexts(8);
    c.bench_function("distribution_8ctx", |b| {
        b.iter(|| ColumnDistribution::new(black_box(ctx8.context_id()), 0.05).expected_ses())
    });
    c.bench_function("static_power", |b| {
        b.iter(|| {
            static_power(
                black_box(&arch),
                0.05,
                Technology::Fepg,
                &PowerParams::default(),
                &weights,
            )
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
