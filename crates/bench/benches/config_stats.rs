//! Bench: Table 1 statistics extraction from a compiled mixed device.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga::config::ColumnSetStats;
use mcfpga::prelude::*;
use mcfpga_bench::mixed_contexts;

fn bench(c: &mut Criterion) {
    let arch = ArchSpec::paper_default();
    let dev = MultiDevice::compile(&arch, &mixed_contexts()).unwrap();
    let ctx = arch.context_id();
    let columns = dev.switch_usage().columns();
    c.bench_function("table1_stats_from_device", |b| {
        b.iter(|| ColumnSetStats::measure(black_box(&columns), ctx))
    });
    c.bench_function("table1_full_compile", |b| {
        b.iter(|| MultiDevice::compile(black_box(&arch), &mixed_contexts()).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
