//! Bench: RCM decoder synthesis (Fig. 9 machinery) at 4 and 8 contexts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga_arch::ContextId;
use mcfpga_config::{random_column, ConfigColumn};
use mcfpga_rcm::{synthesize, RcmBlock};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let ctx4 = ContextId::new(4).unwrap();
    let ctx8 = ContextId::new(8).unwrap();
    c.bench_function("synthesize_all_16_4ctx", |b| {
        b.iter(|| {
            for col in ConfigColumn::enumerate_all(4) {
                black_box(synthesize(col, ctx4));
            }
        })
    });
    c.bench_function("synthesize_all_256_8ctx", |b| {
        b.iter(|| {
            for mask in 0..256u32 {
                black_box(synthesize(ConfigColumn::from_mask(mask, 8), ctx8));
            }
        })
    });
    // Block allocation with sharing at the paper's change rate.
    let mut rng = StdRng::seed_from_u64(3);
    let cols: Vec<ConfigColumn> = (0..200)
        .map(|_| random_column(ctx4, 0.05, &mut rng))
        .collect();
    let block = RcmBlock::new(32, 32);
    c.bench_function("rcm_block_allocate_200cols", |b| {
        b.iter(|| block.allocate(black_box(&cols), ctx4).unwrap())
    });
    // Evaluate a synthesised decoder across contexts (context-switch path).
    let prog = synthesize(ConfigColumn::from_mask(0b1000, 4), ctx4);
    c.bench_function("decoder_eval_4ctx", |b| {
        b.iter(|| {
            for context in 0..4 {
                black_box(prog.eval(ctx4, context));
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
