//! Bench: routed critical-path delay with and without double-length lines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga::netlist::library;
use mcfpga::prelude::*;

fn bench(c: &mut Criterion) {
    let with_dl = ArchSpec::paper_default();
    let mut no_dl = ArchSpec::paper_default();
    no_dl.routing.double_length_tracks = 0;
    let circuit = library::adder(8);
    c.bench_function("route_with_double_length", |b| {
        b.iter(|| {
            let dev =
                MultiDevice::compile(black_box(&with_dl), std::slice::from_ref(&circuit)).unwrap();
            black_box(dev.critical_delay())
        })
    });
    c.bench_function("route_without_double_length", |b| {
        b.iter(|| {
            let dev =
                MultiDevice::compile(black_box(&no_dl), std::slice::from_ref(&circuit)).unwrap();
            black_box(dev.critical_delay())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
