//! Bench: the end-to-end compile flow and device stepping.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga::netlist::{workload, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::sim::Device;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench(c: &mut Criterion) {
    let arch = ArchSpec::paper_default();
    let w = workload(RandomNetlistParams::default(), 4, 0.05, 21);
    c.bench_function("compile_4ctx_workload", |b| {
        b.iter(|| Device::compile(black_box(&arch), &w).unwrap())
    });
    let mut dev = Device::compile(&arch, &w).unwrap();
    let n_in = w[0].inputs().len();
    let mut rng = StdRng::seed_from_u64(5);
    c.bench_function("device_step_with_context_switches", |b| {
        b.iter(|| {
            let ctx = rng.gen_range(0..4);
            dev.switch_context(ctx);
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            black_box(dev.step(&inputs))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
