//! Bench: Figs. 13-14 packing (global vs local control).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga::map::{pack_global, pack_local, PackOptions};
use mcfpga::netlist::dfg::{generated_family, paper_example};
use mcfpga_arch::ContextId;

fn bench(c: &mut Criterion) {
    let opts = PackOptions::figure_13_14();
    let ctx2 = ContextId::new(2).unwrap();
    let paper = paper_example();
    c.bench_function("pack_paper_example", |b| {
        b.iter(|| {
            let g = pack_global(black_box(&paper), &opts);
            let l = pack_local(black_box(&paper), &opts, ctx2);
            black_box((g, l))
        })
    });
    let fam = generated_family(2, 6, 200, 0.5, 9);
    c.bench_function("pack_family_200ops", |b| {
        b.iter(|| {
            let g = pack_global(black_box(&fam), &opts);
            let l = pack_local(black_box(&fam), &opts, ctx2);
            black_box((g, l))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
