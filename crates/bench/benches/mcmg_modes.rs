//! Bench: Fig. 12 granularity mapping sweep over the circuit suite.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga::map::map_netlist;
use mcfpga_bench::suite;

fn bench(c: &mut Criterion) {
    let circuits = suite();
    for k in [4usize, 5, 6] {
        c.bench_function(&format!("map_suite_k{k}"), |b| {
            b.iter(|| {
                for circuit in &circuits {
                    black_box(map_netlist(circuit, k).unwrap());
                }
            })
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
