//! Bench: pattern classification and census (Figs. 3-5 machinery).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mcfpga_arch::ContextId;
use mcfpga_config::{classify, pattern_census, random_column, ColumnSetStats, ConfigColumn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let ctx4 = ContextId::new(4).unwrap();
    let ctx8 = ContextId::new(8).unwrap();
    c.bench_function("classify_all_16_patterns", |b| {
        b.iter(|| {
            for col in ConfigColumn::enumerate_all(4) {
                black_box(classify(col, ctx4));
            }
        })
    });
    c.bench_function("census_8_contexts", |b| {
        b.iter(|| pattern_census(black_box(ctx8)))
    });
    let mut rng = StdRng::seed_from_u64(1);
    let cols: Vec<ConfigColumn> = (0..10_000)
        .map(|_| random_column(ctx4, 0.05, &mut rng))
        .collect();
    c.bench_function("stats_10k_columns", |b| {
        b.iter(|| ColumnSetStats::measure(black_box(&cols), ctx4))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
