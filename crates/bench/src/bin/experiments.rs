//! The experiment harness: regenerates every table and figure of the paper.
//!
//! ```sh
//! cargo run -p mcfpga-bench --bin experiments -- all
//! cargo run -p mcfpga-bench --bin experiments -- area45
//! ```
//!
//! Experiment ids (see DESIGN.md's experiment index):
//! `table1 table2 fig3_5 fig9 fig12 fig13_14 area45 area37 sweep_change
//!  sweep_contexts delay power flow sim serve serve_obs delta probe all`

use mcfpga::area::{
    area_comparison, context_switch_delay, routing_delay, static_power, AreaParams,
    ColumnDistribution, DelayParams, FabricWeights, PowerParams, Technology,
};
use mcfpga::config::{classify, ColumnSetStats, ConfigColumn};
use mcfpga::map::{map_netlist, pack_global, pack_local, PackOptions};
use mcfpga::netlist::dfg::{generated_family, paper_example};
use mcfpga::netlist::{library, perturb_netlist, random_netlist, workload, RandomNetlistParams};
use mcfpga::prelude::*;
use mcfpga::rcm::synthesize;
use mcfpga::sim::Device;
use mcfpga_bench::{header, mixed_contexts, suite};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let all = which == "all";
    let mut ran = false;
    macro_rules! run {
        ($name:literal, $f:ident) => {
            if all || which == $name {
                $f();
                ran = true;
            }
        };
    }
    run!("table2", table2);
    run!("table1", table1);
    run!("fig3_5", fig3_5);
    run!("fig9", fig9);
    run!("fig12", fig12);
    run!("fig13_14", fig13_14);
    run!("area45", area45);
    run!("area37", area37);
    run!("sweep_change", sweep_change);
    run!("sweep_contexts", sweep_contexts);
    run!("delay", delay);
    run!("power", power);
    run!("flow", flow);
    run!("fig12_adaptive", fig12_adaptive);
    run!("reconfig", reconfig);
    run!("faults", faults);
    run!("ablations", ablations);
    run!("temporal", temporal);
    run!("channel_width", channel_width);
    run!("sim", sim);
    run!("serve", serve);
    run!("serve_obs", serve_obs);
    run!("delta", delta);
    run!("probe", probe);
    run!("shard", shard);
    if !ran {
        eprintln!(
            "unknown experiment {which:?}; try: table1 table2 fig3_5 fig9 fig12 \
             fig12_adaptive fig13_14 area45 area37 sweep_change sweep_contexts \
             delay power flow reconfig faults ablations temporal channel_width \
             sim serve serve_obs delta probe shard all"
        );
        std::process::exit(2);
    }
}

/// Table 2: the context-ID encoding.
fn table2() {
    header("table2: context-ID encoding (paper Table 2)");
    for n in [4usize, 8] {
        let ctx = ContextId::new(n).unwrap();
        println!("{n} contexts, {} ID bits:", ctx.n_bits());
        print!("{}", ctx.table_string());
    }
}

/// Table 1: redundancy and regularity in real configuration data.
fn table1() {
    header("table1: redundancy/regularity in switch configuration data");
    println!("workload: 4 distinct circuits (adder, multiplier, ALU, popcount)");
    println!("compiled to one 4-context fabric; columns measured from routing.\n");
    let arch = ArchSpec::paper_default();
    let circuits = mixed_contexts();
    let dev = MultiDevice::compile(&arch, &circuits).expect("compile");
    let ctx = arch.context_id();
    let columns = dev.switch_usage().columns();

    // A Table 1-style excerpt: the first few switches of the bitstream.
    println!("sample rows (pattern written C3 C2 C1 C0, as in the paper):");
    println!("{:<8} {:<10} {:<24}", "switch", "pattern", "class");
    for (i, col) in columns.iter().take(10).enumerate() {
        println!(
            "G{:<7} {:<10} {:<24}",
            i + 1,
            col.pattern_string(),
            classify(*col, ctx).figure()
        );
    }
    let stats = ColumnSetStats::measure(&columns, ctx);
    println!("\nwhole-fabric statistics: {}", stats.table_string());
    println!(
        "-> duplicates (the G2 = G4 effect): {} of {} columns share an earlier pattern",
        stats.n_duplicate, stats.n_columns
    );

    // The paper's structural-redundancy claim on perturbed workloads.
    println!("\nstructure-preserving workloads (perturbation model, 5% change):");
    let w = workload(RandomNetlistParams::default(), 4, 0.05, 7);
    let dev = Device::compile(&arch, &w).expect("compile");
    let r = dev.report();
    println!("  LUT planes/position histogram: {:?}", r.plane_histogram);
    println!(
        "  mean planes {:.3} of 4; switch columns 100% constant (identical routes)",
        r.mean_planes
    );
}

/// Figures 3-5: the 16-pattern taxonomy and its frequencies.
fn fig3_5() {
    header("fig3_5: configuration-bit pattern classes (Figs. 3, 4, 5)");
    let ctx = ContextId::new(4).unwrap();
    println!("{:<9} {:<24} {:>7}", "pattern", "class", "SEs");
    for col in ConfigColumn::enumerate_all(4) {
        let class = classify(col, ctx);
        let ses = synthesize(col, ctx).cost().n_ses;
        println!(
            "{:<9} {:<24} {:>7}",
            col.pattern_string(),
            class.figure(),
            ses
        );
    }
    let (c, s, g) = mcfpga::config::pattern_census(ctx);
    println!("\ncensus: {c} constant / {s} single-bit / {g} general (paper: 2 / 4 / 10)");

    println!("\nclass probability vs change rate (analytic change model):");
    println!(
        "{:>6} {:>11} {:>12} {:>10}",
        "rate", "constant", "single-bit", "general"
    );
    for r in [0.0, 0.03, 0.05, 0.10, 0.25, 0.50] {
        let d = ColumnDistribution::new(ctx, r);
        let (pc, ps, pg) = d.class_probabilities();
        println!(
            "{:>5.0}% {:>10.1}% {:>11.1}% {:>9.1}%",
            r * 100.0,
            pc * 100.0,
            ps * 100.0,
            pg * 100.0
        );
    }
}

/// Figure 9: decoder synthesis cost per pattern.
fn fig9() {
    header("fig9: reconfigurable decoder synthesis (SE netlists)");
    let ctx = ContextId::new(4).unwrap();
    // The paper's example: (C3, C2, C1, C0) = (1, 0, 0, 0).
    let col = ConfigColumn::from_fn(4, |c| c == 3);
    let prog = synthesize(col, ctx);
    let cost = prog.cost();
    println!("pattern 1000 (the Fig. 9 example):");
    println!(
        "  {} SEs, {} pass stages, {} inverting controllers, mux depth {}",
        cost.n_ses, cost.n_pass_stages, cost.n_inverters, cost.depth
    );
    println!("  (paper: four SEs form the multiplexer)");
    for context in 0..4 {
        assert_eq!(prog.eval(ctx, context), col.value_in(context));
    }
    println!("  functional check: decoder output == column in every context  [ok]");

    println!("\nSE cost of every 4-context pattern (1 for Figs. 3/4, 4 for Fig. 5):");
    let mut by_cost = [0usize; 5];
    for col in ConfigColumn::enumerate_all(4) {
        by_cost[synthesize(col, ctx).cost().n_ses] += 1;
    }
    for (ses, count) in by_cost.iter().enumerate() {
        if *count > 0 {
            println!("  {count:>2} patterns cost {ses} SE(s)");
        }
    }

    println!("\ngeneralisation to 8 contexts (256 patterns):");
    let ctx8 = ContextId::new(8).unwrap();
    let mut hist = std::collections::BTreeMap::new();
    for mask in 0..256u32 {
        let col = ConfigColumn::from_mask(mask, 8);
        *hist
            .entry(synthesize(col, ctx8).cost().n_ses)
            .or_insert(0usize) += 1;
    }
    for (ses, count) in hist {
        println!("  {count:>3} patterns cost {ses} SE(s)");
    }
}

/// Figure 12: MCMG-LUT granularity modes and their mapping consequences.
fn fig12() {
    header("fig12: MCMG-LUT granularity (pool-preserving modes)");
    let g = LutGeometry::paper_default();
    println!(
        "bit pool: {} bits/output x {} outputs",
        g.pool_bits(),
        g.outputs
    );
    for m in g.modes() {
        println!(
            "  mode {m}: {} bits, {} plane-select ID bits",
            m.bits(),
            m.plane_select_bits()
        );
    }
    println!("(paper Fig. 12: 4-input x 4 planes <-> 5-input x 2 planes)");

    println!("\nmapped LUT count per circuit at each granularity:");
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>9}",
        "circuit", "k=4", "k=5", "k=6", "depth@6"
    );
    for circuit in suite() {
        let counts: Vec<usize> = [4usize, 5, 6]
            .iter()
            .map(|&k| map_netlist(&circuit, k).unwrap().luts.len())
            .collect();
        let depth = map_netlist(&circuit, 6).unwrap().depth();
        println!(
            "{:<12} {:>7} {:>7} {:>7} {:>9}",
            circuit.name(),
            counts[0],
            counts[1],
            counts[2],
            depth
        );
    }
    println!("\nlarger k (fewer planes) reduces LUT count: the trade the adaptive");
    println!("logic block makes automatically when contexts share functions.");
}

/// Figures 13-14: globally vs locally controlled MCMG-LUTs.
fn fig13_14() {
    header("fig13_14: globally vs locally controlled MCMG-LUTs");
    let opts = PackOptions::figure_13_14();
    let ctx2 = ContextId::new(2).unwrap();

    let dfgs = paper_example();
    let global = pack_global(&dfgs, &opts);
    let local = pack_local(&dfgs, &opts, ctx2);
    println!("the paper's own DFG (O1..O4, O2/O3 shared between contexts):");
    println!(
        "  global control: {} LUTs, {} stored planes   (paper Fig. 13: 3 LUTs)",
        global.n_luts, global.planes_stored
    );
    println!(
        "  local control:  {} LUTs, {} stored planes   (paper Fig. 14: 2 LUTs)",
        local.n_luts, local.planes_stored
    );

    println!("\ngenerated DFG families (2 contexts, 16 ops, varying sharing):");
    println!(
        "{:>9} {:>12} {:>12} {:>10}",
        "shared", "global LUTs", "local LUTs", "saving"
    );
    for share in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let fam = generated_family(2, 4, 16, share, 11);
        let g = pack_global(&fam, &opts);
        let l = pack_local(&fam, &opts, ctx2);
        println!(
            "{:>8.0}% {:>12} {:>12} {:>9.0}%",
            share * 100.0,
            g.n_luts,
            l.n_luts,
            100.0 * (1.0 - l.n_luts as f64 / g.n_luts as f64)
        );
    }

    println!("\n4-context families (pool 2^4, up to 4 planes):");
    let opts4 = PackOptions {
        geometry: LutGeometry {
            outputs: 1,
            min_inputs: 2,
            max_inputs: 4,
        },
        base_outputs: 1,
    };
    let ctx4 = ContextId::new(4).unwrap();
    println!(
        "{:>9} {:>12} {:>12} {:>10}",
        "shared", "global LUTs", "local LUTs", "saving"
    );
    for share in [0.0, 0.5, 1.0] {
        let fam = generated_family(4, 4, 12, share, 5);
        let g = pack_global(&fam, &opts4);
        let l = pack_local(&fam, &opts4, ctx4);
        println!(
            "{:>8.0}% {:>12} {:>12} {:>9.0}%",
            share * 100.0,
            g.n_luts,
            l.n_luts,
            100.0 * (1.0 - l.n_luts as f64 / g.n_luts as f64)
        );
    }
}

fn print_comparison(label: &str, cmp: &mcfpga::area::AreaComparison, paper: f64) {
    println!(
        "{label}: proposed/conventional = {:.3}  (paper: {paper:.2})",
        cmp.ratio
    );
    println!(
        "  switches: {:.0} vs {:.0} transistors/cell (ratio {:.3})",
        cmp.proposed_switches,
        cmp.conventional_switches,
        cmp.proposed_switches / cmp.conventional_switches
    );
    println!(
        "  logic:    {:.0} vs {:.0} transistors/cell (ratio {:.3})",
        cmp.proposed_lb,
        cmp.conventional_lb,
        cmp.proposed_lb / cmp.conventional_lb
    );
}

/// Section 5, CMOS: the 45% headline.
fn area45() {
    header("area45: Section 5 CMOS area comparison");
    println!("constraint: same context count (4); 6-input 2-output MCMG-LUTs;");
    println!("5% of configuration data changes between contexts.\n");
    let eval = evaluate_paper_point();
    print_comparison("CMOS", &eval.cmos, 0.45);

    // Cross-check against a measured compiled design.
    let arch = ArchSpec::paper_default();
    let w = workload(RandomNetlistParams::default(), 4, 0.05, 99);
    let dev = Device::compile(&arch, &w).expect("compile");
    let measured = measured_area_comparison(
        &dev,
        Technology::Cmos,
        &AreaParams::paper_default(),
        &FabricWeights::default(),
    );
    println!(
        "\nmeasured on a compiled 5%-change workload: ratio {:.3}",
        measured.ratio
    );
    println!("(structure-preserving workloads route identically, so their switch");
    println!(" columns are all constant and the measured ratio sits below analytic)");
}

/// Section 5, FePG: the 37% headline.
fn area37() {
    header("area37: Section 5 FePG area comparison");
    let eval = evaluate_paper_point();
    print_comparison("FePG", &eval.fepg, 0.37);
    println!("\nFePG switch elements merge logic and non-volatile storage at the");
    println!("device level; the paper scales an SE by 0.5 (Fig. 15), which we");
    println!("apply to every RCM SE including size controllers.");
}

/// Extension sweep: area ratio vs change rate.
fn sweep_change() {
    header("sweep_change: area ratio vs configuration change rate");
    let arch = ArchSpec::paper_default();
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    println!(
        "{:>6} {:>8} {:>8} {:>10}",
        "rate", "CMOS", "FePG", "E[SE/col]"
    );
    for r in [
        0.0, 0.01, 0.02, 0.03, 0.05, 0.08, 0.10, 0.15, 0.20, 0.30, 0.50,
    ] {
        let cmos = area_comparison(&arch, r, Technology::Cmos, &params, &weights);
        let fepg = area_comparison(&arch, r, Technology::Fepg, &params, &weights);
        let d = ColumnDistribution::new(arch.context_id(), r);
        println!(
            "{:>5.0}% {:>8.3} {:>8.3} {:>10.3}",
            r * 100.0,
            cmos.ratio,
            fepg.ratio,
            d.expected_ses()
        );
    }
    println!("\ncrossover: the RCM advantage erodes as redundancy disappears;");
    println!("past ~25-30% change the proposed switches cost more than fixed planes.");
}

/// Extension sweep: area ratio vs context count.
fn sweep_contexts() {
    header("sweep_contexts: area ratio vs context count (5% change)");
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    println!("{:>9} {:>8} {:>8}", "contexts", "CMOS", "FePG");
    for n in [2usize, 3, 4, 6, 8] {
        let arch = ArchSpec::paper_default().with_contexts(n);
        let cmos = area_comparison(&arch, 0.05, Technology::Cmos, &params, &weights);
        let fepg = area_comparison(&arch, 0.05, Technology::Fepg, &params, &weights);
        println!("{n:>9} {:>8.3} {:>8.3}", cmos.ratio, fepg.ratio);
    }
    println!("\nmore contexts amplify the saving: conventional planes scale with n,");
    println!("RCM decoders scale with how often bits actually change.");
}

/// Figures 10-11: double-length lines vs serial-SE routing.
fn delay() {
    header("delay: double-length lines (Figs. 10-11)");
    let p = DelayParams::default();
    println!("analytic path delay (units), serial SEs vs with double-length lines:");
    println!(
        "{:>7} {:>10} {:>12} {:>9}",
        "cells", "serial", "double-len", "speedup"
    );
    for cells in [1usize, 2, 4, 6, 8, 12, 16] {
        let serial = routing_delay(cells, false, &p);
        let fast = routing_delay(cells, true, &p);
        println!(
            "{cells:>7} {serial:>10.1} {fast:>12.1} {:>8.2}x",
            serial / fast
        );
    }

    println!("\nmeasured on routed circuits (critical routed path, same placement seed):");
    println!(
        "{:<12} {:>12} {:>14}",
        "circuit", "no DL lines", "with DL lines"
    );
    for circuit in [library::adder(8), library::multiplier(3), library::alu(4)] {
        let mut no_dl = ArchSpec::paper_default();
        no_dl.routing.double_length_tracks = 0;
        let with_dl = ArchSpec::paper_default();
        let d = |arch: &ArchSpec| -> f64 {
            let dev = MultiDevice::compile(arch, std::slice::from_ref(&circuit)).expect("compile");
            dev.critical_delay()
        };
        println!(
            "{:<12} {:>12.1} {:>14.1}",
            circuit.name(),
            d(&no_dl),
            d(&with_dl)
        );
    }

    println!("\ncontext-switch decode latency (ID distribution + decoder settle):");
    for (label, depth) in [
        ("constant/single-bit (common)", 0usize),
        ("general 4-ctx", 1),
        ("general 8-ctx", 2),
    ] {
        println!("  {label}: {:.1} units", context_switch_delay(depth, &p));
    }
}

/// Static power comparison.
fn power() {
    header("power: static configuration-storage power");
    let arch = ArchSpec::paper_default();
    let weights = FabricWeights::default();
    let pp = PowerParams::default();
    println!(
        "{:>10} {:>14} {:>12} {:>8}",
        "tech", "conventional", "proposed", "ratio"
    );
    for (label, tech) in [("CMOS", Technology::Cmos), ("FePG", Technology::Fepg)] {
        let rep = static_power(&arch, 0.05, tech, &pp, &weights);
        println!(
            "{label:>10} {:>14.1} {:>12.1} {:>8.3}",
            rep.conventional, rep.proposed, rep.ratio
        );
    }
    println!("\nFePG storage is non-volatile: switch-block leakage vanishes entirely.");
}

/// End-to-end flow sanity: compile + simulate + verify the whole suite.
fn flow() {
    header("flow: end-to-end compile + equivalence over the circuit suite");
    let arch = ArchSpec::paper_default();
    println!(
        "{:<12} {:>6} {:>6} {:>8} {:>9} {:>10}",
        "circuit", "LUTs", "LBs", "planes", "ctrl SEs", "verified"
    );
    for circuit in suite() {
        let contexts = vec![circuit.clone(); 4];
        let mut dev = match Device::compile(&arch, &contexts) {
            Ok(d) => d,
            Err(e) => {
                println!("{:<12} failed: {e}", circuit.name());
                continue;
            }
        };
        dev.check_routing().expect("connectivity");
        let r = dev.report();
        let ok = check_device_equivalence(&mut dev, &contexts, 40, 1).is_ok();
        println!(
            "{:<12} {:>6} {:>6} {:>8.2} {:>9} {:>10}",
            circuit.name(),
            r.n_luts,
            r.n_lbs,
            r.mean_planes,
            r.controller_ses,
            if ok { "ok" } else { "FAIL" }
        );
        assert!(ok, "{} failed equivalence", circuit.name());
    }
    println!("\nmixed 4-circuit device (adder/multiplier/ALU/popcount):");
    let circuits = mixed_contexts();
    let rec = Recorder::enabled();
    let outcome = mcfpga::flow::Flow::builder()
        .recorder(&rec)
        .sim_cycles(25)
        .run(&arch, &circuits)
        .expect("instrumented flow");
    outcome.device.check_routing().expect("connectivity");
    let stats =
        ColumnSetStats::measure(&outcome.device.switch_usage().columns(), arch.context_id());
    println!("  switch columns: {}", stats.table_string());

    // Serial vs parallel compile wall-clock on the same 4-context suite:
    // interleaved trials, best of 5 each (the compiled devices are
    // bit-for-bit identical, so only the schedule differs). The parallel
    // fan-out is capped at the machine's available parallelism; on a
    // single-core host both schedules run the same code.
    let time_compile = |parallel: bool| -> u64 {
        let opts = mcfpga::sim::CompileOptions::default().with_parallel(parallel);
        let start = std::time::Instant::now();
        MultiDevice::compile_opts(&arch, &circuits, &opts, &Recorder::disabled()).expect("compile");
        start.elapsed().as_micros() as u64
    };
    let mut compile_serial_us = u64::MAX;
    let mut compile_parallel_us = u64::MAX;
    for _ in 0..5 {
        compile_serial_us = compile_serial_us.min(time_compile(false));
        compile_parallel_us = compile_parallel_us.min(time_compile(true));
    }
    let workers = mcfpga::sim::CompileOptions::default().resolved_workers(circuits.len());
    println!(
        "\ncompile wall-clock (best of 5): serial {:.3} ms, parallel {:.3} ms \
         ({:.2}x across {workers} worker thread(s))",
        compile_serial_us as f64 / 1000.0,
        compile_parallel_us as f64 / 1000.0,
        compile_serial_us as f64 / compile_parallel_us.max(1) as f64,
    );

    // Phase timings + headline metrics, human-readable and as BENCH_flow.json.
    let report = &outcome.report;
    println!("\nphase timings (wall clock):");
    println!("  {:<14} {:>12}", "phase", "total");
    for phase in [
        "map",
        "place",
        "route",
        "columns",
        "logic_blocks",
        "rcm",
        "sim",
        "area",
    ] {
        println!(
            "  {:<14} {:>9.3} ms",
            phase,
            report.span_total_us(phase) as f64 / 1000.0
        );
    }
    println!(
        "  route iterations {}   anneal steps {}   columns synthesized {}   \
         context switches {}",
        report.counter("route.iterations"),
        report.counter("anneal.temperature_steps"),
        report.counter("rcm.columns_synthesized"),
        report.counter("sim.context_switches"),
    );
    let paper = evaluate_paper_point();

    // The mixed suite's four *unrelated* circuits change most switch columns
    // between contexts (~56%), far above the paper's 5% headline assumption,
    // so its area ratio is naturally worse than conventional. A
    // structure-preserving 5%-change workload — the paper's intended
    // operating regime — is measured alongside so both points are labeled.
    let structured = workload(RandomNetlistParams::default(), 4, 0.05, 99);
    let structured_dev = Device::compile(&arch, &structured).expect("structured compile");
    let structured_change =
        ColumnSetStats::measure(&structured_dev.switch_usage().columns(), arch.context_id())
            .change_rate;
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    let structured_cmos =
        measured_area_comparison(&structured_dev, Technology::Cmos, &params, &weights);
    let structured_fepg =
        measured_area_comparison(&structured_dev, Technology::Fepg, &params, &weights);

    println!("\narea points (proposed/conventional, lower is better):");
    println!(
        "  mixed-4-circuits       ({:>4.1}% measured change): CMOS {:.3}  FePG {:.3}",
        100.0 * stats.change_rate,
        outcome.cmos.ratio,
        outcome.fepg.ratio
    );
    println!("    ^ four unrelated circuits: most switch columns differ across");
    println!("      contexts, so RCM decoders cost more than fixed planes here.");
    println!(
        "  structured-5pct-change ({:>4.1}% measured change): CMOS {:.3}  FePG {:.3}",
        100.0 * structured_change,
        structured_cmos.ratio,
        structured_fepg.ratio
    );
    println!("    ^ structure-preserving workload, 5% perturbation between");
    println!("      contexts: the paper's intended operating regime.");
    println!(
        "  paper-headline-5pct    (analytic model at   5%): CMOS {:.3}  FePG {:.3}",
        paper.cmos.ratio, paper.fepg.ratio
    );

    let area_points = vec![
        AreaPoint {
            label: "mixed-4-circuits".into(),
            change_rate: stats.change_rate,
            cmos_ratio: outcome.cmos.ratio,
            fepg_ratio: outcome.fepg.ratio,
            note: "four unrelated circuits (adder/multiplier/ALU/popcount): most \
                   switch columns differ across contexts, far above the paper's \
                   5% headline assumption, so the ratio exceeds 1.0 by design"
                .into(),
        },
        AreaPoint {
            label: "structured-5pct-change".into(),
            change_rate: structured_change,
            cmos_ratio: structured_cmos.ratio,
            fepg_ratio: structured_fepg.ratio,
            note: "structure-preserving workload with 5% perturbation between \
                   contexts, measured on the compiled device: the paper's \
                   intended operating regime"
                .into(),
        },
        AreaPoint {
            label: "paper-headline-5pct".into(),
            change_rate: 0.05,
            cmos_ratio: paper.cmos.ratio,
            fepg_ratio: paper.fepg.ratio,
            note: "the analytic Section 5 point: 4 contexts, 5% configuration \
                   change (paper: CMOS 0.45, FePG 0.37)"
                .into(),
        },
    ];

    let bench = FlowBench {
        experiment: "flow".into(),
        cmos_ratio: outcome.cmos.ratio,
        fepg_ratio: outcome.fepg.ratio,
        headline_cmos_ratio: paper.cmos.ratio,
        headline_fepg_ratio: paper.fepg.ratio,
        change_rate: report.gauge("area.change_rate").unwrap_or(0.0),
        compile_serial_us,
        compile_parallel_us,
        parallelism: report.gauge("flow.parallelism").unwrap_or(1.0),
        area_points,
        phase_totals_us: [
            "map",
            "place",
            "route",
            "columns",
            "logic_blocks",
            "rcm",
            "sim",
            "area",
        ]
        .iter()
        .map(|p| PhaseTotal {
            phase: p.to_string(),
            total_us: report.span_total_us(p),
        })
        .collect(),
        report: report.clone(),
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize flow bench");
    std::fs::write("BENCH_flow.json", &json).expect("write BENCH_flow.json");
    println!("\nwrote BENCH_flow.json ({} bytes)", json.len());

    // Chrome/Perfetto trace of the instrumented run: phase spans plus the
    // per-context-switch, per-route-iteration, and per-anneal-step events.
    // Load it in chrome://tracing or https://ui.perfetto.dev.
    let trace = rec.chrome_trace_json();
    std::fs::write("BENCH_flow_trace.json", &trace).expect("write BENCH_flow_trace.json");
    println!(
        "wrote BENCH_flow_trace.json ({} bytes, {} events, {} dropped)",
        trace.len(),
        rec.trace_events().len(),
        rec.trace_dropped()
    );
    if let Some(r) = &report.reconfig {
        println!(
            "reconfig telemetry: {} switches, mean change rate {:.4}, \
             columns {} = {} constant + {} single-bit + {} general, {} SEs",
            r.n_switches,
            r.mean_change_rate,
            r.n_columns,
            r.n_constant,
            r.n_single_bit,
            r.n_general,
            r.se_cost_total
        );
    }
}

/// Machine-readable record of the instrumented end-to-end run: headline area
/// ratios plus the full span/metric report (`BENCH_flow.json`).
#[derive(serde::Serialize)]
struct FlowBench {
    experiment: String,
    /// Measured on the compiled mixed workload (its real change rate).
    cmos_ratio: f64,
    fepg_ratio: f64,
    /// The paper's Section 5 point: 4 contexts, 5% configuration change.
    headline_cmos_ratio: f64,
    headline_fepg_ratio: f64,
    change_rate: f64,
    /// Compile wall-clock on the 4-context suite, best of 3, per schedule.
    compile_serial_us: u64,
    compile_parallel_us: u64,
    /// Contexts fanned out across threads by the parallel compile.
    parallelism: f64,
    /// Labeled area points: the mixed suite (measured), the
    /// structure-preserving 5%-change workload (measured), and the paper's
    /// analytic headline.
    area_points: Vec<AreaPoint>,
    phase_totals_us: Vec<PhaseTotal>,
    report: RunReport,
}

#[derive(serde::Serialize)]
struct AreaPoint {
    label: String,
    change_rate: f64,
    cmos_ratio: f64,
    fepg_ratio: f64,
    note: String,
}

#[derive(serde::Serialize)]
struct PhaseTotal {
    phase: String,
    total_us: u64,
}

/// Adaptive granularity in the compile flow: the Fig. 12 trade made
/// automatically per workload.
fn fig12_adaptive() {
    header("fig12_adaptive: automatic granularity selection");
    let arch = ArchSpec::paper_default();
    println!("identical contexts (full sharing) vs divergent workloads:\n");
    println!(
        "{:<26} {:>7} {:>9} {:>9}",
        "workload", "chosen k", "LUTs", "LUTs@k=4"
    );
    for circuit in [
        library::alu(4),
        library::multiplier(3),
        library::fir4(4, [1, 2, 1, 0]),
    ] {
        let contexts = vec![circuit.clone(); 4];
        let adaptive = Device::compile_adaptive(&arch, &contexts).expect("compile");
        let fixed = Device::compile(&arch, &contexts).expect("compile");
        println!(
            "{:<26} {:>7} {:>9} {:>9}",
            format!("{} x4 (shared)", circuit.name()),
            adaptive.report().granularity,
            adaptive.report().n_luts,
            fixed.report().n_luts
        );
    }
    for rate in [0.05, 0.5] {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 50,
                n_outputs: 5,
                dff_fraction: 0.0,
            },
            4,
            rate,
            3,
        );
        let adaptive = Device::compile_adaptive(&arch, &w).expect("compile");
        let fixed = Device::compile(&arch, &w).expect("compile");
        println!(
            "{:<26} {:>7} {:>9} {:>9}",
            format!("random, {:.0}% change", rate * 100.0),
            adaptive.report().granularity,
            adaptive.report().n_luts,
            fixed.report().n_luts
        );
    }
    println!("\nshared workloads climb to 6-input single-plane LUTs (fewest LUTs);");
    println!("divergent ones fall back towards 4-input 4-plane mode.");
}

/// Reconfiguration-time model (the paper's reference \[4\]).
fn reconfig() {
    use mcfpga::config::{plan_reload, ReconfigModel};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    header("reconfig: delta context loading (Kennedy FPL'03, ref [4])");
    let model = ReconfigModel::default();
    let mut rng = StdRng::seed_from_u64(12);
    let n_bits = 64 * 1024;
    let old: Vec<bool> = (0..n_bits).map(|_| rng.gen_bool(0.5)).collect();
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "change", "full cyc", "delta cyc", "speedup"
    );
    for rate in [0.0f64, 0.01, 0.03, 0.05, 0.10, 0.25, 1.0] {
        // Cluster the changes in 32-bit words (structural redundancy: whole
        // switch columns change together).
        let mut new = old.clone();
        let words = n_bits / 32;
        let dirty = (words as f64 * rate) as usize;
        for w in 0..dirty {
            let base = (w * words / dirty.max(1)) % words * 32;
            for b in &mut new[base..base + 32] {
                *b = !*b;
            }
        }
        let plan = plan_reload(&old, &new, &model);
        let speed = if plan.delta_cycles == 0 {
            "inf".to_string()
        } else {
            format!("{:.1}x", plan.speedup())
        };
        println!(
            "{:>7.0}% {:>12} {:>12} {:>10}",
            rate * 100.0,
            plan.full_cycles,
            plan.delta_cycles,
            speed
        );
    }
    println!("\nat the paper's ~5% structural change, delta loading is ~10x faster");
    println!("than a full reload: background context swapping is cheap.");
}

/// Fault-injection campaign on the compiled fabric.
fn faults() {
    use mcfpga::sim::lut_fault_campaign;
    header("faults: configuration-upset campaign on the compiled fabric");
    let arch = ArchSpec::paper_default();
    let w = workload(
        RandomNetlistParams {
            n_inputs: 6,
            n_gates: 40,
            n_outputs: 6,
            dff_fraction: 0.0,
        },
        4,
        0.1,
        77,
    );
    let mut dev = Device::compile(&arch, &w).expect("compile");
    let report = lut_fault_campaign(&mut dev, &w, 60, 150, 42);
    println!(
        "injected {} single-bit LUT upsets, {} detected by randomized",
        report.injected, report.detected
    );
    println!(
        "equivalence ({} silent: dormant planes / don't-care assignments)",
        report.silent
    );
    println!("detection rate: {:.0}%", 100.0 * report.detection_rate());
    println!("\nupsets in RCM decoders or routing state are structural: the");
    println!("connectivity re-derivation (Device::check_routing) finds them");
    println!("without stimulus.");
}

/// Bit-parallel compiled simulation: 64 vectors per word through the fabric
/// model, measured against the scalar interpreter (`BENCH_sim.json`).
fn sim() {
    use mcfpga::sim::{lut_fault_campaign, KernelOptions, LANES, SUPPORTED_WIDTHS};
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    // `experiments sim --optimize` reruns the whole experiment with the
    // kernel optimizer on for the *main* batched pass too (the matrix below
    // always sweeps both settings) and writes BENCH_sim_opt.json, so the
    // gated BENCH_sim.json artifact keeps its optimizer-off main path.
    let optimize_main = std::env::args().any(|a| a == "--optimize");
    header("sim: bit-parallel compiled kernel (64 vectors per word)");
    let arch = ArchSpec::paper_default();
    let circuits = mixed_contexts();
    // The scalar pass below packs a single register file's outputs into
    // lanes, which is only meaningful when the suite carries no state.
    for c in &circuits {
        assert!(
            c.initial_state().bits.is_empty(),
            "mixed suite must be combinational"
        );
    }
    let rec = Recorder::enabled();
    let mut dev = MultiDevice::compile_with(&arch, &circuits, &rec).expect("compile");
    dev.set_kernel_options(KernelOptions::new().with_optimize(optimize_main));
    let n_ctx = circuits.len();
    let arity: Vec<usize> = circuits.iter().map(|c| c.inputs().len()).collect();

    // One deterministic schedule drives both paths: context switches at
    // word boundaries, 64 independent random vectors per word.
    let words = 512usize;
    let mut rng = StdRng::seed_from_u64(2027);
    let mut context = 0usize;
    let schedule: Vec<(usize, Vec<u64>)> = (0..words)
        .map(|_| {
            if rng.gen_bool(0.3) {
                context = rng.gen_range(0..n_ctx);
            }
            (
                context,
                (0..arity[context]).map(|_| rng.next_u64()).collect(),
            )
        })
        .collect();

    // Scalar pass: every lane of every word, one vector per interpreted
    // step. The per-lane outputs are packed back into words so the batched
    // pass can be checked bit-for-bit against them.
    dev.reset();
    let mut bits: Vec<bool> = Vec::new();
    let scalar_start = std::time::Instant::now();
    let scalar_words: Vec<Vec<u64>> = schedule
        .iter()
        .map(|(c, inputs)| {
            dev.switch_context(*c);
            let mut packed: Vec<u64> = Vec::new();
            for lane in 0..LANES {
                bits.clear();
                bits.extend(inputs.iter().map(|w| (w >> lane) & 1 == 1));
                let out = dev.step(&bits);
                if lane == 0 {
                    packed = vec![0u64; out.len()];
                }
                for (w, &b) in packed.iter_mut().zip(&out) {
                    *w |= (b as u64) << lane;
                }
            }
            packed
        })
        .collect();
    let scalar_us = scalar_start.elapsed().as_micros().max(1) as u64;

    // Batched passes over the same words. The first pass is cross-checked
    // against the packed scalar outputs; the repeats amortise timer
    // resolution (a single kernel pass is clock noise).
    let repeats = 16usize;
    dev.reset();
    let batched_start = std::time::Instant::now();
    for rep in 0..repeats {
        for (word, (c, inputs)) in schedule.iter().enumerate() {
            dev.switch_context(*c);
            let out = dev.step_batch(inputs);
            if rep == 0 {
                assert_eq!(
                    out, scalar_words[word],
                    "batched output diverged from packed scalar lanes at word {word}"
                );
            }
        }
    }
    let batched_us = batched_start.elapsed().as_micros().max(1) as u64;

    let vectors = (words * LANES) as u64;
    let scalar_vectors_per_sec = vectors as f64 / (scalar_us as f64 / 1e6);
    let batched_vectors_per_sec = (vectors * repeats as u64) as f64 / (batched_us as f64 / 1e6);
    let batched_words_per_sec = batched_vectors_per_sec / LANES as f64;
    let speedup = batched_vectors_per_sec / scalar_vectors_per_sec;
    rec.set_gauge("sim.scalar_vectors_per_sec", scalar_vectors_per_sec);
    rec.set_gauge("sim.batched_vectors_per_sec", batched_vectors_per_sec);
    rec.set_gauge("sim.batch_speedup", speedup);

    println!("mixed 4-context workload, {words} words x {LANES} lanes = {vectors} vectors:");
    println!(
        "  scalar:  {:>10.3} ms  {:>14.0} vectors/s  ({:.0} cycles/s)",
        scalar_us as f64 / 1e3,
        scalar_vectors_per_sec,
        scalar_vectors_per_sec,
    );
    println!(
        "  batched: {:>10.3} ms  {:>14.0} vectors/s  ({:.0} words/s, {repeats} passes)",
        batched_us as f64 / 1e3 / repeats as f64,
        batched_vectors_per_sec,
        batched_words_per_sec,
    );
    println!("  speedup: {speedup:.1}x  (first batched pass verified against scalar lanes)");

    // Throughput matrix: the streaming runner swept over optimizer setting,
    // chunk width, and thread count. Every cell is verified word-for-word
    // against the width-1 unoptimized serial reference before it is timed;
    // the reference itself is checked against the (scalar-verified) batched
    // step path on every chunk and against true scalar replays on the
    // leading chunks, all 64 lanes.
    let n_total = 2048usize; // narrow chunks per context; divisible by 8
    let mut mrng = StdRng::seed_from_u64(4021);
    let narrow: Vec<Vec<u64>> = (0..n_ctx)
        .map(|c| (0..n_total * arity[c]).map(|_| mrng.next_u64()).collect())
        .collect();
    dev.set_kernel_options(KernelOptions::new());
    let refs: Vec<Vec<u64>> = (0..n_ctx)
        .map(|c| dev.run_throughput(c, &narrow[c], 1, 1))
        .collect();
    let n_outs: Vec<usize> = refs.iter().map(|r| r.len() / n_total).collect();
    let mut reference_divergences = 0usize;
    for c in 0..n_ctx {
        dev.switch_context(c);
        for t in 0..n_total {
            let out = dev.step_batch(&narrow[c][t * arity[c]..][..arity[c]]);
            for (o, &w) in out.iter().enumerate() {
                if refs[c][t * n_outs[c] + o] != w {
                    reference_divergences += 1;
                }
            }
        }
        for t in 0..16 {
            for lane in 0..LANES {
                let bits: Vec<bool> = (0..arity[c])
                    .map(|i| (narrow[c][t * arity[c] + i] >> lane) & 1 == 1)
                    .collect();
                let out = dev.step(&bits);
                for (o, &b) in out.iter().enumerate() {
                    if ((refs[c][t * n_outs[c] + o] >> lane) & 1 == 1) != b {
                        reference_divergences += 1;
                    }
                }
            }
        }
    }
    assert_eq!(
        reference_divergences, 0,
        "width-1 reference diverged from the scalar/batched paths"
    );

    println!("\nthroughput matrix ({n_total} chunks/context, every cell verified, 0 = exact):");
    println!(
        "  {:<9} {:>5} {:>7} {:>10} {:>16} {:>11}",
        "optimizer", "width", "threads", "wall ms", "vectors/s", "divergences"
    );
    let m_repeats = 4usize;
    let mut matrix: Vec<SimMatrixCell> = Vec::new();
    for optimize in [false, true] {
        dev.set_kernel_options(KernelOptions::new().with_optimize(optimize));
        for &width in SUPPORTED_WIDTHS {
            // Interleave: narrow chunk `t*width + w` becomes word `w` of
            // wide chunk `t` — with a combinational suite every chunk word
            // is an independent stream, so this re-chunking is exact.
            let wide: Vec<Vec<u64>> = (0..n_ctx)
                .map(|c| {
                    let ni = arity[c];
                    let mut v = vec![0u64; n_total * ni];
                    for t in 0..n_total / width {
                        for i in 0..ni {
                            for w in 0..width {
                                v[(t * ni + i) * width + w] = narrow[c][(t * width + w) * ni + i];
                            }
                        }
                    }
                    v
                })
                .collect();
            for threads in [1usize, 2] {
                // Verification pass; also warms this cell's kernel variant.
                let mut divergences = 0usize;
                for c in 0..n_ctx {
                    let out = dev.run_throughput(c, &wide[c], width, threads);
                    for t in 0..n_total / width {
                        for o in 0..n_outs[c] {
                            for w in 0..width {
                                if out[(t * n_outs[c] + o) * width + w]
                                    != refs[c][(t * width + w) * n_outs[c] + o]
                                {
                                    divergences += 1;
                                }
                            }
                        }
                    }
                }
                let start = std::time::Instant::now();
                for _ in 0..m_repeats {
                    for (c, wide_c) in wide.iter().enumerate() {
                        let _ = dev.run_throughput(c, wide_c, width, threads);
                    }
                }
                let wall_us = start.elapsed().as_micros().max(1) as u64;
                let cell_vectors = (n_total * LANES * n_ctx * m_repeats) as u64;
                let vectors_per_sec = cell_vectors as f64 / (wall_us as f64 / 1e6);
                println!(
                    "  {:<9} {:>5} {:>7} {:>10.3} {:>16.0} {:>11}",
                    if optimize { "on" } else { "off" },
                    width,
                    threads,
                    wall_us as f64 / 1e3,
                    vectors_per_sec,
                    divergences
                );
                matrix.push(SimMatrixCell {
                    optimize,
                    width,
                    threads,
                    chunks_per_context: n_total,
                    repeats: m_repeats,
                    wall_us,
                    vectors: cell_vectors,
                    vectors_per_sec,
                    divergences,
                });
            }
        }
    }
    let matrix_best_vectors_per_sec = matrix
        .iter()
        .map(|c| c.vectors_per_sec)
        .fold(0.0f64, f64::max);
    rec.set_gauge(
        "sim.matrix_best_vectors_per_sec",
        matrix_best_vectors_per_sec,
    );
    println!(
        "  best: {:.0} vectors/s ({:.1}x the step-batch path)",
        matrix_best_vectors_per_sec,
        matrix_best_vectors_per_sec / batched_vectors_per_sec
    );

    // Per-context optimizer effect on the compiled instruction streams.
    let optimizer: Vec<SimOptimizerCell> = (0..n_ctx)
        .map(|c| {
            let s = dev.kernel_optimize_stats(c).expect("context exists");
            SimOptimizerCell {
                context: c,
                instrs_before: s.instrs_before,
                instrs_after: s.instrs_after,
                word_ops_before: s.word_ops_before,
                word_ops_after: s.word_ops_after,
                folded_operands: s.folded_operands,
                deduped: s.deduped,
                dead: s.dead,
                specialized: s.specialized,
            }
        })
        .collect();
    println!("\nkernel optimizer (per context):");
    for s in &optimizer {
        println!(
            "  ctx {}: instrs {} -> {}, word-ops {} -> {} ({} folded operands, \
             {} deduped, {} dead, {} specialized)",
            s.context,
            s.instrs_before,
            s.instrs_after,
            s.word_ops_before,
            s.word_ops_after,
            s.folded_operands,
            s.deduped,
            s.dead,
            s.specialized
        );
    }
    dev.set_kernel_options(KernelOptions::new().with_optimize(optimize_main));

    // Fault-campaign wall time: the `faults` experiment's exact campaign,
    // now running on per-fault kernel clones fanned across the worker pool.
    let w = workload(
        RandomNetlistParams {
            n_inputs: 6,
            n_gates: 40,
            n_outputs: 6,
            dff_fraction: 0.0,
        },
        4,
        0.1,
        77,
    );
    let mut fault_dev = Device::compile(&arch, &w).expect("compile");
    fault_dev.attach_recorder(&rec);
    let campaign_start = std::time::Instant::now();
    let campaign = lut_fault_campaign(&mut fault_dev, &w, 60, 150, 42);
    let fault_campaign_ms = campaign_start.elapsed().as_secs_f64() * 1e3;
    println!(
        "\nfault campaign: {} upsets x {} words ({} vectors each) in {:.1} ms, \
         {:.0}% detected",
        campaign.injected,
        150,
        150 * LANES,
        fault_campaign_ms,
        100.0 * campaign.detection_rate()
    );

    let bench = SimBench {
        experiment: "sim".into(),
        words,
        lanes: LANES,
        vectors,
        batched_repeats: repeats,
        kernel_optimize: optimize_main,
        scalar_us,
        batched_us,
        scalar_vectors_per_sec,
        batched_vectors_per_sec,
        batched_words_per_sec,
        speedup,
        matrix,
        matrix_best_vectors_per_sec,
        reference_divergences,
        optimizer,
        fault_campaign_ms,
        fault_injected: campaign.injected,
        fault_detected: campaign.detected,
        fault_silent: campaign.silent,
        fault_detection_rate: campaign.detection_rate(),
        report: rec.report("sim"),
    };
    let out_file = if optimize_main {
        "BENCH_sim_opt.json"
    } else {
        "BENCH_sim.json"
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize sim bench");
    std::fs::write(out_file, &json).expect("write sim bench json");
    println!("\nwrote {out_file} ({} bytes)", json.len());
}

/// Machine-readable record of the batched-simulation benchmark
/// (`BENCH_sim.json`): scalar vs 64-lane kernel throughput on the mixed
/// 4-context workload, plus the kernel-based fault-campaign wall time.
#[derive(serde::Serialize)]
struct SimBench {
    experiment: String,
    /// Word-steps in the shared schedule; each word carries `lanes` vectors.
    words: usize,
    lanes: usize,
    vectors: u64,
    /// Timed batched passes over the schedule (the first is verified
    /// bit-for-bit against the scalar outputs).
    batched_repeats: usize,
    /// Whether the *main* scalar/batched passes above ran with the kernel
    /// optimizer on (`experiments sim --optimize`, written to
    /// BENCH_sim_opt.json). The matrix always sweeps both settings.
    kernel_optimize: bool,
    scalar_us: u64,
    batched_us: u64,
    /// Scalar steps are one vector per cycle, so this is also cycles/sec.
    scalar_vectors_per_sec: f64,
    batched_vectors_per_sec: f64,
    /// Kernel word-steps per second (vectors/sec divided by the lane count).
    batched_words_per_sec: f64,
    speedup: f64,
    /// Streaming-runner cells: optimizer x chunk width x threads, each
    /// verified word-for-word against the width-1 unoptimized reference.
    matrix: Vec<SimMatrixCell>,
    matrix_best_vectors_per_sec: f64,
    /// Mismatches of the width-1 reference against the batched step path
    /// (every chunk) and true scalar replays (leading chunks); gated to 0.
    reference_divergences: usize,
    /// Per-context optimizer effect on the compiled instruction streams.
    optimizer: Vec<SimOptimizerCell>,
    fault_campaign_ms: f64,
    fault_injected: usize,
    fault_detected: usize,
    fault_silent: usize,
    fault_detection_rate: f64,
    report: RunReport,
}

/// One throughput-matrix cell of `BENCH_sim.json`: the streaming runner
/// over the mixed suite at a fixed (optimizer, width, threads) setting.
#[derive(serde::Serialize)]
struct SimMatrixCell {
    optimize: bool,
    /// Chunk width in words: 64·width stimulus lanes per step.
    width: usize,
    threads: usize,
    /// Width-1 chunk count per context; a width-W cell runs `.. / W` chunks
    /// over the same re-chunked streams, so vectors are constant per cell.
    chunks_per_context: usize,
    repeats: usize,
    wall_us: u64,
    vectors: u64,
    vectors_per_sec: f64,
    /// Output words differing from the width-1 unoptimized reference
    /// (checked before timing); gated to 0.
    divergences: usize,
}

/// Per-context kernel-optimizer statistics in `BENCH_sim.json`: exact
/// instruction and word-op counts before/after, by pass.
#[derive(serde::Serialize)]
struct SimOptimizerCell {
    context: usize,
    instrs_before: usize,
    instrs_after: usize,
    word_ops_before: usize,
    word_ops_after: usize,
    folded_operands: usize,
    deduped: usize,
    dead: usize,
    specialized: usize,
}

/// The multi-tenant serving benchmark: compile-job throughput vs worker
/// count, cache behaviour under repeat submission, and concurrent sim
/// serving verified against private replays (`BENCH_serve.json`).
fn serve() {
    use mcfpga_serve::{CompileJob, ServeConfig, Server, SimJob};

    header("serve: multi-tenant job serving over the flow + batched kernel");
    let arch = ArchSpec::paper_default();
    // Compile inside jobs stays serial: the serve worker pool is the
    // parallelism under measurement, and nesting the per-context fan-out
    // under it would oversubscribe the machine.
    let opts = CompileOptions::default().with_parallel(false);
    let available_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    // 12 content-distinct compile jobs: 4 rotations of the mixed 4-context
    // suite, 4 adjacent pairs, and the 4 singles.
    let base = mixed_contexts();
    let mut job_sets: Vec<Vec<Netlist>> = Vec::new();
    for r in 0..4 {
        let mut rot = base.clone();
        rot.rotate_left(r);
        job_sets.push(rot);
    }
    for i in 0..4 {
        job_sets.push(vec![base[i].clone(), base[(i + 1) % 4].clone()]);
    }
    for c in &base {
        job_sets.push(vec![c.clone()]);
    }
    let jobs = job_sets.len();

    // Phase 1: open-loop cold-cache throughput at 1 and 4 workers. Every
    // job is submitted up front; the pool drains the queue.
    let submit_all = |server: &Server| -> Vec<_> {
        job_sets
            .iter()
            .map(|set| {
                server
                    .submit_compile(CompileJob::new(arch.clone(), set.clone()).with_options(opts))
                    .expect("queue sized for the full job set")
            })
            .collect()
    };
    let mut cold_elapsed_us = [0u64; 2];
    let mut scaling_server = None;
    for (slot, workers) in [(0usize, 1usize), (1, 4)] {
        let rec = Recorder::enabled();
        let server = Server::with_recorder(
            ServeConfig::default()
                .with_workers(workers)
                .with_queue_capacity(2 * jobs),
            &rec,
        );
        let start = std::time::Instant::now();
        let mut hits = 0usize;
        for handle in submit_all(&server) {
            if handle.wait().expect("cold job completes").cache_hit {
                hits += 1;
            }
        }
        cold_elapsed_us[slot] = start.elapsed().as_micros() as u64;
        assert_eq!(hits, 0, "cold cache cannot hit");
        if workers == 4 {
            scaling_server = Some(server);
        }
    }
    let throughput = |us: u64| jobs as f64 / (us as f64 / 1e6);
    let throughput_jobs_per_sec_1w = throughput(cold_elapsed_us[0]);
    let throughput_jobs_per_sec_4w = throughput(cold_elapsed_us[1]);
    let scaling_1_to_4 = throughput_jobs_per_sec_4w / throughput_jobs_per_sec_1w;
    println!(
        "cold compile throughput over {jobs} distinct jobs \
         (available parallelism {available_parallelism}):"
    );
    println!("  1 worker:  {throughput_jobs_per_sec_1w:>8.2} jobs/s");
    println!("  4 workers: {throughput_jobs_per_sec_4w:>8.2} jobs/s  ({scaling_1_to_4:.2}x)");

    // Phase 2: resubmit the identical job set to the warm 4-worker server —
    // every job must come out of the content-addressed cache.
    let warm = scaling_server.expect("4-worker server kept");
    let start = std::time::Instant::now();
    let handles = submit_all(&warm);
    let outcomes: Vec<_> = handles
        .into_iter()
        .map(|h| h.wait().expect("repeat job completes"))
        .collect();
    let repeat_elapsed_us = start.elapsed().as_micros() as u64;
    let repeat_hits = outcomes.iter().filter(|o| o.cache_hit).count();
    let repeat_cache_hit_rate = repeat_hits as f64 / jobs as f64;
    println!(
        "repeat submission: {repeat_hits}/{jobs} cache hits \
         ({:.1} ms vs {:.1} ms cold)",
        repeat_elapsed_us as f64 / 1e3,
        cold_elapsed_us[1] as f64 / 1e3,
    );
    let scaling_report = warm.report();
    drop(warm);

    // Phase 3: concurrent sim serving. 4 tenants share one compiled design
    // through 4 private sessions, each driving every context with its own
    // word stream; outputs are checked against a private (server-free)
    // replay of the same script.
    let sim_rec = Recorder::enabled();
    let sim_server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(4)
            .with_queue_capacity(64),
        &sim_rec,
    );
    let sim_sessions = 4usize;
    let cycles_per_job = 16usize;
    let jobs_per_tenant = 8usize;
    let compiled: Vec<_> = (0..sim_sessions)
        .map(|_| {
            sim_server
                .submit_compile(CompileJob::new(arch.clone(), base.clone()).with_options(opts))
                .expect("accepted")
                .wait()
                .expect("compiles")
        })
        .collect();

    let tenant_words = |tenant: usize, job: usize, cycle: usize, input: usize| -> u64 {
        let x = (tenant as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((job as u64) << 40)
            .wrapping_add((cycle as u64) << 16)
            .wrapping_add(input as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^ (x >> 31)
    };
    let served: Vec<Vec<Vec<Vec<u64>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = compiled
            .iter()
            .enumerate()
            .map(|(tenant, outcome)| {
                let server = &sim_server;
                scope.spawn(move || {
                    (0..jobs_per_tenant)
                        .map(|job| {
                            let context = job % outcome.design.n_contexts();
                            let n_in = outcome.design.kernel(context).n_inputs();
                            let words = (0..cycles_per_job)
                                .map(|cycle| {
                                    (0..n_in)
                                        .map(|i| tenant_words(tenant, job, cycle, i))
                                        .collect()
                                })
                                .collect();
                            server
                                .submit_sim(SimJob::new(outcome.session, context, words))
                                .expect("accepted")
                                .wait()
                                .expect("sim job completes")
                                .outputs
                        })
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("tenant thread"))
            .collect()
    });

    // Private replay per tenant: a fresh MultiDevice driven with the same
    // script must match the served outputs word for word.
    let mut cross_session_divergences = 0u64;
    for (tenant, outputs) in served.iter().enumerate() {
        let mut device = MultiDevice::compile_opts(&arch, &base, &opts, &Recorder::disabled())
            .expect("reference compile");
        for (job, job_outputs) in outputs.iter().enumerate() {
            let context = job % device.n_contexts();
            device.try_switch_context(context).expect("context");
            let n_in = device.kernel(context).expect("context").n_inputs();
            for (cycle, out_words) in job_outputs.iter().enumerate() {
                let words: Vec<u64> = (0..n_in)
                    .map(|i| tenant_words(tenant, job, cycle, i))
                    .collect();
                let expected = device.try_step_batch(&words).expect("reference step");
                if &expected != out_words {
                    cross_session_divergences += 1;
                }
            }
        }
    }
    let sim_jobs = sim_sessions * jobs_per_tenant;
    let sim_report = sim_server.report();
    println!(
        "sim serving: {sim_sessions} tenants x {jobs_per_tenant} jobs x \
         {cycles_per_job} words, {cross_session_divergences} divergences vs private replay"
    );
    assert_eq!(
        cross_session_divergences, 0,
        "sessions leaked register state across tenants"
    );

    let pct = |h: &Option<mcfpga::obs::HistogramEntry>, p50: bool| {
        h.as_ref().map_or(0.0, |h| if p50 { h.p50 } else { h.p99 })
    };
    println!(
        "latency (sim-serving server): wait p50 {:.0} us p99 {:.0} us, \
         service p50 {:.0} us p99 {:.0} us",
        pct(&sim_report.wait_us, true),
        pct(&sim_report.wait_us, false),
        pct(&sim_report.service_us, true),
        pct(&sim_report.service_us, false),
    );

    let bench = ServeBench {
        experiment: "serve".into(),
        available_parallelism,
        jobs,
        cold_elapsed_us_1w: cold_elapsed_us[0],
        cold_elapsed_us_4w: cold_elapsed_us[1],
        throughput_jobs_per_sec_1w,
        throughput_jobs_per_sec_4w,
        scaling_1_to_4,
        repeat_elapsed_us,
        repeat_cache_hit_rate,
        sim_sessions,
        sim_jobs,
        cross_session_divergences,
        wait_p50_us: pct(&sim_report.wait_us, true),
        wait_p99_us: pct(&sim_report.wait_us, false),
        service_p50_us: pct(&sim_report.service_us, true),
        service_p99_us: pct(&sim_report.service_us, false),
        scaling_report,
        sim_report,
        report: sim_rec.report("serve"),
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize serve bench");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("\nwrote BENCH_serve.json ({} bytes)", json.len());
}

/// Machine-readable record of the serving benchmark (`BENCH_serve.json`).
#[derive(serde::Serialize)]
struct ServeBench {
    experiment: String,
    /// Worker scaling is only meaningful when the host actually has cores;
    /// the regression gate skips the scaling floor below 4.
    available_parallelism: usize,
    /// Content-distinct compile jobs in the cold/repeat phases.
    jobs: usize,
    cold_elapsed_us_1w: u64,
    cold_elapsed_us_4w: u64,
    throughput_jobs_per_sec_1w: f64,
    throughput_jobs_per_sec_4w: f64,
    scaling_1_to_4: f64,
    repeat_elapsed_us: u64,
    /// Fraction of the repeat-phase jobs answered from cache (gated at 1.0).
    repeat_cache_hit_rate: f64,
    sim_sessions: usize,
    sim_jobs: usize,
    /// Served outputs differing from each tenant's private replay (gated at 0).
    cross_session_divergences: u64,
    wait_p50_us: f64,
    wait_p99_us: f64,
    service_p50_us: f64,
    service_p99_us: f64,
    /// Serve metrics of the scaling/repeat server (phases 1-2).
    scaling_report: mcfpga_serve::ServeReport,
    /// Serve metrics of the concurrent sim-serving server (phase 3).
    sim_report: mcfpga_serve::ServeReport,
    /// Full span/metric report of the sim-serving recorder.
    report: RunReport,
}

/// The serve-observability benchmark: 4 tenants (one a deliberate
/// aggressor) drive a small worker pool into sustained overload behind a
/// per-tenant in-flight cap, proving that (a) every shed is attributable in
/// both the tenant ledger and the trace ring, (b) each tenant's ledger is
/// exactly conserved, and (c) the aggressor's flood does not starve the
/// victims (`BENCH_serve_obs.json`).
fn serve_obs() {
    use mcfpga::obs::job_trace;
    use mcfpga_serve::{CompileJob, ServeConfig, Server, SimJob, SubmitError, WatermarkAdmission};
    use std::sync::Arc;

    header("serve_obs: per-tenant accounting, correlation, admission control");
    let arch = ArchSpec::paper_default();
    let opts = CompileOptions::default().with_parallel(false);
    let circuits = mixed_contexts();

    let workers = 2usize;
    let queue_capacity = 32usize;
    let queue_watermark = 24usize;
    let tenant_inflight_cap = 4u64;
    let rounds = 12usize;
    let aggressor_burst = 8usize;
    let victim_cycles = 64usize;
    let aggressor_cycles = 256usize;
    let victims = ["tenant-a", "tenant-b", "tenant-c"];
    let aggressor = "aggressor";

    // Ring sized to hold every event of the run: attribution is only
    // provable when no shed event was evicted (trace_dropped must be 0).
    let rec = Recorder::enabled_with_capacity(1 << 16);
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(workers)
            .with_queue_capacity(queue_capacity)
            .with_admission(Arc::new(
                WatermarkAdmission::default()
                    .with_queue_watermark(queue_watermark)
                    .with_tenant_inflight_cap(tenant_inflight_cap),
            )),
        &rec,
    );

    // One session per tenant over the same design: the first compile is the
    // cache miss, the rest hit and share the artifact.
    let mut sessions = std::collections::BTreeMap::new();
    for (i, tenant) in victims.iter().chain([&aggressor]).enumerate() {
        let outcome = server
            .submit_compile(
                CompileJob::new(arch.clone(), circuits.clone())
                    .with_options(opts)
                    .with_tenant(*tenant),
            )
            .expect("compile accepted")
            .wait()
            .expect("compile completes");
        assert_eq!(outcome.cache_hit, i > 0, "only the first compile misses");
        sessions.insert(tenant.to_string(), outcome);
    }

    let words_for = |tenant_ix: usize, round: usize, n_in: usize, cycles: usize| -> Vec<Vec<u64>> {
        (0..cycles)
            .map(|cycle| {
                (0..n_in)
                    .map(|i| {
                        let x = (tenant_ix as u64)
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((round as u64) << 32)
                            .wrapping_add((cycle as u64) << 8)
                            .wrapping_add(i as u64)
                            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
                        x ^ (x >> 31)
                    })
                    .collect()
            })
            .collect()
    };

    // Victims submit one job at a time and wait for it (closed loop,
    // in-flight ≤ 1); the aggressor fires open-loop bursts above its cap
    // and only then drains. One victim job id is kept for the correlation
    // proof below.
    let mut traced_job = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (vix, tenant) in victims.iter().enumerate() {
            let server = &server;
            let outcome = &sessions[*tenant];
            let words_for = &words_for;
            handles.push(scope.spawn(move || {
                let mut last_job = 0u64;
                for round in 0..rounds {
                    let context = round % outcome.design.n_contexts();
                    let n_in = outcome.design.kernel(context).n_inputs();
                    let handle = server
                        .submit_sim(
                            SimJob::new(
                                outcome.session,
                                context,
                                words_for(vix, round, n_in, victim_cycles),
                            )
                            .with_tenant(*tenant),
                        )
                        .expect("victim in-flight stays below every admission bound");
                    last_job = handle.job().raw();
                    handle.wait().expect("victim job completes");
                }
                last_job
            }));
        }
        let aggressor_handle = {
            let server = &server;
            let outcome = &sessions[aggressor];
            let words_for = &words_for;
            scope.spawn(move || {
                let mut sheds = 0u64;
                let mut rejected = 0u64;
                for round in 0..rounds {
                    let mut burst = Vec::new();
                    for b in 0..aggressor_burst {
                        let context = (round + b) % outcome.design.n_contexts();
                        let n_in = outcome.design.kernel(context).n_inputs();
                        match server.submit_sim(
                            SimJob::new(
                                outcome.session,
                                context,
                                words_for(100 + b, round, n_in, aggressor_cycles),
                            )
                            .with_tenant(aggressor),
                        ) {
                            Ok(h) => burst.push(h),
                            Err(SubmitError::Shed { .. }) => sheds += 1,
                            Err(_) => rejected += 1,
                        }
                    }
                    for h in burst {
                        h.wait().expect("accepted aggressor job completes");
                    }
                }
                (sheds, rejected)
            })
        };
        let mut last_victim_jobs = Vec::new();
        for h in handles {
            last_victim_jobs.push(h.join().expect("victim thread"));
        }
        traced_job = last_victim_jobs.first().copied();
        let (client_sheds, client_rejected) = aggressor_handle.join().expect("aggressor thread");
        println!(
            "aggressor client saw {client_sheds} sheds, {client_rejected} hard rejections \
             over {rounds} bursts of {aggressor_burst}"
        );
    });

    // Every handle has been waited: the server is drained, so each tenant's
    // ledger must balance with zero in flight.
    let report = server.report();
    let snapshot = server.snapshot();
    let events = rec.trace_events();
    assert_eq!(rec.trace_dropped(), 0, "ring sized for the full run");

    // Attribution: every shed counted anywhere must be reconstructable from
    // the trace ring with a job id and tenant label attached.
    let mut traced_sheds: std::collections::BTreeMap<String, u64> = Default::default();
    let mut untagged_shed_events = 0u64;
    for e in events.iter().filter(|e| e.name == "job_shed") {
        match (&e.job, &e.tenant) {
            (Some(_), Some(t)) => *traced_sheds.entry(t.clone()).or_insert(0) += 1,
            _ => untagged_shed_events += 1,
        }
    }
    let mut unattributed_sheds = untagged_shed_events;
    let mut all_conserved = true;
    let mut tenant_rows = Vec::new();
    let mut victim_submitted = 0u64;
    let mut victim_completed = 0u64;
    for row in &report.tenants {
        let traced = traced_sheds.get(&row.tenant).copied().unwrap_or(0);
        unattributed_sheds += row.stats.shed.abs_diff(traced);
        let conserved = row.stats.is_conserved() && row.stats.inflight == 0;
        all_conserved &= conserved;
        if victims.contains(&row.tenant.as_str()) {
            victim_submitted += row.stats.submitted;
            victim_completed += row.stats.completed;
        }
        let pct = |h: &Option<mcfpga::obs::HistogramEntry>, p50: bool| {
            h.as_ref().map_or(0.0, |h| if p50 { h.p50 } else { h.p99 })
        };
        println!(
            "{:<10} submitted {:>3} completed {:>3} shed {:>3} (traced {:>3}) \
             wait p99 {:>8.0} us conserved {}",
            row.tenant,
            row.stats.submitted,
            row.stats.completed,
            row.stats.shed,
            traced,
            pct(&row.wait_us, false),
            conserved,
        );
        tenant_rows.push(ServeObsTenant {
            tenant: row.tenant.clone(),
            stats: row.stats.clone(),
            traced_sheds: traced,
            conserved,
            cache_hit_rate: row.stats.cache_hit_rate(),
            wait_p50_us: pct(&row.wait_us, true),
            wait_p99_us: pct(&row.wait_us, false),
            service_p50_us: pct(&row.service_us, true),
            service_p99_us: pct(&row.service_us, false),
        });
    }
    let aggressor_isolation_ratio = if victim_submitted == 0 {
        0.0
    } else {
        victim_completed as f64 / victim_submitted as f64
    };
    assert!(all_conserved, "per-tenant conservation violated");
    assert_eq!(unattributed_sheds, 0, "every shed must be attributable");
    assert!(report.jobs_shed >= 1, "the aggressor must get shed");

    // Correlation proof: rebuild one victim job's span tree from the shared
    // ring and check the full request path is present.
    let traced_job = traced_job.expect("a victim job ran");
    let trace = job_trace(&events, traced_job).expect("victim job left correlated events");
    let correlation = ServeObsCorrelation {
        job: traced_job,
        tenant: trace.tenant.clone().unwrap_or_default(),
        n_events: trace.n_events,
        has_submit: trace.instant("job_submitted").is_some(),
        has_dequeue: trace.instant("job_dequeued").is_some(),
        has_sim_span: trace.span("sim_job").is_some(),
        has_sim_batch: trace.instant("sim_batch").is_some(),
    };
    assert!(
        correlation.has_submit && correlation.has_dequeue && correlation.has_sim_span,
        "correlated request path incomplete: {correlation:?}"
    );
    println!(
        "correlated job {traced_job} ({}): {} events, submit/dequeue/span/batch all present",
        correlation.tenant, correlation.n_events
    );
    println!(
        "sheds {} (watermark {} inflight-cap {}), isolation ratio {:.3}, \
         queue hwm {}, trace events {} (0 dropped)",
        report.jobs_shed,
        report.shed_queue_watermark,
        report.shed_tenant_inflight,
        aggressor_isolation_ratio,
        report.queue_depth_hwm,
        events.len(),
    );

    let bench = ServeObsBench {
        experiment: "serve_obs".into(),
        available_parallelism: std::thread::available_parallelism().map_or(1, |n| n.get()),
        workers,
        queue_capacity,
        queue_watermark,
        tenant_inflight_cap,
        rounds,
        aggressor_burst,
        victim_cycles,
        aggressor_cycles,
        tenants: tenant_rows,
        shed_total: report.jobs_shed,
        shed_queue_watermark: report.shed_queue_watermark,
        shed_tenant_inflight: report.shed_tenant_inflight,
        shed_policy: report.shed_policy,
        unattributed_sheds,
        all_conserved,
        aggressor_isolation_ratio,
        queue_depth_hwm: report.queue_depth_hwm,
        trace_events: events.len(),
        trace_dropped: report.trace_dropped,
        correlation,
        snapshot,
        serve_report: report,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize serve_obs bench");
    std::fs::write("BENCH_serve_obs.json", &json).expect("write BENCH_serve_obs.json");
    println!("\nwrote BENCH_serve_obs.json ({} bytes)", json.len());
}

/// One tenant row of `BENCH_serve_obs.json`.
#[derive(Debug, serde::Serialize)]
struct ServeObsTenant {
    tenant: String,
    stats: mcfpga_serve::TenantStats,
    /// `job_shed` trace events attributed to this tenant (gated equal to
    /// `stats.shed`).
    traced_sheds: u64,
    /// `submitted == completed + failed + expired + rejected + shed` with
    /// zero in flight after drain (gated true).
    conserved: bool,
    cache_hit_rate: f64,
    wait_p50_us: f64,
    wait_p99_us: f64,
    service_p50_us: f64,
    service_p99_us: f64,
}

/// The correlation proof embedded in `BENCH_serve_obs.json`: one victim
/// job's request path reconstructed from the shared trace ring.
#[derive(Debug, serde::Serialize)]
struct ServeObsCorrelation {
    job: u64,
    tenant: String,
    n_events: usize,
    has_submit: bool,
    has_dequeue: bool,
    has_sim_span: bool,
    has_sim_batch: bool,
}

/// Machine-readable record of the observability benchmark
/// (`BENCH_serve_obs.json`).
#[derive(Debug, serde::Serialize)]
struct ServeObsBench {
    experiment: String,
    available_parallelism: usize,
    workers: usize,
    queue_capacity: usize,
    queue_watermark: usize,
    tenant_inflight_cap: u64,
    rounds: usize,
    aggressor_burst: usize,
    victim_cycles: usize,
    aggressor_cycles: usize,
    tenants: Vec<ServeObsTenant>,
    shed_total: u64,
    shed_queue_watermark: u64,
    shed_tenant_inflight: u64,
    shed_policy: u64,
    /// Sheds not reconstructable from the trace ring with job + tenant
    /// attribution (gated at 0).
    unattributed_sheds: u64,
    /// Every tenant ledger balanced with zero in flight (gated true).
    all_conserved: bool,
    /// Victim jobs completed / victim jobs submitted (gated ≥ 0.9): the
    /// aggressor's overload must not starve well-behaved tenants.
    aggressor_isolation_ratio: f64,
    queue_depth_hwm: u64,
    trace_events: usize,
    trace_dropped: u64,
    correlation: ServeObsCorrelation,
    snapshot: mcfpga_serve::HealthSnapshot,
    serve_report: mcfpga_serve::ServeReport,
}

/// Ablations: switch off each design ingredient and show what it bought.
fn ablations() {
    header("ablations: what each design ingredient buys");
    let arch = ArchSpec::paper_default();
    let ctx = arch.context_id();

    // 1. Decoder sharing across identical columns (Table 1's G2 = G4).
    let dev = MultiDevice::compile(&arch, &mixed_contexts()).expect("compile");
    let columns = dev.switch_usage().columns();
    let per_column: usize = columns
        .iter()
        .map(|c| synthesize(*c, ctx).cost().n_ses)
        .sum();
    let mut unique: Vec<u32> = columns.iter().map(|c| c.mask()).collect();
    unique.sort_unstable();
    unique.dedup();
    let shared: usize = unique
        .iter()
        .map(|&m| synthesize(ConfigColumn::from_mask(m, 4), ctx).cost().n_ses)
        .sum();
    println!(
        "decoder sharing (mixed 4-circuit device, {} columns):",
        columns.len()
    );
    println!(
        "  without sharing: {per_column} SEs; with sharing: {shared} SEs ({:.1}x)",
        per_column as f64 / shared as f64
    );

    // 2. Inverting input controllers: without them a complemented ID bit
    // costs an extra SE.
    let mut with_inv = 0usize;
    let mut without_inv = 0usize;
    for col in ConfigColumn::enumerate_all(4) {
        let cost = synthesize(col, ctx).cost();
        with_inv += cost.n_ses;
        without_inv += cost.n_ses + cost.n_inverters;
    }
    println!("\ninverting input controllers (sum over all 16 patterns):");
    println!("  with controllers: {with_inv} SEs; inverter-per-SE instead: {without_inv} SEs");

    // 3. Double-length lines: routed critical delay vs DL track count.
    println!("\ndouble-length line budget (add8, same placement seed):");
    println!("  {:>9} {:>14}", "DL tracks", "critical delay");
    for dl in [0usize, 1, 2, 4] {
        let mut a = ArchSpec::paper_default();
        a.routing.double_length_tracks = dl;
        let dev = MultiDevice::compile(&a, &[library::adder(8)]).expect("compile");
        println!("  {dl:>9} {:>14.1}", dev.critical_delay());
    }

    // 4. LUT deduplication (the paper's future-work mapping optimisation).
    use mcfpga::map::dedupe_luts;
    println!("\nLUT deduplication over the circuit suite (k = 4):");
    let mut total_before = 0usize;
    let mut total_after = 0usize;
    for circuit in suite() {
        let mapped = map_netlist(&circuit, 4).unwrap();
        let (_, stats) = dedupe_luts(&mapped);
        total_before += stats.before;
        total_after += stats.after;
    }
    println!(
        "  {total_before} LUTs -> {total_after} LUTs ({:.1}% removed)",
        100.0 * (total_before - total_after) as f64 / total_before as f64
    );
}

/// Temporal partitioning: hardware reuse in time (the DPGA premise, §1).
fn temporal() {
    use mcfpga::map::{temporal_partition, TemporalExecutor};
    use mcfpga::place::PlacementProblem;
    use mcfpga::sim::{FabricTemporalExecutor, MultiDevice};
    header("temporal: circuits bigger than the array, run across contexts");
    let arch = ArchSpec::paper_default().with_grid(3, 3);
    let capacity = arch.n_logic_blocks() * arch.lut.outputs;
    println!(
        "fabric: 3x3 logic blocks = {capacity} LUT slots per context, {} contexts\n",
        arch.n_contexts
    );
    println!(
        "{:<12} {:>6} {:>8} {:>8} {:>10} {:>9}",
        "circuit", "LUTs", "fits 1?", "stages", "registers", "verified"
    );
    for circuit in [
        library::multiplier(3),
        library::alu(4),
        library::subtractor(6),
        library::barrel_shifter(8),
    ] {
        let mapped = map_netlist(&circuit, arch.lut.min_inputs).unwrap();
        let fits_single = PlacementProblem::from_mapped(&mapped, &arch).is_ok();
        let design = match temporal_partition(&mapped, capacity) {
            Ok(d) => d,
            Err(e) => {
                println!("{:<12} {:>6} {e}", circuit.name(), mapped.luts.len());
                continue;
            }
        };
        if design.n_stages() > arch.n_contexts {
            println!(
                "{:<12} {:>6} {:>8} needs {} stages (> {} contexts)",
                circuit.name(),
                mapped.luts.len(),
                if fits_single { "yes" } else { "no" },
                design.n_stages(),
                arch.n_contexts
            );
            continue;
        }
        let stage_netlists: Vec<_> = design.stages.iter().map(|s| s.netlist.clone()).collect();
        let n_regs = design.n_registers;
        let n_stages = design.n_stages();
        let ok = match MultiDevice::compile_mapped(&arch, &stage_netlists) {
            Ok(mut dev) => {
                let mut fabric = FabricTemporalExecutor::new(&mut dev, design.clone());
                let mut reference = TemporalExecutor::new(design);
                let n_in = circuit.inputs().len();
                let mut all_ok = true;
                for trial in 0..30u64 {
                    let inputs: Vec<bool> =
                        (0..n_in).map(|i| (trial >> (i % 16)) & 1 == 1).collect();
                    let expect = circuit.eval_comb(&inputs).unwrap();
                    let got = fabric.run(&inputs);
                    let refr = reference.run(&inputs);
                    all_ok &= got == expect && refr == expect;
                }
                all_ok
            }
            Err(e) => {
                println!("{:<12} compile failed: {e}", circuit.name());
                continue;
            }
        };
        println!(
            "{:<12} {:>6} {:>8} {:>8} {:>10} {:>9}",
            circuit.name(),
            mapped.luts.len(),
            if fits_single { "yes" } else { "no" },
            n_stages,
            n_regs,
            if ok { "ok" } else { "FAIL" }
        );
    }
    println!("\na 3x3 array cannot hold mul3 or alu4 in one context; split across");
    println!("contexts with transfer registers, both run bit-exactly — the DPGA");
    println!("\"reuse limited hardware in time\" premise, on the compiled fabric.");
}

/// Minimum channel width per circuit (what the per-track RCM saving
/// multiplies with).
fn channel_width() {
    use mcfpga::place::{place, AnnealOptions, PlacementProblem};
    use mcfpga::route::{min_channel_width, nets_from_placement, RouteOptions};
    header("channel_width: minimum routable tracks per channel");
    let arch = ArchSpec::paper_default();
    println!("{:<12} {:>11} {:>10}", "circuit", "min tracks", "DL tracks");
    for circuit in [
        library::adder(4),
        library::parity(8),
        library::comparator(4),
        library::multiplier(3),
        library::alu(4),
        library::barrel_shifter(8),
    ] {
        let mapped = map_netlist(&circuit, arch.lut.min_inputs).unwrap();
        let problem = PlacementProblem::from_mapped(&mapped, &arch).unwrap();
        let placement = place(&problem, &AnnealOptions::default());
        let nets = nets_from_placement(&problem, &placement);
        match min_channel_width(&arch, &nets, 24, &RouteOptions::default()) {
            Some(r) => println!(
                "{:<12} {:>11} {:>10}",
                circuit.name(),
                r.min_tracks,
                r.double_tracks
            ),
            None => println!("{:<12} unroutable within 24 tracks", circuit.name()),
        }
    }
    println!("\nevery multi-context switch saved per track scales with this width;");
    println!("the paper-default channel (8 tracks) comfortably covers the suite.");
}

/// Delta compilation: a changed request served against a cached near-match
/// base recompiles only the changed contexts, and the result is proven
/// bit-identical to a cold compile at every change rate
/// (`BENCH_delta.json`). This is the serving-layer analogue of the paper's
/// 5% inter-context change assumption: when little configuration data
/// changes, little compile work should be paid.
fn delta() {
    use mcfpga_serve::{CompileJob, CompiledDesign, ServeConfig, Server};

    header("delta: near-match cache + per-context incremental recompilation");
    let arch = ArchSpec::paper_default();
    let opts = CompileOptions::default().with_parallel(false);

    // A 4-context workload of independent random sequential netlists — big
    // enough that skipped contexts represent real compile work.
    let params = RandomNetlistParams {
        n_inputs: 8,
        n_gates: 72,
        n_outputs: 8,
        dff_fraction: 0.25,
    };
    let n_contexts = 4usize;
    let base: Vec<Netlist> = (0..n_contexts)
        .map(|c| random_netlist(params, 0xD17A + c as u64))
        .collect();

    let t = std::time::Instant::now();
    let base_design = CompiledDesign::compile(&arch, &base, &opts).expect("base compiles");
    let base_compile_us = t.elapsed().as_micros() as u64;
    println!(
        "base workload: {n_contexts} contexts x {} gates, cold compile {:.1} ms",
        params.n_gates,
        base_compile_us as f64 / 1e3
    );

    // Perturb exactly one context at three change regimes: a single
    // substituted LUT, the paper's 5% change assumption, and a heavy 50%
    // rewrite. `perturb_netlist` is probabilistic per gate, so seeds are
    // searched until the requested amount of change actually materializes.
    let changed_ctx = 2usize;
    let gates_total = base[changed_ctx].n_gates();
    let diff = |a: &Netlist, b: &Netlist| {
        a.gates()
            .iter()
            .zip(b.gates())
            .filter(|(x, y)| x != y)
            .count()
    };
    let perturbed_with = |frac: f64, seed: u64, want: &dyn Fn(usize) -> bool| {
        (seed..)
            .find_map(|s| {
                let p = perturb_netlist(&base[changed_ctx], frac, s);
                want(diff(&base[changed_ctx], &p)).then_some(p)
            })
            .expect("some seed yields the requested change")
    };
    let cases: [(&str, f64, Netlist); 3] = [
        (
            "1lut",
            1.0 / gates_total as f64,
            perturbed_with(1.0 / gates_total as f64, 1, &|d| d == 1),
        ),
        ("5pct", 0.05, perturbed_with(0.05, 11, &|d| d > 0)),
        ("50pct", 0.5, perturbed_with(0.5, 23, &|d| d > 0)),
    ];

    // Bit-identity is checked in-experiment, not just in tests: any
    // divergence between the delta artifact and a cold compile of the same
    // request invalidates every timing below.
    let bit_identical = |a: &CompiledDesign, b: &CompiledDesign| {
        a.n_contexts() == b.n_contexts()
            && (0..a.n_contexts()).all(|c| {
                a.kernel(c) == b.kernel(c) && a.initial_registers(c) == b.initial_registers(c)
            })
            && a.fingerprint() == b.fingerprint()
    };

    let reps = 3usize;
    let mut points = Vec::new();
    let mut divergences = 0u64;
    let mut speedup_at_5pct = 0.0f64;
    for (label, change_rate, variant_ctx) in &cases {
        let mut variant = base.clone();
        variant[changed_ctx] = variant_ctx.clone();
        let gates_changed = diff(&base[changed_ctx], variant_ctx);

        let mut cold_us = u64::MAX;
        let mut delta_us = u64::MAX;
        let mut cold_design = None;
        let mut delta_outcome = None;
        for _ in 0..reps {
            let t = std::time::Instant::now();
            let cold = CompiledDesign::compile(&arch, &variant, &opts).expect("cold compiles");
            cold_us = cold_us.min(t.elapsed().as_micros() as u64);
            cold_design = Some(cold);

            let t = std::time::Instant::now();
            let out = CompiledDesign::delta_compile_with(
                &arch,
                &variant,
                &opts,
                &Recorder::disabled(),
                &base_design,
                None,
            )
            .expect("delta compiles");
            delta_us = delta_us.min(t.elapsed().as_micros() as u64);
            delta_outcome = Some(out);
        }
        let cold = cold_design.expect("reps > 0");
        let (delta_design, stats) = delta_outcome.expect("reps > 0");
        if !bit_identical(&delta_design, &cold) {
            divergences += 1;
        }

        let speedup = cold_us as f64 / delta_us.max(1) as f64;
        if *label == "5pct" {
            speedup_at_5pct = speedup;
        }
        println!(
            "{label:>5} ({gates_changed:>2}/{gates_total} gates): cold {:>8.1} ms, \
             delta {:>7.1} ms ({speedup:.1}x), {}/{} contexts reused \
             ({} placements, {} routes)",
            cold_us as f64 / 1e3,
            delta_us as f64 / 1e3,
            stats.contexts_reused,
            stats.contexts_total,
            stats.placements_reused,
            stats.routes_reused,
        );
        points.push(DeltaPoint {
            label: (*label).into(),
            change_rate: *change_rate,
            gates_changed,
            gates_total,
            cold_us,
            delta_us,
            speedup,
            contexts_total: stats.contexts_total,
            contexts_reused: stats.contexts_reused,
            placements_reused: stats.placements_reused,
            routes_reused: stats.routes_reused,
        });
    }
    assert_eq!(
        divergences, 0,
        "delta-compiled artifacts diverged from cold compiles"
    );

    // The same regimes through a live server: the base populates the cache,
    // each variant must come back as a near hit on the delta path.
    let rec = Recorder::enabled();
    let server = Server::with_recorder(
        ServeConfig::default()
            .with_workers(1)
            .with_queue_capacity(8),
        &rec,
    );
    server
        .submit_compile(CompileJob::new(arch.clone(), base.clone()).with_options(opts))
        .expect("accepted")
        .wait()
        .expect("base compiles");
    let mut serve_near_hits = 0usize;
    for (_, _, variant_ctx) in &cases {
        let mut variant = base.clone();
        variant[changed_ctx] = variant_ctx.clone();
        let outcome = server
            .submit_compile(CompileJob::new(arch.clone(), variant).with_options(opts))
            .expect("accepted")
            .wait()
            .expect("variant compiles");
        if outcome.delta.is_some() {
            serve_near_hits += 1;
        }
    }
    let serve_report = server.report();
    println!(
        "served: {serve_near_hits}/{} variants took the delta path \
         ({} contexts reused across them)",
        cases.len(),
        serve_report.delta_contexts_reused
    );
    assert_eq!(
        serve_near_hits,
        cases.len(),
        "every variant must near-hit the cached base"
    );

    let bench = DeltaBench {
        experiment: "delta".into(),
        n_contexts,
        gates_per_context: params.n_gates,
        base_compile_us,
        points,
        divergences,
        speedup_at_5pct,
        serve_near_hits,
        serve_report,
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize delta bench");
    std::fs::write("BENCH_delta.json", &json).expect("write BENCH_delta.json");
    println!("\nwrote BENCH_delta.json ({} bytes)", json.len());
}

/// One change-rate point of the delta-compilation benchmark.
#[derive(serde::Serialize)]
struct DeltaPoint {
    label: String,
    /// Requested per-gate substitution probability.
    change_rate: f64,
    /// Gates that actually differ between base and variant context.
    gates_changed: usize,
    gates_total: usize,
    /// Cold compile of the full variant workload (min over reps).
    cold_us: u64,
    /// Delta compile against the cached base (min over reps).
    delta_us: u64,
    /// `cold_us / delta_us` — gated ≥ 3.0 at the 5% point.
    speedup: f64,
    contexts_total: usize,
    /// Contexts whose netlist hash matched the base, reused verbatim.
    contexts_reused: usize,
    /// Changed contexts whose placement survived the equality gate.
    placements_reused: usize,
    /// Changed contexts whose routing survived the equality gate.
    routes_reused: usize,
}

/// Fabric observability: signal-probe overhead and lane-exactness against a
/// scalar replay, the per-LUT activity census and its power-proxy ranking,
/// per-context congestion hot spots, and the context-switch energy model at
/// the paper's 5% change-rate point (`BENCH_probe.json`).
fn probe() {
    use mcfpga::sim::{ProbeSet, LANES};
    use rand::rngs::StdRng;
    use rand::{Rng, RngCore, SeedableRng};

    header("probe: signal probes, activity census, congestion, switch energy");
    let arch = ArchSpec::paper_default();
    let circuits = mixed_contexts();
    // The scalar replay below packs a single register file's outputs into
    // lanes, which is only meaningful when the suite carries no state.
    for c in &circuits {
        assert!(
            c.initial_state().bits.is_empty(),
            "mixed suite must be combinational"
        );
    }
    let rec = Recorder::enabled();
    let mut dev = MultiDevice::compile_with(&arch, &circuits, &rec).expect("compile");
    let n_ctx = circuits.len();
    let arity: Vec<usize> = circuits.iter().map(|c| c.inputs().len()).collect();

    // The sim experiment's exact deterministic schedule (same seed, same
    // switch probability), so the disabled-path throughput below is
    // directly comparable to BENCH_sim.json's batched_vectors_per_sec.
    let words = 512usize;
    let mut rng = StdRng::seed_from_u64(2027);
    let mut context = 0usize;
    let schedule: Vec<(usize, Vec<u64>)> = (0..words)
        .map(|_| {
            if rng.gen_bool(0.3) {
                context = rng.gen_range(0..n_ctx);
            }
            (
                context,
                (0..arity[context]).map(|_| rng.next_u64()).collect(),
            )
        })
        .collect();

    // Scalar replay: every lane of every word through the interpreted
    // device, outputs packed back into words — the reference the probe
    // rings are checked against bit-for-bit.
    dev.reset();
    let mut bits: Vec<bool> = Vec::new();
    let scalar_words: Vec<Vec<u64>> = schedule
        .iter()
        .map(|(c, inputs)| {
            dev.switch_context(*c);
            let mut packed: Vec<u64> = Vec::new();
            for lane in 0..LANES {
                bits.clear();
                bits.extend(inputs.iter().map(|w| (w >> lane) & 1 == 1));
                let out = dev.step(&bits);
                if lane == 0 {
                    packed = vec![0u64; out.len()];
                }
                for (w, &b) in packed.iter_mut().zip(&out) {
                    *w |= (b as u64) << lane;
                }
            }
            packed
        })
        .collect();

    // Phase 1: the disabled path — no probes armed, no census. This is the
    // number the regression gate holds within 5% of BENCH_sim.json; best of
    // 3 trials, because a single 16-pass block is only ~0.5 ms of work and
    // scheduler noise alone can swing it past the gate.
    let repeats = 16usize;
    let run_batched = |dev: &mut MultiDevice| -> u64 {
        let mut best = u64::MAX;
        for _ in 0..3 {
            dev.reset();
            let start = std::time::Instant::now();
            for _ in 0..repeats {
                for (c, inputs) in &schedule {
                    dev.switch_context(*c);
                    dev.step_batch(inputs);
                }
            }
            best = best.min(start.elapsed().as_micros().max(1) as u64);
        }
        best
    };
    let disabled_us = run_batched(&mut dev);
    let vectors = (words * LANES) as u64;
    let per_sec = |us: u64| (vectors * repeats as u64) as f64 / (us as f64 / 1e6);
    let probe_disabled_vectors_per_sec = per_sec(disabled_us);
    println!(
        "disabled path: {words} words x {LANES} lanes x {repeats} passes, \
         {probe_disabled_vectors_per_sec:.0} vectors/s (no probes, no census)"
    );

    // Phase 2: arm every context's primary outputs and validate the rings
    // word-for-word — one u64 word compares all 64 lanes at once — against
    // the scalar packs. Capacity covers the whole schedule, so nothing drops.
    for c in 0..n_ctx {
        let names = dev.probe_signals(c).expect("context");
        let n_outs = dev.n_outputs(c).expect("context");
        let mut set = ProbeSet::new().with_capacity(words);
        for n in &names[..n_outs] {
            set = set.tap(n);
        }
        dev.arm_probes(c, &set).expect("output names resolve");
    }
    dev.reset();
    for (c, inputs) in &schedule {
        dev.switch_context(*c);
        dev.step_batch(inputs);
    }
    let mut probe_divergences = 0u64;
    let mut probe_words_checked = 0u64;
    for c in 0..n_ctx {
        let expected: Vec<&Vec<u64>> = schedule
            .iter()
            .zip(&scalar_words)
            .filter(|((sc, _), _)| *sc == c)
            .map(|(_, w)| w)
            .collect();
        for (o, cap) in dev.probe_captures(c).expect("context").iter().enumerate() {
            assert_eq!(cap.dropped, 0, "ring sized for the schedule");
            assert_eq!(cap.samples.len(), expected.len(), "one sample per word");
            for (word, &sample) in cap.samples.iter().enumerate() {
                probe_words_checked += 1;
                if sample != expected[word][o] {
                    probe_divergences += 1;
                }
            }
        }
    }
    println!(
        "probe validation: {probe_words_checked} sampled words x {LANES} lanes, \
         {probe_divergences} divergences vs scalar replay"
    );
    assert_eq!(
        probe_divergences, 0,
        "probes diverged from the scalar replay"
    );
    let vcd_bytes = dev
        .probe_waveform(0, Some(0))
        .expect("context")
        .to_vcd()
        .len();

    // Phase 3: the armed path, timed with the same probes still live.
    let armed_us = run_batched(&mut dev);
    let probe_armed_vectors_per_sec = per_sec(armed_us);
    let armed_overhead = 1.0 - probe_armed_vectors_per_sec / probe_disabled_vectors_per_sec;
    println!(
        "armed path:    {probe_armed_vectors_per_sec:.0} vectors/s \
         ({:.1}% overhead with every output probed)",
        100.0 * armed_overhead
    );

    // Phase 4: activity census over exactly one schedule pass (probes
    // disarmed), so the seeded ranks are re-derivable and gate-able.
    for c in 0..n_ctx {
        dev.disarm_probes(c).expect("context");
    }
    dev.enable_activity_census();
    dev.reset();
    for (c, inputs) in &schedule {
        dev.switch_context(*c);
        dev.step_batch(inputs);
    }
    let top_n = 8usize;
    let mut activity_top: Vec<ActivityRank> = Vec::new();
    let mut toggle_rates: Vec<f64> = Vec::new();
    let mut census_toggles_total = 0u64;
    println!("\nactivity census (top 5 LUTs of context 0 by power proxy):");
    for c in 0..n_ctx {
        let report = dev.activity_census(c).expect("context");
        census_toggles_total += report.toggles_total;
        toggle_rates.push(dev.toggle_rate(c));
        let ranked = report.ranked();
        if c == 0 {
            for r in ranked.iter().take(5) {
                println!(
                    "  lut{:<4} toggle rate {:.3}  fanout {}  proxy {:.3}",
                    r.lut, r.toggle_rate, r.fanout, r.power_proxy
                );
            }
        }
        activity_top.push(ActivityRank {
            context: c,
            top_luts: ranked.iter().take(top_n).map(|r| r.lut).collect(),
        });
    }

    // Congestion hot spots, one per programmed context.
    println!("\ncongestion (hottest edge per context):");
    let congestion: Vec<CongestionPoint> = dev
        .congestion_maps()
        .iter()
        .enumerate()
        .map(|(c, m)| {
            let hottest = m.hottest(1);
            let point = CongestionPoint {
                context: c,
                edges_used: m.edges.len(),
                peak_utilization: m.peak_utilization(),
                hottest_edge: hottest.first().map_or(0, |e| e.edge),
            };
            println!(
                "  context {c}: {} edges used, peak utilization {:.2}, \
                 hottest edge {}",
                point.edges_used, point.peak_utilization, point.hottest_edge
            );
            point
        })
        .collect();

    // Phase 5: context-switch energy. Two points, both proxy pJ under
    // SWITCH_ENERGY_PJ_PER_BIT (not silicon — see EXPERIMENTS.md):
    //   mixed — the run's own cumulative energy, accumulated by the main
    //   device across every pass above (four unrelated circuits, so most
    //   switch columns flip);
    //   5% point — the paper's operating regime: a structure-preserving
    //   workload compiled as one Device (shared placement/routing), where
    //   redundant columns make switches nearly free. Bits flipped per
    //   switch fall straight out of the switch-column patterns.
    let mixed_energy = dev.reconfig_energy();
    let w = workload(RandomNetlistParams::default(), 4, 0.05, 99);
    let edev = Device::compile(&arch, &w).expect("compile 5% workload");
    let columns = edev.switch_usage().columns();
    let energy_change_rate = ColumnSetStats::measure(&columns, arch.context_id()).change_rate;
    let energy_switches = 64u64;
    let mut energy_bits_flipped = 0u64;
    let mut from = 0usize;
    for i in 1..=energy_switches {
        let to = (i % 4) as usize;
        energy_bits_flipped += columns
            .iter()
            .filter(|col| col.value_in(from) != col.value_in(to))
            .count() as u64;
        from = to;
    }
    let energy_pj = mcfpga::sim::switch_energy_pj(energy_bits_flipped);
    let pj_per_switch = |pj: f64, n: u64| pj / n.max(1) as f64;
    println!(
        "\nswitch energy (proxy pJ): mixed run {} switches, {:.1} pJ \
         ({:.2} pJ/switch);",
        mixed_energy.switches,
        mixed_energy.energy_pj,
        pj_per_switch(mixed_energy.energy_pj, mixed_energy.switches)
    );
    println!(
        "  5%-change point: {energy_switches} switches over {} columns, \
         {energy_bits_flipped} bits flipped, {energy_pj:.1} pJ \
         ({:.2} pJ/switch, measured change rate {:.1}%)",
        columns.len(),
        pj_per_switch(energy_pj, energy_switches),
        100.0 * energy_change_rate
    );
    if energy_bits_flipped == 0 {
        println!(
            "  (structure-preserving contexts route identically, so every \
             switch column\n   is constant — the paper's redundancy claim: \
             switching costs nothing here)"
        );
    }

    let bench = ProbeBench {
        experiment: "probe".into(),
        words,
        lanes: LANES,
        vectors,
        repeats,
        disabled_us,
        probe_disabled_vectors_per_sec,
        armed_us,
        probe_armed_vectors_per_sec,
        armed_overhead,
        probe_words_checked,
        probe_divergences,
        vcd_bytes,
        activity_top,
        toggle_rates,
        census_toggles_total,
        congestion,
        mixed_switches: mixed_energy.switches,
        mixed_bits_flipped: mixed_energy.bits_flipped,
        mixed_energy_pj: mixed_energy.energy_pj,
        energy_change_rate,
        energy_switches,
        energy_bits_flipped,
        energy_pj,
        energy_mean_bits_per_switch: energy_bits_flipped as f64 / energy_switches as f64,
        report: rec.report("sim"),
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize probe bench");
    std::fs::write("BENCH_probe.json", &json).expect("write BENCH_probe.json");
    println!("\nwrote BENCH_probe.json ({} bytes)", json.len());
}

/// Machine-readable record of the observability benchmark
/// (`BENCH_probe.json`).
#[derive(serde::Serialize)]
struct ProbeBench {
    experiment: String,
    /// Word-steps in the shared schedule; each word carries `lanes` vectors.
    words: usize,
    lanes: usize,
    vectors: u64,
    /// Timed batched passes per phase (disabled and armed).
    repeats: usize,
    disabled_us: u64,
    /// Batched throughput with no probes armed and no census — gated within
    /// 5% of BENCH_sim.json's batched_vectors_per_sec.
    probe_disabled_vectors_per_sec: f64,
    armed_us: u64,
    probe_armed_vectors_per_sec: f64,
    /// `1 - armed/disabled` with every primary output probed.
    armed_overhead: f64,
    /// Probe sample words compared against the scalar replay (each word
    /// covers all 64 lanes at once).
    probe_words_checked: u64,
    /// Sample words differing from the replay (gated at 0).
    probe_divergences: u64,
    /// Size of the context-0 lane-0 VCD export.
    vcd_bytes: usize,
    /// Top-8 LUT ids per context by power proxy, deterministic under the
    /// seeded schedule (gated exact against the baseline).
    activity_top: Vec<ActivityRank>,
    toggle_rates: Vec<f64>,
    census_toggles_total: u64,
    congestion: Vec<CongestionPoint>,
    /// Cumulative switch energy of the mixed run itself (every pass above),
    /// accounted by the main device — four unrelated circuits, so most
    /// switch columns flip on every switch.
    mixed_switches: u64,
    mixed_bits_flipped: u64,
    mixed_energy_pj: f64,
    /// Measured switch-column change rate of the 5% energy workload
    /// (a structure-preserving Device compile: the paper's regime).
    energy_change_rate: f64,
    energy_switches: u64,
    energy_bits_flipped: u64,
    /// Proxy pJ under SWITCH_ENERGY_PJ_PER_BIT — relative, not silicon.
    energy_pj: f64,
    energy_mean_bits_per_switch: f64,
    report: RunReport,
}

/// One context's top-of-the-census LUT ranking.
#[derive(serde::Serialize)]
struct ActivityRank {
    context: usize,
    top_luts: Vec<usize>,
}

/// One context's congestion summary.
#[derive(serde::Serialize)]
struct CongestionPoint {
    context: usize,
    edges_used: usize,
    peak_utilization: f64,
    hottest_edge: usize,
}

/// Machine-readable record of the delta-compilation benchmark
/// (`BENCH_delta.json`).
#[derive(serde::Serialize)]
struct DeltaBench {
    experiment: String,
    n_contexts: usize,
    gates_per_context: usize,
    base_compile_us: u64,
    points: Vec<DeltaPoint>,
    /// Delta artifacts differing bit-for-bit from cold compiles (gated 0).
    divergences: u64,
    /// Convenience copy of the 5% point's speedup (gated ≥ 3.0).
    speedup_at_5pct: f64,
    /// Variants answered through the near-match delta path (must equal the
    /// number of change regimes).
    serve_near_hits: usize,
    serve_report: mcfpga_serve::ServeReport,
}

/// Scale-out serving: a 5-tenant stateful workload across 3 shards with
/// continuous checkpointing, a live-migration bounce phase, and a mid-run
/// shard kill recovered entirely from the checkpoint store — zero lost
/// sessions and word-identical output against an unkilled reference router
/// (`BENCH_shard.json`).
fn shard() {
    use mcfpga_serve::{CompileJob, ServeConfig, SessionId, ShardRouter, SimJob};
    use std::time::Duration;

    header("shard: checkpoint/restore, live migration, kill + recovery across 3 shards");

    let shards = 3usize;
    let jobs_per_tenant = 8usize;
    let words_per_job = 32usize;
    // The shard kill lands after this many completed rounds.
    let cut_at = 4usize;
    let arch = ArchSpec::paper_default();
    let opts = CompileOptions::default().with_parallel(false);

    // One distinct two-context stateful design per tenant: placement spreads
    // by fingerprint, and any lost or duplicated step after a migration or
    // recovery changes every subsequent counter/LFSR word.
    let designs: Vec<Vec<Netlist>> = vec![
        vec![library::counter(4), library::lfsr(8, 0x8e)],
        vec![library::counter(6), library::lfsr(8, 0xb8)],
        vec![library::counter(4), library::lfsr(6, 0x33)],
        vec![library::counter(5), library::lfsr(8, 0xa6)],
        vec![library::counter(6), library::lfsr(7, 0x4a)],
        vec![library::counter(8), library::lfsr(6, 0x2f)],
    ];
    let tenants = designs.len();

    let stim_word = |tenant: usize, job: usize, cycle: usize, input: usize| -> u64 {
        let x = (tenant as u64 + 1)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((job as u64) << 40)
            .wrapping_add((cycle as u64) << 16)
            .wrapping_add(input as u64)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^ (x >> 31)
    };

    #[derive(Default)]
    struct RunStats {
        initial_placement: Vec<usize>,
        migrate_us: Vec<u64>,
        killed_shard: Option<usize>,
        sessions_on_killed: usize,
        sessions_recovered: usize,
        sessions_lost: usize,
        snapshot_bytes: u64,
        snapshots: u64,
        n_sessions_end: usize,
    }

    // One full workload pass. The `kill == false` pass is the unkilled
    // reference the failure-injected pass must match word for word.
    let run_workload = |kill: bool, rec: &Recorder| -> (Vec<Vec<Vec<Vec<u64>>>>, RunStats) {
        let router = ShardRouter::with_recorder(
            shards,
            ServeConfig::default()
                .with_workers(2)
                .with_queue_capacity(64),
            rec,
        );
        let mut stats = RunStats {
            initial_placement: vec![0; shards],
            ..RunStats::default()
        };

        // Compile one design per tenant; each opens that tenant's session.
        let mut sessions: Vec<SessionId> = Vec::new();
        let mut compiled = Vec::new();
        for (t, circuits) in designs.iter().enumerate() {
            let outcome = router
                .submit(
                    CompileJob::new(arch.clone(), circuits.clone())
                        .with_options(opts)
                        .with_tenant(format!("tenant-{t}")),
                )
                .expect("compile accepted")
                .wait()
                .expect("compile completes")
                .into_compile()
                .expect("compile outcome");
            sessions.push(outcome.session);
            compiled.push(outcome.design);
        }
        for &id in &sessions {
            stats.initial_placement[router.session_owner(id).expect("session alive")] += 1;
        }

        let mut outputs: Vec<Vec<Vec<Vec<u64>>>> = vec![Vec::new(); tenants];
        for job in 0..jobs_per_tenant {
            // Submit the whole round through the unified door, then drain
            // with the handle combinators (`map` + `wait_timeout`).
            let handles: Vec<_> = (0..tenants)
                .map(|t| {
                    let context = job % compiled[t].n_contexts();
                    let n_in = compiled[t].kernel(context).n_inputs();
                    let stim = (0..words_per_job)
                        .map(|cycle| (0..n_in).map(|i| stim_word(t, job, cycle, i)).collect())
                        .collect();
                    router
                        .submit(
                            SimJob::new(sessions[t], context, stim)
                                .with_tenant(format!("tenant-{t}")),
                        )
                        .expect("sim accepted")
                        .map(|o| o.into_sim().expect("sim outcome").outputs)
                })
                .collect();
            for (t, handle) in handles.into_iter().enumerate() {
                let out = loop {
                    if let Some(done) = handle.wait_timeout(Duration::from_millis(200)) {
                        break done.expect("sim completes");
                    }
                };
                outputs[t].push(out);
            }
            // Continuous checkpointing: after every completed round each
            // session's latest state lands in the router's snapshot store —
            // the recovery points a kill falls back to.
            for &id in &sessions {
                let snap = router.checkpoint(id).expect("checkpoint");
                stats.snapshot_bytes += snap.serialized_bytes() as u64;
                stats.snapshots += 1;
            }

            if kill && job + 1 == cut_at {
                // Live-migration bounce: every session hops to the next
                // shard, then rebalance sends each home. One round only, so
                // shard caches stay partially cold and the post-kill
                // recovery below still exercises the recompile path.
                for id in sessions.iter_mut() {
                    let owner = router.session_owner(*id).expect("session alive");
                    let m = router
                        .migrate_session(*id, (owner + 2) % shards)
                        .expect("migrates");
                    stats.migrate_us.push(m.migrate_us);
                    *id = m.new_session;
                }
                for m in router.rebalance().expect("rebalances") {
                    stats.migrate_us.push(m.migrate_us);
                    if let Some(id) = sessions.iter_mut().find(|id| **id == m.session) {
                        *id = m.new_session;
                    }
                }
                // Migration re-keys the snapshot store; refresh every
                // recovery point before pulling the plug.
                router.checkpoint_all();

                // Kill the shard owning the most sessions, then restore its
                // sessions onto the survivors from the checkpoint store.
                let mut load = vec![0usize; shards];
                for &id in &sessions {
                    load[router.session_owner(id).expect("session alive")] += 1;
                }
                let victim = (0..shards).max_by_key(|&i| load[i]).expect("non-empty");
                let lost = router.kill_shard(victim).expect("kill");
                stats.killed_shard = Some(victim);
                stats.sessions_on_killed = lost.len();
                let recovered = router.recover().expect("recover");
                stats.sessions_recovered = recovered.len();
                for (old, new) in &recovered {
                    if let Some(id) = sessions.iter_mut().find(|id| **id == *old) {
                        *id = *new;
                    }
                }
                stats.sessions_lost = lost
                    .iter()
                    .filter(|l| !recovered.iter().any(|(old, _)| old == *l))
                    .count();
            }
        }
        stats.n_sessions_end = router.n_sessions();
        (outputs, stats)
    };

    let ref_rec = Recorder::enabled();
    let (reference, _) = run_workload(false, &ref_rec);

    let rec = Recorder::enabled();
    let wall = std::time::Instant::now();
    let (served, stats) = run_workload(true, &rec);
    let wall_ms = wall.elapsed().as_millis() as u64;

    // Ground truth: each tenant's script replayed on a private device must
    // match the unkilled reference run.
    let mut reference_divergences = 0u64;
    for (t, tenant_outputs) in reference.iter().enumerate() {
        let mut device =
            MultiDevice::compile_opts(&arch, &designs[t], &opts, &Recorder::disabled())
                .expect("reference compile");
        for (job, job_outputs) in tenant_outputs.iter().enumerate() {
            let context = job % device.n_contexts();
            device.try_switch_context(context).expect("context");
            let n_in = device.kernel(context).expect("context").n_inputs();
            for (cycle, out_words) in job_outputs.iter().enumerate() {
                let words: Vec<u64> = (0..n_in).map(|i| stim_word(t, job, cycle, i)).collect();
                let expected = device.try_step_batch(&words).expect("reference step");
                if &expected != out_words {
                    reference_divergences += 1;
                }
            }
        }
    }
    assert_eq!(
        reference_divergences, 0,
        "unkilled reference diverged from the private replay"
    );

    // The failure-injected run vs the unkilled reference, word for word.
    let mut divergences = 0u64;
    let mut words_compared = 0u64;
    for t in 0..tenants {
        assert_eq!(served[t].len(), reference[t].len(), "job count per tenant");
        for (job_served, job_ref) in served[t].iter().zip(&reference[t]) {
            for (cycle_served, cycle_ref) in job_served.iter().zip(job_ref) {
                words_compared += cycle_ref.len() as u64;
                if cycle_served != cycle_ref {
                    divergences += 1;
                }
            }
        }
    }

    let killed_shard = stats.killed_shard.expect("killed run killed a shard");
    let conserved = stats.sessions_lost == 0
        && stats.sessions_recovered == stats.sessions_on_killed
        && stats.n_sessions_end == tenants;
    assert_eq!(
        divergences, 0,
        "killed run diverged from unkilled reference"
    );
    assert!(conserved, "sessions were lost across the kill");

    let mut mus = stats.migrate_us.clone();
    mus.sort_unstable();
    let pick = |q: f64| -> u64 {
        if mus.is_empty() {
            0
        } else {
            mus[((mus.len() - 1) as f64 * q).round() as usize]
        }
    };
    let migrate_p50_us = pick(0.50);
    let migrate_p99_us = pick(0.99);

    let restores = rec.counter("shard.restores");
    let restore_recompiles = rec.counter("shard.restore.recompiles");
    let recompile_on_restore_rate = if restores == 0 {
        0.0
    } else {
        restore_recompiles as f64 / restores as f64
    };
    let snapshot_bytes_mean = if stats.snapshots == 0 {
        0.0
    } else {
        stats.snapshot_bytes as f64 / stats.snapshots as f64
    };

    println!(
        "workload: {tenants} tenants x {jobs_per_tenant} jobs x {words_per_job} words \
         across {shards} shards, kill after round {cut_at}"
    );
    println!(
        "placement: {:?} sessions per shard at compile time",
        stats.initial_placement
    );
    println!(
        "migrations: {} (p50 {migrate_p50_us} us, p99 {migrate_p99_us} us, \
         {} destination recompiles)",
        stats.migrate_us.len(),
        rec.counter("shard.migrate.recompiles"),
    );
    println!(
        "kill: shard {killed_shard} with {} sessions; recovered {} \
         ({restores} restores, {restore_recompiles} recompiles), lost {}",
        stats.sessions_on_killed, stats.sessions_recovered, stats.sessions_lost,
    );
    println!(
        "identity: {divergences} divergences over {words_compared} words vs unkilled reference"
    );

    let bench = ShardBench {
        experiment: "shard".into(),
        shards,
        tenants,
        jobs_per_tenant,
        words_per_job,
        initial_sessions_per_shard: stats.initial_placement.clone(),
        migrations: rec.counter("shard.migrations"),
        migrate_p50_us,
        migrate_p99_us,
        migrate_recompiles: rec.counter("shard.migrate.recompiles"),
        killed_shard,
        sessions_on_killed: stats.sessions_on_killed,
        sessions_recovered: stats.sessions_recovered,
        sessions_lost: stats.sessions_lost,
        restores,
        restore_recompiles,
        recompile_on_restore_rate,
        checkpoints: rec.counter("shard.checkpoints"),
        snapshot_bytes_mean,
        divergences,
        words_compared,
        conserved,
        wall_ms,
        report: rec.report("shard"),
    };
    let json = serde_json::to_string_pretty(&bench).expect("serialize shard bench");
    std::fs::write("BENCH_shard.json", &json).expect("write BENCH_shard.json");
    println!("\nwrote BENCH_shard.json ({} bytes)", json.len());
}

/// Machine-readable record of the scale-out serving experiment
/// (`BENCH_shard.json`).
#[derive(serde::Serialize)]
struct ShardBench {
    experiment: String,
    shards: usize,
    tenants: usize,
    jobs_per_tenant: usize,
    words_per_job: usize,
    /// Rendezvous placement of the tenants' sessions right after compile.
    initial_sessions_per_shard: Vec<usize>,
    /// Live migrations performed (bounce rounds + rebalance).
    migrations: u64,
    migrate_p50_us: u64,
    /// Checkpoint → restore → close wall time, 99th percentile (gated
    /// against baseline x blowup).
    migrate_p99_us: u64,
    /// Migrations whose destination shard had to compile the design.
    migrate_recompiles: u64,
    killed_shard: usize,
    sessions_on_killed: usize,
    /// Gated == sessions_on_killed.
    sessions_recovered: usize,
    /// Gated at 0.
    sessions_lost: usize,
    /// Session restores performed by post-kill recovery.
    restores: u64,
    restore_recompiles: u64,
    /// restore_recompiles / restores (0 when no restores): how often a
    /// survivor's cache missed a recovered session's design.
    recompile_on_restore_rate: f64,
    checkpoints: u64,
    snapshot_bytes_mean: f64,
    /// Stimulus cycles served by the killed run differing from the unkilled
    /// reference (gated at 0).
    divergences: u64,
    words_compared: u64,
    /// Lost == 0, recovered == on-killed count, all sessions alive at end.
    conserved: bool,
    wall_ms: u64,
    /// Full span/metric report of the failure-injected run's recorder.
    report: RunReport,
}
