//! Shared helpers for the experiment harness and the Criterion benches.

use mcfpga::netlist::{library, Netlist};

/// The benchmark circuit suite used across experiments.
pub fn suite() -> Vec<Netlist> {
    library::benchmark_suite()
}

/// Four distinct combinational circuits used as the 4-context mixed
/// workload (the Table 1 measurement target).
pub fn mixed_contexts() -> Vec<Netlist> {
    vec![
        library::adder(4),
        library::multiplier(3),
        library::alu(4),
        library::popcount(6),
    ]
}

/// Render a ruled section header.
pub fn header(title: &str) {
    println!(
        "\n==== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}
