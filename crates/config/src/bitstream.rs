//! Bitstream container: all configuration columns of a compiled design,
//! keyed by the physical resource each column programs.
//!
//! The bitstream is the hand-off point between the router / logic-block
//! packer (which decide what each configuration bit must be in each context)
//! and the RCM synthesiser / area model (which decide what hardware those
//! columns cost).

use mcfpga_arch::{ContextId, Coord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::column::ConfigColumn;
use crate::stats::ColumnSetStats;

/// Which fabric subsystem a configuration bit belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ResourceClass {
    /// A routing switch inside a switch block's RCM.
    RoutingSwitch,
    /// A connection-block switch (LB pin to track).
    ConnectionSwitch,
    /// A logic-block LUT memory bit.
    LutBit,
    /// A logic-block control bit (size controller, FF enable, ...).
    LogicControl,
}

impl ResourceClass {
    pub const ALL: [ResourceClass; 4] = [
        ResourceClass::RoutingSwitch,
        ResourceClass::ConnectionSwitch,
        ResourceClass::LutBit,
        ResourceClass::LogicControl,
    ];
}

/// Identity of one configuration bit in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceKey {
    pub class: ResourceClass,
    /// Owning cell.
    pub cell: Coord,
    /// Index of the bit within the cell's resources of this class.
    pub index: u32,
}

/// All configuration columns of a compiled design.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bitstream {
    n_contexts: usize,
    /// Serialised as an entry list: JSON objects cannot key on structs.
    #[serde(with = "column_map_serde")]
    columns: BTreeMap<ResourceKey, ConfigColumn>,
}

mod column_map_serde {
    use super::*;
    use serde::{Deserializer, Serializer};

    pub fn serialize<S: Serializer>(
        map: &BTreeMap<ResourceKey, ConfigColumn>,
        ser: S,
    ) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&ResourceKey, &ConfigColumn)> = map.iter().collect();
        serde::Serialize::serialize(&entries, ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(
        de: D,
    ) -> Result<BTreeMap<ResourceKey, ConfigColumn>, D::Error> {
        let entries: Vec<(ResourceKey, ConfigColumn)> = serde::Deserialize::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl Bitstream {
    pub fn new(n_contexts: usize) -> Self {
        Bitstream {
            n_contexts,
            columns: BTreeMap::new(),
        }
    }

    pub fn n_contexts(&self) -> usize {
        self.n_contexts
    }

    /// Set a column; returns the previous value if the resource was already
    /// programmed (useful to detect double-programming bugs).
    pub fn set(&mut self, key: ResourceKey, column: ConfigColumn) -> Option<ConfigColumn> {
        assert_eq!(
            column.n_contexts(),
            self.n_contexts,
            "column context count must match the bitstream"
        );
        self.columns.insert(key, column)
    }

    pub fn get(&self, key: &ResourceKey) -> Option<ConfigColumn> {
        self.columns.get(key).copied()
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&ResourceKey, &ConfigColumn)> {
        self.columns.iter()
    }

    /// Columns of one resource class.
    pub fn columns_of(&self, class: ResourceClass) -> Vec<ConfigColumn> {
        self.columns
            .iter()
            .filter(|(k, _)| k.class == class)
            .map(|(_, c)| *c)
            .collect()
    }

    /// Columns belonging to one cell and class (a single switch block's
    /// configuration data, as in Table 1).
    pub fn columns_of_cell(&self, cell: Coord, class: ResourceClass) -> Vec<ConfigColumn> {
        self.columns
            .iter()
            .filter(|(k, _)| k.class == class && k.cell == cell)
            .map(|(_, c)| *c)
            .collect()
    }

    /// Table 1-style statistics per resource class.
    pub fn stats_by_class(&self, ctx: ContextId) -> BTreeMap<ResourceClass, ColumnSetStats> {
        ResourceClass::ALL
            .into_iter()
            .map(|class| (class, ColumnSetStats::measure(&self.columns_of(class), ctx)))
            .collect()
    }

    /// Statistics over every column.
    pub fn stats(&self, ctx: ContextId) -> ColumnSetStats {
        let all: Vec<ConfigColumn> = self.columns.values().copied().collect();
        ColumnSetStats::measure(&all, ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(class: ResourceClass, x: u16, y: u16, index: u32) -> ResourceKey {
        ResourceKey {
            class,
            cell: Coord::new(x, y),
            index,
        }
    }

    #[test]
    fn set_get_roundtrip_and_double_program_detection() {
        let mut bs = Bitstream::new(4);
        let k = key(ResourceClass::RoutingSwitch, 1, 2, 7);
        let col = ConfigColumn::from_mask(0b1010, 4);
        assert!(bs.set(k, col).is_none());
        assert_eq!(bs.get(&k), Some(col));
        let prev = bs.set(k, ConfigColumn::constant(true, 4));
        assert_eq!(prev, Some(col));
        assert_eq!(bs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "context count")]
    fn rejects_mismatched_context_count() {
        let mut bs = Bitstream::new(4);
        bs.set(
            key(ResourceClass::LutBit, 0, 0, 0),
            ConfigColumn::constant(false, 8),
        );
    }

    #[test]
    fn columns_filter_by_class_and_cell() {
        let mut bs = Bitstream::new(4);
        bs.set(
            key(ResourceClass::RoutingSwitch, 0, 0, 0),
            ConfigColumn::constant(true, 4),
        );
        bs.set(
            key(ResourceClass::RoutingSwitch, 0, 0, 1),
            ConfigColumn::constant(false, 4),
        );
        bs.set(
            key(ResourceClass::RoutingSwitch, 1, 0, 0),
            ConfigColumn::from_mask(0b0011, 4),
        );
        bs.set(
            key(ResourceClass::LutBit, 0, 0, 0),
            ConfigColumn::from_mask(0b0001, 4),
        );
        assert_eq!(bs.columns_of(ResourceClass::RoutingSwitch).len(), 3);
        assert_eq!(bs.columns_of(ResourceClass::LutBit).len(), 1);
        assert_eq!(
            bs.columns_of_cell(Coord::new(0, 0), ResourceClass::RoutingSwitch)
                .len(),
            2
        );
    }

    #[test]
    fn stats_by_class_cover_all_classes() {
        let mut bs = Bitstream::new(4);
        bs.set(
            key(ResourceClass::ConnectionSwitch, 2, 3, 0),
            ConfigColumn::constant(true, 4),
        );
        let ctx = ContextId::new(4).unwrap();
        let by_class = bs.stats_by_class(ctx);
        assert_eq!(by_class.len(), 4);
        assert_eq!(by_class[&ResourceClass::ConnectionSwitch].n_columns, 1);
        assert_eq!(by_class[&ResourceClass::LutBit].n_columns, 0);
        assert_eq!(bs.stats(ctx).n_columns, 1);
    }

    #[test]
    fn serde_roundtrip() {
        let mut bs = Bitstream::new(4);
        bs.set(
            key(ResourceClass::LogicControl, 5, 6, 9),
            ConfigColumn::from_mask(0b0110, 4),
        );
        let json = serde_json::to_string(&bs).unwrap();
        let back: Bitstream = serde_json::from_str(&json).unwrap();
        assert_eq!(bs, back);
    }
}
