//! One configuration bit across all contexts.

use mcfpga_arch::ContextId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The value of a single configuration bit in each context of the device.
///
/// Bit `c` of `bits` is the configuration bit's value when context `c` is
/// active. For the paper's 4-context device a column is one of 16 patterns,
/// written `(C3, C2, C1, C0)` in the figures — [`ConfigColumn::pattern_string`]
/// renders that form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConfigColumn {
    bits: u32,
    n_contexts: u8,
}

impl ConfigColumn {
    /// Build from a raw per-context bitmask. Bits above `n_contexts` are
    /// cleared.
    pub fn from_mask(bits: u32, n_contexts: usize) -> Self {
        assert!(
            (2..=ContextId::MAX_CONTEXTS).contains(&n_contexts),
            "context count {n_contexts} out of range"
        );
        let mask = if n_contexts == 32 {
            u32::MAX
        } else {
            (1u32 << n_contexts) - 1
        };
        ConfigColumn {
            bits: bits & mask,
            n_contexts: n_contexts as u8,
        }
    }

    /// Column that is `value` in every context (Fig. 3's patterns).
    pub fn constant(value: bool, n_contexts: usize) -> Self {
        Self::from_mask(if value { u32::MAX } else { 0 }, n_contexts)
    }

    /// Build by sampling a function of the context index.
    pub fn from_fn(n_contexts: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        let mut bits = 0u32;
        for c in 0..n_contexts {
            if f(c) {
                bits |= 1 << c;
            }
        }
        Self::from_mask(bits, n_contexts)
    }

    /// The column equal to context-ID bit `S_bit` (optionally inverted) —
    /// Fig. 4's patterns.
    pub fn id_bit(ctx: ContextId, bit: usize, inverted: bool) -> Self {
        Self::from_fn(ctx.n_contexts(), |c| ctx.id_bit(c, bit) ^ inverted)
    }

    /// Value of the configuration bit in context `c`.
    #[inline]
    pub fn value_in(&self, context: usize) -> bool {
        debug_assert!(context < self.n_contexts as usize);
        (self.bits >> context) & 1 == 1
    }

    #[inline]
    pub fn n_contexts(&self) -> usize {
        self.n_contexts as usize
    }

    /// Raw per-context bitmask (bit `c` = value in context `c`).
    #[inline]
    pub fn mask(&self) -> u32 {
        self.bits
    }

    /// Whether the bit never changes across contexts.
    pub fn is_constant(&self) -> bool {
        self.bits == 0 || self.bits == self.full_mask()
    }

    fn full_mask(&self) -> u32 {
        if self.n_contexts == 32 {
            u32::MAX
        } else {
            (1u32 << self.n_contexts) - 1
        }
    }

    /// Number of context transitions `c -> c+1` where the bit changes —
    /// the quantity behind the paper's "<3% of configuration data changes"
    /// statistic.
    pub fn n_changes(&self) -> usize {
        (0..self.n_contexts as usize - 1)
            .filter(|&c| self.value_in(c) != self.value_in(c + 1))
            .count()
    }

    /// Restrict the column to the contexts where ID bit `bit` has `value`,
    /// producing a column over the halved context space (used by the RCM
    /// decoder's Shannon decomposition).
    pub fn cofactor(&self, ctx: ContextId, bit: usize, value: bool) -> ConfigColumn {
        let kept: Vec<bool> = (0..self.n_contexts as usize)
            .filter(|&c| ctx.id_bit(c, bit) == value)
            .map(|c| self.value_in(c))
            .collect();
        assert!(
            !kept.is_empty(),
            "cofactor selected no contexts (bit {bit} never {value})"
        );
        // A 1-context cofactor is represented as a 2-context constant-ish
        // column so the type stays uniform; decoder code special-cases it.
        let n = kept.len().max(2);
        ConfigColumn::from_fn(n, |c| kept[c.min(kept.len() - 1)])
    }

    /// Paper-style pattern string `(C_{n-1}, ..., C_0)`, highest context
    /// first, e.g. `1000` for Fig. 9's example.
    pub fn pattern_string(&self) -> String {
        (0..self.n_contexts as usize)
            .rev()
            .map(|c| if self.value_in(c) { '1' } else { '0' })
            .collect()
    }

    /// All `2^n` columns for a context count (Figs. 3–5 enumerate these for
    /// n = 4).
    pub fn enumerate_all(n_contexts: usize) -> Vec<ConfigColumn> {
        assert!(n_contexts <= 16, "enumeration only sensible for small n");
        (0..(1u32 << n_contexts))
            .map(|m| ConfigColumn::from_mask(m, n_contexts))
            .collect()
    }
}

impl fmt::Display for ConfigColumn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pattern_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    #[test]
    fn constant_columns_match_fig3() {
        let zeros = ConfigColumn::constant(false, 4);
        let ones = ConfigColumn::constant(true, 4);
        assert_eq!(zeros.pattern_string(), "0000");
        assert_eq!(ones.pattern_string(), "1111");
        assert!(zeros.is_constant() && ones.is_constant());
        assert_eq!(zeros.n_changes(), 0);
        assert_eq!(ones.n_changes(), 0);
    }

    #[test]
    fn id_bit_columns_match_fig4() {
        let ctx = ctx4();
        // Fig. 4 lists (C3,C2,C1,C0) = 1010, 1100, 0101, 0011 as the
        // single-ID-bit patterns (S0, S1, !S0, !S1).
        assert_eq!(ConfigColumn::id_bit(ctx, 0, false).pattern_string(), "1010");
        assert_eq!(ConfigColumn::id_bit(ctx, 1, false).pattern_string(), "1100");
        assert_eq!(ConfigColumn::id_bit(ctx, 0, true).pattern_string(), "0101");
        assert_eq!(ConfigColumn::id_bit(ctx, 1, true).pattern_string(), "0011");
    }

    #[test]
    fn value_in_reads_each_context() {
        let col = ConfigColumn::from_mask(0b1000, 4); // only context 3
        assert_eq!(col.pattern_string(), "1000");
        assert!(!col.value_in(0));
        assert!(!col.value_in(1));
        assert!(!col.value_in(2));
        assert!(col.value_in(3));
        assert_eq!(col.n_changes(), 1);
    }

    #[test]
    fn masks_are_clipped_to_context_count() {
        let col = ConfigColumn::from_mask(0xFFFF_FFFF, 4);
        assert_eq!(col.mask(), 0b1111);
    }

    #[test]
    fn cofactor_splits_on_id_bits() {
        let ctx = ctx4();
        // Pattern 1000: value 1 only in context 3 (S1=1, S0=1).
        let col = ConfigColumn::from_mask(0b1000, 4);
        // Fix S1 = 1: contexts 2 and 3 -> values 0, 1 -> pattern "10".
        let hi = col.cofactor(ctx, 1, true);
        assert_eq!(hi.pattern_string(), "10");
        // Fix S1 = 0: contexts 0 and 1 -> values 0, 0 -> constant 0.
        let lo = col.cofactor(ctx, 1, false);
        assert!(lo.is_constant());
        assert!(!lo.value_in(0));
    }

    #[test]
    fn enumerate_all_is_complete_and_distinct() {
        let all = ConfigColumn::enumerate_all(4);
        assert_eq!(all.len(), 16);
        let mut strings: Vec<String> = all.iter().map(|c| c.pattern_string()).collect();
        strings.sort();
        strings.dedup();
        assert_eq!(strings.len(), 16);
    }

    #[test]
    fn display_matches_pattern_string() {
        let col = ConfigColumn::from_mask(0b0110, 4);
        assert_eq!(format!("{col}"), "0110");
    }
}
