//! Configuration data for the multi-context FPGA: per-bit cross-context
//! columns, the pattern taxonomy of Figs. 3–5, redundancy/regularity
//! statistics (Table 1), and the bitstream container.
//!
//! The central object is the [`ConfigColumn`]: the value of *one*
//! configuration bit in *every* context. The paper's whole argument is that
//! these columns are highly redundant (most are constant) and regular (many
//! equal a context-ID bit), so the per-bit `n`-plane memory of a conventional
//! MC-FPGA can be replaced by tiny reconfigurable decoders.

pub mod bitstream;
pub mod column;
pub mod pattern;
pub mod reconfig;
pub mod stats;

pub use bitstream::{Bitstream, ResourceClass, ResourceKey};
pub use column::ConfigColumn;
pub use pattern::{classify, pattern_census, PatternClass};
pub use reconfig::{apply_records, delta_records, plan_reload, ReconfigModel, ReloadPlan};
pub use stats::{measure_change_rate, random_column, ColumnSetStats};
