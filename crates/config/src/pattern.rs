//! The configuration-bit pattern taxonomy of Figs. 3–5.
//!
//! For a 4-context device there are 16 possible columns. The paper sorts
//! them by decoder hardware cost:
//!
//! * **Fig. 3** — constants (`0000`, `1111`): a single memory bit.
//! * **Fig. 4** — a single context-ID bit or its complement
//!   (`1010`=S0, `0101`=!S0, `1100`=S1, `0011`=!S1): one memory bit plus a
//!   wire to the ID bit.
//! * **Fig. 5** — the ten remaining patterns: a 2:1 multiplexer over the ID
//!   bits.
//!
//! [`classify`] generalises the taxonomy to any context count.

use mcfpga_arch::ContextId;
use serde::{Deserialize, Serialize};

use crate::column::ConfigColumn;

/// Hardware class of a configuration column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PatternClass {
    /// Fig. 3: the bit never changes; `value` is its constant level.
    Constant { value: bool },
    /// Fig. 4: the bit equals context-ID bit `S_bit` (or its complement).
    SingleBit { bit: usize, inverted: bool },
    /// Fig. 5: a genuine function of two or more ID bits.
    General,
}

impl PatternClass {
    /// Fraction-independent display name matching the figure grouping.
    pub fn figure(&self) -> &'static str {
        match self {
            PatternClass::Constant { .. } => "Fig.3 (constant)",
            PatternClass::SingleBit { .. } => "Fig.4 (single ID bit)",
            PatternClass::General => "Fig.5 (two ID bits)",
        }
    }
}

/// Classify a column against a context encoding.
pub fn classify(column: ConfigColumn, ctx: ContextId) -> PatternClass {
    assert_eq!(
        column.n_contexts(),
        ctx.n_contexts(),
        "column/context-count mismatch"
    );
    if column.is_constant() {
        return PatternClass::Constant {
            value: column.value_in(0),
        };
    }
    for bit in 0..ctx.n_bits() {
        for inverted in [false, true] {
            if ConfigColumn::id_bit(ctx, bit, inverted) == column {
                return PatternClass::SingleBit { bit, inverted };
            }
        }
    }
    PatternClass::General
}

/// Census over all `2^n` patterns: `(constant, single-bit, general)` counts.
/// For n = 4 this is the paper's 2 / 4 / 10 split.
pub fn pattern_census(ctx: ContextId) -> (usize, usize, usize) {
    let mut constant = 0;
    let mut single = 0;
    let mut general = 0;
    for col in ConfigColumn::enumerate_all(ctx.n_contexts()) {
        match classify(col, ctx) {
            PatternClass::Constant { .. } => constant += 1,
            PatternClass::SingleBit { .. } => single += 1,
            PatternClass::General => general += 1,
        }
    }
    (constant, single, general)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(n: usize) -> ContextId {
        ContextId::new(n).unwrap()
    }

    #[test]
    fn four_context_census_is_2_4_10() {
        assert_eq!(pattern_census(ctx(4)), (2, 4, 10));
    }

    #[test]
    fn two_context_census_has_no_general_patterns() {
        // With one ID bit, every non-constant pattern *is* the ID bit.
        assert_eq!(pattern_census(ctx(2)), (2, 2, 0));
    }

    #[test]
    fn eight_context_census() {
        // 2 constants + 6 single-bit (3 bits x 2 polarities); the remaining
        // 248 of 256 need general decoding.
        assert_eq!(pattern_census(ctx(8)), (2, 6, 248));
    }

    #[test]
    fn classify_identifies_specific_patterns() {
        let c = ctx(4);
        assert_eq!(
            classify(ConfigColumn::constant(true, 4), c),
            PatternClass::Constant { value: true }
        );
        // Mask bit c = value in context c: 0b1010 is high in contexts 1
        // and 3, exactly where S0 = 1.
        assert_eq!(
            classify(ConfigColumn::from_mask(0b1010, 4), c),
            PatternClass::SingleBit {
                bit: 0,
                inverted: false
            }
        );
        assert_eq!(
            classify(ConfigColumn::from_mask(0b0101, 4), c),
            PatternClass::SingleBit {
                bit: 0,
                inverted: true
            }
        );
        assert_eq!(
            classify(ConfigColumn::from_mask(0b1000, 4), c),
            PatternClass::General
        );
        assert_eq!(
            classify(ConfigColumn::from_mask(0b0110, 4), c),
            PatternClass::General
        );
    }

    #[test]
    fn every_pattern_class_consistent_with_reconstruction() {
        // If classify says SingleBit, reconstructing from the ID bit must
        // reproduce the column; if Constant, the constant must match.
        let c = ctx(4);
        for col in ConfigColumn::enumerate_all(4) {
            match classify(col, c) {
                PatternClass::Constant { value } => {
                    assert_eq!(ConfigColumn::constant(value, 4), col);
                }
                PatternClass::SingleBit { bit, inverted } => {
                    assert_eq!(ConfigColumn::id_bit(c, bit, inverted), col);
                }
                PatternClass::General => {
                    assert!(!col.is_constant());
                }
            }
        }
    }

    #[test]
    fn figure_labels() {
        assert!(PatternClass::General.figure().contains("Fig.5"));
        assert!(PatternClass::Constant { value: false }
            .figure()
            .contains("Fig.3"));
        assert!(PatternClass::SingleBit {
            bit: 0,
            inverted: false
        }
        .figure()
        .contains("Fig.4"));
    }
}
