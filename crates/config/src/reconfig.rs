//! Reconfiguration-time model: exploiting redundancy to speed up context
//! loading (the paper's reference \[4\], Kennedy FPL'03).
//!
//! An MC-FPGA switches between *resident* planes in one cycle, but loading a
//! new configuration into a plane from outside still costs bandwidth. The
//! same redundancy the RCM converts into area lets a loader send only the
//! *delta* against the plane already resident: with <5% of bits changing,
//! delta reconfiguration is an order of magnitude faster than a full
//! reload — which is why the paper can assume contexts are swapped in the
//! background.

use serde::{Deserialize, Serialize};

/// Loader timing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconfigModel {
    /// Configuration-port width in bits per cycle (full reload streams at
    /// this rate).
    pub word_bits: usize,
    /// Cycles to issue one delta record (address + data word).
    pub delta_record_cycles: usize,
    /// Bits covered by one delta record.
    pub delta_word_bits: usize,
}

impl Default for ReconfigModel {
    fn default() -> Self {
        ReconfigModel {
            word_bits: 32,
            delta_record_cycles: 2, // address cycle + data cycle
            delta_word_bits: 32,
        }
    }
}

/// A planned reconfiguration from one configuration image to another.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReloadPlan {
    pub total_bits: usize,
    pub changed_bits: usize,
    /// Words that contain at least one changed bit (what the delta loader
    /// must actually send).
    pub dirty_words: usize,
    pub total_words: usize,
    pub full_cycles: usize,
    pub delta_cycles: usize,
}

impl ReloadPlan {
    /// Speedup of delta over full reconfiguration.
    pub fn speedup(&self) -> f64 {
        if self.delta_cycles == 0 {
            f64::INFINITY
        } else {
            self.full_cycles as f64 / self.delta_cycles as f64
        }
    }

    /// Fraction of bits that changed.
    pub fn change_fraction(&self) -> f64 {
        if self.total_bits == 0 {
            0.0
        } else {
            self.changed_bits as f64 / self.total_bits as f64
        }
    }
}

/// Plan the reload of `new` over a resident image `old`.
pub fn plan_reload(old: &[bool], new: &[bool], model: &ReconfigModel) -> ReloadPlan {
    assert_eq!(old.len(), new.len(), "images must be the same size");
    let total_bits = old.len();
    let changed_bits = old.iter().zip(new).filter(|(a, b)| a != b).count();
    let w = model.delta_word_bits;
    let total_words = total_bits.div_ceil(model.word_bits);
    let dirty_words = old
        .chunks(w)
        .zip(new.chunks(w))
        .filter(|(a, b)| a != b)
        .count();
    ReloadPlan {
        total_bits,
        changed_bits,
        dirty_words,
        total_words,
        full_cycles: total_words,
        delta_cycles: dirty_words * model.delta_record_cycles,
    }
}

/// Delta-encode: the dirty-word records a loader would stream
/// (`(word_index, new_word_bits)`).
pub fn delta_records(old: &[bool], new: &[bool], model: &ReconfigModel) -> Vec<(usize, Vec<bool>)> {
    assert_eq!(old.len(), new.len());
    let w = model.delta_word_bits;
    old.chunks(w)
        .zip(new.chunks(w))
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, (_, b))| (i, b.to_vec()))
        .collect()
}

/// Apply delta records to a resident image (the loader's other half);
/// `apply(old, delta_records(old, new)) == new`.
pub fn apply_records(image: &mut [bool], records: &[(usize, Vec<bool>)], model: &ReconfigModel) {
    let w = model.delta_word_bits;
    for (word, bits) in records {
        let start = word * w;
        image[start..start + bits.len()].copy_from_slice(bits);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_image(n: usize, rng: &mut StdRng) -> Vec<bool> {
        (0..n).map(|_| rng.gen_bool(0.5)).collect()
    }

    fn perturbed(image: &[bool], rate: f64, rng: &mut StdRng) -> Vec<bool> {
        image
            .iter()
            .map(|&b| if rng.gen_bool(rate) { !b } else { b })
            .collect()
    }

    #[test]
    fn identical_images_cost_nothing() {
        let model = ReconfigModel::default();
        let img = vec![true; 1024];
        let plan = plan_reload(&img, &img, &model);
        assert_eq!(plan.changed_bits, 0);
        assert_eq!(plan.delta_cycles, 0);
        assert_eq!(plan.speedup(), f64::INFINITY);
    }

    #[test]
    fn five_percent_change_gives_large_speedup() {
        let model = ReconfigModel::default();
        let mut rng = StdRng::seed_from_u64(8);
        let old = random_image(32 * 1024, &mut rng);
        let new = perturbed(&old, 0.05, &mut rng);
        let plan = plan_reload(&old, &new, &model);
        assert!((plan.change_fraction() - 0.05).abs() < 0.01);
        // With 32-bit words and 5% random bit changes most words are dirty
        // (1 - 0.95^32 ~ 0.80), so the speedup is modest at word level...
        assert!(plan.speedup() > 0.5);
        // ...but at the paper's structural redundancy (whole switch columns
        // unchanged) dirtiness clusters; model that with block-sparse
        // changes:
        let mut new_sparse = old.clone();
        for chunk in new_sparse.chunks_mut(32).step_by(20) {
            for b in chunk.iter_mut() {
                *b = !*b;
            }
        }
        let plan = plan_reload(&old, &new_sparse, &model);
        assert!(
            plan.speedup() > 8.0,
            "clustered 5% change speedup {:.1}",
            plan.speedup()
        );
    }

    #[test]
    fn delta_records_roundtrip() {
        let model = ReconfigModel::default();
        let mut rng = StdRng::seed_from_u64(13);
        let old = random_image(1000, &mut rng);
        let new = perturbed(&old, 0.1, &mut rng);
        let records = delta_records(&old, &new, &model);
        let mut img = old.clone();
        apply_records(&mut img, &records, &model);
        assert_eq!(img, new);
        let plan = plan_reload(&old, &new, &model);
        assert_eq!(records.len(), plan.dirty_words);
    }

    #[test]
    fn full_reload_scales_with_image_size() {
        let model = ReconfigModel::default();
        let old = vec![false; 640];
        let new = vec![true; 640];
        let plan = plan_reload(&old, &new, &model);
        assert_eq!(plan.full_cycles, 20);
        assert_eq!(plan.dirty_words, 20);
        // All-dirty delta is *slower* than full reload (address overhead) —
        // the crossover the loader must respect.
        assert!(plan.delta_cycles > plan.full_cycles);
    }

    #[test]
    #[should_panic(expected = "same size")]
    fn size_mismatch_panics() {
        let model = ReconfigModel::default();
        let _ = plan_reload(&[true], &[true, false], &model);
    }
}
