//! Redundancy and regularity statistics over configuration data (Table 1).
//!
//! The paper motivates the RCM with three observations about a switch
//! block's configuration data:
//!
//! 1. many columns never change between contexts (G3, G9 in Table 1);
//! 2. different switches carry identical columns (G2 = G4);
//! 3. many columns are *regular*: they equal a context-ID bit (G2 repeats
//!    `(0, 1)`).
//!
//! [`ColumnSetStats`] measures all three on any set of columns, plus the
//! inter-context change rate the evaluation parameterises at 5%.

use mcfpga_arch::ContextId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::column::ConfigColumn;
use crate::pattern::{classify, PatternClass};

/// Statistics over a set of configuration columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnSetStats {
    pub n_columns: usize,
    /// Columns that never change (Fig. 3 / Table 1's G3, G9).
    pub n_constant: usize,
    /// Columns equal to a single context-ID bit (Fig. 4).
    pub n_single_bit: usize,
    /// Columns needing general decoding (Fig. 5).
    pub n_general: usize,
    /// Columns whose pattern also appears on an earlier column
    /// (Table 1's G2 = G4 inter-switch redundancy).
    pub n_duplicate: usize,
    /// Number of distinct patterns present.
    pub n_distinct: usize,
    /// Fraction of (column, transition) pairs where the bit changes between
    /// consecutive contexts — the paper's "<3%" / assumed-5% statistic.
    pub change_rate: f64,
}

impl ColumnSetStats {
    /// Measure a column set.
    pub fn measure(columns: &[ConfigColumn], ctx: ContextId) -> Self {
        let mut n_constant = 0;
        let mut n_single = 0;
        let mut n_general = 0;
        let mut seen: HashMap<u32, usize> = HashMap::new();
        let mut n_duplicate = 0;
        let mut changes = 0usize;
        for col in columns {
            match classify(*col, ctx) {
                PatternClass::Constant { .. } => n_constant += 1,
                PatternClass::SingleBit { .. } => n_single += 1,
                PatternClass::General => n_general += 1,
            }
            *seen.entry(col.mask()).or_insert(0) += 1;
            changes += col.n_changes();
        }
        for count in seen.values() {
            n_duplicate += count - 1;
        }
        let transitions = columns.len() * (ctx.n_contexts() - 1);
        ColumnSetStats {
            n_columns: columns.len(),
            n_constant,
            n_single_bit: n_single,
            n_general,
            n_duplicate,
            n_distinct: seen.len(),
            change_rate: if transitions == 0 {
                0.0
            } else {
                changes as f64 / transitions as f64
            },
        }
    }

    /// Fraction of columns that are constant.
    pub fn constant_fraction(&self) -> f64 {
        if self.n_columns == 0 {
            0.0
        } else {
            self.n_constant as f64 / self.n_columns as f64
        }
    }

    /// Fraction of columns decodable by a single switch element
    /// (constant or single-ID-bit).
    pub fn cheap_fraction(&self) -> f64 {
        if self.n_columns == 0 {
            0.0
        } else {
            (self.n_constant + self.n_single_bit) as f64 / self.n_columns as f64
        }
    }

    /// Render a Table 1-style summary.
    pub fn table_string(&self) -> String {
        format!(
            "columns: {}  constant: {} ({:.1}%)  single-bit: {}  general: {}  \
             duplicates: {}  distinct: {}  change-rate: {:.2}%",
            self.n_columns,
            self.n_constant,
            100.0 * self.constant_fraction(),
            self.n_single_bit,
            self.n_general,
            self.n_duplicate,
            self.n_distinct,
            100.0 * self.change_rate
        )
    }
}

/// Generate a random column under the paper's change model: the context-0
/// value is uniform, and each consecutive context flips the bit with
/// probability `change_rate` (the evaluation assumes 0.05).
pub fn random_column(ctx: ContextId, change_rate: f64, rng: &mut impl Rng) -> ConfigColumn {
    let mut bits = 0u32;
    let mut cur = rng.gen_bool(0.5);
    for c in 0..ctx.n_contexts() {
        if c > 0 && rng.gen_bool(change_rate) {
            cur = !cur;
        }
        if cur {
            bits |= 1 << c;
        }
    }
    ConfigColumn::from_mask(bits, ctx.n_contexts())
}

/// Measure the *structural* change rate between two netlist-like bit
/// vectors: the fraction of positions that differ. Used to check real
/// circuit pairs against the paper's <3%/5% assumption.
pub fn measure_change_rate(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "change rate needs equal-length data");
    if a.is_empty() {
        return 0.0;
    }
    let diff = a.iter().zip(b).filter(|(x, y)| x != y).count();
    diff as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    /// The paper's Table 1 rows G1, G2, G3, G4, G9, written as the figures
    /// print them: `(C3, C2, C1, C0)` strings.
    fn table1_columns() -> Vec<ConfigColumn> {
        ["1010", "0101", "0000", "0101", "1111"]
            .iter()
            .map(|s| ConfigColumn::from_fn(4, |c| s.as_bytes()[3 - c] == b'1'))
            .collect()
    }

    #[test]
    fn table1_stats_show_redundancy_and_regularity() {
        let cols = table1_columns();
        let stats = ColumnSetStats::measure(&cols, ctx4());
        assert_eq!(stats.n_columns, 5);
        // G3 and G9 are constant.
        assert_eq!(stats.n_constant, 2);
        // G1 (=S0), G2 and G4 (=!S0) are single-ID-bit patterns.
        assert_eq!(stats.n_single_bit, 3);
        assert_eq!(stats.n_general, 0);
        // G4 duplicates G2.
        assert_eq!(stats.n_duplicate, 1);
        assert_eq!(stats.n_distinct, 4);
    }

    #[test]
    fn change_rate_of_constants_is_zero() {
        let cols = vec![
            ConfigColumn::constant(true, 4),
            ConfigColumn::constant(false, 4),
        ];
        let stats = ColumnSetStats::measure(&cols, ctx4());
        assert_eq!(stats.change_rate, 0.0);
        assert_eq!(stats.constant_fraction(), 1.0);
        assert_eq!(stats.cheap_fraction(), 1.0);
    }

    #[test]
    fn change_rate_of_alternating_pattern_is_one() {
        // 0101-style pattern changes at every transition.
        let col = ConfigColumn::id_bit(ctx4(), 0, false);
        let stats = ColumnSetStats::measure(&[col], ctx4());
        assert_eq!(stats.change_rate, 1.0);
    }

    #[test]
    fn random_columns_approach_requested_change_rate() {
        let ctx = ctx4();
        let mut rng = StdRng::seed_from_u64(17);
        let cols: Vec<ConfigColumn> = (0..20_000)
            .map(|_| random_column(ctx, 0.05, &mut rng))
            .collect();
        let stats = ColumnSetStats::measure(&cols, ctx);
        assert!(
            (stats.change_rate - 0.05).abs() < 0.01,
            "measured {:.4}",
            stats.change_rate
        );
        // With 5% change, the vast majority of columns are constant:
        // (1 - 0.05)^3 ~= 0.857.
        assert!(
            (stats.constant_fraction() - 0.857).abs() < 0.02,
            "constant fraction {:.4}",
            stats.constant_fraction()
        );
    }

    #[test]
    fn zero_change_rate_yields_only_constants() {
        let ctx = ctx4();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            assert!(random_column(ctx, 0.0, &mut rng).is_constant());
        }
    }

    #[test]
    fn measure_change_rate_counts_positions() {
        let a = [true, false, true, true];
        let b = [true, true, true, false];
        assert_eq!(measure_change_rate(&a, &b), 0.5);
        assert_eq!(measure_change_rate(&a, &a), 0.0);
        assert_eq!(measure_change_rate(&[], &[]), 0.0);
    }

    #[test]
    fn table_string_is_informative() {
        let cols = table1_columns();
        let s = ColumnSetStats::measure(&cols, ctx4()).table_string();
        assert!(s.contains("columns: 5"));
        assert!(s.contains("duplicates: 1"));
    }
}
