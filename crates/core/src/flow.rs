//! High-level flow helpers: measured (rather than analytic) area
//! comparisons, the one-call Section 5 evaluation, and the instrumented
//! end-to-end flow behind `BENCH_flow.json`.

use mcfpga_arch::ArchSpec;
use mcfpga_area::{
    area_comparison, conventional_lb_area, conventional_switch_area, proposed_lb_area,
    rcm_column_area, AreaComparison, AreaParams, FabricWeights, LbWorkload, Technology,
};
use mcfpga_netlist::Netlist;
use mcfpga_obs::{Recorder, RunReport};
use mcfpga_rcm::{synthesize, synthesize_with};
use mcfpga_sim::{CompileError, CompileOptions, Device, MultiDevice};

/// Area comparison driven by a *compiled device's measured* statistics —
/// actual switch columns from routing and actual plane demand from
/// cross-context sharing — instead of the analytic change-rate model.
pub fn measured_area_comparison(
    device: &Device,
    tech: Technology,
    params: &AreaParams,
    weights: &FabricWeights,
) -> AreaComparison {
    let arch = device.arch();
    let ctx = arch.context_id();
    let n = ctx.n_contexts();

    // Switch side: mean measured column area over the routed design.
    let columns = device.switch_usage().columns();
    let mean_col_area = if columns.is_empty() {
        0.0
    } else {
        columns
            .iter()
            .map(|c| rcm_column_area(&synthesize(*c, ctx).cost(), tech, params))
            .sum::<f64>()
            / columns.len() as f64
    };
    let conv_switch = conventional_switch_area(n, params) * weights.switches_per_cell;
    let prop_switch = mean_col_area * weights.switches_per_cell;

    // Logic side: measured plane demand and controller cost.
    let shared = device.shared_design();
    let report = device.report();
    let n_lbs = report.n_lbs.max(1) as f64;
    let lb_workload = LbWorkload {
        mean_planes: shared.mean_planes(),
        mean_controller_ses: report.controller_ses as f64 / n_lbs,
    };
    let conv_lb = conventional_lb_area(&arch.lut, n, params);
    let prop_lb = proposed_lb_area(&arch.lut, &lb_workload, tech, params);

    let conventional_cell = conv_switch + conv_lb;
    let proposed_cell = prop_switch + prop_lb;
    AreaComparison {
        n_contexts: n,
        change_rate: report.switch_stats.change_rate,
        conventional_cell,
        proposed_cell,
        ratio: proposed_cell / conventional_cell,
        conventional_switches: conv_switch,
        proposed_switches: prop_switch,
        conventional_lb: conv_lb,
        proposed_lb: prop_lb,
    }
}

/// The paper's Section 5 evaluation in one call: 4 contexts, 6-input
/// 2-output MCMG-LUTs, 5% configuration change.
#[derive(Debug, Clone)]
pub struct PaperEvaluation {
    pub cmos: AreaComparison,
    pub fepg: AreaComparison,
}

/// Evaluate the paper's headline point (expected: CMOS ≈ 45%, FePG ≈ 37%).
pub fn evaluate_paper_point() -> PaperEvaluation {
    let arch = ArchSpec::paper_default();
    let params = AreaParams::paper_default();
    let weights = FabricWeights::default();
    PaperEvaluation {
        cmos: area_comparison(&arch, 0.05, Technology::Cmos, &params, &weights),
        fepg: area_comparison(&arch, 0.05, Technology::Fepg, &params, &weights),
    }
}

/// Outcome of one instrumented end-to-end run: the compiled device, the
/// headline area comparison at both technologies, and the observability
/// report with per-phase spans and metrics.
pub struct FlowOutcome {
    pub device: MultiDevice,
    pub cmos: AreaComparison,
    pub fepg: AreaComparison,
    pub report: RunReport,
}

/// The instrumented end-to-end pipeline. Configure a run through
/// [`Flow::builder`]; [`run_flow`] is the zero-configuration convenience
/// form.
pub struct Flow;

impl Flow {
    /// Start configuring a flow run. Every knob has a default: disabled
    /// recorder, default [`CompileOptions`], 25 simulated cycles per
    /// context.
    pub fn builder() -> FlowBuilder {
        FlowBuilder::default()
    }
}

/// Builder for one end-to-end flow run — map, place, route, switch-column
/// extraction, RCM decoder synthesis, a short multi-context simulation, and
/// the Section 5 area evaluation.
///
/// ```no_run
/// use mcfpga::flow::Flow;
/// use mcfpga::sim::CompileOptions;
/// use mcfpga_obs::Recorder;
///
/// let arch = mcfpga_arch::ArchSpec::paper_default();
/// let circuits: Vec<mcfpga_netlist::Netlist> = todo!("one netlist per context");
/// let rec = Recorder::enabled();
/// let outcome = Flow::builder()
///     .recorder(&rec)
///     .compile_options(CompileOptions::default().with_parallel(false))
///     .sim_cycles(10)
///     .run(&arch, &circuits)
///     .expect("flow compiles");
/// println!("CMOS ratio {:.3}", outcome.cmos.ratio);
/// ```
#[derive(Debug, Clone)]
pub struct FlowBuilder {
    recorder: Recorder,
    options: CompileOptions,
    sim_cycles: usize,
}

impl Default for FlowBuilder {
    fn default() -> Self {
        FlowBuilder {
            recorder: Recorder::disabled(),
            options: CompileOptions::default(),
            sim_cycles: 25,
        }
    }
}

impl FlowBuilder {
    /// Record a span per phase and the standard metrics into `rec`. With
    /// the default disabled recorder this is just the uninstrumented flow.
    pub fn recorder(mut self, rec: &Recorder) -> Self {
        self.recorder = rec.clone();
        self
    }

    /// Compile-pipeline knobs (serial vs parallel per-context compile,
    /// router rip-up schedule).
    pub fn compile_options(mut self, opts: CompileOptions) -> Self {
        self.options = opts;
        self
    }

    /// Clock cycles run per programmed context (with a context switch
    /// between contexts), driving the `sim.context_switches` / `sim.steps`
    /// counters; the inputs are all-low, which is enough for timing.
    pub fn sim_cycles(mut self, cycles: usize) -> Self {
        self.sim_cycles = cycles;
        self
    }

    /// Run the configured pipeline over `circuits` (one netlist per
    /// context) on `arch`.
    pub fn run(&self, arch: &ArchSpec, circuits: &[Netlist]) -> Result<FlowOutcome, CompileError> {
        let rec = &self.recorder;
        let flow_span = rec.span("flow");
        let ctx = arch.context_id();

        // Map / place / route / columns / logic_blocks spans open inside.
        let mut device = MultiDevice::compile_opts(arch, circuits, &self.options, rec)?;

        {
            let _span = rec.span("rcm");
            for &col in device.switch_usage().columns().iter() {
                synthesize_with(col, ctx, rec);
            }
        }

        {
            let _span = rec.span("sim");
            for (c, circuit) in circuits.iter().enumerate() {
                device.switch_context(c);
                let inputs = vec![false; circuit.inputs().len()];
                for _ in 0..self.sim_cycles {
                    device.step(&inputs);
                }
            }
        }

        let params = AreaParams::paper_default();
        let weights = FabricWeights::default();
        let (cmos, fepg);
        {
            let _span = rec.span("area");
            let columns = device.switch_usage().columns();
            let change = mcfpga_config::ColumnSetStats::measure(&columns, ctx).change_rate;
            cmos = area_comparison(arch, change, Technology::Cmos, &params, &weights);
            fepg = area_comparison(arch, change, Technology::Fepg, &params, &weights);
            rec.set_gauge("area.change_rate", change);
            rec.set_gauge("area.cmos_ratio", cmos.ratio);
            rec.set_gauge("area.fepg_ratio", fepg.ratio);
        }

        drop(flow_span);
        let mut report = rec.report("flow");
        // Condense the per-switch trace into the report's reconfiguration
        // summary (None when the recorder is disabled or nothing switched).
        report.reconfig = mcfpga_obs::ReconfigTelemetry::from_events(&rec.trace_events());
        Ok(FlowOutcome {
            device,
            cmos,
            fepg,
            report,
        })
    }
}

/// Thin convenience wrapper over [`Flow::builder`] with every knob at its
/// default: `Flow::builder().recorder(rec).sim_cycles(sim_cycles).run(..)`.
pub fn run_flow(
    arch: &ArchSpec,
    circuits: &[Netlist],
    sim_cycles: usize,
    rec: &Recorder,
) -> Result<FlowOutcome, CompileError> {
    Flow::builder()
        .recorder(rec)
        .sim_cycles(sim_cycles)
        .run(arch, circuits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_netlist::{workload, RandomNetlistParams};

    #[test]
    fn paper_point_reproduces_the_headline_shape() {
        let eval = evaluate_paper_point();
        assert!(eval.cmos.ratio < 1.0);
        assert!(eval.fepg.ratio < eval.cmos.ratio);
        assert!(
            (eval.cmos.ratio - 0.45).abs() < 0.10,
            "CMOS {:.3} vs paper 0.45",
            eval.cmos.ratio
        );
        assert!(
            (eval.fepg.ratio - 0.37).abs() < 0.10,
            "FePG {:.3} vs paper 0.37",
            eval.fepg.ratio
        );
    }

    #[test]
    fn measured_comparison_tracks_the_analytic_model() {
        let arch = ArchSpec::paper_default();
        let w = workload(
            RandomNetlistParams {
                n_inputs: 8,
                n_gates: 60,
                n_outputs: 6,
                dff_fraction: 0.0,
            },
            4,
            0.05,
            42,
        );
        let device = Device::compile(&arch, &w).unwrap();
        let params = AreaParams::paper_default();
        let weights = FabricWeights::default();
        let measured = measured_area_comparison(&device, Technology::Cmos, &params, &weights);
        assert!(measured.ratio < 1.0);
        // Structure-preserving workloads route identically in every
        // context, so measured switch columns are all constant — the
        // measured ratio sits below the analytic 5% point.
        let analytic = area_comparison(&arch, 0.05, Technology::Cmos, &params, &weights);
        assert!(measured.ratio <= analytic.ratio + 0.05);
    }
}
