//! # mcfpga — a multi-context FPGA with reconfigurable context memory
//!
//! A from-scratch Rust reproduction of Chong, Ogata, Hariyama and Kameyama,
//! *Architecture of a Multi-Context FPGA Using Reconfigurable Context
//! Memory*, IPDPS 2005.
//!
//! Multi-context FPGAs keep several configuration planes on chip and switch
//! between them in one cycle; the paper replaces the conventional
//! `n`-memory-bits-plus-mux behind every configuration bit with
//! *reconfigurable context memory* (RCM): tiny decoders built from switch
//! elements that exploit the redundancy (most bits never change) and
//! regularity (many bits equal a context-ID line) of real configuration
//! data, plus *adaptive multi-context logic blocks* whose LUT planes merge
//! when contexts share logic.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`arch`] | architecture description (grid, contexts, LUT geometry) |
//! | [`netlist`] | gate-level + DFG IR, circuit library, workload generators |
//! | [`config`] | configuration columns, pattern taxonomy, statistics |
//! | [`rcm`] | switch elements, decoder synthesis, diamond switches |
//! | [`lut`] | MCMG-LUTs, size controllers, adaptive logic blocks |
//! | [`map`] | LUT mapping, cross-context sharing, Fig. 13/14 packing |
//! | [`place`] | simulated-annealing placement |
//! | [`route`] | PathFinder routing, switch-column extraction |
//! | [`sim`] | compiled-device model, equivalence checking |
//! | [`area`] | area / power / delay models (the 45% / 37% results) |
//! | [`obs`] | phase spans, metrics registry, machine-readable run reports |
//!
//! ## Quick start
//!
//! ```
//! use mcfpga::prelude::*;
//!
//! // A 4-context device time-multiplexing two independent circuits.
//! let arch = ArchSpec::paper_default();
//! let circuits = vec![
//!     mcfpga::netlist::library::adder(4),
//!     mcfpga::netlist::library::parity(8),
//! ];
//! let mut device = MultiDevice::compile(&arch, &circuits).unwrap();
//!
//! // Drive the adder: 2 + 3 (inputs a[0..4], b[0..4], cin).
//! let mut inputs = vec![false, true, false, false]; // a = 2
//! inputs.extend([true, true, false, false]);        // b = 3
//! inputs.push(false);                               // cin = 0
//! let out = device.step(&inputs);
//! let sum: u32 = out[..4].iter().enumerate().map(|(i, &b)| (b as u32) << i).sum();
//! assert_eq!(sum, 5);
//!
//! // One-cycle context switch to the parity circuit.
//! device.switch_context(1);
//! let odd = device.step(&[true, false, false, false, false, false, false, false]);
//! assert!(odd[0]);
//! ```

pub use mcfpga_arch as arch;
pub use mcfpga_area as area;
pub use mcfpga_config as config;
pub use mcfpga_lut as lut;
pub use mcfpga_map as map;
pub use mcfpga_netlist as netlist;
pub use mcfpga_obs as obs;
pub use mcfpga_place as place;
pub use mcfpga_rcm as rcm;
pub use mcfpga_route as route;
pub use mcfpga_sim as sim;

pub mod flow;

pub use flow::{
    evaluate_paper_point, measured_area_comparison, run_flow, Flow, FlowBuilder, FlowOutcome,
    PaperEvaluation,
};

/// The most commonly used items.
pub mod prelude {
    pub use crate::arch::{ArchSpec, ContextId, LutGeometry, LutMode};
    pub use crate::area::{AreaParams, FabricWeights, Technology};
    pub use crate::config::{ConfigColumn, PatternClass};
    pub use crate::flow::{evaluate_paper_point, measured_area_comparison, run_flow, Flow};
    pub use crate::netlist::Netlist;
    pub use crate::obs::{Recorder, RunReport};
    pub use crate::rcm::synthesize;
    pub use crate::sim::{check_device_equivalence, CompileOptions, Device, MultiDevice, SimError};
}
