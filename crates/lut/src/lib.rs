//! Multi-context multi-granularity LUTs and the adaptive logic block.
//!
//! An MCMG-LUT (Fig. 12) owns a fixed pool of memory bits that can be
//! organised as a small LUT with many configuration planes or a large LUT
//! with few: the 64-bit pool of the paper's example is a 4-input LUT with
//! four planes or a 5-input LUT with two. A *configuration plane* is the
//! group of bits selected under one context-ID state; shrinking the plane
//! count converts plane-select address lines into data inputs.
//!
//! The *adaptive* logic block (Fig. 14) gives every LUT a local size
//! controller — itself synthesised from RCM switch elements — so that logic
//! shared between contexts is stored once, in a single plane, instead of
//! being duplicated per context as a globally controlled design must
//! (Fig. 13).

pub mod logic_block;
pub mod mcmg;
pub mod size_control;

pub use logic_block::AdaptiveLogicBlock;
pub use mcmg::{McmgLut, TruthTable};
pub use size_control::{LocalSizeController, SizeControl};
