//! The adaptive multi-context logic block: an MCMG-LUT, its size
//! controller, and per-output flip-flops.
//!
//! This is the functional model of one cell's logic half: given the active
//! context and the block's input pins, it produces the block's outputs,
//! optionally registered. Sequential state lives *outside* the
//! configuration planes — a context switch changes the logic but the
//! flip-flops carry their values across, which is what lets multi-context
//! designs pipeline data between contexts (the paper's DPGA heritage).

use mcfpga_arch::{ArchError, ContextId, LutGeometry, LutMode};
use serde::{Deserialize, Serialize};

use crate::mcmg::{McmgLut, TruthTable};
use crate::size_control::SizeControl;

/// One logic block of the fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveLogicBlock {
    lut: McmgLut,
    control: SizeControl,
    /// Per output: route through the flip-flop instead of combinationally.
    registered: Vec<bool>,
    /// Per output: current flip-flop value.
    ff_state: Vec<bool>,
}

impl AdaptiveLogicBlock {
    pub fn new(
        geometry: LutGeometry,
        mode: LutMode,
        control: SizeControl,
    ) -> Result<Self, ArchError> {
        let lut = McmgLut::new(geometry, mode)?;
        let outs = geometry.outputs;
        Ok(AdaptiveLogicBlock {
            lut,
            control,
            registered: vec![false; outs],
            ff_state: vec![false; outs],
        })
    }

    pub fn lut(&self) -> &McmgLut {
        &self.lut
    }

    /// Mutable LUT access (fault injection and repair experiments).
    pub fn lut_mut(&mut self) -> &mut McmgLut {
        &mut self.lut
    }

    pub fn control(&self) -> &SizeControl {
        &self.control
    }

    pub fn mode(&self) -> LutMode {
        self.lut.mode()
    }

    /// Program one plane of one output.
    pub fn program(&mut self, output: usize, plane: usize, table: &TruthTable) {
        self.lut.set_plane(output, plane, table);
    }

    /// Choose registered/combinational per output.
    pub fn set_registered(&mut self, output: usize, registered: bool) {
        self.registered[output] = registered;
    }

    pub fn is_registered(&self, output: usize) -> bool {
        self.registered[output]
    }

    /// Reset all flip-flops.
    pub fn reset(&mut self) {
        self.ff_state.iter_mut().for_each(|b| *b = false);
    }

    /// Current flip-flop values (exposed for state save/restore tests).
    pub fn ff_state(&self) -> &[bool] {
        &self.ff_state
    }

    /// Combinational outputs for the active context, *without* clocking.
    pub fn outputs(&self, ctx: ContextId, context: usize, inputs: &[bool]) -> Vec<bool> {
        let mut out = vec![false; self.lut.geometry().outputs];
        self.outputs_into(ctx, context, inputs, &mut out);
        out
    }

    /// As [`AdaptiveLogicBlock::outputs`], written into a caller-provided
    /// buffer (length = the geometry's output count) — the allocation-free
    /// form the simulator's hot path uses.
    pub fn outputs_into(&self, ctx: ContextId, context: usize, inputs: &[bool], out: &mut [bool]) {
        let plane = self.control.plane(ctx, context, self.lut.mode());
        assert_eq!(out.len(), self.lut.geometry().outputs, "output buffer size");
        for (o, slot) in out.iter_mut().enumerate() {
            *slot = if self.registered[o] {
                self.ff_state[o]
            } else {
                self.lut.eval(o, plane, inputs)
            };
        }
    }

    /// One combinational output for the active context, *without* clocking
    /// and without materialising the full output vector.
    pub fn output(&self, ctx: ContextId, context: usize, inputs: &[bool], output: usize) -> bool {
        if self.registered[output] {
            self.ff_state[output]
        } else {
            let plane = self.control.plane(ctx, context, self.lut.mode());
            self.lut.eval(output, plane, inputs)
        }
    }

    /// The configuration plane this block selects in `context` — resolved
    /// through the size controller, exactly as every evaluation path does.
    pub fn active_plane(&self, ctx: ContextId, context: usize) -> usize {
        self.control.plane(ctx, context, self.lut.mode())
    }

    /// One plane of one output as a packed `u64` truth table (bit `a` =
    /// value at assignment `a`): what the compiled simulation kernel folds
    /// into its instruction masks. Reads the current memory, faults
    /// included.
    pub fn plane_packed(&self, output: usize, plane: usize) -> u64 {
        self.lut.plane_packed(output, plane)
    }

    /// One clock edge: capture every registered output's LUT value.
    pub fn clock(&mut self, ctx: ContextId, context: usize, inputs: &[bool]) {
        let plane = self.control.plane(ctx, context, self.lut.mode());
        for o in 0..self.lut.geometry().outputs {
            if self.registered[o] {
                self.ff_state[o] = self.lut.eval(o, plane, inputs);
            }
        }
    }

    /// RCM switch elements consumed by this block's size controller.
    pub fn controller_se_cost(&self) -> usize {
        self.control.se_cost()
    }

    /// Flip one LUT memory bit (fault injection): plane-local address
    /// `assignment` of `plane` of `output`.
    pub fn flip_lut_bit(&mut self, output: usize, plane: usize, assignment: usize) {
        let k = 1usize << self.lut.mode().inputs;
        assert!(plane < self.lut.mode().planes, "plane out of range");
        assert!(assignment < k, "assignment out of range");
        self.lut.flip_bit(output, plane * k + assignment);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::size_control::LocalSizeController;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    fn geo() -> LutGeometry {
        LutGeometry::paper_default()
    }

    #[test]
    fn combinational_outputs_follow_the_active_plane() {
        let ctx = ctx4();
        let g = geo();
        let mode = g.mode_with_planes(4).unwrap();
        let mut lb = AdaptiveLogicBlock::new(g, mode, SizeControl::Global).unwrap();
        // Plane p of output 0 computes parity XOR (p odd).
        for p in 0..4 {
            let t = TruthTable::from_fn(4, move |a| ((a.count_ones() as usize) + p) % 2 == 1);
            lb.program(0, p, &t);
        }
        let inputs = [true, false, false, false]; // parity 1
        for context in 0..4 {
            let out = lb.outputs(ctx, context, &inputs);
            let expect = (1 + context) % 2 == 1;
            assert_eq!(out[0], expect, "context {context}");
        }
    }

    #[test]
    fn registered_outputs_hold_across_context_switches() {
        let ctx = ctx4();
        let g = geo();
        let mode = g.mode_with_planes(2).unwrap(); // 5-input, 2 planes
        let mut lb = AdaptiveLogicBlock::new(g, mode, SizeControl::Global).unwrap();
        // Output 0 (registered) = input 0 passthrough in both planes.
        let t = TruthTable::from_fn(5, |a| a & 1 == 1);
        lb.program(0, 0, &t);
        lb.program(0, 1, &t);
        lb.set_registered(0, true);

        // Clock in a 1 while context 0 is active.
        lb.clock(ctx, 0, &[true, false, false, false, false]);
        // Switch to context 3: the FF value must survive.
        let out = lb.outputs(ctx, 3, &[false; 5]);
        assert!(out[0], "FF state crosses context switches");
        // Clock a 0 in context 3; value updates.
        lb.clock(ctx, 3, &[false; 5]);
        assert!(!lb.outputs(ctx, 0, &[false; 5])[0]);
    }

    #[test]
    fn local_control_shares_a_plane_between_contexts() {
        // Fig. 14: contexts 0 and 1 share plane 0 (the merged O5 node).
        let ctx = ctx4();
        let g = geo();
        let mode = g.mode_with_planes(2).unwrap();
        let controller = LocalSizeController::new(ctx, &[0, 0, 1, 1], mode);
        let mut lb = AdaptiveLogicBlock::new(g, mode, SizeControl::Local(controller)).unwrap();
        let shared = TruthTable::from_fn(5, |a| a == 0b11);
        let other = TruthTable::from_fn(5, |a| a == 0b100);
        lb.program(0, 0, &shared);
        lb.program(0, 1, &other);
        let hit = [true, true, false, false, false];
        assert!(lb.outputs(ctx, 0, &hit)[0]);
        assert!(lb.outputs(ctx, 1, &hit)[0], "context 1 shares plane 0");
        assert!(!lb.outputs(ctx, 2, &hit)[0], "context 2 uses plane 1");
        assert!(lb.controller_se_cost() > 0);
    }

    #[test]
    fn reset_clears_state() {
        let ctx = ctx4();
        let g = geo();
        let mode = g.mode_with_planes(1).unwrap();
        let mut lb = AdaptiveLogicBlock::new(g, mode, SizeControl::Global).unwrap();
        lb.program(0, 0, &TruthTable::from_fn(6, |_| true));
        lb.set_registered(0, true);
        lb.clock(ctx, 0, &[false; 6]);
        assert!(lb.ff_state()[0]);
        lb.reset();
        assert!(!lb.ff_state()[0]);
    }

    #[test]
    fn second_output_is_independent() {
        let ctx = ctx4();
        let g = geo();
        let mode = g.mode_with_planes(1).unwrap();
        let mut lb = AdaptiveLogicBlock::new(g, mode, SizeControl::Global).unwrap();
        lb.program(0, 0, &TruthTable::from_fn(6, |a| a & 1 == 1));
        lb.program(1, 0, &TruthTable::from_fn(6, |a| a & 1 == 0));
        let out = lb.outputs(ctx, 0, &[true, false, false, false, false, false]);
        assert_eq!(out, vec![true, false]);
    }
}
