//! The multi-context multi-granularity LUT of Fig. 12.

use mcfpga_arch::{ArchError, LutGeometry, LutMode};
use serde::{Deserialize, Serialize};

/// A k-input truth table, bit `i` = output for input assignment `i`
/// (input 0 is the least-significant address bit).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TruthTable {
    inputs: usize,
    bits: Vec<bool>,
}

impl TruthTable {
    pub fn new(inputs: usize, bits: Vec<bool>) -> Self {
        assert_eq!(bits.len(), 1 << inputs, "truth table size mismatch");
        TruthTable { inputs, bits }
    }

    /// All-zero table.
    pub fn zero(inputs: usize) -> Self {
        TruthTable {
            inputs,
            bits: vec![false; 1 << inputs],
        }
    }

    /// Build from a function of the input assignment.
    pub fn from_fn(inputs: usize, f: impl FnMut(usize) -> bool) -> Self {
        TruthTable {
            inputs,
            bits: (0..1usize << inputs).map(f).collect(),
        }
    }

    /// Build from packed `u64` words (LSB = assignment 0), the mapper's
    /// native format for k <= 6.
    pub fn from_packed(inputs: usize, packed: u64) -> Self {
        assert!(inputs <= 6, "packed form covers k <= 6");
        Self::from_fn(inputs, |a| (packed >> a) & 1 == 1)
    }

    pub fn inputs(&self) -> usize {
        self.inputs
    }

    #[inline]
    pub fn eval(&self, assignment: usize) -> bool {
        self.bits[assignment]
    }

    /// Evaluate against a slice of input values (LSB first; missing inputs
    /// read as 0, extra inputs are ignored — matching unconnected LUT pins
    /// tied low).
    pub fn eval_bits(&self, inputs: &[bool]) -> bool {
        let mut a = 0usize;
        for (i, &b) in inputs.iter().take(self.inputs).enumerate() {
            if b {
                a |= 1 << i;
            }
        }
        self.bits[a]
    }

    /// Widen to `inputs` inputs; the new (higher) inputs are don't-cares.
    pub fn widened(&self, inputs: usize) -> TruthTable {
        assert!(inputs >= self.inputs);
        let mask = (1usize << self.inputs) - 1;
        TruthTable::from_fn(inputs, |a| self.bits[a & mask])
    }

    pub fn bits(&self) -> &[bool] {
        &self.bits
    }

    /// The table folded into a packed `u64` (bit `a` = output for assignment
    /// `a`), the mapper's native format and the word the bit-parallel
    /// simulation kernel evaluates with shifts and masks. Only defined for
    /// k <= 6, which every fabric mode satisfies.
    pub fn packed(&self) -> u64 {
        assert!(self.inputs <= 6, "packed form covers k <= 6");
        self.bits
            .iter()
            .enumerate()
            .fold(0u64, |acc, (a, &b)| acc | ((b as u64) << a))
    }
}

/// An MCMG-LUT: the bit pool of one logic-block output, organised under a
/// granularity mode.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct McmgLut {
    geometry: LutGeometry,
    mode: LutMode,
    /// `memory[output]` is the full bit pool of that output; under mode
    /// `(k, p)` the pool is read as `p` planes of `2^k` bits, plane-major.
    memory: Vec<Vec<bool>>,
}

impl McmgLut {
    /// Create a zero-initialised LUT in the given mode.
    pub fn new(geometry: LutGeometry, mode: LutMode) -> Result<Self, ArchError> {
        geometry.validate()?;
        geometry.check_mode(mode)?;
        Ok(McmgLut {
            geometry,
            mode,
            memory: vec![vec![false; geometry.pool_bits()]; geometry.outputs],
        })
    }

    pub fn geometry(&self) -> LutGeometry {
        self.geometry
    }

    pub fn mode(&self) -> LutMode {
        self.mode
    }

    /// Reorganise the pool under a different mode. The raw bits are kept —
    /// this mirrors the hardware, where the mode only re-routes address
    /// lines (Fig. 12's size controller) and the memory itself is untouched.
    pub fn set_mode(&mut self, mode: LutMode) -> Result<(), ArchError> {
        self.geometry.check_mode(mode)?;
        self.mode = mode;
        Ok(())
    }

    /// Program one plane of one output.
    pub fn set_plane(&mut self, output: usize, plane: usize, table: &TruthTable) {
        assert!(
            output < self.geometry.outputs,
            "output {output} out of range"
        );
        assert!(plane < self.mode.planes, "plane {plane} out of range");
        assert_eq!(
            table.inputs(),
            self.mode.inputs,
            "table width must match the mode"
        );
        let k = 1usize << self.mode.inputs;
        let base = plane * k;
        self.memory[output][base..base + k].copy_from_slice(table.bits());
    }

    /// Read one plane back as a truth table.
    pub fn plane(&self, output: usize, plane: usize) -> TruthTable {
        let k = 1usize << self.mode.inputs;
        let base = plane * k;
        TruthTable::new(
            self.mode.inputs,
            self.memory[output][base..base + k].to_vec(),
        )
    }

    /// Read one plane back as a packed `u64` table (bit `a` = output for
    /// assignment `a`), without materialising a [`TruthTable`]. This is the
    /// word the compiled simulation kernel folds its instruction masks from,
    /// so it always reflects the *current* memory — including injected
    /// faults.
    pub fn plane_packed(&self, output: usize, plane: usize) -> u64 {
        assert!(plane < self.mode.planes, "plane {plane} out of range");
        assert!(self.mode.inputs <= 6, "packed form covers k <= 6");
        let k = 1usize << self.mode.inputs;
        let base = plane * k;
        self.memory[output][base..base + k]
            .iter()
            .enumerate()
            .fold(0u64, |acc, (a, &b)| acc | ((b as u64) << a))
    }

    /// Evaluate an output under an active plane.
    pub fn eval(&self, output: usize, plane: usize, inputs: &[bool]) -> bool {
        assert!(plane < self.mode.planes, "plane {plane} out of range");
        let mut a = 0usize;
        for (i, &b) in inputs.iter().take(self.mode.inputs).enumerate() {
            if b {
                a |= 1 << i;
            }
        }
        let k = 1usize << self.mode.inputs;
        self.memory[output][plane * k + a]
    }

    /// Total memory bits (constant across modes — the Fig. 12 invariant).
    pub fn total_bits(&self) -> usize {
        self.geometry.outputs * self.geometry.pool_bits()
    }

    /// Flip one raw memory bit (fault injection / SEU modelling). `addr`
    /// indexes the pool of `output`, i.e. `plane * 2^k + assignment` under
    /// the current mode.
    pub fn flip_bit(&mut self, output: usize, addr: usize) {
        let bit = &mut self.memory[output][addr];
        *bit = !*bit;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> LutGeometry {
        LutGeometry::paper_default()
    }

    #[test]
    fn truth_table_eval() {
        let t = TruthTable::from_fn(2, |a| a == 3); // AND
        assert!(!t.eval_bits(&[true, false]));
        assert!(t.eval_bits(&[true, true]));
        assert_eq!(t.inputs(), 2);
        let packed = TruthTable::from_packed(2, 0b1000);
        assert_eq!(t, packed);
    }

    #[test]
    fn truth_table_widening_ignores_new_inputs() {
        let t = TruthTable::from_fn(2, |a| a & 1 == 1).widened(4);
        assert_eq!(t.inputs(), 4);
        for hi in 0..4 {
            assert!(t.eval(0b0001 | hi << 2));
            assert!(!t.eval(0b0010 | hi << 2));
        }
    }

    #[test]
    fn mcmg_modes_share_one_bit_pool() {
        let g = geo();
        for mode in g.modes() {
            let lut = McmgLut::new(g, mode).unwrap();
            assert_eq!(lut.total_bits(), 2 * 64, "Fig. 12 invariant for {mode}");
        }
    }

    #[test]
    fn plane_programming_and_eval() {
        let g = geo();
        let mode = g.mode_with_planes(4).unwrap(); // 4-input, 4 planes
        let mut lut = McmgLut::new(g, mode).unwrap();
        // Plane p computes "input pattern == p".
        for p in 0..4 {
            let t = TruthTable::from_fn(4, |a| a == p);
            lut.set_plane(0, p, &t);
            assert_eq!(lut.plane(0, p), t);
        }
        for p in 0..4 {
            let inputs: Vec<bool> = (0..4).map(|i| (p >> i) & 1 == 1).collect();
            assert!(lut.eval(0, p, &inputs), "plane {p} detects its index");
            assert!(!lut.eval(0, p, &[true, true, true, true]) || p == 15);
        }
    }

    #[test]
    fn outputs_are_independent() {
        let g = geo();
        let mode = g.mode_with_planes(1).unwrap(); // 6-input single plane
        let mut lut = McmgLut::new(g, mode).unwrap();
        lut.set_plane(0, 0, &TruthTable::from_fn(6, |a| a & 1 == 1));
        lut.set_plane(1, 0, &TruthTable::from_fn(6, |a| a & 2 == 2));
        assert!(lut.eval(0, 0, &[true, false]));
        assert!(!lut.eval(1, 0, &[true, false]));
        assert!(lut.eval(1, 0, &[false, true]));
    }

    #[test]
    fn mode_change_preserves_memory() {
        // Fig. 12: the same 64 bits read as 4x16 or 2x32.
        let g = geo();
        let mut lut = McmgLut::new(g, g.mode_with_planes(4).unwrap()).unwrap();
        let t = TruthTable::from_fn(4, |a| a % 3 == 0);
        lut.set_plane(0, 1, &t);
        lut.set_mode(g.mode_with_planes(2).unwrap()).unwrap();
        // Old plane 1 (bits 16..32) is now the upper half of new plane 0:
        // with 5 inputs, addresses 16..32 have input 4 high.
        for a in 0..16usize {
            let inputs: Vec<bool> = (0..5).map(|i| ((a | 16) >> i) & 1 == 1).collect();
            assert_eq!(lut.eval(0, 0, &inputs), t.eval(a), "address {a}");
        }
    }

    #[test]
    #[should_panic(expected = "plane 2 out of range")]
    fn plane_bounds_are_checked() {
        let g = geo();
        let lut = McmgLut::new(g, g.mode_with_planes(2).unwrap()).unwrap();
        let _ = lut.eval(0, 2, &[false; 5]);
    }

    #[test]
    fn rejects_foreign_modes() {
        let g = geo();
        assert!(McmgLut::new(
            g,
            LutMode {
                inputs: 3,
                planes: 8
            }
        )
        .is_err());
        let mut lut = McmgLut::new(g, g.mode_with_planes(1).unwrap()).unwrap();
        assert!(lut
            .set_mode(LutMode {
                inputs: 7,
                planes: 1
            })
            .is_err());
    }
}
