//! Size control for MCMG-LUTs: global (Fig. 13) vs local (Fig. 14).
//!
//! Under *global* control one signal programs every logic block identically:
//! each LUT keeps one plane per context (plane = low context-ID bits), so a
//! function shared by several contexts is stored redundantly in each of
//! their planes.
//!
//! Under *local* control each logic block owns a programmable size
//! controller mapping the active context to a plane. Contexts that share a
//! function map to the *same* plane, and the freed planes either hold other
//! functions or convert into extra LUT inputs. The controller is not
//! dedicated hardware: the paper builds it from the block's RCM, so its
//! cost is counted in switch elements — each plane-select bit, viewed as a
//! function of the context, is exactly a configuration column and is
//! synthesised with the same decoder machinery.

use mcfpga_arch::{ContextId, LutMode};
use mcfpga_config::ConfigColumn;
use mcfpga_rcm::{synthesize, DecoderProgram};
use serde::{Deserialize, Serialize};

/// How a logic block derives the active plane from the context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SizeControl {
    /// Plane = low bits of the context ID (one plane per context modulo the
    /// plane count). Free, but cannot merge shared logic.
    Global,
    /// Per-block programmable context -> plane map, decoded by RCM.
    Local(LocalSizeController),
}

impl SizeControl {
    /// The active plane for `context` under mode `mode`.
    pub fn plane(&self, ctx: ContextId, context: usize, mode: LutMode) -> usize {
        match self {
            SizeControl::Global => {
                if mode.planes == 0 {
                    0
                } else {
                    context % mode.planes
                }
            }
            SizeControl::Local(c) => c.plane(ctx, context),
        }
    }

    /// Switch elements consumed by the controller (0 for global).
    pub fn se_cost(&self) -> usize {
        match self {
            SizeControl::Global => 0,
            SizeControl::Local(c) => c.se_cost(),
        }
    }
}

/// A local size controller: one decoded column per plane-select bit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocalSizeController {
    plane_of_context: Vec<usize>,
    select_bits: Vec<DecoderProgram>,
}

impl LocalSizeController {
    /// Build a controller realising `plane_of_context` (indexed by context).
    /// Each bit of the plane index, as a function of the context, becomes a
    /// configuration column synthesised into an RCM decoder.
    pub fn new(ctx: ContextId, plane_of_context: &[usize], mode: LutMode) -> Self {
        assert_eq!(
            plane_of_context.len(),
            ctx.n_contexts(),
            "one plane per context"
        );
        for &p in plane_of_context {
            assert!(p < mode.planes, "plane {p} exceeds mode {mode}");
        }
        let n_bits = mode.plane_select_bits();
        let select_bits = (0..n_bits)
            .map(|b| {
                let col = ConfigColumn::from_fn(ctx.n_contexts(), |c| {
                    (plane_of_context[c] >> b) & 1 == 1
                });
                synthesize(col, ctx)
            })
            .collect();
        LocalSizeController {
            plane_of_context: plane_of_context.to_vec(),
            select_bits,
        }
    }

    /// The plane chosen in `context`, evaluated through the *decoders* (so
    /// tests exercise the lowered hardware, not just the stored map).
    pub fn plane(&self, ctx: ContextId, context: usize) -> usize {
        let mut plane = 0usize;
        for (b, prog) in self.select_bits.iter().enumerate() {
            if prog.eval(ctx, context) {
                plane |= 1 << b;
            }
        }
        debug_assert_eq!(plane, self.plane_of_context[context]);
        plane
    }

    /// RCM switch elements consumed.
    pub fn se_cost(&self) -> usize {
        self.select_bits.iter().map(|p| p.netlist.n_ses()).sum()
    }

    /// Number of distinct planes actually used.
    pub fn planes_used(&self) -> usize {
        let mut seen: Vec<usize> = self.plane_of_context.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    #[test]
    fn global_control_uses_low_id_bits() {
        let ctx = ctx4();
        let m4 = LutMode {
            inputs: 4,
            planes: 4,
        };
        let m2 = LutMode {
            inputs: 5,
            planes: 2,
        };
        let m1 = LutMode {
            inputs: 6,
            planes: 1,
        };
        for c in 0..4 {
            assert_eq!(SizeControl::Global.plane(ctx, c, m4), c);
            assert_eq!(SizeControl::Global.plane(ctx, c, m2), c % 2);
            assert_eq!(SizeControl::Global.plane(ctx, c, m1), 0);
        }
        assert_eq!(SizeControl::Global.se_cost(), 0);
    }

    #[test]
    fn local_control_realises_arbitrary_maps() {
        let ctx = ctx4();
        let mode = LutMode {
            inputs: 4,
            planes: 4,
        };
        // Contexts 0 and 3 share plane 0; 1 -> 2; 2 -> 1.
        let map = [0usize, 2, 1, 0];
        let c = LocalSizeController::new(ctx, &map, mode);
        for (context, &want) in map.iter().enumerate() {
            assert_eq!(c.plane(ctx, context), want);
        }
        assert_eq!(c.planes_used(), 3);
    }

    #[test]
    fn shared_plane_controller_is_cheap() {
        // Fig. 14's LUT2: one plane for all contexts. Both select bits are
        // constant-0 columns -> 1 SE each.
        let ctx = ctx4();
        let mode = LutMode {
            inputs: 4,
            planes: 4,
        };
        let c = LocalSizeController::new(ctx, &[0, 0, 0, 0], mode);
        assert_eq!(c.se_cost(), 2, "two constant select bits");
        assert_eq!(c.planes_used(), 1);
        // A single-plane mode needs no select bits at all.
        let m1 = LutMode {
            inputs: 6,
            planes: 1,
        };
        let c1 = LocalSizeController::new(ctx, &[0, 0, 0, 0], m1);
        assert_eq!(c1.se_cost(), 0);
    }

    #[test]
    fn identity_map_costs_like_id_bits() {
        // plane = context: select bit b = S_b, each 1 SE.
        let ctx = ctx4();
        let mode = LutMode {
            inputs: 4,
            planes: 4,
        };
        let c = LocalSizeController::new(ctx, &[0, 1, 2, 3], mode);
        assert_eq!(c.se_cost(), 2);
        for context in 0..4 {
            assert_eq!(c.plane(ctx, context), context);
        }
    }

    #[test]
    fn irregular_map_needs_general_decoders() {
        // plane sequence 0,1,1,0 on bit 0 is the XOR pattern -> 4 SEs.
        let ctx = ctx4();
        let mode = LutMode {
            inputs: 5,
            planes: 2,
        };
        let c = LocalSizeController::new(ctx, &[0, 1, 1, 0], mode);
        assert_eq!(c.se_cost(), 4);
        assert_eq!(c.plane(ctx, 2), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds mode")]
    fn plane_bounds_checked() {
        let ctx = ctx4();
        let mode = LutMode {
            inputs: 5,
            planes: 2,
        };
        let _ = LocalSizeController::new(ctx, &[0, 1, 2, 0], mode);
    }
}
