//! Priority-cut enumeration and cone truth-table computation.
//!
//! A *cut* of node `v` is a set of nodes (leaves) such that every path from
//! the primary inputs/registers to `v` crosses a leaf; a cut with at most
//! `k` leaves can be implemented by one k-input LUT computing the cone
//! function. We enumerate bounded sets of cuts per node in topological
//! order (the classic priority-cuts scheme) and keep the best few by
//! (depth, size).

use mcfpga_netlist::{Gate, Netlist, NodeId};

/// Maximum cuts retained per node.
const CUT_LIMIT: usize = 8;

/// A cut: sorted leaf list plus bookkeeping for covering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Sorted, deduplicated leaves.
    pub leaves: Vec<NodeId>,
    /// Mapping depth if this cut is chosen (max leaf depth + 1).
    pub depth: usize,
}

impl Cut {
    fn trivial(node: NodeId, depth: usize) -> Self {
        Cut {
            leaves: vec![node],
            depth,
        }
    }

    fn merge(a: &Cut, b: &Cut, k: usize) -> Option<Vec<NodeId>> {
        let mut leaves = Vec::with_capacity(a.leaves.len() + b.leaves.len());
        let (mut i, mut j) = (0, 0);
        while i < a.leaves.len() || j < b.leaves.len() {
            let next = match (a.leaves.get(i), b.leaves.get(j)) {
                (Some(&x), Some(&y)) => {
                    if x < y {
                        i += 1;
                        x
                    } else if y < x {
                        j += 1;
                        y
                    } else {
                        i += 1;
                        j += 1;
                        x
                    }
                }
                (Some(&x), None) => {
                    i += 1;
                    x
                }
                (None, Some(&y)) => {
                    j += 1;
                    y
                }
                (None, None) => break,
            };
            leaves.push(next);
            if leaves.len() > k {
                return None;
            }
        }
        Some(leaves)
    }
}

/// Whether a node is a mapping *source*: its value is available without a
/// LUT (primary input, register output, constant).
pub fn is_source(netlist: &Netlist, node: NodeId) -> bool {
    matches!(
        netlist.gate(node),
        Gate::Input(_) | Gate::Dff { .. } | Gate::Const(_)
    )
}

/// Per-node cut sets for a netlist at LUT size `k`.
pub struct CutSet {
    /// `cuts[node]` — each node's retained cuts, best first.
    pub cuts: Vec<Vec<Cut>>,
    /// Chosen (best) mapping depth per node.
    pub depth: Vec<usize>,
}

/// Enumerate priority cuts for every node.
pub fn enumerate(netlist: &Netlist, k: usize) -> CutSet {
    assert!((2..=6).contains(&k), "LUT size {k} out of supported range");
    let n = netlist.n_gates();
    let mut cuts: Vec<Vec<Cut>> = vec![Vec::new(); n];
    let mut depth = vec![0usize; n];
    let order = netlist.topo_order().expect("valid netlist");
    for id in order {
        let gate = netlist.gate(id);
        if is_source(netlist, id) {
            depth[id.index()] = 0;
            cuts[id.index()] = vec![Cut::trivial(id, 0)];
            continue;
        }
        let fanins = gate.fanins();
        // Merge fan-in cut sets pairwise; a cut's depth is recomputed from
        // its leaves' chosen mapping depths (not from the fan-in cuts —
        // expanding through a fan-in absorbs it into this LUT's cone).
        let mut merged: Vec<Vec<NodeId>> = vec![Vec::new()];
        for f in &fanins {
            let mut next: Vec<Vec<NodeId>> = Vec::new();
            for m in &merged {
                let m_cut = Cut {
                    leaves: m.clone(),
                    depth: 0,
                };
                for fc in &cuts[f.index()] {
                    if let Some(leaves) = Cut::merge(&m_cut, fc, k) {
                        if !next.contains(&leaves) {
                            next.push(leaves);
                        }
                    }
                }
            }
            merged = next;
            if merged.is_empty() {
                break;
            }
        }
        let mut node_cuts: Vec<Cut> = merged
            .into_iter()
            .map(|leaves| {
                let d = leaves.iter().map(|l| depth[l.index()]).max().unwrap_or(0) + 1;
                Cut { leaves, depth: d }
            })
            .collect();
        // The trivial cut guarantees feasibility (this node as a leaf of its
        // fanouts once it is itself implemented).
        let best_cut_depth = node_cuts.iter().map(|c| c.depth).min();
        let own_depth = best_cut_depth
            .unwrap_or_else(|| fanins.iter().map(|f| depth[f.index()]).max().unwrap_or(0) + 1);
        node_cuts.push(Cut::trivial(id, own_depth));
        // Trivial cuts sort last: they are fallbacks, not real covers.
        let sort_len = |c: &Cut| {
            if c.leaves == [id] {
                usize::MAX
            } else {
                c.leaves.len()
            }
        };
        node_cuts.sort_by(|a, b| {
            (a.depth, sort_len(a), &a.leaves).cmp(&(b.depth, sort_len(b), &b.leaves))
        });
        node_cuts.dedup_by(|a, b| a.leaves == b.leaves);
        if node_cuts.len() > CUT_LIMIT {
            // The trivial cut must survive truncation: fan-out merges rely
            // on every node being usable as a leaf.
            let trivial_pos = node_cuts
                .iter()
                .position(|c| c.leaves == [id])
                .expect("trivial cut present");
            if trivial_pos >= CUT_LIMIT {
                let t = node_cuts.remove(trivial_pos);
                node_cuts.truncate(CUT_LIMIT - 1);
                node_cuts.push(t);
            } else {
                node_cuts.truncate(CUT_LIMIT);
            }
        }
        depth[id.index()] = own_depth;
        cuts[id.index()] = node_cuts;
    }
    CutSet { cuts, depth }
}

/// Compute the truth table of `root`'s cone over `leaves`, bit-parallel over
/// the `2^|leaves|` assignments (`|leaves| <= 6` so one `u64` suffices).
pub fn cone_table(netlist: &Netlist, root: NodeId, leaves: &[NodeId]) -> u64 {
    assert!(leaves.len() <= 6, "cone over more than 6 leaves");
    // Projection masks: leaf i's value across the 64 assignments.
    const PROJ: [u64; 6] = [
        0xAAAA_AAAA_AAAA_AAAA,
        0xCCCC_CCCC_CCCC_CCCC,
        0xF0F0_F0F0_F0F0_F0F0,
        0xFF00_FF00_FF00_FF00,
        0xFFFF_0000_FFFF_0000,
        0xFFFF_FFFF_0000_0000,
    ];
    fn eval(
        netlist: &Netlist,
        node: NodeId,
        leaves: &[NodeId],
        memo: &mut std::collections::HashMap<NodeId, u64>,
    ) -> u64 {
        if let Some(pos) = leaves.iter().position(|&l| l == node) {
            return PROJ[pos];
        }
        if let Some(&v) = memo.get(&node) {
            return v;
        }
        let v = match *netlist.gate(node) {
            Gate::Const(c) => {
                if c {
                    u64::MAX
                } else {
                    0
                }
            }
            Gate::Input(_) | Gate::Dff { .. } => {
                panic!("cone reaches source {node} that is not a leaf")
            }
            Gate::Not(a) => !eval(netlist, a, leaves, memo),
            Gate::And(a, b) => eval(netlist, a, leaves, memo) & eval(netlist, b, leaves, memo),
            Gate::Or(a, b) => eval(netlist, a, leaves, memo) | eval(netlist, b, leaves, memo),
            Gate::Xor(a, b) => eval(netlist, a, leaves, memo) ^ eval(netlist, b, leaves, memo),
            Gate::Nand(a, b) => !(eval(netlist, a, leaves, memo) & eval(netlist, b, leaves, memo)),
            Gate::Nor(a, b) => !(eval(netlist, a, leaves, memo) | eval(netlist, b, leaves, memo)),
            Gate::Xnor(a, b) => !(eval(netlist, a, leaves, memo) ^ eval(netlist, b, leaves, memo)),
            Gate::Mux { sel, a, b } => {
                let s = eval(netlist, sel, leaves, memo);
                let av = eval(netlist, a, leaves, memo);
                let bv = eval(netlist, b, leaves, memo);
                (s & bv) | (!s & av)
            }
        };
        memo.insert(node, v);
        v
    }
    let mut memo = std::collections::HashMap::new();
    let full = eval(netlist, root, leaves, &mut memo);
    // Mask to the used assignments.
    if leaves.len() == 6 {
        full
    } else {
        full & ((1u64 << (1 << leaves.len())) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_cut_always_present() {
        let mut n = Netlist::new("t");
        let a = n.input("a");
        let b = n.input("b");
        let g = n.and(a, b);
        n.output("o", g);
        let cs = enumerate(&n, 4);
        let gc = &cs.cuts[g.index()];
        assert!(gc.iter().any(|c| c.leaves == vec![a, b]));
        assert!(gc.iter().any(|c| c.leaves == vec![g]));
        assert_eq!(cs.depth[g.index()], 1);
    }

    #[test]
    fn deep_chain_collapses_into_one_lut() {
        // not(not(not(not(a)))) fits a single 1-input cut at k>=2.
        let mut n = Netlist::new("chain");
        let a = n.input("a");
        let mut cur = a;
        for _ in 0..4 {
            cur = n.not(cur);
        }
        n.output("o", cur);
        let cs = enumerate(&n, 4);
        assert_eq!(cs.depth[cur.index()], 1, "whole chain in one LUT");
        let best = &cs.cuts[cur.index()][0];
        assert_eq!(best.leaves, vec![a]);
        // Identity over one input: assignment 0 -> 0, assignment 1 -> 1.
        assert_eq!(
            cone_table(&n, cur, &best.leaves),
            0b10,
            "4 inversions = identity"
        );
    }

    #[test]
    fn cone_tables_match_direct_evaluation() {
        let mut n = Netlist::new("fa");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        let axb = n.xor(a, b);
        let sum = n.xor(axb, c);
        let g1 = n.and(a, b);
        let g2 = n.and(axb, c);
        let cout = n.or(g1, g2);
        n.output("s", sum);
        n.output("co", cout);
        let leaves = vec![a, b, c];
        let sum_t = cone_table(&n, sum, &leaves);
        let cout_t = cone_table(&n, cout, &leaves);
        for assignment in 0..8usize {
            let bits = [
                assignment & 1 == 1,
                assignment & 2 == 2,
                assignment & 4 == 4,
            ];
            let expect = n.eval_comb(&bits).unwrap();
            assert_eq!((sum_t >> assignment) & 1 == 1, expect[0]);
            assert_eq!((cout_t >> assignment) & 1 == 1, expect[1]);
        }
    }

    #[test]
    fn k_bound_is_respected() {
        let mut n = Netlist::new("wide");
        let ins: Vec<NodeId> = (0..8).map(|i| n.input(format!("i{i}"))).collect();
        let mut cur = ins[0];
        for &i in &ins[1..] {
            cur = n.xor(cur, i);
        }
        n.output("o", cur);
        for k in 2..=6 {
            let cs = enumerate(&n, k);
            for cuts in &cs.cuts {
                for c in cuts {
                    assert!(c.leaves.len() <= k, "cut wider than k={k}");
                }
            }
        }
    }

    #[test]
    fn mux_cone_table() {
        let mut n = Netlist::new("m");
        let s = n.input("s");
        let a = n.input("a");
        let b = n.input("b");
        let m = n.mux(s, a, b);
        n.output("o", m);
        let t = cone_table(&n, m, &[s, a, b]);
        for assignment in 0..8usize {
            let s_v = assignment & 1 == 1;
            let a_v = assignment & 2 == 2;
            let b_v = assignment & 4 == 4;
            let expect = if s_v { b_v } else { a_v };
            assert_eq!(
                (t >> assignment) & 1 == 1,
                expect,
                "assignment {assignment:03b}"
            );
        }
    }

    #[test]
    fn dff_outputs_are_cut_sources() {
        let mut n = Netlist::new("seq");
        let x = n.input("x");
        let q = n.dff(x, false);
        let g = n.xor(q, x);
        n.output("o", g);
        let cs = enumerate(&n, 4);
        assert_eq!(
            cs.cuts[q.index()].len(),
            1,
            "sources have only the trivial cut"
        );
        let best = &cs.cuts[g.index()][0];
        assert!(best.leaves.contains(&q));
        assert!(best.leaves.contains(&x));
    }
}
