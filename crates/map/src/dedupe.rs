//! LUT-level common-subexpression elimination.
//!
//! The paper closes by naming "mapping tools that exploit regularity and
//! redundancy of configuration bits" as future work. Cross-context
//! redundancy is handled by [`crate::share`]; this pass removes *intra*-
//! context redundancy: two LUTs with identical input sources and identical
//! truth tables compute the same signal, so one can feed both fan-outs. On
//! the MC-FPGA this saves logic blocks directly and, transitively, the
//! configuration columns behind them.

use std::collections::HashMap;

use crate::mapper::{MappedDff, MappedLut, MappedNetlist, MappedSource};

/// Result of a deduplication pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DedupeStats {
    pub before: usize,
    pub after: usize,
}

impl DedupeStats {
    pub fn removed(&self) -> usize {
        self.before - self.after
    }
}

/// Deduplicate identical LUTs. Iterates to a fixpoint: merging two LUTs can
/// make their fan-outs identical in turn.
pub fn dedupe_luts(mapped: &MappedNetlist) -> (MappedNetlist, DedupeStats) {
    let before = mapped.luts.len();
    let mut current = mapped.clone();
    loop {
        let (next, changed) = dedupe_once(&current);
        current = next;
        if !changed {
            break;
        }
    }
    let stats = DedupeStats {
        before,
        after: current.luts.len(),
    };
    (current, stats)
}

fn rewrite(src: MappedSource, remap: &[usize]) -> MappedSource {
    match src {
        MappedSource::Lut(l) => MappedSource::Lut(remap[l]),
        other => other,
    }
}

fn dedupe_once(mapped: &MappedNetlist) -> (MappedNetlist, bool) {
    // Canonical key: (inputs, table). Inputs are already topologically
    // emitted, so earlier LUTs' identities are final when later ones are
    // examined.
    let mut canon: HashMap<(Vec<MappedSource>, u64), usize> = HashMap::new();
    // remap[i] = index of the surviving LUT in the *new* list.
    let mut remap: Vec<usize> = Vec::with_capacity(mapped.luts.len());
    let mut new_luts: Vec<MappedLut> = Vec::new();
    let mut changed = false;
    for lut in &mapped.luts {
        let inputs: Vec<MappedSource> = lut.inputs.iter().map(|&s| rewrite(s, &remap)).collect();
        let key = (inputs.clone(), lut.table);
        match canon.get(&key) {
            Some(&existing) => {
                remap.push(existing);
                changed = true;
            }
            None => {
                let idx = new_luts.len();
                new_luts.push(MappedLut {
                    root: lut.root,
                    inputs,
                    table: lut.table,
                });
                canon.insert(key, idx);
                remap.push(idx);
            }
        }
    }
    let dffs: Vec<MappedDff> = mapped
        .dffs
        .iter()
        .map(|d| MappedDff {
            d: rewrite(d.d, &remap),
            init: d.init,
        })
        .collect();
    let outputs = mapped
        .outputs
        .iter()
        .map(|(name, s)| (name.clone(), rewrite(*s, &remap)))
        .collect();
    (
        MappedNetlist {
            name: mapped.name.clone(),
            k: mapped.k,
            luts: new_luts,
            dffs,
            outputs,
            n_inputs: mapped.n_inputs,
        },
        changed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_netlist;
    use mcfpga_netlist::{library, Netlist};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_same_behaviour(a: &MappedNetlist, b: &MappedNetlist, n_inputs: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut st_a = a.initial_state();
        let mut st_b = b.initial_state();
        for _ in 0..60 {
            let inputs: Vec<bool> = (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect();
            assert_eq!(a.step(&inputs, &mut st_a), b.step(&inputs, &mut st_b));
        }
    }

    #[test]
    fn redundant_logic_is_merged() {
        // Build a netlist with a duplicated cone.
        let mut n = Netlist::new("dup");
        let a = n.input("a");
        let b = n.input("b");
        let x1 = n.xor(a, b);
        let x2 = n.xor(a, b); // identical cone
        let y1 = n.and(x1, a);
        let y2 = n.and(x2, a); // identical after x1/x2 merge
        n.output("p", y1);
        n.output("q", y2);
        let mapped = map_netlist(&n, 4).unwrap();
        let (deduped, stats) = dedupe_luts(&mapped);
        assert!(stats.removed() >= 1, "duplicate cones must merge");
        check_same_behaviour(&mapped, &deduped, 2, 3);
        // Both outputs now reference the same LUT.
        assert_eq!(deduped.outputs[0].1, deduped.outputs[1].1);
    }

    #[test]
    fn fixpoint_merges_cascaded_duplicates() {
        let mut n = Netlist::new("cascade");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.input("c");
        // Two identical 2-level cones.
        let m1 = n.and(a, b);
        let m2 = n.and(a, b);
        let o1 = n.xor(m1, c);
        let o2 = n.xor(m2, c);
        n.output("o1", o1);
        n.output("o2", o2);
        // Map at k=2 so the cones stay 2 levels deep.
        let mapped = map_netlist(&n, 3).unwrap();
        let (deduped, _) = dedupe_luts(&mapped);
        check_same_behaviour(&mapped, &deduped, 3, 9);
        assert_eq!(
            deduped.outputs[0].1, deduped.outputs[1].1,
            "cascaded duplicates collapse through the fixpoint"
        );
    }

    #[test]
    fn clean_circuits_are_untouched_or_reduced() {
        for circuit in library::benchmark_suite() {
            let mapped = map_netlist(&circuit, 5).unwrap();
            let (deduped, stats) = dedupe_luts(&mapped);
            assert!(stats.after <= stats.before);
            check_same_behaviour(&mapped, &deduped, circuit.inputs().len(), 1);
        }
    }

    #[test]
    fn sequential_references_are_rewritten() {
        let mut n = Netlist::new("seqdup");
        let a = n.input("a");
        let x1 = n.not(a);
        let x2 = n.not(a);
        let q1 = n.dff(x1, false);
        let q2 = n.dff(x2, false);
        let o = n.xor(q1, q2);
        n.output("o", o);
        let mapped = map_netlist(&n, 4).unwrap();
        let (deduped, stats) = dedupe_luts(&mapped);
        assert!(stats.removed() >= 1);
        // Both DFFs now sample the same LUT.
        assert_eq!(deduped.dffs[0].d, deduped.dffs[1].d);
        check_same_behaviour(&mapped, &deduped, 1, 5);
    }

    #[test]
    fn stats_are_consistent() {
        let mapped = map_netlist(&library::multiplier(3), 4).unwrap();
        let (deduped, stats) = dedupe_luts(&mapped);
        assert_eq!(stats.before, mapped.luts.len());
        assert_eq!(stats.after, deduped.luts.len());
    }
}
