//! Technology mapping for the MC-FPGA: gate-level netlists to k-input LUT
//! networks, plus the cross-context sharing analysis behind the adaptive
//! logic block (Figs. 13–14).
//!
//! The paper leaves mapping tools as future work, so this crate implements a
//! standard cut-based mapper (priority cuts, depth-then-area covering) as
//! the substrate the architecture evaluation needs:
//!
//! * [`map_netlist`] maps one context's netlist to k-LUTs;
//! * [`map_workload`] maps a multi-context workload *with a shared cover*:
//!   context 0's cut choices are reused for every context (perturbed
//!   workloads keep the same structure), so the per-context LUT networks
//!   align position-by-position and cross-context redundancy becomes
//!   directly measurable;
//! * [`share`] merges aligned LUTs whose truth tables coincide, yielding the
//!   per-logic-block plane demand that drives the adaptive MCMG-LUT and the
//!   area model;
//! * [`pack`] reproduces the paper's LUT-counting model for globally vs
//!   locally controlled MCMG-LUTs on dataflow graphs.

pub mod cuts;
pub mod dedupe;
pub mod mapper;
pub mod pack;
pub mod share;
pub mod temporal;

pub use dedupe::{dedupe_luts, DedupeStats};
pub use mapper::{map_netlist, map_workload, MapError, MappedLut, MappedNetlist, MappedSource};
pub use pack::{pack_global, pack_local, PackOptions, PackResult};
pub use share::{share_workload, LutPlane, SharedDesign, SharedLut};
pub use temporal::{
    temporal_partition, TemporalDesign, TemporalExecutor, TemporalOutput, TemporalStage,
};
