//! LUT covering: from per-node cuts to a mapped LUT network, and the
//! shared-cover workload mapping that keeps contexts aligned.

use mcfpga_netlist::{Gate, Netlist, NodeId, State};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::cuts::{cone_table, enumerate, is_source};

/// Where a mapped LUT input (or output) value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MappedSource {
    /// Primary input (index into the netlist's input list).
    Input(usize),
    /// Register output (index into the netlist's DFF list).
    Register(usize),
    /// Output of mapped LUT `i`.
    Lut(usize),
    /// Constant driver.
    Const(bool),
}

/// One mapped k-LUT.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedLut {
    /// The netlist node this LUT's output realises.
    pub root: NodeId,
    /// Input sources, LSB of the table first.
    pub inputs: Vec<MappedSource>,
    /// Truth table over the inputs, packed (bit `a` = output for
    /// assignment `a`).
    pub table: u64,
}

/// One mapped register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedDff {
    /// The source feeding `d`.
    pub d: MappedSource,
    pub init: bool,
}

/// A netlist mapped to k-LUTs. Evaluable on its own and checkable against
/// the original netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappedNetlist {
    pub name: String,
    pub k: usize,
    pub luts: Vec<MappedLut>,
    pub dffs: Vec<MappedDff>,
    /// Primary outputs: name and source.
    pub outputs: Vec<(String, MappedSource)>,
    pub n_inputs: usize,
}

/// Mapping failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The netlist failed validation.
    Invalid(String),
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Invalid(e) => write!(f, "cannot map invalid netlist: {e}"),
        }
    }
}

impl std::error::Error for MapError {}

/// The cover chosen for a netlist: for each covered node, the cut leaves.
/// Reused across workload contexts so their LUT networks align.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    /// LUT roots in emission order with their leaf lists.
    pub nodes: Vec<(NodeId, Vec<NodeId>)>,
}

fn source_of(netlist: &Netlist, node: NodeId, lut_of: &HashMap<NodeId, usize>) -> MappedSource {
    if let Some(&l) = lut_of.get(&node) {
        return MappedSource::Lut(l);
    }
    match netlist.gate(node) {
        Gate::Input(_) => MappedSource::Input(
            netlist
                .inputs()
                .iter()
                .position(|&i| i == node)
                .expect("input listed"),
        ),
        Gate::Dff { .. } => MappedSource::Register(
            netlist
                .dffs()
                .iter()
                .position(|&d| d == node)
                .expect("dff listed"),
        ),
        Gate::Const(c) => MappedSource::Const(*c),
        other => panic!(
            "node {node} ({}) is neither source nor mapped",
            other.opcode()
        ),
    }
}

/// Choose a cover for a netlist: depth-optimal cut per required node.
pub fn choose_cover(netlist: &Netlist, k: usize) -> Result<Cover, MapError> {
    netlist
        .validate()
        .map_err(|e| MapError::Invalid(e.to_string()))?;
    let cut_set = enumerate(netlist, k);

    // Roots we must realise: primary-output nodes and DFF d-inputs that are
    // not already sources.
    let mut required: Vec<NodeId> = Vec::new();
    for (_, id) in netlist.outputs() {
        required.push(*id);
    }
    for &ff in netlist.dffs() {
        if let Gate::Dff { d, .. } = netlist.gate(ff) {
            required.push(*d);
        }
    }

    let mut chosen: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    let mut stack = required;
    while let Some(node) = stack.pop() {
        if is_source(netlist, node) || chosen.contains_key(&node) {
            continue;
        }
        let best = cut_set.cuts[node.index()]
            .iter()
            .find(|c| c.leaves != [node])
            .unwrap_or_else(|| {
                panic!("node {node} has only its trivial cut; k too small for its fan-in")
            })
            .clone();
        for &leaf in &best.leaves {
            if leaf != node {
                stack.push(leaf);
            }
        }
        chosen.insert(node, best.leaves);
    }

    // Emit in topological order so LUT indices are usable as they appear.
    let order = netlist.topo_order().expect("validated");
    let nodes = order
        .into_iter()
        .filter_map(|id| chosen.remove(&id).map(|leaves| (id, leaves)))
        .collect();
    Ok(Cover { nodes })
}

/// Apply a cover to a netlist (the cover may come from a different context
/// of the same workload — structures must match).
pub fn apply_cover(netlist: &Netlist, cover: &Cover, k: usize) -> MappedNetlist {
    let mut lut_of: HashMap<NodeId, usize> = HashMap::new();
    let mut luts = Vec::with_capacity(cover.nodes.len());
    for (root, leaves) in &cover.nodes {
        let table = cone_table(netlist, *root, leaves);
        let index = luts.len();
        // Inputs resolve against LUTs emitted earlier (topological order).
        let inputs = leaves
            .iter()
            .map(|&l| source_of(netlist, l, &lut_of))
            .collect();
        luts.push(MappedLut {
            root: *root,
            inputs,
            table,
        });
        lut_of.insert(*root, index);
    }
    let dffs = netlist
        .dffs()
        .iter()
        .map(|&ff| match netlist.gate(ff) {
            Gate::Dff { d, init } => MappedDff {
                d: source_of(netlist, *d, &lut_of),
                init: *init,
            },
            _ => unreachable!(),
        })
        .collect();
    let outputs = netlist
        .outputs()
        .iter()
        .map(|(name, id)| (name.clone(), source_of(netlist, *id, &lut_of)))
        .collect();
    MappedNetlist {
        name: netlist.name().to_string(),
        k,
        luts,
        dffs,
        outputs,
        n_inputs: netlist.inputs().len(),
    }
}

/// Map a single netlist to k-LUTs.
pub fn map_netlist(netlist: &Netlist, k: usize) -> Result<MappedNetlist, MapError> {
    let cover = choose_cover(netlist, k)?;
    Ok(apply_cover(netlist, &cover, k))
}

/// Map a multi-context workload with a cover shared across contexts:
/// context 0's cuts are reused, so `result[c].luts[i]` realises the same
/// position in every context and cross-context redundancy is measurable
/// position-by-position.
pub fn map_workload(contexts: &[Netlist], k: usize) -> Result<Vec<MappedNetlist>, MapError> {
    assert!(!contexts.is_empty());
    let cover = choose_cover(&contexts[0], k)?;
    contexts
        .iter()
        .map(|n| {
            n.validate().map_err(|e| MapError::Invalid(e.to_string()))?;
            Ok(apply_cover(n, &cover, k))
        })
        .collect()
}

impl MappedNetlist {
    /// Initial register state.
    pub fn initial_state(&self) -> State {
        State {
            bits: self.dffs.iter().map(|d| d.init).collect(),
        }
    }

    fn resolve(
        &self,
        src: MappedSource,
        inputs: &[bool],
        state: &State,
        lut_vals: &[bool],
    ) -> bool {
        match src {
            MappedSource::Input(i) => inputs[i],
            MappedSource::Register(r) => state.bits[r],
            MappedSource::Lut(l) => lut_vals[l],
            MappedSource::Const(c) => c,
        }
    }

    /// One clock cycle: outputs for `inputs`, then register update.
    pub fn step(&self, inputs: &[bool], state: &mut State) -> Vec<bool> {
        assert_eq!(inputs.len(), self.n_inputs, "input arity");
        let mut lut_vals = vec![false; self.luts.len()];
        for (i, lut) in self.luts.iter().enumerate() {
            let mut a = 0usize;
            for (b, &src) in lut.inputs.iter().enumerate() {
                if self.resolve(src, inputs, state, &lut_vals) {
                    a |= 1 << b;
                }
            }
            lut_vals[i] = (lut.table >> a) & 1 == 1;
        }
        let outs = self
            .outputs
            .iter()
            .map(|(_, src)| self.resolve(*src, inputs, state, &lut_vals))
            .collect();
        let next: Vec<bool> = self
            .dffs
            .iter()
            .map(|d| self.resolve(d.d, inputs, state, &lut_vals))
            .collect();
        state.bits = next;
        outs
    }

    /// Maximum LUT fan-in actually used.
    pub fn max_fanin(&self) -> usize {
        self.luts.iter().map(|l| l.inputs.len()).max().unwrap_or(0)
    }

    /// LUT-level logic depth.
    pub fn depth(&self) -> usize {
        let mut d = vec![0usize; self.luts.len()];
        let mut max = 0;
        for (i, lut) in self.luts.iter().enumerate() {
            let dd = lut
                .inputs
                .iter()
                .map(|s| match s {
                    MappedSource::Lut(l) => d[*l] + 1,
                    _ => 1,
                })
                .max()
                .unwrap_or(1);
            d[i] = dd;
            max = max.max(dd);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_netlist::library;
    use mcfpga_netlist::{perturb_netlist, random_netlist, RandomNetlistParams};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Exhaustively (or randomly for wide inputs) check mapped == original.
    fn check_equivalence(netlist: &Netlist, mapped: &MappedNetlist, cycles: usize) {
        let n_in = netlist.inputs().len();
        let mut rng = StdRng::seed_from_u64(99);
        let mut st_a = netlist.initial_state();
        let mut st_b = mapped.initial_state();
        for cycle in 0..cycles {
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            let a = netlist.step(&inputs, &mut st_a).unwrap();
            let b = mapped.step(&inputs, &mut st_b);
            assert_eq!(a, b, "{} diverged at cycle {cycle}", netlist.name());
        }
    }

    #[test]
    fn library_circuits_map_and_match() {
        for circuit in library::benchmark_suite() {
            for k in [4usize, 6] {
                let mapped = map_netlist(&circuit, k).unwrap();
                assert!(mapped.max_fanin() <= k, "{} k={k}", circuit.name());
                check_equivalence(&circuit, &mapped, 50);
            }
        }
    }

    #[test]
    fn mapping_reduces_node_count() {
        let add = library::adder(8);
        let mapped = map_netlist(&add, 6).unwrap();
        assert!(
            mapped.luts.len() < add.n_logic_gates(),
            "LUT packing must absorb gates: {} luts vs {} gates",
            mapped.luts.len(),
            add.n_logic_gates()
        );
    }

    #[test]
    fn random_netlists_map_and_match() {
        for seed in 0..10 {
            let p = RandomNetlistParams {
                n_inputs: 6,
                n_gates: 80,
                n_outputs: 6,
                dff_fraction: if seed % 2 == 0 { 0.0 } else { 0.1 },
            };
            let netlist = random_netlist(p, seed);
            let mapped = map_netlist(&netlist, 5).unwrap();
            check_equivalence(&netlist, &mapped, 40);
        }
    }

    #[test]
    fn shared_cover_aligns_contexts() {
        let base = random_netlist(
            RandomNetlistParams {
                n_inputs: 8,
                n_gates: 60,
                n_outputs: 6,
                dff_fraction: 0.0,
            },
            3,
        );
        let contexts = vec![
            base.clone(),
            perturb_netlist(&base, 0.05, 1),
            perturb_netlist(&base, 0.05, 2),
            perturb_netlist(&base, 0.05, 3),
        ];
        let mapped = map_workload(&contexts, 4).unwrap();
        // Same LUT positions: same roots and same input sources everywhere.
        for m in &mapped[1..] {
            assert_eq!(m.luts.len(), mapped[0].luts.len());
            for (a, b) in mapped[0].luts.iter().zip(&m.luts) {
                assert_eq!(a.root, b.root);
                assert_eq!(a.inputs, b.inputs);
            }
        }
        // And each context still computes its own netlist.
        for (netlist, m) in contexts.iter().zip(&mapped) {
            check_equivalence(netlist, m, 30);
        }
    }

    #[test]
    fn constant_outputs_map() {
        let mut n = Netlist::new("const_out");
        let a = n.input("a");
        let c = n.constant(true);
        let g = n.or(a, c); // always true
        n.output("o", g);
        n.output("direct", c);
        let mapped = map_netlist(&n, 4).unwrap();
        check_equivalence(&n, &mapped, 8);
    }

    #[test]
    fn sequential_feedback_maps() {
        let cnt = library::counter(4);
        let mapped = map_netlist(&cnt, 4).unwrap();
        assert_eq!(mapped.dffs.len(), 4);
        check_equivalence(&cnt, &mapped, 40);
    }

    #[test]
    fn depth_is_positive_and_bounded() {
        let mul = library::multiplier(3);
        let mapped = map_netlist(&mul, 6).unwrap();
        let d = mapped.depth();
        assert!(d >= 1);
        assert!(d <= mul.depth(), "LUT depth cannot exceed gate depth");
    }
}
