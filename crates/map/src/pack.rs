//! The paper's LUT-counting model for globally vs locally controlled
//! MCMG-LUTs (Figs. 13–14), applied to dataflow graphs.
//!
//! Capacity model of one MCMG-LUT with a bit pool of `2^k_max` bits (per
//! base output) used in mode `(k, p)` (`2^k * p = 2^k_max`):
//!
//! * each of the `p` planes stores `2^k` bits;
//! * a plane holds one function per base output under global control; under
//!   local control a *merged* plane may pack several functions as long as
//!   their tables fit the plane's bits (`sum 2^arity <= 2^k`) — this is how
//!   Fig. 14's LUT2 stores the merged `O5 = {O2, O3}` pair in one plane;
//! * under global control the plane index *is* the context (low ID bits):
//!   a function used by several contexts is stored once per context
//!   (Fig. 13's redundant `O3`); under local control the per-block size
//!   controller maps every context of a shared function to one plane.
//!
//! `pack_global` and `pack_local` count the MCMG-LUTs each discipline
//! needs; on the paper's own example the counts are 3 vs 2.

use mcfpga_arch::{ContextId, LutGeometry};
use mcfpga_netlist::{Dfg, MergedDfg};
use serde::{Deserialize, Serialize};

/// Packing parameters.
#[derive(Debug, Clone, Copy)]
pub struct PackOptions {
    /// LUT geometry (pool size and mode range). The paper's Fig. 13/14
    /// example corresponds to a pool of `2^3 = 8` bits: a 2-input LUT with
    /// two planes, or a 3-input LUT with one.
    pub geometry: LutGeometry,
    /// Base outputs per LUT under global control (the figures draw
    /// single-output LUTs; the evaluation architecture has 2).
    pub base_outputs: usize,
}

impl PackOptions {
    /// The Fig. 13/14 setting: single-output LUTs, 8-bit pool.
    pub fn figure_13_14() -> Self {
        PackOptions {
            geometry: LutGeometry {
                outputs: 1,
                min_inputs: 2,
                max_inputs: 3,
            },
            base_outputs: 1,
        }
    }
}

/// Result of a packing run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackResult {
    /// MCMG-LUTs consumed.
    pub n_luts: usize,
    /// Total configuration planes stored (redundant copies included).
    pub planes_stored: usize,
    /// Total function instances packed.
    pub functions: usize,
}

/// Globally controlled packing (Fig. 13): every LUT runs in the
/// maximum-plane mode and plane `c` serves context `c`; each context's
/// functions occupy one output slot of some LUT in that context's plane.
/// A function appearing in `m` contexts is stored `m` times.
pub fn pack_global(contexts: &[Dfg], opts: &PackOptions) -> PackResult {
    let p_max = opts.geometry.max_planes();
    assert!(
        contexts.len() <= p_max,
        "global control needs one plane per context ({} > {p_max})",
        contexts.len()
    );
    let k_min = opts.geometry.min_inputs;
    let mut per_context_slots: Vec<usize> = Vec::new();
    let mut planes_stored = 0usize;
    let mut functions = 0usize;
    for dfg in contexts {
        let mut slots = 0usize;
        for id in 0..dfg.nodes().len() {
            let id = mcfpga_netlist::DfgNodeId(id as u32);
            let arity = dfg.op_arity(id);
            if arity == 0 {
                continue; // inputs
            }
            assert!(
                arity <= k_min,
                "global mode is fixed at {k_min} inputs; node has {arity}"
            );
            slots += 1;
            planes_stored += 1;
            functions += 1;
        }
        per_context_slots.push(slots.div_ceil(opts.base_outputs));
    }
    // Each LUT offers one slot-group per context; contexts pack
    // independently into the same LUT pool, so the LUT count is the widest
    // context's demand.
    let n_luts = per_context_slots.into_iter().max().unwrap_or(0);
    PackResult {
        n_luts,
        planes_stored,
        functions,
    }
}

/// One logic block being filled by the local packer.
#[derive(Debug)]
struct LocalLb {
    /// Planes: each holds a set of (arity) functions and a context mask.
    planes: Vec<(Vec<usize>, u32)>,
}

/// Locally controlled packing (Fig. 14): structurally shared nodes are
/// merged first ([`MergedDfg`]); each unique function needs one plane for
/// all its contexts, and functions whose combined tables fit one plane's
/// bits merge into multi-output planes. First-fit-decreasing over blocks.
pub fn pack_local(contexts: &[Dfg], opts: &PackOptions, ctx: ContextId) -> PackResult {
    assert_eq!(ctx.n_contexts(), contexts.len().max(2));
    let merged = MergedDfg::merge(contexts);
    let pool_bits = opts.geometry.pool_bits();
    let p_max = opts.geometry.max_planes();

    // Sort unique functions by (shared first, large first) so merging
    // happens eagerly.
    let mut nodes: Vec<(&str, u32, usize)> = merged
        .nodes
        .iter()
        .map(|n| (n.key.as_str(), n.context_mask, n.arity))
        .collect();
    nodes.sort_by_key(|(_, mask, arity)| {
        (usize::MAX - mask.count_ones() as usize, usize::MAX - *arity)
    });

    let mut lbs: Vec<LocalLb> = Vec::new();
    'next_node: for (_key, mask, arity) in nodes {
        let bits = 1usize << arity;
        for lb in &mut lbs {
            // Try to join an existing plane with the *same* context mask
            // (the merged multi-output plane of Fig. 14).
            let planes_used = lb.planes.len();
            for (funcs, pmask) in &mut lb.planes {
                if *pmask == mask {
                    let plane_bits: usize =
                        funcs.iter().map(|&a| 1usize << a).sum::<usize>() + bits;
                    // A plane's capacity is pool/planes-used; joining must
                    // keep the whole block feasible.
                    if plane_bits * planes_used <= pool_bits {
                        funcs.push(arity);
                        continue 'next_node;
                    }
                }
            }
            // Try a new plane in this block: context masks must be disjoint
            // (each context maps to exactly one plane).
            let used_mask: u32 = lb.planes.iter().map(|(_, m)| m).fold(0, |a, b| a | b);
            if used_mask & mask == 0 && lb.planes.len() < p_max {
                let planes_used = lb.planes.len() + 1;
                let worst_plane_bits = lb
                    .planes
                    .iter()
                    .map(|(funcs, _)| funcs.iter().map(|&a| 1usize << a).sum::<usize>())
                    .chain(std::iter::once(bits))
                    .max()
                    .unwrap_or(0);
                if worst_plane_bits * planes_used <= pool_bits {
                    lb.planes.push((vec![arity], mask));
                    continue 'next_node;
                }
            }
        }
        // Open a new block.
        assert!(
            bits <= pool_bits,
            "function arity {arity} exceeds the whole pool"
        );
        lbs.push(LocalLb {
            planes: vec![(vec![arity], mask)],
        });
    }

    let planes_stored = lbs.iter().map(|lb| lb.planes.len()).sum();
    PackResult {
        n_luts: lbs.len(),
        planes_stored,
        functions: merged.unique_nodes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_netlist::dfg::{generated_family, paper_example};

    fn ctx(n: usize) -> ContextId {
        ContextId::new(n).unwrap()
    }

    /// The paper's own result: three globally controlled MCMG-LUTs vs two
    /// locally controlled ones (Figs. 13(b) and 14(b)).
    #[test]
    fn paper_example_is_3_vs_2() {
        let dfgs = paper_example();
        let opts = PackOptions::figure_13_14();
        let global = pack_global(&dfgs, &opts);
        let local = pack_local(&dfgs, &opts, ctx(2));
        assert_eq!(global.n_luts, 3, "Fig. 13(b)");
        assert_eq!(local.n_luts, 2, "Fig. 14(b)");
        // Global stores O2 and O3 twice: 6 planes; local stores 4 unique
        // functions in 3 planes (O2+O3 share one).
        assert_eq!(global.planes_stored, 6);
        assert_eq!(local.functions, 4);
        assert!(local.planes_stored < global.planes_stored);
    }

    #[test]
    fn full_sharing_collapses_local_count() {
        let fam = generated_family(2, 4, 12, 1.0, 3);
        let opts = PackOptions::figure_13_14();
        let global = pack_global(&fam, &opts);
        let local = pack_local(&fam, &opts, ctx(2));
        assert!(local.n_luts < global.n_luts);
        // All nodes shared -> every plane serves both contexts.
        assert_eq!(local.functions, 12);
    }

    #[test]
    fn no_sharing_keeps_counts_equalish() {
        let fam = generated_family(2, 4, 12, 0.0, 3);
        let opts = PackOptions::figure_13_14();
        let global = pack_global(&fam, &opts);
        let local = pack_local(&fam, &opts, ctx(2));
        // Without sharing, local control cannot do better than global.
        assert!(local.n_luts >= global.n_luts);
    }

    #[test]
    fn local_count_decreases_with_share_fraction() {
        let opts = PackOptions::figure_13_14();
        let mut prev = usize::MAX;
        for share in [0.0, 0.5, 1.0] {
            let fam = generated_family(2, 4, 16, share, 9);
            let local = pack_local(&fam, &opts, ctx(2));
            assert!(
                local.n_luts <= prev,
                "sharing {share} grew the count: {} > {prev}",
                local.n_luts
            );
            prev = local.n_luts;
        }
    }

    #[test]
    fn four_context_packing_works() {
        let fam = generated_family(4, 4, 10, 0.6, 21);
        let opts = PackOptions {
            geometry: LutGeometry {
                outputs: 1,
                min_inputs: 2,
                max_inputs: 4,
            },
            base_outputs: 1,
        };
        let global = pack_global(&fam, &opts);
        let local = pack_local(&fam, &opts, ctx(4));
        assert!(global.n_luts >= 10);
        assert!(local.n_luts <= global.n_luts);
    }

    #[test]
    #[should_panic(expected = "one plane per context")]
    fn global_rejects_too_many_contexts() {
        let fam = generated_family(4, 4, 4, 0.0, 2);
        let opts = PackOptions::figure_13_14(); // only 2 planes
        let _ = pack_global(&fam, &opts);
    }
}
