//! Cross-context sharing analysis over aligned mapped workloads.
//!
//! After [`crate::map_workload`] the per-context LUT networks align
//! position-by-position: position `i` has the same root and the same input
//! sources in every context, only the truth table may differ. Each position
//! therefore becomes one logic-block LUT whose *plane demand* equals the
//! number of distinct tables across contexts:
//!
//! * demand 1 — the function is shared by all contexts (Fig. 14's merged
//!   `O5`): a single configuration plane suffices and the freed planes can
//!   enlarge the LUT;
//! * demand `n` — every context differs: the conventional one-plane-per-
//!   context storage is genuinely needed.
//!
//! The resulting [`SharedDesign`] carries everything the adaptive logic
//! block and area model need: per-position plane maps, the local
//! size-controller columns, and the LUT-bit configuration columns.

use mcfpga_arch::ContextId;
use mcfpga_config::ConfigColumn;
use serde::{Deserialize, Serialize};

use crate::mapper::{MappedNetlist, MappedSource};

/// One configuration plane of a shared LUT position: a truth table and the
/// contexts that use it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LutPlane {
    pub table: u64,
    /// Bitmask of contexts mapped to this plane.
    pub context_mask: u32,
}

/// One logic-block LUT position shared across contexts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedLut {
    /// Input sources (identical across contexts by construction).
    pub inputs: Vec<MappedSource>,
    /// Distinct planes, in first-use order; `plane_of_context[c]` indexes
    /// into this.
    pub planes: Vec<LutPlane>,
    pub plane_of_context: Vec<usize>,
}

impl SharedLut {
    /// Number of distinct configuration planes needed.
    pub fn planes_needed(&self) -> usize {
        self.planes.len()
    }

    /// Whether all contexts share one plane.
    pub fn fully_shared(&self) -> bool {
        self.planes.len() == 1
    }

    /// The size-controller columns for this LUT: bit `b` of the plane index
    /// as a function of the context. Constant columns (fully shared LUTs)
    /// cost one SE each; see `mcfpga_lut::LocalSizeController`.
    pub fn controller_columns(&self, ctx: ContextId, select_bits: usize) -> Vec<ConfigColumn> {
        (0..select_bits)
            .map(|b| {
                ConfigColumn::from_fn(ctx.n_contexts(), |c| {
                    (self.plane_of_context[c] >> b) & 1 == 1
                })
            })
            .collect()
    }

    /// The per-bit configuration columns of this LUT's memory, under the
    /// *conventional* storage model (every context stores its full table):
    /// used by the Table 1 statistics and the area comparison baseline.
    pub fn conventional_bit_columns(&self, ctx: ContextId, k: usize) -> Vec<ConfigColumn> {
        (0..(1usize << k))
            .map(|bit| {
                ConfigColumn::from_fn(ctx.n_contexts(), |c| {
                    let t = self.planes[self.plane_of_context[c]].table;
                    (t >> bit) & 1 == 1
                })
            })
            .collect()
    }
}

/// A whole workload shared across contexts.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedDesign {
    pub n_contexts: usize,
    pub k: usize,
    pub luts: Vec<SharedLut>,
}

impl SharedDesign {
    /// Total LUT positions.
    pub fn n_positions(&self) -> usize {
        self.luts.len()
    }

    /// Total plane instances under conventional storage (`positions x n`).
    pub fn conventional_planes(&self) -> usize {
        self.luts.len() * self.n_contexts
    }

    /// Total planes after sharing.
    pub fn shared_planes(&self) -> usize {
        self.luts.iter().map(|l| l.planes_needed()).sum()
    }

    /// Histogram of plane demand: `hist[p-1]` = positions needing `p` planes.
    pub fn plane_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.n_contexts];
        for l in &self.luts {
            hist[l.planes_needed() - 1] += 1;
        }
        hist
    }

    /// Average planes needed per position.
    pub fn mean_planes(&self) -> f64 {
        if self.luts.is_empty() {
            return 0.0;
        }
        self.shared_planes() as f64 / self.luts.len() as f64
    }
}

/// Merge an aligned workload (`map_workload` output) into a [`SharedDesign`].
pub fn share_workload(mapped: &[MappedNetlist]) -> SharedDesign {
    assert!(!mapped.is_empty());
    let n_contexts = mapped.len();
    let n_luts = mapped[0].luts.len();
    for m in mapped {
        assert_eq!(
            m.luts.len(),
            n_luts,
            "workload must be mapped with a shared cover"
        );
    }
    let mut luts = Vec::with_capacity(n_luts);
    for i in 0..n_luts {
        let inputs = mapped[0].luts[i].inputs.clone();
        let mut planes: Vec<LutPlane> = Vec::new();
        let mut plane_of_context = Vec::with_capacity(n_contexts);
        for (c, m) in mapped.iter().enumerate() {
            assert_eq!(
                m.luts[i].inputs, inputs,
                "position {i} misaligned in context {c}"
            );
            let table = m.luts[i].table;
            let slot = planes.iter().position(|p| p.table == table);
            let slot = match slot {
                Some(s) => s,
                None => {
                    planes.push(LutPlane {
                        table,
                        context_mask: 0,
                    });
                    planes.len() - 1
                }
            };
            planes[slot].context_mask |= 1 << c;
            plane_of_context.push(slot);
        }
        luts.push(SharedLut {
            inputs,
            planes,
            plane_of_context,
        });
    }
    SharedDesign {
        n_contexts,
        k: mapped[0].k,
        luts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_workload;
    use mcfpga_netlist::{perturb_netlist, random_netlist, workload, RandomNetlistParams};

    fn params() -> RandomNetlistParams {
        RandomNetlistParams {
            n_inputs: 8,
            n_gates: 80,
            n_outputs: 8,
            dff_fraction: 0.0,
        }
    }

    #[test]
    fn identical_contexts_fully_share() {
        let base = random_netlist(params(), 7);
        let contexts = vec![base.clone(), base.clone(), base.clone(), base];
        let mapped = map_workload(&contexts, 4).unwrap();
        let shared = share_workload(&mapped);
        assert!(shared.luts.iter().all(|l| l.fully_shared()));
        assert_eq!(shared.mean_planes(), 1.0);
        assert_eq!(shared.shared_planes(), shared.n_positions());
        assert_eq!(shared.conventional_planes(), 4 * shared.n_positions());
    }

    #[test]
    fn plane_demand_grows_with_change_rate() {
        let low = workload(params(), 4, 0.02, 11);
        let high = workload(params(), 4, 0.40, 11);
        let s_low = share_workload(&map_workload(&low, 4).unwrap());
        let s_high = share_workload(&map_workload(&high, 4).unwrap());
        assert!(
            s_low.mean_planes() < s_high.mean_planes(),
            "low {} vs high {}",
            s_low.mean_planes(),
            s_high.mean_planes()
        );
        assert!(s_low.mean_planes() >= 1.0);
        assert!(s_high.mean_planes() <= 4.0);
    }

    #[test]
    fn plane_histogram_sums_to_positions() {
        let w = workload(params(), 4, 0.1, 23);
        let shared = share_workload(&map_workload(&w, 5).unwrap());
        let hist = shared.plane_histogram();
        assert_eq!(hist.iter().sum::<usize>(), shared.n_positions());
        assert_eq!(hist.len(), 4);
    }

    #[test]
    fn plane_of_context_is_consistent() {
        let base = random_netlist(params(), 3);
        let contexts = vec![
            base.clone(),
            perturb_netlist(&base, 0.3, 5),
            base.clone(),
            perturb_netlist(&base, 0.3, 6),
        ];
        let shared = share_workload(&map_workload(&contexts, 4).unwrap());
        for lut in &shared.luts {
            assert_eq!(lut.plane_of_context.len(), 4);
            // Context masks partition the contexts.
            let mut union = 0u32;
            for (pi, plane) in lut.planes.iter().enumerate() {
                assert_ne!(plane.context_mask, 0);
                assert_eq!(union & plane.context_mask, 0, "planes overlap");
                union |= plane.context_mask;
                for c in 0..4 {
                    if (plane.context_mask >> c) & 1 == 1 {
                        assert_eq!(lut.plane_of_context[c], pi);
                    }
                }
            }
            assert_eq!(union, 0b1111);
            // Contexts 0 and 2 are identical netlists -> same plane.
            assert_eq!(lut.plane_of_context[0], lut.plane_of_context[2]);
        }
    }

    #[test]
    fn controller_columns_encode_the_plane_map() {
        let ctx = ContextId::new(4).unwrap();
        let lut = SharedLut {
            inputs: vec![],
            planes: vec![
                LutPlane {
                    table: 1,
                    context_mask: 0b1001,
                },
                LutPlane {
                    table: 2,
                    context_mask: 0b0110,
                },
            ],
            plane_of_context: vec![0, 1, 1, 0],
        };
        let cols = lut.controller_columns(ctx, 1);
        assert_eq!(cols.len(), 1);
        // Plane bit 0 per context: 0,1,1,0 -> pattern string 0110.
        assert_eq!(cols[0].pattern_string(), "0110");
    }

    #[test]
    fn conventional_bit_columns_reflect_table_changes() {
        let ctx = ContextId::new(4).unwrap();
        let lut = SharedLut {
            inputs: vec![],
            planes: vec![
                LutPlane {
                    table: 0b0001,
                    context_mask: 0b0011,
                },
                LutPlane {
                    table: 0b0011,
                    context_mask: 0b1100,
                },
            ],
            plane_of_context: vec![0, 0, 1, 1],
        };
        let cols = lut.conventional_bit_columns(ctx, 2);
        assert_eq!(cols.len(), 4);
        // Bit 0 is 1 in every context -> constant.
        assert!(cols[0].is_constant());
        // Bit 1 is 0 in contexts 0,1 and 1 in contexts 2,3 -> equals S1.
        assert_eq!(cols[1].pattern_string(), "1100");
        // Bits 2 and 3 are always 0.
        assert!(cols[2].is_constant() && cols[3].is_constant());
    }
}
