//! Temporal partitioning: run a circuit that does not fit the array by
//! splitting it across contexts — the DPGA execution model the paper
//! builds on ("a DPGA can be sequentially configured as different
//! processors in real time, and efficiently reuse the limited hardware
//! resources in time", §1).
//!
//! A combinational LUT network is cut into stages of at most `capacity`
//! LUTs along its topological order. Values crossing a stage boundary are
//! carried in *transfer registers* — exactly the flip-flops of the adaptive
//! logic blocks, whose state survives context switches. Executing one
//! *macro-cycle* = stepping through the stages (contexts) in order; after
//! the last stage the primary outputs sit in their registers.
//!
//! Each stage is an ordinary [`MappedNetlist`]: its DFF list is the set of
//! transfer registers it touches (read-only registers hold themselves), so
//! a stage can be compiled onto the fabric like any other context — see
//! `mcfpga-sim`'s temporal tests for the full fabric demonstration.

use serde::{Deserialize, Serialize};

use crate::mapper::{MappedDff, MappedLut, MappedNetlist, MappedSource};

/// Where a temporal design's primary output lives after the last stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemporalOutput {
    /// Transfer register holding the value.
    Register(usize),
    /// The output is a primary input passed through.
    Input(usize),
    /// Constant output.
    Const(bool),
}

/// One stage of a temporal design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalStage {
    /// The stage's LUT network. Its DFF list corresponds entry-for-entry to
    /// [`TemporalStage::registers`].
    pub netlist: MappedNetlist,
    /// Global transfer-register ids backing the netlist's DFF slots.
    pub registers: Vec<usize>,
}

/// A temporally partitioned design.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalDesign {
    pub stages: Vec<TemporalStage>,
    /// Total transfer registers.
    pub n_registers: usize,
    pub n_inputs: usize,
    /// Primary outputs, read after the final stage.
    pub outputs: Vec<(String, TemporalOutput)>,
}

/// Partitioning failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalError {
    /// The input netlist is sequential; temporal partitioning here covers
    /// combinational circuits (sequential splitting needs retiming).
    Sequential,
    /// Capacity must be at least 1.
    ZeroCapacity,
}

impl std::fmt::Display for TemporalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TemporalError::Sequential => {
                write!(f, "temporal partitioning requires a combinational netlist")
            }
            TemporalError::ZeroCapacity => write!(f, "stage capacity must be positive"),
        }
    }
}

impl std::error::Error for TemporalError {}

/// Partition a combinational mapped netlist into stages of at most
/// `capacity` LUTs.
pub fn temporal_partition(
    mapped: &MappedNetlist,
    capacity: usize,
) -> Result<TemporalDesign, TemporalError> {
    if !mapped.dffs.is_empty() {
        return Err(TemporalError::Sequential);
    }
    if capacity == 0 {
        return Err(TemporalError::ZeroCapacity);
    }
    let n = mapped.luts.len();
    // Stage assignment: LUTs are already topological, so a simple
    // capacity-bounded scan preserves the invariant that every input comes
    // from the same or an earlier stage.
    let stage_of: Vec<usize> = (0..n).map(|i| i / capacity).collect();
    let n_stages = n.div_ceil(capacity).max(1);

    // A LUT needs a transfer register iff some consumer lives in a later
    // stage, or it drives a primary output.
    let mut needs_reg = vec![false; n];
    for (i, lut) in mapped.luts.iter().enumerate() {
        for src in &lut.inputs {
            if let MappedSource::Lut(j) = src {
                if stage_of[*j] < stage_of[i] {
                    needs_reg[*j] = true;
                }
            }
        }
    }
    for (_, src) in &mapped.outputs {
        if let MappedSource::Lut(j) = src {
            needs_reg[*j] = true;
        }
    }
    let mut reg_of_lut = vec![usize::MAX; n];
    let mut n_registers = 0usize;
    for i in 0..n {
        if needs_reg[i] {
            reg_of_lut[i] = n_registers;
            n_registers += 1;
        }
    }

    // Build the stages.
    let mut stages = Vec::with_capacity(n_stages);
    for s in 0..n_stages {
        let members: Vec<usize> = (0..n).filter(|&i| stage_of[i] == s).collect();
        let local_of: std::collections::HashMap<usize, usize> = members
            .iter()
            .enumerate()
            .map(|(local, &global)| (global, local))
            .collect();
        // Registers this stage touches: reads (inputs from earlier stages)
        // and writes (own LUTs that need registers).
        let mut regs: Vec<usize> = Vec::new();
        let reg_slot = |regs: &mut Vec<usize>, global_reg: usize| -> usize {
            match regs.iter().position(|&r| r == global_reg) {
                Some(p) => p,
                None => {
                    regs.push(global_reg);
                    regs.len() - 1
                }
            }
        };
        // First pass: collect read registers so slot indices are stable
        // before we emit LUT inputs.
        for &i in &members {
            for src in &mapped.luts[i].inputs {
                if let MappedSource::Lut(j) = src {
                    if stage_of[*j] < s {
                        reg_slot(&mut regs, reg_of_lut[*j]);
                    }
                }
            }
        }
        for &i in &members {
            if needs_reg[i] {
                reg_slot(&mut regs, reg_of_lut[i]);
            }
        }
        let slot_of_reg: std::collections::HashMap<usize, usize> = regs
            .iter()
            .enumerate()
            .map(|(slot, &g)| (g, slot))
            .collect();

        let luts: Vec<MappedLut> = members
            .iter()
            .map(|&i| {
                let src = &mapped.luts[i];
                MappedLut {
                    root: src.root,
                    inputs: src
                        .inputs
                        .iter()
                        .map(|inp| match inp {
                            MappedSource::Lut(j) => {
                                if stage_of[*j] == s {
                                    MappedSource::Lut(local_of[j])
                                } else {
                                    MappedSource::Register(slot_of_reg[&reg_of_lut[*j]])
                                }
                            }
                            other => *other,
                        })
                        .collect(),
                    table: src.table,
                }
            })
            .collect();

        // DFFs: one per touched register. Written registers sample their
        // LUT; read-only registers hold themselves.
        let written: std::collections::HashMap<usize, usize> = members
            .iter()
            .filter(|&&i| needs_reg[i])
            .map(|&i| (reg_of_lut[i], local_of[&i]))
            .collect();
        let dffs: Vec<MappedDff> = regs
            .iter()
            .enumerate()
            .map(|(slot, g)| MappedDff {
                d: match written.get(g) {
                    Some(&local) => MappedSource::Lut(local),
                    None => MappedSource::Register(slot),
                },
                init: false,
            })
            .collect();

        stages.push(TemporalStage {
            netlist: MappedNetlist {
                name: format!("{}_stage{s}", mapped.name),
                k: mapped.k,
                luts,
                dffs,
                outputs: Vec::new(),
                n_inputs: mapped.n_inputs,
            },
            registers: regs,
        });
    }

    let outputs = mapped
        .outputs
        .iter()
        .map(|(name, src)| {
            let out = match src {
                MappedSource::Lut(j) => TemporalOutput::Register(reg_of_lut[*j]),
                MappedSource::Input(p) => TemporalOutput::Input(*p),
                MappedSource::Const(c) => TemporalOutput::Const(*c),
                MappedSource::Register(_) => unreachable!("combinational netlist"),
            };
            (name.clone(), out)
        })
        .collect();

    Ok(TemporalDesign {
        stages,
        n_registers,
        n_inputs: mapped.n_inputs,
        outputs,
    })
}

impl TemporalDesign {
    /// Largest stage (LUTs) — what must fit one context of the fabric.
    pub fn max_stage_luts(&self) -> usize {
        self.stages
            .iter()
            .map(|s| s.netlist.luts.len())
            .max()
            .unwrap_or(0)
    }

    /// Macro-cycle length in context switches.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }
}

/// Architecture-independent executor for a temporal design: a shared
/// transfer-register file plus sequential stage evaluation.
#[derive(Debug, Clone)]
pub struct TemporalExecutor {
    design: TemporalDesign,
    regs: Vec<bool>,
}

impl TemporalExecutor {
    pub fn new(design: TemporalDesign) -> Self {
        let regs = vec![false; design.n_registers];
        TemporalExecutor { design, regs }
    }

    pub fn design(&self) -> &TemporalDesign {
        &self.design
    }

    /// One macro-cycle: run every stage in order, return the outputs.
    pub fn run(&mut self, inputs: &[bool]) -> Vec<bool> {
        assert_eq!(inputs.len(), self.design.n_inputs, "input arity");
        for stage in &self.design.stages {
            // Load the stage's register view from the global file.
            let mut state = stage.netlist.initial_state();
            for (slot, &g) in stage.registers.iter().enumerate() {
                state.bits[slot] = self.regs[g];
            }
            let _ = stage.netlist.step(inputs, &mut state);
            // Commit back.
            for (slot, &g) in stage.registers.iter().enumerate() {
                self.regs[g] = state.bits[slot];
            }
        }
        self.design
            .outputs
            .iter()
            .map(|(_, out)| match out {
                TemporalOutput::Register(g) => self.regs[*g],
                TemporalOutput::Input(p) => inputs[*p],
                TemporalOutput::Const(c) => *c,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapper::map_netlist;
    use mcfpga_netlist::library;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn check_temporal(circuit: &mcfpga_netlist::Netlist, capacity: usize, seed: u64) {
        let mapped = map_netlist(circuit, 4).unwrap();
        let design = temporal_partition(&mapped, capacity).unwrap();
        assert!(design.max_stage_luts() <= capacity);
        let mut exec = TemporalExecutor::new(design);
        let n_in = circuit.inputs().len();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..60 {
            let inputs: Vec<bool> = (0..n_in).map(|_| rng.gen_bool(0.5)).collect();
            let expect = circuit.eval_comb(&inputs).unwrap();
            let got = exec.run(&inputs);
            assert_eq!(got, expect, "{} capacity {capacity}", circuit.name());
        }
    }

    #[test]
    fn multiplier_runs_in_pieces() {
        // mul3 maps to ~30 LUTs at k=4; run it through stages of 8.
        check_temporal(&library::multiplier(3), 8, 1);
    }

    #[test]
    fn various_circuits_and_capacities() {
        check_temporal(&library::adder(6), 5, 2);
        check_temporal(&library::alu(4), 10, 3);
        check_temporal(&library::comparator(4), 3, 4);
        check_temporal(&library::popcount(6), 4, 5);
    }

    #[test]
    fn capacity_one_is_fully_serial() {
        let circuit = library::parity(8);
        let mapped = map_netlist(&circuit, 4).unwrap();
        let design = temporal_partition(&mapped, 1).unwrap();
        assert_eq!(design.n_stages(), mapped.luts.len());
        check_temporal(&circuit, 1, 6);
    }

    #[test]
    fn huge_capacity_is_a_single_stage() {
        let circuit = library::adder(4);
        let mapped = map_netlist(&circuit, 4).unwrap();
        let design = temporal_partition(&mapped, 10_000).unwrap();
        assert_eq!(design.n_stages(), 1);
        check_temporal(&circuit, 10_000, 7);
    }

    #[test]
    fn sequential_netlists_are_rejected() {
        let mapped = map_netlist(&library::counter(4), 4).unwrap();
        assert_eq!(
            temporal_partition(&mapped, 4).unwrap_err(),
            TemporalError::Sequential
        );
    }

    #[test]
    fn zero_capacity_is_rejected() {
        let mapped = map_netlist(&library::adder(4), 4).unwrap();
        assert_eq!(
            temporal_partition(&mapped, 0).unwrap_err(),
            TemporalError::ZeroCapacity
        );
    }

    #[test]
    fn register_count_is_no_more_than_luts() {
        let mapped = map_netlist(&library::multiplier(3), 4).unwrap();
        let design = temporal_partition(&mapped, 6).unwrap();
        assert!(design.n_registers <= mapped.luts.len());
        assert!(design.n_registers > 0, "stage boundaries must be crossed");
    }

    #[test]
    fn passthrough_and_const_outputs_work() {
        let mut n = mcfpga_netlist::Netlist::new("pass");
        let a = n.input("a");
        let b = n.input("b");
        let c = n.constant(true);
        let g = n.and(a, b);
        n.output("g", g);
        n.output("direct", a);
        n.output("konst", c);
        let mapped = map_netlist(&n, 4).unwrap();
        let design = temporal_partition(&mapped, 1).unwrap();
        let mut exec = TemporalExecutor::new(design);
        let out = exec.run(&[true, false]);
        assert_eq!(out, vec![false, true, true]);
    }
}
