//! Dataflow-graph IR for the adaptive-logic-block experiment (Figs. 13/14).
//!
//! The paper maps per-context dataflow graphs (DFGs) onto MCMG-LUTs in two
//! ways: *globally controlled* (every logic block keeps one configuration
//! plane per context, so a node repeated in several contexts is stored
//! redundantly) and *locally controlled* (nodes shared between contexts are
//! detected, merged, and stored in a single plane, freeing the plane-select
//! input to enlarge the LUT). This module provides the DFG representation,
//! structural-equality hashing, and the cross-context merge of Fig. 14(a).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Node index inside a [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DfgNodeId(pub u32);

impl DfgNodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A DFG node: either a named external input or an operation over earlier
/// nodes. Operation names are opaque; equality of name + operands defines
/// structural sharing.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DfgNode {
    Input(String),
    Op { name: String, args: Vec<DfgNodeId> },
}

/// A per-context dataflow graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dfg {
    name: String,
    nodes: Vec<DfgNode>,
    outputs: Vec<DfgNodeId>,
}

impl Dfg {
    pub fn new(name: impl Into<String>) -> Self {
        Dfg {
            name: name.into(),
            nodes: Vec::new(),
            outputs: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn input(&mut self, name: impl Into<String>) -> DfgNodeId {
        self.push(DfgNode::Input(name.into()))
    }

    pub fn op(&mut self, name: impl Into<String>, args: &[DfgNodeId]) -> DfgNodeId {
        self.push(DfgNode::Op {
            name: name.into(),
            args: args.to_vec(),
        })
    }

    fn push(&mut self, node: DfgNode) -> DfgNodeId {
        let id = DfgNodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    pub fn mark_output(&mut self, id: DfgNodeId) {
        self.outputs.push(id);
    }

    pub fn nodes(&self) -> &[DfgNode] {
        &self.nodes
    }

    pub fn node(&self, id: DfgNodeId) -> &DfgNode {
        &self.nodes[id.index()]
    }

    pub fn outputs(&self) -> &[DfgNodeId] {
        &self.outputs
    }

    /// Operation nodes only (inputs are free).
    pub fn n_ops(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, DfgNode::Op { .. }))
            .count()
    }

    /// Number of distinct external inputs feeding an op node, transitively
    /// cut at op boundaries (i.e. the op's direct argument count).
    pub fn op_arity(&self, id: DfgNodeId) -> usize {
        match self.node(id) {
            DfgNode::Input(_) => 0,
            DfgNode::Op { args, .. } => args.len(),
        }
    }

    /// Canonical structural keys for every node: two nodes (possibly in
    /// different DFGs) receive equal keys iff their operator trees over
    /// external inputs are identical.
    pub fn structural_keys(&self) -> Vec<String> {
        let mut keys: Vec<String> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let key = match node {
                DfgNode::Input(name) => format!("in:{name}"),
                DfgNode::Op { name, args } => {
                    let parts: Vec<&str> = args.iter().map(|a| keys[a.index()].as_str()).collect();
                    format!("{name}({})", parts.join(","))
                }
            };
            keys.push(key);
        }
        keys
    }
}

/// One node of a merged multi-context DFG: the operation's structural key,
/// the contexts it appears in, and its arity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergedNode {
    pub key: String,
    /// Bitmask of contexts containing this node.
    pub context_mask: u32,
    pub arity: usize,
}

impl MergedNode {
    /// Number of contexts sharing this node.
    pub fn n_contexts(&self) -> usize {
        self.context_mask.count_ones() as usize
    }
}

/// The cross-context merge of Fig. 14(a): per-context DFGs with structurally
/// identical nodes unified.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergedDfg {
    pub n_contexts: usize,
    pub nodes: Vec<MergedNode>,
}

impl MergedDfg {
    /// Merge one DFG per context.
    pub fn merge(contexts: &[Dfg]) -> Self {
        assert!(!contexts.is_empty());
        let mut order: Vec<String> = Vec::new();
        let mut index: HashMap<String, usize> = HashMap::new();
        let mut merged: Vec<MergedNode> = Vec::new();
        for (c, dfg) in contexts.iter().enumerate() {
            let keys = dfg.structural_keys();
            for (i, node) in dfg.nodes().iter().enumerate() {
                if let DfgNode::Op { args, .. } = node {
                    let key = &keys[i];
                    let slot = *index.entry(key.clone()).or_insert_with(|| {
                        order.push(key.clone());
                        merged.push(MergedNode {
                            key: key.clone(),
                            context_mask: 0,
                            arity: args.len(),
                        });
                        merged.len() - 1
                    });
                    merged[slot].context_mask |= 1 << c;
                }
            }
        }
        MergedDfg {
            n_contexts: contexts.len(),
            nodes: merged,
        }
    }

    /// Total op nodes counting per-context duplicates (the "globally
    /// controlled" storage demand).
    pub fn total_instances(&self) -> usize {
        self.nodes.iter().map(|n| n.n_contexts()).sum()
    }

    /// Unique op nodes after merging (the "locally controlled" demand).
    pub fn unique_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Nodes appearing in more than one context.
    pub fn shared_nodes(&self) -> usize {
        self.nodes.iter().filter(|n| n.n_contexts() > 1).count()
    }
}

/// The paper's own Fig. 13(a)/14(a) example: two contexts over inputs
/// R, T, V, W where `O2` and `O3` are shared, context 1 additionally
/// computes `O4(O2, O3)` and context 2 computes `O1(O2, O3)`.
pub fn paper_example() -> Vec<Dfg> {
    let mut ctx1 = Dfg::new("context1");
    let r = ctx1.input("R");
    let t = ctx1.input("T");
    let v = ctx1.input("V");
    let w = ctx1.input("W");
    let o2 = ctx1.op("O2", &[r, t]);
    let o3 = ctx1.op("O3", &[v, w]);
    let o4 = ctx1.op("O4", &[o2, o3]);
    ctx1.mark_output(o4);

    let mut ctx2 = Dfg::new("context2");
    let r = ctx2.input("R");
    let t = ctx2.input("T");
    let v = ctx2.input("V");
    let w = ctx2.input("W");
    let o2 = ctx2.op("O2", &[r, t]);
    let o3 = ctx2.op("O3", &[v, w]);
    let o1 = ctx2.op("O1", &[o2, o3]);
    ctx2.mark_output(o1);

    vec![ctx1, ctx2]
}

/// Generate a family of `n_contexts` DFGs over `n_inputs` shared inputs with
/// `n_ops` ops each, where roughly `share_fraction` of each later context's
/// ops are copied from context 0 (shared) and the rest are unique.
pub fn generated_family(
    n_contexts: usize,
    n_inputs: usize,
    n_ops: usize,
    share_fraction: f64,
    seed: u64,
) -> Vec<Dfg> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut contexts = Vec::with_capacity(n_contexts);
    // Context 0: chain/tree of ops.
    for c in 0..n_contexts {
        let mut dfg = Dfg::new(format!("gen_ctx{c}"));
        let inputs: Vec<DfgNodeId> = (0..n_inputs).map(|i| dfg.input(format!("x{i}"))).collect();
        let mut pool = inputs;
        for k in 0..n_ops {
            let a = pool[rng.gen_range(0..pool.len())];
            let b = pool[rng.gen_range(0..pool.len())];
            // Shared ops use a context-independent name derived only from k;
            // with the same argument choice pattern they hash equal across
            // contexts. To force that, shared ops always use the first two
            // inputs of the pool prefix.
            let shared = c > 0 && rng.gen_bool(share_fraction);
            let id = if shared || c == 0 {
                let a0 = DfgNodeId((k % n_inputs) as u32);
                let b0 = DfgNodeId(((k + 1) % n_inputs) as u32);
                dfg.op(format!("f{k}"), &[a0, b0])
            } else {
                dfg.op(format!("g{c}_{k}"), &[a, b])
            };
            pool.push(id);
        }
        let last = *pool.last().expect("non-empty");
        dfg.mark_output(last);
        contexts.push(dfg);
    }
    contexts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_shares_o2_o3() {
        let ctxs = paper_example();
        let merged = MergedDfg::merge(&ctxs);
        // Unique: O2, O3, O4, O1 -> 4; instances: 3 + 3 = 6; shared: 2.
        assert_eq!(merged.unique_nodes(), 4);
        assert_eq!(merged.total_instances(), 6);
        assert_eq!(merged.shared_nodes(), 2);
    }

    #[test]
    fn structural_keys_identify_identical_trees() {
        let mut a = Dfg::new("a");
        let x = a.input("x");
        let y = a.input("y");
        let f = a.op("add", &[x, y]);
        let g = a.op("add", &[x, y]);
        let keys = a.structural_keys();
        assert_eq!(keys[f.index()], keys[g.index()]);

        let mut b = Dfg::new("b");
        let x = b.input("x");
        let y = b.input("y");
        let h = b.op("add", &[y, x]); // different arg order => different key
        let kb = b.structural_keys();
        assert_ne!(keys[f.index()], kb[h.index()]);
    }

    #[test]
    fn merge_counts_duplicates_once() {
        let mut c0 = Dfg::new("c0");
        let x = c0.input("x");
        let n0 = c0.op("inc", &[x]);
        c0.mark_output(n0);
        let c1 = c0.clone();
        let merged = MergedDfg::merge(&[c0, c1]);
        assert_eq!(merged.unique_nodes(), 1);
        assert_eq!(merged.total_instances(), 2);
        assert_eq!(merged.nodes[0].context_mask, 0b11);
    }

    #[test]
    fn generated_family_sharing_scales() {
        let none = MergedDfg::merge(&generated_family(4, 4, 20, 0.0, 42));
        let all = MergedDfg::merge(&generated_family(4, 4, 20, 1.0, 42));
        assert!(all.unique_nodes() < none.unique_nodes());
        assert_eq!(
            all.unique_nodes(),
            20,
            "full sharing collapses to one context"
        );
        assert_eq!(none.total_instances(), 80);
    }

    #[test]
    fn full_share_means_all_nodes_in_every_context() {
        let fam = generated_family(3, 4, 10, 1.0, 7);
        let merged = MergedDfg::merge(&fam);
        for n in &merged.nodes {
            assert_eq!(n.context_mask, 0b111, "node {} not fully shared", n.key);
        }
    }
}
