//! Gate-level netlist IR and its reference evaluator.
//!
//! The IR is a flat vector of gates addressed by [`NodeId`]; primary inputs
//! are `Gate::Input` nodes, primary outputs name arbitrary nodes. D
//! flip-flops make the netlist sequential: their output is the *current*
//! state, and their `d` input is sampled when [`Netlist::step`] commits.
//!
//! Evaluation is the golden model for the whole reproduction: the mapper,
//! router and fabric simulator are all checked against it.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Index of a gate inside a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One gate. Two-input gates cover the standard cell set; `Mux` selects
/// `b` when `sel` is high, `a` otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Primary input with a user-visible name.
    Input(String),
    /// Constant driver.
    Const(bool),
    Not(NodeId),
    And(NodeId, NodeId),
    Or(NodeId, NodeId),
    Xor(NodeId, NodeId),
    Nand(NodeId, NodeId),
    Nor(NodeId, NodeId),
    Xnor(NodeId, NodeId),
    /// `sel ? b : a`.
    Mux {
        sel: NodeId,
        a: NodeId,
        b: NodeId,
    },
    /// D flip-flop. Output is the registered state; `d` is sampled on
    /// [`Netlist::step`]. `init` is the power-on value.
    Dff {
        d: NodeId,
        init: bool,
    },
}

impl Gate {
    /// Fan-in node ids, in argument order.
    pub fn fanins(&self) -> Vec<NodeId> {
        match *self {
            Gate::Input(_) | Gate::Const(_) => vec![],
            Gate::Not(a) => vec![a],
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xnor(a, b) => vec![a, b],
            Gate::Mux { sel, a, b } => vec![sel, a, b],
            Gate::Dff { d, .. } => vec![d],
        }
    }

    /// Whether the gate is sequential.
    pub fn is_dff(&self) -> bool {
        matches!(self, Gate::Dff { .. })
    }

    /// Short mnemonic used in dumps and structural hashing.
    pub fn opcode(&self) -> &'static str {
        match self {
            Gate::Input(_) => "in",
            Gate::Const(_) => "const",
            Gate::Not(_) => "not",
            Gate::And(..) => "and",
            Gate::Or(..) => "or",
            Gate::Xor(..) => "xor",
            Gate::Nand(..) => "nand",
            Gate::Nor(..) => "nor",
            Gate::Xnor(..) => "xnor",
            Gate::Mux { .. } => "mux",
            Gate::Dff { .. } => "dff",
        }
    }
}

/// Netlist validation / evaluation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A gate references a node id that does not exist.
    DanglingRef { gate: NodeId, referenced: u32 },
    /// A combinational cycle (a cycle not broken by a DFF).
    CombinationalCycle { on: NodeId },
    /// Two outputs share a name.
    DuplicateOutput(String),
    /// Two inputs share a name.
    DuplicateInput(String),
    /// `step` was called with the wrong number of input bits.
    InputArity { expected: usize, got: usize },
    /// A DFF feedback placeholder was never connected.
    UnconnectedDff(NodeId),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DanglingRef { gate, referenced } => {
                write!(f, "gate {gate} references missing node n{referenced}")
            }
            NetlistError::CombinationalCycle { on } => {
                write!(f, "combinational cycle through {on}")
            }
            NetlistError::DuplicateOutput(name) => write!(f, "duplicate output name {name:?}"),
            NetlistError::DuplicateInput(name) => write!(f, "duplicate input name {name:?}"),
            NetlistError::InputArity { expected, got } => {
                write!(f, "expected {expected} input bits, got {got}")
            }
            NetlistError::UnconnectedDff(id) => {
                write!(f, "DFF {id} feedback input was never connected")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Sequential state: one bit per DFF, in DFF creation order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct State {
    pub bits: Vec<bool>,
}

/// A gate-level netlist.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Netlist {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
    dffs: Vec<NodeId>,
}

/// Sentinel used for not-yet-connected DFF feedback inputs.
const UNCONNECTED: NodeId = NodeId(u32::MAX);

impl Netlist {
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            gates: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            dffs: Vec::new(),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    fn push(&mut self, g: Gate) -> NodeId {
        let id = NodeId(self.gates.len() as u32);
        if g.is_dff() {
            self.dffs.push(id);
        }
        if matches!(g, Gate::Input(_)) {
            self.inputs.push(id);
        }
        self.gates.push(g);
        id
    }

    // ---- builder API -----------------------------------------------------

    pub fn input(&mut self, name: impl Into<String>) -> NodeId {
        self.push(Gate::Input(name.into()))
    }

    pub fn constant(&mut self, v: bool) -> NodeId {
        self.push(Gate::Const(v))
    }

    pub fn not(&mut self, a: NodeId) -> NodeId {
        self.push(Gate::Not(a))
    }

    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::And(a, b))
    }

    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Or(a, b))
    }

    pub fn xor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xor(a, b))
    }

    pub fn nand(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Nand(a, b))
    }

    pub fn nor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Nor(a, b))
    }

    pub fn xnor(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Xnor(a, b))
    }

    /// `sel ? b : a`.
    pub fn mux(&mut self, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
        self.push(Gate::Mux { sel, a, b })
    }

    /// DFF whose `d` input is already known.
    pub fn dff(&mut self, d: NodeId, init: bool) -> NodeId {
        self.push(Gate::Dff { d, init })
    }

    /// DFF created before its `d` input exists (feedback). Must be closed
    /// with [`Netlist::connect_dff`] before validation.
    pub fn dff_feedback(&mut self, init: bool) -> NodeId {
        self.push(Gate::Dff {
            d: UNCONNECTED,
            init,
        })
    }

    /// Connect a feedback DFF's `d` input.
    pub fn connect_dff(&mut self, ff: NodeId, d: NodeId) {
        match &mut self.gates[ff.index()] {
            Gate::Dff { d: slot, .. } => *slot = d,
            other => panic!("connect_dff on non-DFF gate {other:?}"),
        }
    }

    pub fn output(&mut self, name: impl Into<String>, id: NodeId) {
        self.outputs.push((name.into(), id));
    }

    /// Replace a combinational gate with another combinational gate
    /// (used by workload perturbation). Inputs and DFFs cannot be replaced
    /// and cannot be replacements — they carry bookkeeping (input order,
    /// state slots) that substitution would corrupt.
    pub fn replace_gate(&mut self, id: NodeId, gate: Gate) {
        assert!(
            !matches!(gate, Gate::Input(_) | Gate::Dff { .. }),
            "replacement must be combinational"
        );
        let old = &self.gates[id.index()];
        assert!(
            !matches!(old, Gate::Input(_) | Gate::Dff { .. }),
            "cannot replace an input or DFF"
        );
        self.gates[id.index()] = gate;
    }

    // ---- introspection ---------------------------------------------------

    pub fn gate(&self, id: NodeId) -> &Gate {
        &self.gates[id.index()]
    }

    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    pub fn n_gates(&self) -> usize {
        self.gates.len()
    }

    /// Primary inputs, in creation order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    pub fn input_names(&self) -> Vec<&str> {
        self.inputs
            .iter()
            .map(|id| match self.gate(*id) {
                Gate::Input(name) => name.as_str(),
                _ => unreachable!("inputs list holds only Input gates"),
            })
            .collect()
    }

    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    pub fn dffs(&self) -> &[NodeId] {
        &self.dffs
    }

    /// Number of combinational (non-input, non-DFF, non-const) gates.
    pub fn n_logic_gates(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| !matches!(g, Gate::Input(_) | Gate::Const(_) | Gate::Dff { .. }))
            .count()
    }

    /// Initial sequential state.
    pub fn initial_state(&self) -> State {
        State {
            bits: self
                .dffs
                .iter()
                .map(|id| match self.gate(*id) {
                    Gate::Dff { init, .. } => *init,
                    _ => unreachable!(),
                })
                .collect(),
        }
    }

    // ---- validation ------------------------------------------------------

    /// Validate references, DFF connectivity, name uniqueness, and the
    /// absence of combinational cycles.
    pub fn validate(&self) -> Result<(), NetlistError> {
        let n = self.gates.len() as u32;
        for (i, g) in self.gates.iter().enumerate() {
            if let Gate::Dff { d, .. } = g {
                if *d == UNCONNECTED {
                    return Err(NetlistError::UnconnectedDff(NodeId(i as u32)));
                }
            }
            for f in g.fanins() {
                if f.0 >= n {
                    return Err(NetlistError::DanglingRef {
                        gate: NodeId(i as u32),
                        referenced: f.0,
                    });
                }
            }
        }
        let mut seen = HashMap::new();
        for (name, _) in &self.outputs {
            if seen.insert(name.clone(), ()).is_some() {
                return Err(NetlistError::DuplicateOutput(name.clone()));
            }
        }
        let mut seen = HashMap::new();
        for name in self.input_names() {
            if seen.insert(name.to_string(), ()).is_some() {
                return Err(NetlistError::DuplicateInput(name.to_string()));
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Topological order of the *combinational* view: DFF outputs are
    /// sources, DFF `d` pins are sinks. Errors on combinational cycles.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetlistError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.gates.len()];
        let mut order = Vec::with_capacity(self.gates.len());
        // Iterative DFS; (node, child_cursor) frames.
        let mut stack: Vec<(u32, usize)> = Vec::new();
        for start in 0..self.gates.len() as u32 {
            if marks[start as usize] != Mark::White {
                continue;
            }
            stack.push((start, 0));
            marks[start as usize] = Mark::Grey;
            while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
                let gate = &self.gates[node as usize];
                // DFFs break the cycle: do not traverse into their d input
                // here; d is evaluated as an ordinary node elsewhere.
                let fanins = if gate.is_dff() { vec![] } else { gate.fanins() };
                if *cursor < fanins.len() {
                    let child = fanins[*cursor];
                    *cursor += 1;
                    match marks[child.index()] {
                        Mark::White => {
                            marks[child.index()] = Mark::Grey;
                            stack.push((child.0, 0));
                        }
                        Mark::Grey => {
                            return Err(NetlistError::CombinationalCycle { on: child });
                        }
                        Mark::Black => {}
                    }
                } else {
                    marks[node as usize] = Mark::Black;
                    order.push(NodeId(node));
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    // ---- evaluation ------------------------------------------------------

    /// Evaluate combinational values for the given inputs and current state.
    /// Returns the value of every node.
    pub fn eval_all(&self, inputs: &[bool], state: &State) -> Result<Vec<bool>, NetlistError> {
        if inputs.len() != self.inputs.len() {
            return Err(NetlistError::InputArity {
                expected: self.inputs.len(),
                got: inputs.len(),
            });
        }
        let order = self.topo_order()?;
        let mut vals = vec![false; self.gates.len()];
        let mut input_cursor = 0usize;
        let mut dff_cursor = 0usize;
        // Inputs and DFFs appear in creation order within the gates vec, so a
        // linear scan assigns their external values.
        for (i, g) in self.gates.iter().enumerate() {
            match g {
                Gate::Input(_) => {
                    vals[i] = inputs[input_cursor];
                    input_cursor += 1;
                }
                Gate::Dff { .. } => {
                    vals[i] = state.bits[dff_cursor];
                    dff_cursor += 1;
                }
                _ => {}
            }
        }
        for id in order {
            let v = match *self.gate(id) {
                Gate::Input(_) | Gate::Dff { .. } => continue,
                Gate::Const(c) => c,
                Gate::Not(a) => !vals[a.index()],
                Gate::And(a, b) => vals[a.index()] && vals[b.index()],
                Gate::Or(a, b) => vals[a.index()] || vals[b.index()],
                Gate::Xor(a, b) => vals[a.index()] ^ vals[b.index()],
                Gate::Nand(a, b) => !(vals[a.index()] && vals[b.index()]),
                Gate::Nor(a, b) => !(vals[a.index()] || vals[b.index()]),
                Gate::Xnor(a, b) => !(vals[a.index()] ^ vals[b.index()]),
                Gate::Mux { sel, a, b } => {
                    if vals[sel.index()] {
                        vals[b.index()]
                    } else {
                        vals[a.index()]
                    }
                }
            };
            vals[id.index()] = v;
        }
        Ok(vals)
    }

    /// One clock cycle: compute outputs for `inputs`, then commit DFF state.
    pub fn step(&self, inputs: &[bool], state: &mut State) -> Result<Vec<bool>, NetlistError> {
        let vals = self.eval_all(inputs, state)?;
        for (slot, id) in self.dffs.iter().enumerate() {
            if let Gate::Dff { d, .. } = self.gate(*id) {
                state.bits[slot] = vals[d.index()];
            }
        }
        Ok(self
            .outputs
            .iter()
            .map(|(_, id)| vals[id.index()])
            .collect())
    }

    /// Purely combinational evaluation (asserts there are no DFFs).
    pub fn eval_comb(&self, inputs: &[bool]) -> Result<Vec<bool>, NetlistError> {
        assert!(self.dffs.is_empty(), "eval_comb on sequential netlist");
        let state = self.initial_state();
        let vals = self.eval_all(inputs, &state)?;
        Ok(self
            .outputs
            .iter()
            .map(|(_, id)| vals[id.index()])
            .collect())
    }

    /// Logic depth (longest combinational path, in gates).
    pub fn depth(&self) -> usize {
        let order = self.topo_order().expect("valid netlist");
        let mut depth = vec![0usize; self.gates.len()];
        let mut max = 0;
        for id in order {
            let g = self.gate(id);
            if g.is_dff() || matches!(g, Gate::Input(_) | Gate::Const(_)) {
                continue;
            }
            let d = g
                .fanins()
                .into_iter()
                .map(|f| depth[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
            depth[id.index()] = d;
            max = max.max(d);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Netlist {
        let mut n = Netlist::new("fa");
        let a = n.input("a");
        let b = n.input("b");
        let cin = n.input("cin");
        let axb = n.xor(a, b);
        let sum = n.xor(axb, cin);
        let ab = n.and(a, b);
        let c_axb = n.and(axb, cin);
        let cout = n.or(ab, c_axb);
        n.output("sum", sum);
        n.output("cout", cout);
        n
    }

    #[test]
    fn full_adder_truth_table() {
        let n = full_adder();
        n.validate().unwrap();
        for bits in 0..8u32 {
            let a = bits & 1 == 1;
            let b = bits & 2 == 2;
            let c = bits & 4 == 4;
            let out = n.eval_comb(&[a, b, c]).unwrap();
            let total = u8::from(a) + u8::from(b) + u8::from(c);
            assert_eq!(out[0], total & 1 == 1, "sum for {bits:03b}");
            assert_eq!(out[1], total >= 2, "cout for {bits:03b}");
        }
    }

    #[test]
    fn sequential_counter_steps() {
        // 2-bit counter from DFF feedback.
        let mut n = Netlist::new("cnt2");
        let q0 = n.dff_feedback(false);
        let q1 = n.dff_feedback(false);
        let nq0 = n.not(q0);
        let t1 = n.xor(q1, q0);
        n.connect_dff(q0, nq0);
        n.connect_dff(q1, t1);
        n.output("q0", q0);
        n.output("q1", q1);
        n.validate().unwrap();

        let mut st = n.initial_state();
        let mut seen = Vec::new();
        for _ in 0..5 {
            let out = n.step(&[], &mut st).unwrap();
            seen.push((u8::from(out[1]) << 1) | u8::from(out[0]));
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0]);
    }

    #[test]
    fn detects_combinational_cycle() {
        let mut n = Netlist::new("loop");
        let a = n.input("a");
        // Build a cycle by forward-referencing: and(a, the-or) where the or
        // references the and. We must construct ids manually.
        let and_id = n.and(a, NodeId(2)); // references the next gate
        let _or_id = n.or(and_id, a);
        n.output("o", and_id);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn detects_dangling_and_unconnected() {
        let mut n = Netlist::new("bad");
        let a = n.input("a");
        let g = n.and(a, NodeId(900));
        n.output("o", g);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DanglingRef { .. })
        ));

        let mut n = Netlist::new("bad2");
        let ff = n.dff_feedback(false);
        n.output("o", ff);
        assert!(matches!(n.validate(), Err(NetlistError::UnconnectedDff(_))));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut n = Netlist::new("dup");
        let a = n.input("a");
        n.output("o", a);
        n.output("o", a);
        assert!(matches!(
            n.validate(),
            Err(NetlistError::DuplicateOutput(_))
        ));

        let mut n = Netlist::new("dup_in");
        let a = n.input("a");
        let _b = n.input("a");
        n.output("o", a);
        assert!(matches!(n.validate(), Err(NetlistError::DuplicateInput(_))));
    }

    #[test]
    fn mux_selects_correctly() {
        let mut n = Netlist::new("mux");
        let s = n.input("s");
        let a = n.input("a");
        let b = n.input("b");
        let m = n.mux(s, a, b);
        n.output("o", m);
        assert_eq!(n.eval_comb(&[false, true, false]).unwrap(), vec![true]);
        assert_eq!(n.eval_comb(&[true, true, false]).unwrap(), vec![false]);
    }

    #[test]
    fn depth_of_chain() {
        let mut n = Netlist::new("chain");
        let a = n.input("a");
        let mut cur = a;
        for _ in 0..5 {
            cur = n.not(cur);
        }
        n.output("o", cur);
        assert_eq!(n.depth(), 5);
    }

    #[test]
    fn input_arity_checked() {
        let n = full_adder();
        assert!(matches!(
            n.eval_comb(&[true]),
            Err(NetlistError::InputArity {
                expected: 3,
                got: 1
            })
        ));
    }

    #[test]
    fn all_gate_ops_evaluate() {
        let mut n = Netlist::new("ops");
        let a = n.input("a");
        let b = n.input("b");
        let c0 = n.constant(false);
        let c1 = n.constant(true);
        let nand = n.nand(a, b);
        let nor = n.nor(a, b);
        let xnor = n.xnor(a, b);
        let o = n.or(c0, c1);
        n.output("nand", nand);
        n.output("nor", nor);
        n.output("xnor", xnor);
        n.output("consts", o);
        for (a_v, b_v) in [(false, false), (false, true), (true, false), (true, true)] {
            let out = n.eval_comb(&[a_v, b_v]).unwrap();
            assert_eq!(out[0], !(a_v && b_v));
            assert_eq!(out[1], !(a_v || b_v));
            assert_eq!(out[2], !(a_v ^ b_v));
            assert!(out[3]);
        }
    }
}
