//! Gate-level and dataflow-graph IR for the MC-FPGA flow.
//!
//! The paper's evaluation needs circuits in two forms:
//!
//! * a gate-level netlist IR ([`Netlist`]) with a reference evaluator — the
//!   input to technology mapping, and the golden model the configured-fabric
//!   simulator is checked against;
//! * a small dataflow-graph IR ([`dfg::Dfg`]) used to reproduce the
//!   Fig. 13/14 experiment (globally vs locally controlled MCMG-LUTs, where
//!   nodes shared between contexts are merged).
//!
//! The crate also carries a library of real circuits (adders, multipliers,
//! CRC, ALU, …) standing in for the unpublished benchmark set behind the
//! paper's "<3% of configuration bits change" statistic, and seeded random
//! generators for netlists and multi-context workloads with a controllable
//! inter-context change rate.

pub mod dfg;
pub mod ir;
pub mod library;
pub mod library2;
pub mod library3;
pub mod random;
pub mod text;
pub mod words;

pub use dfg::{Dfg, DfgNodeId, MergedDfg};
pub use ir::{Gate, Netlist, NetlistError, NodeId, State};
pub use random::{perturb_netlist, random_netlist, workload, RandomNetlistParams};
pub use text::{from_text, to_text, ParseError};
