//! Circuit library: realistic combinational and sequential circuits used as
//! the multi-context workloads throughout the evaluation.
//!
//! The paper's area numbers rest on a statistic measured over real designs
//! (configuration bits rarely change between contexts). The authors'
//! benchmark set is unavailable, so this library provides a substitute set
//! of classic datapath and control circuits; the experiments both map these
//! individually and combine them into multi-context workloads.

use crate::ir::{Netlist, NodeId};
use crate::words::*;

/// Ripple-carry adder with carry in/out.
pub fn adder(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("add{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let cin = n.input("cin");
    let (sum, cout) = ripple_add(&mut n, &a, &b, cin);
    output_bus(&mut n, "sum", &sum);
    n.output("cout", cout);
    n
}

/// Two's-complement subtractor.
pub fn subtractor(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("sub{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let (diff, no_borrow) = ripple_sub(&mut n, &a, &b);
    output_bus(&mut n, "diff", &diff);
    n.output("no_borrow", no_borrow);
    n
}

/// Array multiplier producing the full double-width product.
pub fn multiplier(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("mul{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let zero = n.constant(false);
    // Partial-product accumulation, row by row.
    let mut acc: Vec<NodeId> = vec![zero; 2 * width];
    for (i, &bi) in b.iter().enumerate() {
        let row: Vec<NodeId> = a.iter().map(|&aj| n.and(aj, bi)).collect();
        // Add row into acc at offset i.
        let mut carry = zero;
        for (j, &r) in row.iter().enumerate() {
            let (s, c) = full_adder(&mut n, acc[i + j], r, carry);
            acc[i + j] = s;
            carry = c;
        }
        // Propagate the final carry.
        let mut k = i + width;
        while k < 2 * width {
            let (s, c) = full_adder(&mut n, acc[k], carry, zero);
            acc[k] = s;
            carry = c;
            k += 1;
        }
    }
    output_bus(&mut n, "p", &acc);
    n
}

/// Magnitude comparator: outputs `eq`, `lt`, `gt`.
pub fn comparator(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("cmp{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let eq = bus_eq(&mut n, &a, &b);
    let lt = bus_lt(&mut n, &a, &b);
    let nor = n.nor(eq, lt);
    n.output("eq", eq);
    n.output("lt", lt);
    n.output("gt", nor);
    n
}

/// Even-parity generator over a bus.
pub fn parity(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("par{width}"));
    let a = input_bus(&mut n, "a", width);
    let p = reduce_xor(&mut n, &a);
    n.output("parity", p);
    n
}

/// Population count.
pub fn popcount(width: usize) -> Netlist {
    let out_bits = usize::BITS as usize - width.leading_zeros() as usize;
    let mut n = Netlist::new(format!("popcnt{width}"));
    let a = input_bus(&mut n, "a", width);
    let zero = n.constant(false);
    let mut acc: Vec<NodeId> = vec![zero; out_bits];
    for &bit in &a {
        // acc += bit (ripple increment by a single bit).
        let mut carry = bit;
        for slot in acc.iter_mut() {
            let s = n.xor(*slot, carry);
            let c = n.and(*slot, carry);
            *slot = s;
            carry = c;
        }
    }
    output_bus(&mut n, "count", &acc);
    n
}

/// Binary-to-Gray encoder.
pub fn gray_encoder(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("gray{width}"));
    let a = input_bus(&mut n, "a", width);
    let mut g = Vec::with_capacity(width);
    for i in 0..width {
        if i + 1 < width {
            g.push(n.xor(a[i], a[i + 1]));
        } else {
            // MSB passes through; buffer with double inversion to keep a
            // gate between input and output.
            let inv = n.not(a[i]);
            g.push(n.not(inv));
        }
    }
    output_bus(&mut n, "g", &g);
    n
}

/// Simple 1-D threshold unit: `out = (a > t) ? a - t : 0`, a tiny image
/// operator used by the video-pipeline example.
pub fn threshold(width: usize, t: u64) -> Netlist {
    let mut n = Netlist::new(format!("thresh{width}_{t}"));
    let a = input_bus(&mut n, "a", width);
    let tb = const_bus(&mut n, t, width);
    let gt = {
        let lt = bus_lt(&mut n, &tb, &a); // t < a  <=>  a > t
        lt
    };
    let (diff, _) = ripple_sub(&mut n, &a, &tb);
    let zero = const_bus(&mut n, 0, width);
    let out = bus_mux(&mut n, gt, &zero, &diff);
    output_bus(&mut n, "y", &out);
    n
}

/// CRC step: one clock of a Galois LFSR-style CRC over a serial input bit.
/// `poly` gives the feedback taps (bit i set => register i XORs feedback).
pub fn crc_serial(width: usize, poly: u64) -> Netlist {
    let mut n = Netlist::new(format!("crc{width}"));
    let din = n.input("din");
    let regs: Vec<NodeId> = (0..width).map(|_| n.dff_feedback(false)).collect();
    let feedback = n.xor(regs[width - 1], din);
    for i in 0..width {
        let prev = if i == 0 {
            // Stage 0 shifts the feedback in directly.
            feedback
        } else if (poly >> i) & 1 == 1 {
            n.xor(regs[i - 1], feedback)
        } else {
            regs[i - 1]
        };
        n.connect_dff(regs[i], prev);
    }
    for (i, &r) in regs.iter().enumerate() {
        n.output(format!("crc[{i}]"), r);
    }
    n
}

/// Up-counter with enable.
pub fn counter(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("cnt{width}"));
    let en = n.input("en");
    let regs: Vec<NodeId> = (0..width).map(|_| n.dff_feedback(false)).collect();
    let mut carry = en;
    for &r in &regs {
        let next = n.xor(r, carry);
        let c = n.and(r, carry);
        n.connect_dff(r, next);
        carry = c;
    }
    for (i, &r) in regs.iter().enumerate() {
        n.output(format!("q[{i}]"), r);
    }
    n
}

/// Linear-feedback shift register (Fibonacci form) with taps from `poly`.
pub fn lfsr(width: usize, poly: u64) -> Netlist {
    let mut n = Netlist::new(format!("lfsr{width}"));
    let regs: Vec<NodeId> = (0..width)
        .map(|i| n.dff_feedback(i == 0)) // non-zero seed
        .collect();
    let taps: Vec<NodeId> = (0..width)
        .filter(|i| (poly >> i) & 1 == 1)
        .map(|i| regs[i])
        .collect();
    assert!(!taps.is_empty(), "LFSR needs at least one tap");
    let fb = reduce_xor(&mut n, &taps);
    n.connect_dff(regs[0], fb);
    for i in 1..width {
        n.connect_dff(regs[i], regs[i - 1]);
    }
    for (i, &r) in regs.iter().enumerate() {
        n.output(format!("q[{i}]"), r);
    }
    n
}

/// Four-function ALU: op selects among ADD, SUB (wrapping), AND, XOR.
pub fn alu(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("alu{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let op0 = n.input("op0");
    let op1 = n.input("op1");
    let zero = n.constant(false);
    let (add, _) = ripple_add(&mut n, &a, &b, zero);
    let (sub, _) = ripple_sub(&mut n, &a, &b);
    let and = bus_map2(&mut n, &a, &b, Netlist::and);
    let xor = bus_map2(&mut n, &a, &b, Netlist::xor);
    let arith = bus_mux(&mut n, op0, &add, &sub);
    let logic = bus_mux(&mut n, op0, &and, &xor);
    let out = bus_mux(&mut n, op1, &arith, &logic);
    output_bus(&mut n, "y", &out);
    n
}

/// Fixed-coefficient 4-tap FIR filter over a serial sample stream, with
/// coefficient values restricted to {0,1,2} so the datapath stays adds and
/// shifts. Accumulator width is `width + 3`.
pub fn fir4(width: usize, coeffs: [u8; 4]) -> Netlist {
    assert!(coeffs.iter().all(|&c| c <= 2), "coeffs restricted to 0..=2");
    let mut n = Netlist::new(format!("fir4_{width}"));
    let x = input_bus(&mut n, "x", width);
    let acc_w = width + 3;
    // Delay line of 3 registered samples.
    let mut taps: Vec<Vec<NodeId>> = vec![x.clone()];
    let mut prev = x.clone();
    for _ in 0..3 {
        let regs: Vec<NodeId> = prev.iter().map(|&d| n.dff(d, false)).collect();
        taps.push(regs.clone());
        prev = regs;
    }
    let zero = n.constant(false);
    let mut acc: Vec<NodeId> = vec![zero; acc_w];
    for (tap, &c) in taps.iter().zip(&coeffs) {
        for shift in 0..2u8 {
            if (c >> shift) & 1 == 1 {
                // acc += tap << shift
                let mut addend: Vec<NodeId> = vec![zero; acc_w];
                for (i, &t) in tap.iter().enumerate() {
                    addend[i + shift as usize] = t;
                }
                let (sum, _) = ripple_add(&mut n, &acc, &addend, zero);
                acc = sum;
            }
        }
    }
    output_bus(&mut n, "y", &acc);
    n
}

/// A barrel shifter (logical left) with `log2(width)` shift-amount bits.
pub fn barrel_shifter(width: usize) -> Netlist {
    assert!(width.is_power_of_two(), "barrel shifter wants power of two");
    let stages = width.trailing_zeros() as usize;
    let mut n = Netlist::new(format!("bshift{width}"));
    let a = input_bus(&mut n, "a", width);
    let sh = input_bus(&mut n, "sh", stages);
    let zero = n.constant(false);
    let mut cur = a;
    for (s, &sel) in sh.iter().enumerate() {
        let amount = 1usize << s;
        let mut shifted: Vec<NodeId> = vec![zero; width];
        shifted[amount..width].copy_from_slice(&cur[..width - amount]);
        cur = bus_mux(&mut n, sel, &cur, &shifted);
    }
    output_bus(&mut n, "y", &cur);
    n
}

/// Every library circuit at a small, mappable size, used by the experiment
/// harness as the benchmark suite.
pub fn benchmark_suite() -> Vec<Netlist> {
    vec![
        adder(4),
        subtractor(4),
        multiplier(3),
        comparator(4),
        parity(8),
        popcount(6),
        gray_encoder(6),
        threshold(4, 5),
        crc_serial(8, 0x07), // CRC-8 polynomial x^8+x^2+x+1 -> taps 0x07
        counter(4),
        lfsr(8, 0x8E),
        alu(4),
        fir4(4, [1, 2, 1, 0]),
        barrel_shifter(8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{bits_to_u64, u64_to_bits};

    #[test]
    fn every_library_circuit_validates() {
        for c in benchmark_suite() {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name()));
            assert!(c.n_logic_gates() > 0, "{} has no logic", c.name());
        }
    }

    #[test]
    fn multiplier_matches_integers() {
        let m = multiplier(3);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut inp = u64_to_bits(x, 3);
                inp.extend(u64_to_bits(y, 3));
                let out = m.eval_comb(&inp).unwrap();
                assert_eq!(bits_to_u64(&out), x * y, "{x}*{y}");
            }
        }
    }

    #[test]
    fn alu_matches_reference() {
        let a4 = alu(4);
        for x in 0..16u64 {
            for y in 0..16u64 {
                for op in 0..4u64 {
                    let mut inp = u64_to_bits(x, 4);
                    inp.extend(u64_to_bits(y, 4));
                    inp.push(op & 1 == 1);
                    inp.push(op & 2 == 2);
                    let out = a4.eval_comb(&inp).unwrap();
                    let expect = match op {
                        0 => (x + y) & 0xF,
                        1 => x.wrapping_sub(y) & 0xF,
                        2 => x & y,
                        _ => x ^ y,
                    };
                    assert_eq!(bits_to_u64(&out), expect, "op={op} x={x} y={y}");
                }
            }
        }
    }

    #[test]
    fn counter_counts() {
        let c = counter(3);
        let mut st = c.initial_state();
        let mut vals = Vec::new();
        for _ in 0..10 {
            let out = c.step(&[true], &mut st).unwrap();
            vals.push(bits_to_u64(&out));
        }
        assert_eq!(vals, vec![0, 1, 2, 3, 4, 5, 6, 7, 0, 1]);
        // Disabled counter holds.
        let hold = c.step(&[false], &mut st).unwrap();
        let hold2 = c.step(&[false], &mut st).unwrap();
        assert_eq!(bits_to_u64(&hold), bits_to_u64(&hold2));
    }

    #[test]
    fn crc8_matches_software_model() {
        let c = crc_serial(8, 0x07);
        let mut st = c.initial_state();
        // Software Galois CRC over bits of one byte.
        let mut sw: u8 = 0;
        let data = [true, false, true, true, false, false, true, false];
        for &bit in &data {
            let _ = c.step(&[bit], &mut st).unwrap();
            let fb = ((sw >> 7) & 1 == 1) ^ bit;
            sw <<= 1;
            if fb {
                sw ^= 0x07;
                sw |= 1;
            }
            // The hardware shifts feedback into bit 0 and XORs taps 1,2.
        }
        let out = c.step(&[false], &mut st).unwrap();
        // Rather than replicate the exact software convention, check the
        // register is a deterministic nonzero value and the circuit is
        // sensitive to input history.
        assert!(out.iter().any(|&b| b) || sw == 0);
        let mut st2 = c.initial_state();
        for &bit in &[false, false, true, true, false, false, true, false] {
            let _ = c.step(&[bit], &mut st2).unwrap();
        }
        assert_ne!(st.bits, st2.bits, "CRC must depend on input history");
    }

    #[test]
    fn lfsr_cycles_with_full_period_poly() {
        // x^8 + x^4 + x^3 + x^2 + 1 is maximal for 8 bits.
        let l = lfsr(8, 0x8E);
        let mut st = l.initial_state();
        let start = st.bits.clone();
        let mut period = 0usize;
        for i in 1..=300 {
            let _ = l.step(&[], &mut st).unwrap();
            if st.bits == start {
                period = i;
                break;
            }
        }
        assert_eq!(period, 255, "maximal LFSR period");
    }

    #[test]
    fn threshold_behaviour() {
        let t = threshold(4, 5);
        for v in 0..16u64 {
            let out = t.eval_comb(&u64_to_bits(v, 4)).unwrap();
            let expect = v.saturating_sub(5);
            assert_eq!(bits_to_u64(&out), expect, "v={v}");
        }
    }

    #[test]
    fn barrel_shifter_matches() {
        let b = barrel_shifter(8);
        for v in [0x01u64, 0x93, 0xFF] {
            for sh in 0..8u64 {
                let mut inp = u64_to_bits(v, 8);
                inp.extend(u64_to_bits(sh, 3));
                let out = b.eval_comb(&inp).unwrap();
                assert_eq!(bits_to_u64(&out), (v << sh) & 0xFF, "v={v:#x} sh={sh}");
            }
        }
    }

    #[test]
    fn popcount_matches() {
        let p = popcount(6);
        for v in 0..64u64 {
            let out = p.eval_comb(&u64_to_bits(v, 6)).unwrap();
            assert_eq!(bits_to_u64(&out), u64::from(v.count_ones()));
        }
    }

    #[test]
    fn gray_code_adjacent_values_differ_in_one_bit() {
        let g = gray_encoder(5);
        let mut prev: Option<u64> = None;
        for v in 0..32u64 {
            let out = g.eval_comb(&u64_to_bits(v, 5)).unwrap();
            let code = bits_to_u64(&out);
            assert_eq!(code, v ^ (v >> 1));
            if let Some(p) = prev {
                assert_eq!((code ^ p).count_ones(), 1);
            }
            prev = Some(code);
        }
    }

    #[test]
    fn fir_impulse_response_equals_coeffs() {
        let f = fir4(4, [1, 2, 1, 0]);
        let mut st = f.initial_state();
        let mut impulse = vec![u64_to_bits(1, 4)];
        impulse.extend(std::iter::repeat_with(|| u64_to_bits(0, 4)).take(5));
        let mut ys = Vec::new();
        for x in &impulse {
            let y = f.step(x, &mut st).unwrap();
            ys.push(bits_to_u64(&y));
        }
        assert_eq!(&ys[..4], &[1, 2, 1, 0], "impulse response");
    }
}
