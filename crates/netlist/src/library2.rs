//! Extended circuit library: control/encode/ECC circuits complementing the
//! datapath set in [`crate::library`].

use crate::ir::{Netlist, NodeId};
use crate::words::*;

/// Priority encoder: index of the highest set input bit, plus `valid`.
pub fn priority_encoder(width: usize) -> Netlist {
    assert!(width >= 2);
    let out_bits = usize::BITS as usize - (width - 1).leading_zeros() as usize;
    let mut n = Netlist::new(format!("prienc{width}"));
    let a = input_bus(&mut n, "a", width);
    // Scan from LSB: keep the index of the last set bit seen.
    let mut idx = const_bus(&mut n, 0, out_bits);
    let mut valid = n.constant(false);
    for (i, &bit) in a.iter().enumerate() {
        let here = const_bus(&mut n, i as u64, out_bits);
        idx = bus_mux(&mut n, bit, &idx, &here);
        valid = n.or(valid, bit);
    }
    output_bus(&mut n, "idx", &idx);
    n.output("valid", valid);
    n
}

/// One-hot decoder: `2^sel_bits` outputs, exactly one high.
pub fn one_hot_decoder(sel_bits: usize) -> Netlist {
    let mut n = Netlist::new(format!("onehot{sel_bits}"));
    let sel = input_bus(&mut n, "sel", sel_bits);
    let nsel: Vec<NodeId> = sel.iter().map(|&s| n.not(s)).collect();
    let mut outs = Vec::with_capacity(1 << sel_bits);
    for v in 0..(1usize << sel_bits) {
        let terms: Vec<NodeId> = (0..sel_bits)
            .map(|b| if (v >> b) & 1 == 1 { sel[b] } else { nsel[b] })
            .collect();
        outs.push(reduce_and(&mut n, &terms));
    }
    output_bus(&mut n, "y", &outs);
    n
}

/// Hamming(7,4) encoder: 4 data bits -> 7-bit codeword (p1 p2 d1 p4 d2 d3 d4).
pub fn hamming74_encoder() -> Netlist {
    let mut n = Netlist::new("ham74enc");
    let d = input_bus(&mut n, "d", 4);
    let p1 = {
        let t = n.xor(d[0], d[1]);
        n.xor(t, d[3])
    };
    let p2 = {
        let t = n.xor(d[0], d[2]);
        n.xor(t, d[3])
    };
    let p4 = {
        let t = n.xor(d[1], d[2]);
        n.xor(t, d[3])
    };
    // Codeword positions 1..7: p1 p2 d1 p4 d2 d3 d4.
    let code = [p1, p2, d[0], p4, d[1], d[2], d[3]];
    output_bus(&mut n, "c", &code);
    n
}

/// Hamming(7,4) decoder with single-error correction: 7-bit word -> 4 data
/// bits plus the 3-bit syndrome.
pub fn hamming74_decoder() -> Netlist {
    let mut n = Netlist::new("ham74dec");
    let c = input_bus(&mut n, "c", 7); // positions 1..7 at indices 0..6
    let s1 = {
        // Parity over positions 1,3,5,7.
        let t = n.xor(c[0], c[2]);
        let t = n.xor(t, c[4]);
        n.xor(t, c[6])
    };
    let s2 = {
        // positions 2,3,6,7
        let t = n.xor(c[1], c[2]);
        let t = n.xor(t, c[5]);
        n.xor(t, c[6])
    };
    let s4 = {
        // positions 4,5,6,7
        let t = n.xor(c[3], c[4]);
        let t = n.xor(t, c[5]);
        n.xor(t, c[6])
    };
    // Correct position s (1-based) if syndrome non-zero.
    let syndrome = [s1, s2, s4];
    let corrected: Vec<NodeId> = (0..7)
        .map(|pos| {
            let want = pos + 1;
            let terms: Vec<NodeId> = (0..3)
                .map(|b| {
                    if (want >> b) & 1 == 1 {
                        syndrome[b]
                    } else {
                        n.not(syndrome[b])
                    }
                })
                .collect();
            let here = reduce_and(&mut n, &terms);
            n.xor(c[pos], here)
        })
        .collect();
    // Data bits at positions 3,5,6,7 (indices 2,4,5,6).
    let data = [corrected[2], corrected[4], corrected[5], corrected[6]];
    output_bus(&mut n, "d", &data);
    output_bus(&mut n, "s", &syndrome);
    n
}

/// Seven-segment decoder for a hex digit (segments a..g, active high).
pub fn seven_segment() -> Netlist {
    let mut n = Netlist::new("sevenseg");
    let d = input_bus(&mut n, "d", 4);
    // Segment truth tables for digits 0..15 (a..g).
    const SEGS: [u8; 16] = [
        0b0111111, 0b0000110, 0b1011011, 0b1001111, 0b1100110, 0b1101101, 0b1111101, 0b0000111,
        0b1111111, 0b1101111, 0b1110111, 0b1111100, 0b0111001, 0b1011110, 0b1111001, 0b1110001,
    ];
    let nsel: Vec<NodeId> = d.iter().map(|&s| n.not(s)).collect();
    let minterms: Vec<NodeId> = (0..16)
        .map(|v| {
            let terms: Vec<NodeId> = (0..4)
                .map(|b| if (v >> b) & 1 == 1 { d[b] } else { nsel[b] })
                .collect();
            reduce_and(&mut n, &terms)
        })
        .collect();
    let mut segs = Vec::with_capacity(7);
    for seg in 0..7 {
        let on: Vec<NodeId> = (0..16)
            .filter(|&v| (SEGS[v] >> seg) & 1 == 1)
            .map(|v| minterms[v])
            .collect();
        segs.push(reduce_or(&mut n, &on));
    }
    output_bus(&mut n, "seg", &segs);
    n
}

/// Saturating unsigned add: clamps at `2^width - 1`.
pub fn saturating_adder(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("satadd{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let zero = n.constant(false);
    let (sum, carry) = ripple_add(&mut n, &a, &b, zero);
    let ones = const_bus(&mut n, (1u64 << width) - 1, width);
    let out = bus_mux(&mut n, carry, &sum, &ones);
    output_bus(&mut n, "y", &out);
    n
}

/// Compare-exchange stage of a sorting network: outputs `(min, max)`.
pub fn compare_exchange(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("cmpex{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let a_lt_b = bus_lt(&mut n, &a, &b);
    let min = bus_mux(&mut n, a_lt_b, &b, &a);
    let max = bus_mux(&mut n, a_lt_b, &a, &b);
    output_bus(&mut n, "min", &min);
    output_bus(&mut n, "max", &max);
    n
}

/// Sequential multiply-accumulate: `acc += a * b` every enabled cycle.
pub fn mac(width: usize, acc_width: usize) -> Netlist {
    assert!(acc_width >= 2 * width);
    let mut n = Netlist::new(format!("mac{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let en = n.input("en");
    let acc: Vec<NodeId> = (0..acc_width).map(|_| n.dff_feedback(false)).collect();
    // Product (combinational array multiplier).
    let zero = n.constant(false);
    let mut prod: Vec<NodeId> = vec![zero; 2 * width];
    for (i, &bi) in b.iter().enumerate() {
        let row: Vec<NodeId> = a.iter().map(|&aj| n.and(aj, bi)).collect();
        let mut carry = zero;
        for (j, &r) in row.iter().enumerate() {
            let (s, c) = full_adder(&mut n, prod[i + j], r, carry);
            prod[i + j] = s;
            carry = c;
        }
        let mut k = i + width;
        while k < 2 * width {
            let (s, c) = full_adder(&mut n, prod[k], carry, zero);
            prod[k] = s;
            carry = c;
            k += 1;
        }
    }
    // Widen and add to the accumulator.
    let mut wide = prod;
    while wide.len() < acc_width {
        wide.push(zero);
    }
    let (next, _) = ripple_add(&mut n, &acc, &wide, zero);
    let held = bus_mux(&mut n, en, &acc, &next);
    for (ff, &d) in acc.iter().zip(&held) {
        n.connect_dff(*ff, d);
    }
    output_bus(&mut n, "acc", &acc);
    n
}

/// Extended suite: the extra circuits at mappable sizes.
pub fn extended_suite() -> Vec<Netlist> {
    vec![
        priority_encoder(6),
        one_hot_decoder(3),
        hamming74_encoder(),
        hamming74_decoder(),
        seven_segment(),
        saturating_adder(4),
        compare_exchange(3),
        mac(3, 8),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::words::{bits_to_u64, u64_to_bits};

    #[test]
    fn everything_validates() {
        for c in extended_suite() {
            c.validate().unwrap_or_else(|e| panic!("{}: {e}", c.name()));
        }
    }

    #[test]
    fn priority_encoder_matches() {
        let p = priority_encoder(6);
        for v in 0..64u64 {
            let out = p.eval_comb(&u64_to_bits(v, 6)).unwrap();
            let idx = bits_to_u64(&out[..3]);
            let valid = out[3];
            if v == 0 {
                assert!(!valid);
            } else {
                assert!(valid);
                assert_eq!(idx, 63 - v.leading_zeros() as u64, "v={v:b}");
            }
        }
    }

    #[test]
    fn one_hot_decoder_matches() {
        let d = one_hot_decoder(3);
        for v in 0..8u64 {
            let out = d.eval_comb(&u64_to_bits(v, 3)).unwrap();
            assert_eq!(bits_to_u64(&out), 1 << v);
        }
    }

    #[test]
    fn hamming_roundtrip_and_corrects_single_errors() {
        let enc = hamming74_encoder();
        let dec = hamming74_decoder();
        for v in 0..16u64 {
            let code = enc.eval_comb(&u64_to_bits(v, 4)).unwrap();
            // Clean word decodes to itself with zero syndrome.
            let out = dec.eval_comb(&code).unwrap();
            assert_eq!(bits_to_u64(&out[..4]), v, "clean decode of {v}");
            assert_eq!(bits_to_u64(&out[4..7]), 0, "zero syndrome");
            // Every single-bit error is corrected.
            for e in 0..7 {
                let mut bad = code.clone();
                bad[e] = !bad[e];
                let out = dec.eval_comb(&bad).unwrap();
                assert_eq!(bits_to_u64(&out[..4]), v, "flip {e} of {v}");
                assert_eq!(bits_to_u64(&out[4..7]), (e + 1) as u64, "syndrome");
            }
        }
    }

    #[test]
    fn seven_segment_digits() {
        let s = seven_segment();
        // 8 lights every segment; 1 lights exactly b and c.
        let out8 = s.eval_comb(&u64_to_bits(8, 4)).unwrap();
        assert!(out8.iter().all(|&b| b));
        let out1 = s.eval_comb(&u64_to_bits(1, 4)).unwrap();
        assert_eq!(bits_to_u64(&out1), 0b0000110);
    }

    #[test]
    fn saturating_adder_clamps() {
        let s = saturating_adder(4);
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut inp = u64_to_bits(a, 4);
                inp.extend(u64_to_bits(b, 4));
                let out = s.eval_comb(&inp).unwrap();
                assert_eq!(bits_to_u64(&out), (a + b).min(15), "{a}+{b}");
            }
        }
    }

    #[test]
    fn compare_exchange_sorts_pairs() {
        let c = compare_exchange(3);
        for a in 0..8u64 {
            for b in 0..8u64 {
                let mut inp = u64_to_bits(a, 3);
                inp.extend(u64_to_bits(b, 3));
                let out = c.eval_comb(&inp).unwrap();
                assert_eq!(bits_to_u64(&out[..3]), a.min(b));
                assert_eq!(bits_to_u64(&out[3..]), a.max(b));
            }
        }
    }

    #[test]
    fn mac_accumulates() {
        let m = mac(3, 8);
        let mut st = m.initial_state();
        let pairs = [(3u64, 5u64), (7, 7), (2, 0), (6, 4)];
        let mut expect = 0u64;
        for (a, b) in pairs {
            let mut inp = u64_to_bits(a, 3);
            inp.extend(u64_to_bits(b, 3));
            inp.push(true);
            let out = m.step(&inp, &mut st).unwrap();
            assert_eq!(bits_to_u64(&out), expect, "pre-edge accumulator");
            expect = (expect + a * b) & 0xFF;
        }
        // Disabled cycle holds.
        let mut inp = u64_to_bits(7, 3);
        inp.extend(u64_to_bits(7, 3));
        inp.push(false);
        let out = m.step(&inp, &mut st).unwrap();
        assert_eq!(bits_to_u64(&out), expect);
        let out2 = m.step(&inp, &mut st).unwrap();
        assert_eq!(bits_to_u64(&out2), expect, "hold while disabled");
    }
}
