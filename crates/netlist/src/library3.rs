//! Adder-architecture variants: the same function implemented three ways,
//! used to study how circuit *structure* (depth vs gate count) interacts
//! with LUT mapping and routing on the MC-FPGA.

use crate::ir::{Netlist, NodeId};
use crate::words::*;

/// Carry-lookahead adder (one-level lookahead over the full width).
pub fn carry_lookahead_adder(width: usize) -> Netlist {
    let mut n = Netlist::new(format!("cla{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let cin = n.input("cin");
    // Generate/propagate per bit.
    let g: Vec<NodeId> = a.iter().zip(&b).map(|(&x, &y)| n.and(x, y)).collect();
    let p: Vec<NodeId> = a.iter().zip(&b).map(|(&x, &y)| n.xor(x, y)).collect();
    // c[i+1] = g[i] | p[i] & c[i], expanded as a lookahead chain of
    // two-input gates (depth grows linearly but through fast AND/OR).
    let mut carries = vec![cin];
    for i in 0..width {
        let pc = n.and(p[i], carries[i]);
        let c_next = n.or(g[i], pc);
        carries.push(c_next);
    }
    let sum: Vec<NodeId> = (0..width).map(|i| n.xor(p[i], carries[i])).collect();
    output_bus(&mut n, "sum", &sum);
    n.output("cout", carries[width]);
    n
}

/// Carry-select adder: halves computed for both carry values, the real
/// carry picks. Shallower than ripple at the cost of duplicated logic.
pub fn carry_select_adder(width: usize) -> Netlist {
    assert!(width >= 2 && width.is_multiple_of(2), "even width >= 2");
    let half = width / 2;
    let mut n = Netlist::new(format!("csel{width}"));
    let a = input_bus(&mut n, "a", width);
    let b = input_bus(&mut n, "b", width);
    let cin = n.input("cin");
    // Low half: ordinary ripple.
    let (low_sum, low_carry) = ripple_add(&mut n, &a[..half], &b[..half], cin);
    // High half twice: assuming carry 0 and carry 1.
    let zero = n.constant(false);
    let one = n.constant(true);
    let (hi0, c0) = ripple_add(&mut n, &a[half..], &b[half..], zero);
    let (hi1, c1) = ripple_add(&mut n, &a[half..], &b[half..], one);
    let hi = bus_mux(&mut n, low_carry, &hi0, &hi1);
    let cout = n.mux(low_carry, c0, c1);
    let mut sum = low_sum;
    sum.extend(hi);
    output_bus(&mut n, "sum", &sum);
    n.output("cout", cout);
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::adder;
    use crate::words::{bits_to_u64, u64_to_bits};

    fn check_adder(n: &Netlist, width: usize) {
        for a in 0..(1u64 << width.min(5)) {
            for b in 0..(1u64 << width.min(5)) {
                for cin in [false, true] {
                    let mut inp = u64_to_bits(a, width);
                    inp.extend(u64_to_bits(b, width));
                    inp.push(cin);
                    let out = n.eval_comb(&inp).unwrap();
                    let got = bits_to_u64(&out[..width]) + ((out[width] as u64) << width);
                    assert_eq!(got, a + b + cin as u64, "{}: {a}+{b}+{cin}", n.name());
                }
            }
        }
    }

    #[test]
    fn all_three_adders_agree_with_arithmetic() {
        check_adder(&adder(4), 4);
        check_adder(&carry_lookahead_adder(4), 4);
        check_adder(&carry_select_adder(4), 4);
    }

    #[test]
    fn wider_variants_also_work() {
        check_adder(&carry_lookahead_adder(8), 8);
        check_adder(&carry_select_adder(8), 8);
    }

    #[test]
    fn select_adder_is_shallower_than_ripple() {
        let ripple = adder(8);
        let select = carry_select_adder(8);
        assert!(
            select.depth() < ripple.depth(),
            "select {} vs ripple {}",
            select.depth(),
            ripple.depth()
        );
    }

    #[test]
    fn select_adder_pays_in_gates() {
        let ripple = adder(8);
        let select = carry_select_adder(8);
        assert!(select.n_logic_gates() > ripple.n_logic_gates());
    }
}
