//! Seeded random netlist generation and multi-context workload synthesis.
//!
//! The paper's evaluation assumes a given fraction of configuration data
//! changes between contexts (5%, backed by Kennedy's <3% measurement).
//! [`workload`] realises that assumption structurally: context 0 is a random
//! netlist and each following context perturbs a chosen fraction of the
//! previous context's gates, so downstream configuration data exhibits the
//! redundancy and regularity the RCM exploits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ir::{Gate, Netlist, NodeId};

/// Parameters for [`random_netlist`].
#[derive(Debug, Clone, Copy)]
pub struct RandomNetlistParams {
    pub n_inputs: usize,
    pub n_gates: usize,
    pub n_outputs: usize,
    /// Fraction of gates that are DFFs (sequential workloads).
    pub dff_fraction: f64,
}

impl Default for RandomNetlistParams {
    fn default() -> Self {
        RandomNetlistParams {
            n_inputs: 8,
            n_gates: 60,
            n_outputs: 8,
            dff_fraction: 0.0,
        }
    }
}

fn random_two_input(rng: &mut StdRng, a: NodeId, b: NodeId) -> Gate {
    match rng.gen_range(0..6) {
        0 => Gate::And(a, b),
        1 => Gate::Or(a, b),
        2 => Gate::Xor(a, b),
        3 => Gate::Nand(a, b),
        4 => Gate::Nor(a, b),
        _ => Gate::Xnor(a, b),
    }
}

/// Generate a random DAG netlist. Deterministic in `seed`.
pub fn random_netlist(params: RandomNetlistParams, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = Netlist::new(format!("rand{seed}"));
    let mut pool: Vec<NodeId> = (0..params.n_inputs)
        .map(|i| n.input(format!("i{i}")))
        .collect();
    for _ in 0..params.n_gates {
        let a = pool[rng.gen_range(0..pool.len())];
        let id = if rng.gen_bool(params.dff_fraction) {
            n.dff(a, rng.gen_bool(0.5))
        } else {
            let b = pool[rng.gen_range(0..pool.len())];
            let g = if rng.gen_bool(0.12) {
                Gate::Not(a)
            } else if rng.gen_bool(0.1) {
                let s = pool[rng.gen_range(0..pool.len())];
                Gate::Mux { sel: s, a, b }
            } else {
                random_two_input(&mut rng, a, b)
            };
            match g {
                Gate::Not(a) => n.not(a),
                Gate::And(a, b) => n.and(a, b),
                Gate::Or(a, b) => n.or(a, b),
                Gate::Xor(a, b) => n.xor(a, b),
                Gate::Nand(a, b) => n.nand(a, b),
                Gate::Nor(a, b) => n.nor(a, b),
                Gate::Xnor(a, b) => n.xnor(a, b),
                Gate::Mux { sel, a, b } => n.mux(sel, a, b),
                _ => unreachable!(),
            }
        };
        pool.push(id);
    }
    // Outputs: prefer late nodes so the whole DAG matters.
    let tail = pool.len().saturating_sub(params.n_outputs.max(4) * 2);
    for o in 0..params.n_outputs {
        let pick = rng.gen_range(tail..pool.len());
        n.output(format!("o{o}"), pool[pick]);
    }
    debug_assert!(n.validate().is_ok());
    n
}

/// Perturb a netlist: for roughly `fraction` of its logic gates, substitute a
/// different gate type over the same fan-ins. The structure (and therefore
/// placement/routing) is preserved; only the logic functions change — which
/// is exactly the "small configuration delta between contexts" regime the
/// paper's RCM exploits.
pub fn perturb_netlist(base: &Netlist, fraction: f64, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut n = base.clone();
    let ids: Vec<NodeId> = (0..base.n_gates() as u32).map(NodeId).collect();
    for id in ids {
        let gate = n.gate(id).clone();
        let replacement = match gate {
            Gate::And(a, b)
            | Gate::Or(a, b)
            | Gate::Xor(a, b)
            | Gate::Nand(a, b)
            | Gate::Nor(a, b)
            | Gate::Xnor(a, b) => {
                if rng.gen_bool(fraction) {
                    Some(random_two_input(&mut rng, a, b))
                } else {
                    None
                }
            }
            _ => None,
        };
        if let Some(g) = replacement {
            n.replace_gate(id, g);
        }
    }
    n
}

/// A multi-context workload: context 0 is random, each later context is a
/// perturbation of its predecessor with change fraction `change_rate`.
pub fn workload(
    params: RandomNetlistParams,
    n_contexts: usize,
    change_rate: f64,
    seed: u64,
) -> Vec<Netlist> {
    let mut out = Vec::with_capacity(n_contexts);
    out.push(random_netlist(params, seed));
    for c in 1..n_contexts {
        let prev = out.last().expect("non-empty");
        out.push(perturb_netlist(prev, change_rate, seed ^ (c as u64) << 32));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_netlist_is_deterministic() {
        let p = RandomNetlistParams::default();
        let a = random_netlist(p, 7);
        let b = random_netlist(p, 7);
        assert_eq!(a, b);
        let c = random_netlist(p, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn random_netlists_validate_over_many_seeds() {
        for seed in 0..30 {
            let p = RandomNetlistParams {
                n_inputs: 6,
                n_gates: 40,
                n_outputs: 5,
                dff_fraction: if seed % 2 == 0 { 0.0 } else { 0.15 },
            };
            random_netlist(p, seed).validate().unwrap();
        }
    }

    #[test]
    fn perturbation_preserves_structure() {
        let base = random_netlist(RandomNetlistParams::default(), 3);
        let pert = perturb_netlist(&base, 0.3, 99);
        pert.validate().unwrap();
        assert_eq!(base.n_gates(), pert.n_gates());
        assert_eq!(base.inputs(), pert.inputs());
        assert_eq!(base.outputs(), pert.outputs());
        // Fan-in structure identical even where gate types changed.
        for i in 0..base.n_gates() as u32 {
            let id = NodeId(i);
            assert_eq!(base.gate(id).fanins(), pert.gate(id).fanins());
        }
    }

    #[test]
    fn perturbation_rate_is_roughly_honoured() {
        let base = random_netlist(
            RandomNetlistParams {
                n_gates: 600,
                ..Default::default()
            },
            5,
        );
        let pert = perturb_netlist(&base, 0.10, 1);
        let changed = (0..base.n_gates() as u32)
            .filter(|&i| base.gate(NodeId(i)) != pert.gate(NodeId(i)))
            .count();
        let eligible = base
            .gates()
            .iter()
            .filter(|g| {
                matches!(
                    g,
                    Gate::And(..)
                        | Gate::Or(..)
                        | Gate::Xor(..)
                        | Gate::Nand(..)
                        | Gate::Nor(..)
                        | Gate::Xnor(..)
                )
            })
            .count();
        let rate = changed as f64 / eligible as f64;
        // A random substitution picks the same type 1/6 of the time, so the
        // observed rate is ~0.10 * 5/6.
        assert!(rate > 0.03 && rate < 0.16, "rate = {rate}");
    }

    #[test]
    fn zero_change_workload_is_constant() {
        let w = workload(RandomNetlistParams::default(), 4, 0.0, 11);
        assert_eq!(w.len(), 4);
        assert_eq!(w[0].gates(), w[3].gates());
    }

    #[test]
    fn workload_contexts_share_interface() {
        let w = workload(RandomNetlistParams::default(), 4, 0.2, 13);
        for ctx in &w[1..] {
            assert_eq!(ctx.inputs(), w[0].inputs());
            assert_eq!(ctx.outputs().len(), w[0].outputs().len());
        }
    }
}
