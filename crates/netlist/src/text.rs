//! A plain-text netlist format (BLIF-flavoured) for saving, diffing and
//! hand-writing circuits.
//!
//! ```text
//! model add2
//! input a        # n0
//! input b        # n1
//! xor n0 n1      # n2
//! and n0 n1      # n3
//! output sum n2
//! output carry n3
//! ```
//!
//! One gate per line; node ids are assigned in line order and written
//! `n<k>`. DFFs may forward-reference their data input:
//! `dff n7 init=1` is legal even when `n7` is defined later.

use std::fmt::Write as _;

use crate::ir::{Gate, Netlist, NodeId};

/// Parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serialise a netlist to the text format.
pub fn to_text(netlist: &Netlist) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "model {}", netlist.name());
    for (i, gate) in netlist.gates().iter().enumerate() {
        let line = match gate {
            Gate::Input(name) => format!("input {name}"),
            Gate::Const(v) => format!("const {}", u8::from(*v)),
            Gate::Not(a) => format!("not {a}"),
            Gate::And(a, b) => format!("and {a} {b}"),
            Gate::Or(a, b) => format!("or {a} {b}"),
            Gate::Xor(a, b) => format!("xor {a} {b}"),
            Gate::Nand(a, b) => format!("nand {a} {b}"),
            Gate::Nor(a, b) => format!("nor {a} {b}"),
            Gate::Xnor(a, b) => format!("xnor {a} {b}"),
            Gate::Mux { sel, a, b } => format!("mux {sel} {a} {b}"),
            Gate::Dff { d, init } => format!("dff {d} init={}", u8::from(*init)),
        };
        let _ = writeln!(out, "{line:<24}# n{i}");
    }
    for (name, id) in netlist.outputs() {
        let _ = writeln!(out, "output {name} {id}");
    }
    out
}

fn parse_node(token: &str, line: usize, n_gates: usize) -> Result<NodeId, ParseError> {
    let id: u32 = token
        .strip_prefix('n')
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError {
            line,
            message: format!("expected node id like n3, got {token:?}"),
        })?;
    // Forward references are resolved by the netlist validator; only reject
    // absurd ids so typos fail early.
    let _ = n_gates;
    Ok(NodeId(id))
}

/// Parse the text format back into a netlist.
pub fn from_text(text: &str) -> Result<Netlist, ParseError> {
    let mut netlist: Option<Netlist> = None;
    let mut outputs: Vec<(String, NodeId)> = Vec::new();
    let mut n_gates = 0usize;
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let mut tokens = content.split_whitespace();
        let op = tokens.next().expect("non-empty line");
        let rest: Vec<&str> = tokens.collect();
        let err = |message: String| ParseError { line, message };
        let arity = |want: usize| -> Result<(), ParseError> {
            if rest.len() == want {
                Ok(())
            } else {
                Err(ParseError {
                    line,
                    message: format!("{op} expects {want} operand(s), got {}", rest.len()),
                })
            }
        };
        if op == "model" {
            arity(1)?;
            if netlist.is_some() {
                return Err(err("duplicate model line".into()));
            }
            netlist = Some(Netlist::new(rest[0]));
            continue;
        }
        let nl = netlist
            .as_mut()
            .ok_or_else(|| err("file must start with a model line".into()))?;
        match op {
            "input" => {
                arity(1)?;
                nl.input(rest[0]);
            }
            "const" => {
                arity(1)?;
                match rest[0] {
                    "0" => nl.constant(false),
                    "1" => nl.constant(true),
                    other => return Err(err(format!("const expects 0 or 1, got {other:?}"))),
                };
            }
            "not" => {
                arity(1)?;
                let a = parse_node(rest[0], line, n_gates)?;
                nl.not(a);
            }
            "and" | "or" | "xor" | "nand" | "nor" | "xnor" => {
                arity(2)?;
                let a = parse_node(rest[0], line, n_gates)?;
                let b = parse_node(rest[1], line, n_gates)?;
                match op {
                    "and" => nl.and(a, b),
                    "or" => nl.or(a, b),
                    "xor" => nl.xor(a, b),
                    "nand" => nl.nand(a, b),
                    "nor" => nl.nor(a, b),
                    _ => nl.xnor(a, b),
                };
            }
            "mux" => {
                arity(3)?;
                let s = parse_node(rest[0], line, n_gates)?;
                let a = parse_node(rest[1], line, n_gates)?;
                let b = parse_node(rest[2], line, n_gates)?;
                nl.mux(s, a, b);
            }
            "dff" => {
                arity(2)?;
                let d = parse_node(rest[0], line, n_gates)?;
                let init = match rest[1] {
                    "init=0" => false,
                    "init=1" => true,
                    other => return Err(err(format!("dff expects init=0|1, got {other:?}"))),
                };
                nl.dff(d, init);
            }
            "output" => {
                arity(2)?;
                let id = parse_node(rest[1], line, n_gates)?;
                outputs.push((rest[0].to_string(), id));
                continue; // outputs are not gates
            }
            other => return Err(err(format!("unknown operation {other:?}"))),
        }
        n_gates += 1;
    }
    let mut nl = netlist.ok_or(ParseError {
        line: 0,
        message: "empty file".into(),
    })?;
    for (name, id) in outputs {
        nl.output(name, id);
    }
    nl.validate().map_err(|e| ParseError {
        line: 0,
        message: format!("netlist invalid after parse: {e}"),
    })?;
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library;

    #[test]
    fn roundtrip_every_library_circuit() {
        for circuit in library::benchmark_suite() {
            let text = to_text(&circuit);
            let back = from_text(&text).unwrap_or_else(|e| panic!("{}: {e}", circuit.name()));
            assert_eq!(&back, &circuit, "{}", circuit.name());
        }
    }

    #[test]
    fn hand_written_adder_parses_and_works() {
        let src = "\
model half_adder
input a
input b
xor n0 n1
and n0 n1
output sum n2
output carry n3
";
        let nl = from_text(src).unwrap();
        assert_eq!(nl.name(), "half_adder");
        assert_eq!(nl.eval_comb(&[true, true]).unwrap(), vec![false, true]);
        assert_eq!(nl.eval_comb(&[true, false]).unwrap(), vec![true, false]);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "

# a comment
model t
input x       # the input
not n0
output y n1   # inverted
";
        let nl = from_text(src).unwrap();
        assert_eq!(nl.eval_comb(&[false]).unwrap(), vec![true]);
    }

    #[test]
    fn forward_referencing_dff_parses() {
        // A toggle flip-flop: dff reads n1 which is defined after it.
        let src = "\
model toggle
dff n1 init=0
not n0
output q n0
";
        let nl = from_text(src).unwrap();
        let mut st = nl.initial_state();
        let a = nl.step(&[], &mut st).unwrap();
        let b = nl.step(&[], &mut st).unwrap();
        assert_ne!(a, b, "toggles every cycle");
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let cases = [
            ("input x\n", "must start with a model"),
            ("model t\nfrob n0\n", "unknown operation"),
            ("model t\ninput a\nand n0\n", "expects 2 operand"),
            ("model t\nconst 2\n", "const expects 0 or 1"),
            (
                "model t\ninput a\nnot q5\noutput o n1\n",
                "expected node id",
            ),
            ("model t\nmodel u\n", "duplicate model"),
            (
                "model t\ninput a\nand n0 n9\noutput o n1\n",
                "invalid after parse",
            ),
        ];
        for (src, needle) in cases {
            let err = from_text(src).unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "{src:?} -> {err} (wanted {needle:?})"
            );
        }
    }

    #[test]
    fn dff_init_value_is_preserved() {
        let src = "\
model hold
input d
dff n0 init=1
output q n1
";
        let nl = from_text(src).unwrap();
        let mut st = nl.initial_state();
        let first = nl.step(&[false], &mut st).unwrap();
        assert!(first[0], "init=1 visible before the first edge");
    }
}
