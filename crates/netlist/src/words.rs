//! Word-level construction helpers: multi-bit buses over the bit-level IR.
//!
//! These are building blocks for the circuit library; they always emit plain
//! two-input gates so the mapper sees realistic gate-level structure.

use crate::ir::{Netlist, NodeId};

/// Create a named input bus of `width` bits, LSB first (`name[0]`, ...).
pub fn input_bus(n: &mut Netlist, name: &str, width: usize) -> Vec<NodeId> {
    (0..width)
        .map(|i| n.input(format!("{name}[{i}]")))
        .collect()
}

/// Expose a bus as named outputs, LSB first.
pub fn output_bus(n: &mut Netlist, name: &str, bits: &[NodeId]) {
    for (i, b) in bits.iter().enumerate() {
        n.output(format!("{name}[{i}]"), *b);
    }
}

/// Full adder: returns `(sum, carry)`.
pub fn full_adder(n: &mut Netlist, a: NodeId, b: NodeId, cin: NodeId) -> (NodeId, NodeId) {
    let axb = n.xor(a, b);
    let sum = n.xor(axb, cin);
    let ab = n.and(a, b);
    let cx = n.and(axb, cin);
    let cout = n.or(ab, cx);
    (sum, cout)
}

/// Ripple-carry addition of two equal-width buses. Returns `(sum, carry_out)`.
pub fn ripple_add(
    n: &mut Netlist,
    a: &[NodeId],
    b: &[NodeId],
    cin: NodeId,
) -> (Vec<NodeId>, NodeId) {
    assert_eq!(a.len(), b.len(), "ripple_add width mismatch");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (&ai, &bi) in a.iter().zip(b) {
        let (s, c) = full_adder(n, ai, bi, carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Two's-complement subtraction `a - b`. Returns `(difference, borrow-free flag)`.
pub fn ripple_sub(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> (Vec<NodeId>, NodeId) {
    let nb: Vec<NodeId> = b.iter().map(|&x| n.not(x)).collect();
    let one = n.constant(true);
    ripple_add(n, a, &nb, one)
}

/// Bitwise op over two buses.
pub fn bus_map2(
    n: &mut Netlist,
    a: &[NodeId],
    b: &[NodeId],
    mut f: impl FnMut(&mut Netlist, NodeId, NodeId) -> NodeId,
) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| f(n, x, y)).collect()
}

/// Wide AND reduction.
pub fn reduce_and(n: &mut Netlist, bits: &[NodeId]) -> NodeId {
    reduce(n, bits, Netlist::and)
}

/// Wide OR reduction.
pub fn reduce_or(n: &mut Netlist, bits: &[NodeId]) -> NodeId {
    reduce(n, bits, Netlist::or)
}

/// Wide XOR reduction (parity).
pub fn reduce_xor(n: &mut Netlist, bits: &[NodeId]) -> NodeId {
    reduce(n, bits, Netlist::xor)
}

fn reduce(
    n: &mut Netlist,
    bits: &[NodeId],
    mut f: impl FnMut(&mut Netlist, NodeId, NodeId) -> NodeId,
) -> NodeId {
    assert!(!bits.is_empty(), "reduction over empty bus");
    // Balanced tree keeps depth logarithmic.
    let mut level: Vec<NodeId> = bits.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        let mut it = level.chunks(2);
        for pair in &mut it {
            if pair.len() == 2 {
                next.push(f(n, pair[0], pair[1]));
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
    }
    level[0]
}

/// Equality comparator over two buses.
pub fn bus_eq(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> NodeId {
    let eqs = bus_map2(n, a, b, Netlist::xnor);
    reduce_and(n, &eqs)
}

/// Unsigned `a < b` comparator (ripple borrow).
pub fn bus_lt(n: &mut Netlist, a: &[NodeId], b: &[NodeId]) -> NodeId {
    assert_eq!(a.len(), b.len());
    // lt_i = (!a_i & b_i) | (a_i == b_i) & lt_{i-1}, scanning from LSB.
    let mut lt = n.constant(false);
    for (&ai, &bi) in a.iter().zip(b) {
        let na = n.not(ai);
        let strict = n.and(na, bi);
        let eq = n.xnor(ai, bi);
        let carry = n.and(eq, lt);
        lt = n.or(strict, carry);
    }
    lt
}

/// Word-level 2:1 mux.
pub fn bus_mux(n: &mut Netlist, sel: NodeId, a: &[NodeId], b: &[NodeId]) -> Vec<NodeId> {
    assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(&x, &y)| n.mux(sel, x, y)).collect()
}

/// Constant bus for an integer value, LSB first.
pub fn const_bus(n: &mut Netlist, value: u64, width: usize) -> Vec<NodeId> {
    (0..width)
        .map(|i| n.constant((value >> i) & 1 == 1))
        .collect()
}

/// Interpret an output slice as an unsigned integer (test helper).
pub fn bits_to_u64(bits: &[bool]) -> u64 {
    bits.iter()
        .enumerate()
        .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
}

/// Expand an unsigned integer into `width` bits, LSB first (test helper).
pub fn u64_to_bits(value: u64, width: usize) -> Vec<bool> {
    (0..width).map(|i| (value >> i) & 1 == 1).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_add_matches_integers() {
        let mut n = Netlist::new("add4");
        let a = input_bus(&mut n, "a", 4);
        let b = input_bus(&mut n, "b", 4);
        let zero = n.constant(false);
        let (sum, cout) = ripple_add(&mut n, &a, &b, zero);
        output_bus(&mut n, "s", &sum);
        n.output("cout", cout);
        n.validate().unwrap();
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inp = u64_to_bits(x, 4);
                inp.extend(u64_to_bits(y, 4));
                let out = n.eval_comb(&inp).unwrap();
                let got = bits_to_u64(&out[..4]) | (u64::from(out[4]) << 4);
                assert_eq!(got, x + y, "{x}+{y}");
            }
        }
    }

    #[test]
    fn subtraction_matches_wrapping() {
        let mut n = Netlist::new("sub4");
        let a = input_bus(&mut n, "a", 4);
        let b = input_bus(&mut n, "b", 4);
        let (diff, _no_borrow) = ripple_sub(&mut n, &a, &b);
        output_bus(&mut n, "d", &diff);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut inp = u64_to_bits(x, 4);
                inp.extend(u64_to_bits(y, 4));
                let out = n.eval_comb(&inp).unwrap();
                assert_eq!(bits_to_u64(&out[..4]), (x.wrapping_sub(y)) & 0xF);
            }
        }
    }

    #[test]
    fn comparators_match() {
        let mut n = Netlist::new("cmp");
        let a = input_bus(&mut n, "a", 3);
        let b = input_bus(&mut n, "b", 3);
        let eq = bus_eq(&mut n, &a, &b);
        let lt = bus_lt(&mut n, &a, &b);
        n.output("eq", eq);
        n.output("lt", lt);
        for x in 0..8u64 {
            for y in 0..8u64 {
                let mut inp = u64_to_bits(x, 3);
                inp.extend(u64_to_bits(y, 3));
                let out = n.eval_comb(&inp).unwrap();
                assert_eq!(out[0], x == y, "{x} == {y}");
                assert_eq!(out[1], x < y, "{x} < {y}");
            }
        }
    }

    #[test]
    fn reductions_match() {
        let mut n = Netlist::new("red");
        let a = input_bus(&mut n, "a", 5);
        let and = reduce_and(&mut n, &a);
        let or = reduce_or(&mut n, &a);
        let xor = reduce_xor(&mut n, &a);
        n.output("and", and);
        n.output("or", or);
        n.output("xor", xor);
        for v in 0..32u64 {
            let out = n.eval_comb(&u64_to_bits(v, 5)).unwrap();
            assert_eq!(out[0], v == 31);
            assert_eq!(out[1], v != 0);
            assert_eq!(out[2], (v.count_ones() & 1) == 1);
        }
    }

    #[test]
    fn bit_conversion_roundtrip() {
        for v in [0u64, 1, 5, 255, 256, 1 << 40] {
            assert_eq!(bits_to_u64(&u64_to_bits(v, 48)), v);
        }
    }
}
