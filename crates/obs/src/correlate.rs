//! Request-scoped trace reconstruction: pull one job's events out of the
//! shared ring and rebuild its span tree.
//!
//! A serving recorder interleaves events from every worker thread and every
//! in-flight job. When each event carries the job/tenant correlation a
//! [`crate::Recorder::correlated`] handle stamps on it, [`job_trace`] can
//! recover the single-request view a debugger actually wants: the job's
//! begin/end pairs nested per emitting thread (queue wait → cache lookup →
//! per-context compile workers → sim stepping), with its instant events
//! attached to whichever span was open around them.
//!
//! Reconstruction is tolerant of ring eviction: an `End` whose `Begin` was
//! evicted is dropped, and a `Begin` whose `End` is outside the snapshot
//! (job still running, or evicted) closes with `end_us: None`.

use std::collections::BTreeMap;

use crate::trace::{TraceEvent, TracePhase, TraceValue};

/// One node of a reconstructed span tree: a `Begin`/`End` pair and
/// everything that happened inside it on the same thread.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpan {
    /// Event name of the `Begin`/`End` pair.
    pub name: String,
    /// Microseconds from recorder creation at the `Begin` edge.
    pub start_us: u64,
    /// Microseconds at the `End` edge; `None` when the span never closed
    /// inside the snapshot (in-flight work, or the `End` was evicted).
    pub end_us: Option<u64>,
    /// Thread the span ran on.
    pub tid: u64,
    /// Args carried on the `Begin` edge.
    pub args: Vec<(String, TraceValue)>,
    /// Spans opened (and closed) while this one was open, same thread.
    pub children: Vec<JobSpan>,
    /// Instant events emitted while this span was the innermost open one.
    pub instants: Vec<TraceEvent>,
}

impl JobSpan {
    /// Wall-clock duration, when the span closed inside the snapshot.
    pub fn duration_us(&self) -> Option<u64> {
        self.end_us.map(|end| end.saturating_sub(self.start_us))
    }

    /// Depth-first search for the first descendant (or self) named `name`.
    pub fn find(&self, name: &str) -> Option<&JobSpan> {
        if self.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }
}

/// Everything one job left in the trace ring, reassembled.
#[derive(Debug, Clone, PartialEq)]
pub struct JobTrace {
    /// The correlation id the events were filtered by.
    pub job: u64,
    /// Tenant label, from the first correlated event that carried one.
    pub tenant: Option<String>,
    /// Top-level spans (no enclosing correlated span on their thread),
    /// ordered by start time.
    pub roots: Vec<JobSpan>,
    /// Instants that fired outside any open span of this job (e.g. the
    /// submit-side `job_submitted` marker, emitted on the client thread).
    pub instants: Vec<TraceEvent>,
    /// Correlated events consumed, including unmatched `End`s.
    pub n_events: usize,
}

impl JobTrace {
    /// Depth-first search across all roots for a span named `name`.
    pub fn span(&self, name: &str) -> Option<&JobSpan> {
        self.roots.iter().find_map(|r| r.find(name))
    }

    /// First instant named `name`, searching loose instants then the tree.
    pub fn instant(&self, name: &str) -> Option<&TraceEvent> {
        fn in_span<'a>(s: &'a JobSpan, name: &str) -> Option<&'a TraceEvent> {
            s.instants
                .iter()
                .find(|e| e.name == name)
                .or_else(|| s.children.iter().find_map(|c| in_span(c, name)))
        }
        self.instants
            .iter()
            .find(|e| e.name == name)
            .or_else(|| self.roots.iter().find_map(|r| in_span(r, name)))
    }
}

/// Distinct job ids present in `events`, in order of first appearance.
pub fn job_ids(events: &[TraceEvent]) -> Vec<u64> {
    let mut seen = Vec::new();
    for e in events {
        if let Some(job) = e.job {
            if !seen.contains(&job) {
                seen.push(job);
            }
        }
    }
    seen
}

/// Rebuild `job`'s span tree from an event snapshot (see
/// [`crate::Recorder::trace_events`]). `None` when no event carries the id.
pub fn job_trace(events: &[TraceEvent], job: u64) -> Option<JobTrace> {
    // Per-thread stacks of open spans; Begin/End pairs nest in LIFO order
    // on their emitting thread, exactly like the recorder's span stack.
    let mut stacks: BTreeMap<u64, Vec<JobSpan>> = BTreeMap::new();
    let mut roots: Vec<JobSpan> = Vec::new();
    let mut loose: Vec<TraceEvent> = Vec::new();
    let mut tenant: Option<String> = None;
    let mut n_events = 0usize;

    fn close_into(stack: &mut [JobSpan], roots: &mut Vec<JobSpan>, span: JobSpan) {
        match stack.last_mut() {
            Some(parent) => parent.children.push(span),
            None => roots.push(span),
        }
    }

    for e in events.iter().filter(|e| e.job == Some(job)) {
        n_events += 1;
        if tenant.is_none() {
            tenant.clone_from(&e.tenant);
        }
        let stack = stacks.entry(e.tid).or_default();
        match e.phase {
            TracePhase::Begin => stack.push(JobSpan {
                name: e.name.clone(),
                start_us: e.ts_us,
                end_us: None,
                tid: e.tid,
                args: e.args.clone(),
                children: Vec::new(),
                instants: Vec::new(),
            }),
            TracePhase::End => {
                // An End without its Begin means the Begin was evicted from
                // the ring; there is nothing to anchor it to.
                if let Some(mut span) = stack.pop() {
                    span.end_us = Some(e.ts_us);
                    close_into(stack, &mut roots, span);
                }
            }
            TracePhase::Instant => match stack.last_mut() {
                Some(top) => top.instants.push(e.clone()),
                None => loose.push(e.clone()),
            },
        }
    }
    // Spans still open at snapshot time surface with end_us: None.
    for (_tid, mut stack) in stacks {
        while let Some(span) = stack.pop() {
            close_into(&mut stack, &mut roots, span);
        }
    }
    if n_events == 0 {
        return None;
    }
    roots.sort_by_key(|s| s.start_us);
    Some(JobTrace {
        job,
        tenant,
        roots,
        instants: loose,
        n_events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    #[test]
    fn correlated_recorder_rebuilds_one_jobs_tree() {
        let rec = Recorder::enabled();
        let a = rec.correlated(7, "tenant-a");
        let b = rec.correlated(8, "tenant-b");
        b.instant("job_submitted", &[]);
        a.instant("job_submitted", &[("kind", "compile".into())]);
        {
            let _outer = a.begin("compile_job", &[]);
            a.instant("cache_lookup", &[("hit", false.into())]);
            {
                let _inner = a.begin("compile_context", &[("context", 0usize.into())]);
            }
            let _noise = b.begin("sim_job", &[]);
        }
        rec.instant("uncorrelated", &[]);

        let events = rec.trace_events();
        assert_eq!(job_ids(&events), vec![8, 7]);

        let trace = job_trace(&events, 7).expect("job 7 traced");
        assert_eq!(trace.tenant.as_deref(), Some("tenant-a"));
        assert_eq!(trace.roots.len(), 1);
        let root = &trace.roots[0];
        assert_eq!(root.name, "compile_job");
        assert!(root.end_us.is_some());
        assert_eq!(root.children.len(), 1);
        assert_eq!(root.children[0].name, "compile_context");
        assert_eq!(root.children[0].args[0].1.as_u64(), Some(0));
        assert_eq!(root.instants.len(), 1, "cache_lookup rides in the root");
        assert_eq!(trace.instants.len(), 1, "job_submitted fired outside");
        assert_eq!(trace.n_events, 6);
        assert!(trace.span("compile_context").is_some());
        assert!(trace.instant("cache_lookup").is_some());

        let other = job_trace(&events, 8).expect("job 8 traced");
        assert_eq!(other.tenant.as_deref(), Some("tenant-b"));
        assert!(job_trace(&events, 99).is_none());
    }

    #[test]
    fn unmatched_edges_survive_ring_eviction() {
        let rec = Recorder::enabled();
        let c = rec.correlated(1, "t");
        let g = c.begin("outer", &[]);
        c.instant("mid", &[]);
        // Snapshot before the End: the span is open.
        let open = job_trace(&rec.trace_events(), 1).expect("traced");
        assert_eq!(open.roots.len(), 1);
        assert_eq!(open.roots[0].end_us, None);
        assert_eq!(open.roots[0].instants.len(), 1);
        drop(g);
        let closed = job_trace(&rec.trace_events(), 1).expect("traced");
        assert!(closed.roots[0].end_us.is_some());
        assert!(closed.roots[0].duration_us().is_some());

        // A lone End (Begin evicted) is dropped, not mis-nested.
        let mut events = rec.trace_events();
        events.retain(|e| e.phase != TracePhase::Begin);
        let t = job_trace(&events, 1).expect("instant still correlates");
        assert!(t.roots.is_empty());
        assert_eq!(t.instants.len(), 1);
    }
}
