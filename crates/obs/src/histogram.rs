//! Fixed-size log-bucketed histogram: bounded memory no matter how many
//! samples stream in, mergeable across recorders, and quantile estimates
//! whose relative error is bounded by the bucket width.
//!
//! The recorder's histogram registry used to keep every raw sample in a
//! `Vec<f64>`, which made a long-running server's memory grow with its job
//! count. [`LogHistogram`] replaces that storage: values land in
//! geometrically spaced buckets ([`BUCKETS_PER_DECADE`] per power of ten
//! across [`MIN_TRACKED`]`..10^12`), so a quantile read returns the
//! geometric midpoint of the bucket holding the requested rank. With 155
//! buckets per decade the midpoint is within `10^(0.5/155) - 1 ≈ 0.75%` of
//! any sample in the bucket — comfortably inside the 1% the serving layer's
//! tail-latency gates assume (property-tested against the exact
//! nearest-rank implementation in `tests/observability.rs`).
//!
//! Count, sum, min, and max are tracked exactly; only the quantiles are
//! approximate. Values below [`MIN_TRACKED`] (including zero and negatives)
//! collapse into one underflow bucket whose quantile reads back as 0
//! clamped into the observed range — for the non-negative values metrics
//! record, an absolute error below `1e-6` (sub-picosecond at microsecond
//! latency scale).

use crate::HistogramEntry;

/// Smallest value resolved by its own log bucket; anything below lands in
/// the underflow bucket.
pub const MIN_TRACKED: f64 = 1e-6;
/// Log-bucket resolution: buckets per power of ten.
pub const BUCKETS_PER_DECADE: usize = 155;
/// Powers of ten covered by the log range (`1e-6 ..= 1e12`).
const DECADES: usize = 18;
/// Underflow bucket + log range + overflow bucket.
const N_BUCKETS: usize = DECADES * BUCKETS_PER_DECADE + 2;

/// A streaming histogram with a fixed bucket layout shared by every
/// instance, so two histograms can always be merged bucket-by-bucket.
///
/// ```
/// use mcfpga_obs::LogHistogram;
///
/// let mut h = LogHistogram::new();
/// for v in 1..=1000 {
///     h.record(v as f64);
/// }
/// assert_eq!(h.count(), 1000);
/// let p99 = h.quantile(0.99);
/// assert!((p99 - 990.0).abs() <= 0.01 * 990.0, "p99 within 1%: {p99}");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

/// Bucket for `v`: 0 for underflow, `N_BUCKETS - 1` for overflow. The
/// mapping is monotone non-decreasing in `v`, which is what lets the
/// quantile walk return the bucket actually holding the requested rank.
fn bucket_index(v: f64) -> usize {
    if v.is_nan() || v < MIN_TRACKED {
        // NaN, negatives, zero, and sub-MIN_TRACKED values.
        return 0;
    }
    let k = ((v / MIN_TRACKED).log10() * BUCKETS_PER_DECADE as f64).floor();
    if k < 0.0 {
        return 0;
    }
    // Saturating cast handles +inf and anything beyond the log range.
    let k = k as usize;
    if k >= N_BUCKETS - 2 {
        N_BUCKETS - 1
    } else {
        1 + k
    }
}

/// Geometric midpoint of log bucket `i` (callers clamp to observed range).
fn bucket_midpoint(i: usize) -> f64 {
    MIN_TRACKED * 10f64.powf((i as f64 - 0.5) / BUCKETS_PER_DECADE as f64)
}

impl LogHistogram {
    /// An empty histogram. Allocates the full fixed bucket array
    /// (`~22 KiB`), after which recording never allocates again.
    pub fn new() -> LogHistogram {
        LogHistogram {
            counts: vec![0; N_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one sample. `O(1)`, allocation-free.
    pub fn record(&mut self, v: f64) {
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
    }

    /// Fold another histogram into this one. Bucket layouts are identical
    /// by construction, so the merge is exact: the result is as if every
    /// sample of `other` had been recorded here.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact minimum sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Nearest-rank quantile estimate, `q` in `[0, 1]`.
    ///
    /// Returns the geometric midpoint of the bucket containing the
    /// requested rank, clamped into the exact observed `[min, max]` — so
    /// the result is within one half bucket width (≈0.75% relative) of the
    /// sample the exact nearest-rank implementation would return.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let mid = if i == 0 {
                    // Underflow: every sample here is below MIN_TRACKED.
                    0.0
                } else if i == N_BUCKETS - 1 {
                    // Overflow: the exact max is the best estimate held.
                    self.max
                } else {
                    bucket_midpoint(i)
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Condense into the report entry shape (`p50/p90/p99/p999`).
    pub fn entry(&self, name: &str) -> HistogramEntry {
        HistogramEntry {
            name: name.to_string(),
            count: self.count as usize,
            min: self.min(),
            max: self.max(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::percentile;

    #[test]
    fn empty_histogram_reads_zeros() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
    }

    #[test]
    fn bucket_mapping_is_monotone_across_decades() {
        let mut prev = 0;
        let mut v = 1e-9;
        while v < 1e13 {
            let b = bucket_index(v);
            assert!(b >= prev, "bucket mapping regressed at {v}");
            prev = b;
            v *= 1.0031;
        }
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::INFINITY), N_BUCKETS - 1);
    }

    #[test]
    fn quantiles_track_exact_percentiles_within_a_percent() {
        let mut h = LogHistogram::new();
        let samples: Vec<f64> = (1..=10_000).map(|v| v as f64).collect();
        for &v in &samples {
            h.record(v);
        }
        for (q, pct) in [(0.50, 50.0), (0.90, 90.0), (0.99, 99.0), (0.999, 99.9)] {
            let exact = percentile(&samples, pct);
            let approx = h.quantile(q);
            assert!(
                (approx - exact).abs() <= 0.01 * exact,
                "q={q}: approx {approx} vs exact {exact}"
            );
        }
        assert_eq!(h.count(), 10_000);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 10_000.0);
        assert!((h.mean() - 5000.5).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut all = LogHistogram::new();
        for i in 0..500 {
            let v = (i as f64 + 1.0) * 3.7;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn sub_resolution_and_overflow_values_stay_bounded() {
        let mut h = LogHistogram::new();
        h.record(0.0);
        h.record(-3.0);
        h.record(1e-9);
        h.record(5e14);
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), -3.0);
        assert_eq!(h.max(), 5e14);
        // Underflow quantiles read as 0 clamped into the observed range,
        // overflow quantiles as the exact max.
        assert_eq!(h.quantile(0.01), 0.0);
        assert_eq!(h.quantile(1.0), 5e14);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        let mut h = LogHistogram::new();
        h.record(123.456);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 123.456, "clamping pins one sample");
        }
    }

    #[test]
    fn entry_matches_accessors() {
        let mut h = LogHistogram::new();
        for v in [2.0, 4.0, 8.0] {
            h.record(v);
        }
        let e = h.entry("lat");
        assert_eq!(e.name, "lat");
        assert_eq!(e.count, 3);
        assert_eq!(e.min, 2.0);
        assert_eq!(e.max, 8.0);
        assert!((e.mean - 14.0 / 3.0).abs() < 1e-12);
        assert!(e.p50 <= e.p90 && e.p90 <= e.p99 && e.p99 <= e.p999);
    }
}
