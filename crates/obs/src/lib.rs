//! Flow-wide observability: phase spans, a metrics registry, and
//! machine-readable run reports.
//!
//! The central type is [`Recorder`]. A recorder is either *enabled* (it owns a
//! shared, thread-safe collector) or *disabled* (every call is a no-op), so
//! instrumented code can unconditionally record without branching and callers
//! that do not care pay nothing:
//!
//! ```
//! use mcfpga_obs::Recorder;
//!
//! let rec = Recorder::enabled();
//! {
//!     let _flow = rec.span("flow");
//!     {
//!         let _route = rec.span("route"); // nested: path is "flow/route"
//!         rec.incr("route.iterations", 3);
//!     }
//!     rec.observe("rcm.ses_per_column", 2.0);
//!     rec.set_gauge("anneal.temperature", 0.5);
//! }
//! let report = rec.report("demo");
//! assert_eq!(report.spans.len(), 2);
//! assert_eq!(report.counters[0].value, 3);
//! let json = serde_json::to_string_pretty(&report).unwrap();
//! assert!(json.contains("flow/route"));
//! ```
//!
//! Spans nest lexically per thread: the span path is the `/`-joined chain of
//! enclosing spans opened on the same thread. Counters, gauges, and histograms
//! are keyed by dotted names (`route.overused_edges`, `place.moves_accepted`)
//! and may be updated concurrently from any thread holding a clone of the
//! recorder.
//!
//! Alongside the aggregates, an enabled recorder buffers structured
//! [`TraceEvent`]s — instants via [`Recorder::instant`] and begin/end pairs
//! via [`Recorder::begin`] — in a bounded ring (see the [`trace`] module
//! docs), and [`Recorder::chrome_trace_json`] exports spans and events
//! together in Chrome/Perfetto trace-event format.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize, Value};

pub mod correlate;
pub mod histogram;
pub mod trace;
pub mod waveform;

pub use correlate::{job_ids, job_trace, JobSpan, JobTrace};
pub use histogram::LogHistogram;
pub use trace::{
    current_thread_id, ReconfigTelemetry, SwitchTelemetry, TraceEvent, TracePhase, TraceValue,
};
pub use waveform::{WaveSignal, Waveform};

/// Default bound on buffered trace events; older events are evicted first.
/// Override with [`Recorder::enabled_with_capacity`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// One completed span: where in the hierarchy it sat and when it ran,
/// as microsecond offsets from the recorder's creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// `/`-joined path of enclosing spans, e.g. `"flow/place"`.
    pub path: String,
    /// Leaf name, e.g. `"place"`.
    pub name: String,
    /// Start offset from recorder creation, in microseconds.
    pub start_us: u64,
    /// Wall-clock duration, in microseconds.
    pub duration_us: u64,
    /// Sequential id of the thread the span ran on (see [`current_thread_id`]).
    pub tid: u64,
}

/// A named monotonic counter in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterEntry {
    pub name: String,
    pub value: u64,
}

/// A named last-write-wins gauge in a [`RunReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeEntry {
    pub name: String,
    pub value: f64,
}

/// Summary statistics of one histogram's samples.
///
/// Count, min, max, and mean are exact; the percentiles come from the
/// fixed-size [`LogHistogram`] buckets, accurate to within ~1% relative
/// error (see the [`histogram`] module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramEntry {
    pub name: String,
    pub count: usize,
    pub min: f64,
    pub max: f64,
    pub mean: f64,
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
}

/// Machine-readable snapshot of everything a [`Recorder`] collected.
///
/// Serializes to JSON via the workspace `serde_json`; this is the payload
/// written to `BENCH_flow.json` by the benchmark driver.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Caller-chosen label for the run (e.g. the experiment id).
    pub name: String,
    /// Microseconds from recorder creation to report time.
    pub total_us: u64,
    pub spans: Vec<SpanRecord>,
    pub counters: Vec<CounterEntry>,
    pub gauges: Vec<GaugeEntry>,
    pub histograms: Vec<HistogramEntry>,
    /// Per-context-switch reconfiguration summary, when the run traced any
    /// context switches (attached by the flow driver; `None` otherwise).
    pub reconfig: Option<ReconfigTelemetry>,
}

impl RunReport {
    /// Total duration of all spans whose leaf name is `name`, in microseconds.
    pub fn span_total_us(&self, name: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.duration_us)
            .sum()
    }

    /// Value of the counter `name`, or 0 if it was never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Value of the gauge `name`, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|g| g.name == name).map(|g| g.value)
    }

    /// Histogram summary for `name`, if any samples were observed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramEntry> {
        self.histograms.iter().find(|h| h.name == name)
    }
}

struct Inner {
    origin: Instant,
    spans: Mutex<Vec<SpanRecord>>,
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    // Bounded log-bucketed storage: memory is O(histogram names), not
    // O(samples), so a long-running server cannot grow without bound.
    histograms: Mutex<BTreeMap<String, LogHistogram>>,
    events: Mutex<trace::TraceRing>,
}

/// Request-scoped correlation a [`Recorder::correlated`] handle stamps onto
/// every trace event it emits.
struct Correlation {
    job: u64,
    tenant: String,
}

impl Inner {
    fn new(trace_capacity: usize) -> Inner {
        Inner {
            origin: Instant::now(),
            spans: Mutex::new(Vec::new()),
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: Mutex::new(trace::TraceRing::new(trace_capacity)),
        }
    }

    fn micros_since_origin(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    fn push_event(
        &self,
        name: &str,
        phase: TracePhase,
        args: &[(&str, TraceValue)],
        corr: Option<&Correlation>,
    ) {
        let event = TraceEvent {
            name: name.to_string(),
            phase,
            ts_us: self.micros_since_origin(),
            tid: current_thread_id(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            job: corr.map(|c| c.job),
            tenant: corr.map(|c| c.tenant.clone()),
        };
        self.events.lock().unwrap().push(event);
    }
}

thread_local! {
    // Lexical span nesting per thread; a disabled recorder never touches this.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Handle to a shared metrics/span collector, or a no-op placeholder.
///
/// Cloning is cheap (an `Arc` clone); all clones feed the same collector.
/// The [`Default`] recorder is disabled, so types can embed a `Recorder`
/// field without forcing observability on their users.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Arc<Inner>>,
    // Correlation stamped onto every trace event this handle emits; clones
    // made via `correlated` share the same collector but tag their events.
    corr: Option<Arc<Correlation>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Recorder {
    /// A recorder that collects spans, metrics, and trace events (the event
    /// ring is bounded at [`DEFAULT_TRACE_CAPACITY`]).
    pub fn enabled() -> Recorder {
        Recorder::enabled_with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// Like [`Recorder::enabled`], but with an explicit bound on buffered
    /// trace events. Once full, the oldest events are evicted (counted by
    /// [`Recorder::trace_dropped`]); a capacity of 0 keeps no events at all.
    pub fn enabled_with_capacity(trace_capacity: usize) -> Recorder {
        Recorder {
            inner: Some(Arc::new(Inner::new(trace_capacity))),
            corr: None,
        }
    }

    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Recorder {
        Recorder {
            inner: None,
            corr: None,
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A handle onto the *same* collector whose trace events additionally
    /// carry `(job, tenant)` correlation — the request-scoped view
    /// [`correlate::job_trace`] reconstructs. Aggregates (counters, gauges,
    /// histograms, spans) are shared and unaffected; only [`TraceEvent`]s
    /// emitted through this handle (and code it is passed to) are tagged.
    ///
    /// Correlating a disabled recorder stays a no-op.
    pub fn correlated(&self, job: u64, tenant: &str) -> Recorder {
        Recorder {
            inner: self.inner.clone(),
            corr: self.inner.as_ref().map(|_| {
                Arc::new(Correlation {
                    job,
                    tenant: tenant.to_string(),
                })
            }),
        }
    }

    /// Open a span. The span closes (and is recorded) when the returned guard
    /// drops; nesting follows lexical scope on the current thread.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { active: None },
            Some(inner) => {
                let path = SPAN_STACK.with(|stack| {
                    let mut stack = stack.borrow_mut();
                    stack.push(name.to_string());
                    stack.join("/")
                });
                Span {
                    active: Some(ActiveSpan {
                        inner: Arc::clone(inner),
                        path,
                        name: name.to_string(),
                        start_us: inner.micros_since_origin(),
                        start: Instant::now(),
                    }),
                }
            }
        }
    }

    /// Add `by` to the counter `name` (creating it at 0 first).
    pub fn incr(&self, name: &str, by: u64) {
        if let Some(inner) = &self.inner {
            let mut counters = inner.counters.lock().unwrap();
            *counters.entry(name.to_string()).or_insert(0) += by;
        }
    }

    /// Set the gauge `name` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner.gauges.lock().unwrap().insert(name.to_string(), value);
        }
    }

    /// Record one sample into the histogram `name` (fixed-size log-bucketed
    /// storage; see [`LogHistogram`]).
    pub fn observe(&self, name: &str, value: f64) {
        if let Some(inner) = &self.inner {
            inner
                .histograms
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default()
                .record(value);
        }
    }

    /// Summary of histogram `name` as collected so far, if any sample was
    /// observed — the live-query form of [`RunReport::histogram`].
    pub fn histogram(&self, name: &str) -> Option<HistogramEntry> {
        self.inner.as_ref().and_then(|inner| {
            inner
                .histograms
                .lock()
                .unwrap()
                .get(name)
                .map(|h| h.entry(name))
        })
    }

    /// Record an instant trace event with typed key/value args.
    ///
    /// Note the `args` slice is built by the caller even when the recorder is
    /// disabled; keep argument construction cheap (numbers, `&str`) on hot
    /// paths, or gate expensive payloads on [`Recorder::is_enabled`].
    pub fn instant(&self, name: &str, args: &[(&str, TraceValue)]) {
        if let Some(inner) = &self.inner {
            inner.push_event(name, TracePhase::Instant, args, self.corr.as_deref());
        }
    }

    /// Open a duration trace event: a `Begin` event is recorded now and the
    /// matching `End` when the returned guard drops. Unlike [`Recorder::span`]
    /// this records both edges as they happen, so in-flight work is visible
    /// and typed args ride on the `Begin` edge.
    pub fn begin(&self, name: &str, args: &[(&str, TraceValue)]) -> TraceGuard {
        match &self.inner {
            None => TraceGuard { active: None },
            Some(inner) => {
                inner.push_event(name, TracePhase::Begin, args, self.corr.as_deref());
                TraceGuard {
                    // The guard carries the correlation so the End edge is
                    // tagged like its Begin (job_trace needs both).
                    active: Some((Arc::clone(inner), name.to_string(), self.corr.clone())),
                }
            }
        }
    }

    /// Snapshot of the buffered trace events, oldest first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.events.lock().unwrap().snapshot())
    }

    /// Number of trace events evicted (or refused) by the bounded ring.
    pub fn trace_dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.events.lock().unwrap().dropped())
    }

    /// Bound on buffered trace events (0 for a disabled recorder).
    pub fn trace_capacity(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |inner| inner.events.lock().unwrap().capacity())
    }

    /// Export spans and trace events as Chrome trace-event JSON, viewable in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// Completed spans become `"X"` (complete) events under category
    /// `"span"`; trace events become `"B"`/`"E"`/`"i"` events under category
    /// `"event"` with their args attached. A disabled recorder exports a
    /// valid document with an empty `traceEvents` array.
    pub fn chrome_trace_json(&self) -> String {
        let mut out: Vec<Value> = Vec::new();
        let mut dropped = 0u64;
        let capacity = self.trace_capacity();
        if let Some(inner) = &self.inner {
            for s in inner.spans.lock().unwrap().iter() {
                out.push(Value::Object(vec![
                    ("name".to_string(), Value::Str(s.name.clone())),
                    ("cat".to_string(), Value::Str("span".to_string())),
                    ("ph".to_string(), Value::Str("X".to_string())),
                    ("ts".to_string(), Value::U64(s.start_us)),
                    ("dur".to_string(), Value::U64(s.duration_us)),
                    ("pid".to_string(), Value::U64(1)),
                    ("tid".to_string(), Value::U64(s.tid)),
                    (
                        "args".to_string(),
                        Value::Object(vec![("path".to_string(), Value::Str(s.path.clone()))]),
                    ),
                ]));
            }
            let ring = inner.events.lock().unwrap();
            dropped = ring.dropped();
            for e in ring.snapshot() {
                let mut obj = vec![
                    ("name".to_string(), Value::Str(e.name.clone())),
                    ("cat".to_string(), Value::Str("event".to_string())),
                    (
                        "ph".to_string(),
                        Value::Str(e.phase.chrome_ph().to_string()),
                    ),
                    ("ts".to_string(), Value::U64(e.ts_us)),
                    ("pid".to_string(), Value::U64(1)),
                    ("tid".to_string(), Value::U64(e.tid)),
                ];
                if e.phase == TracePhase::Instant {
                    // Thread-scoped instant marker.
                    obj.push(("s".to_string(), Value::Str("t".to_string())));
                }
                let mut args: Vec<(String, Value)> = e
                    .args
                    .iter()
                    .map(|(k, v)| (k.clone(), v.to_json()))
                    .collect();
                // Correlation rides in args so Perfetto can filter on it.
                if let Some(job) = e.job {
                    args.push(("job".to_string(), Value::U64(job)));
                }
                if let Some(tenant) = &e.tenant {
                    args.push(("tenant".to_string(), Value::Str(tenant.clone())));
                }
                if !args.is_empty() {
                    obj.push(("args".to_string(), Value::Object(args)));
                }
                out.push(Value::Object(obj));
            }
        }
        let doc = Value::Object(vec![
            ("traceEvents".to_string(), Value::Array(out)),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
            (
                // Truncated exports are self-describing: how many events the
                // ring evicted and how big it was.
                "otherData".to_string(),
                Value::Object(vec![
                    ("dropped_events".to_string(), Value::U64(dropped)),
                    ("trace_capacity".to_string(), Value::U64(capacity as u64)),
                    ("trace_truncated".to_string(), Value::Bool(dropped > 0)),
                ]),
            ),
        ]);
        serde_json::to_string_pretty(&doc).expect("value trees always serialize")
    }

    /// Current value of counter `name` (0 if absent or recorder disabled).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            inner
                .counters
                .lock()
                .unwrap()
                .get(name)
                .copied()
                .unwrap_or(0)
        })
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner
            .as_ref()
            .and_then(|inner| inner.gauges.lock().unwrap().get(name).copied())
    }

    /// Snapshot everything collected so far into a serializable report.
    ///
    /// A disabled recorder returns an empty report (zero spans and metrics).
    pub fn report(&self, name: &str) -> RunReport {
        let Some(inner) = &self.inner else {
            return RunReport {
                name: name.to_string(),
                total_us: 0,
                spans: Vec::new(),
                counters: Vec::new(),
                gauges: Vec::new(),
                histograms: Vec::new(),
                reconfig: None,
            };
        };
        let spans = inner.spans.lock().unwrap().clone();
        let counters = inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, &value)| CounterEntry {
                name: name.clone(),
                value,
            })
            .collect();
        let gauges = inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, &value)| GaugeEntry {
                name: name.clone(),
                value,
            })
            .collect();
        let histograms = inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| h.entry(name))
            .collect();
        RunReport {
            name: name.to_string(),
            total_us: inner.micros_since_origin(),
            spans,
            counters,
            gauges,
            histograms,
            reconfig: None,
        }
    }
}

/// RAII guard pairing a `Begin` trace event with its `End`, emitted on drop.
#[must_use = "the matching End event is emitted when this guard drops; binding it to `_` ends it immediately"]
pub struct TraceGuard {
    active: Option<(Arc<Inner>, String, Option<Arc<Correlation>>)>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if let Some((inner, name, corr)) = self.active.take() {
            inner.push_event(&name, TracePhase::End, &[], corr.as_deref());
        }
    }
}

/// Exact nearest-rank percentile over an already-sorted sample slice.
///
/// This is the reference implementation the bucketed [`LogHistogram`]
/// quantiles are property-tested against; live histograms no longer keep
/// raw samples, but code that does (tests, benches) can still use this.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct ActiveSpan {
    inner: Arc<Inner>,
    path: String,
    name: String,
    start_us: u64,
    start: Instant,
}

/// RAII guard for an open span; records the span when dropped.
#[must_use = "a span is recorded when this guard drops; binding it to `_` closes it immediately"]
pub struct Span {
    active: Option<ActiveSpan>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(active) = self.active.take() {
            SPAN_STACK.with(|stack| {
                stack.borrow_mut().pop();
            });
            let record = SpanRecord {
                path: active.path,
                name: active.name,
                start_us: active.start_us,
                duration_us: active.start.elapsed().as_micros() as u64,
                tid: current_thread_id(),
            };
            active.inner.spans.lock().unwrap().push(record);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn disabled_recorder_is_noop() {
        let rec = Recorder::disabled();
        {
            let _s = rec.span("phase");
            rec.incr("c", 5);
            rec.set_gauge("g", 1.0);
            rec.observe("h", 2.0);
        }
        let report = rec.report("empty");
        assert!(report.spans.is_empty());
        assert!(report.counters.is_empty());
        assert_eq!(rec.counter("c"), 0);
        assert!(!rec.is_enabled());
    }

    #[test]
    fn spans_nest_lexically() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.span("flow");
            {
                let _inner = rec.span("route");
            }
            let _sibling = rec.span("rcm");
        }
        let report = rec.report("nesting");
        let paths: Vec<&str> = report.spans.iter().map(|s| s.path.as_str()).collect();
        // Spans are recorded at close time: innermost first.
        assert_eq!(paths, vec!["flow/route", "flow/rcm", "flow"]);
        assert!(report.span_total_us("flow") >= report.span_total_us("route"));
    }

    #[test]
    fn concurrent_counter_increments_are_not_lost() {
        let rec = Recorder::enabled();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let rec = rec.clone();
                thread::spawn(move || {
                    for _ in 0..1000 {
                        rec.incr("hits", 1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(rec.counter("hits"), 8000);
        assert_eq!(rec.report("conc").counter("hits"), 8000);
    }

    #[test]
    fn histogram_percentiles() {
        let rec = Recorder::enabled();
        for v in 1..=100 {
            rec.observe("latency", v as f64);
        }
        let report = rec.report("hist");
        let h = report.histogram("latency").expect("histogram present");
        // Count/min/max/mean are exact; percentiles are log-bucketed and
        // guaranteed within 1% of the exact nearest-rank values.
        assert_eq!(h.count, 100);
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean - 50.5).abs() < 1e-9);
        assert!((h.p50 - 50.0).abs() <= 0.5, "p50 = {}", h.p50);
        assert!((h.p90 - 90.0).abs() <= 0.9, "p90 = {}", h.p90);
        assert!((h.p99 - 99.0).abs() <= 0.99, "p99 = {}", h.p99);
        assert!((h.p999 - 100.0).abs() <= 1.0, "p999 = {}", h.p999);
        // The live-query view agrees with the report.
        assert_eq!(rec.histogram("latency"), Some(h.clone()));
        assert_eq!(rec.histogram("absent"), None);
    }

    #[test]
    fn correlated_handles_tag_events_but_share_aggregates() {
        let rec = Recorder::enabled();
        let crec = rec.correlated(42, "tenant-x");
        crec.incr("jobs", 1);
        rec.incr("jobs", 1);
        crec.instant("job_submitted", &[]);
        {
            let _g = crec.begin("compile_job", &[]);
        }
        rec.instant("background_tick", &[]);

        // Aggregates land in the one shared collector.
        assert_eq!(rec.counter("jobs"), 2);

        let events = rec.trace_events();
        assert_eq!(events.len(), 4);
        for e in &events[..3] {
            assert_eq!(e.job, Some(42), "{} must carry the job id", e.name);
            assert_eq!(e.tenant.as_deref(), Some("tenant-x"));
        }
        assert_eq!(events[3].job, None);
        assert_eq!(events[3].tenant, None);

        // The Chrome export surfaces correlation as args and describes the
        // ring so truncated traces are self-evident.
        let doc = serde_json::parse(&rec.chrome_trace_json()).expect("valid JSON");
        let exported = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let begin = exported
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("compile_job"))
            .expect("begin exported");
        let args = begin.get("args").expect("correlation args");
        assert_eq!(args.get("job").and_then(|v| v.as_u64()), Some(42));
        assert_eq!(
            args.get("tenant").and_then(|v| v.as_str()),
            Some("tenant-x")
        );
        let other = doc.get("otherData").expect("metadata");
        assert_eq!(
            other.get("dropped_events").and_then(|v| v.as_u64()),
            Some(0)
        );
        assert_eq!(
            other.get("trace_capacity").and_then(|v| v.as_u64()),
            Some(DEFAULT_TRACE_CAPACITY as u64)
        );
        assert_eq!(
            other.get("trace_truncated").and_then(|v| v.as_bool()),
            Some(false)
        );

        // A disabled recorder stays a no-op through correlation.
        let off = Recorder::disabled().correlated(1, "t");
        off.instant("x", &[]);
        assert!(off.trace_events().is_empty());
    }

    #[test]
    fn gauges_last_write_wins() {
        let rec = Recorder::enabled();
        rec.set_gauge("temp", 10.0);
        rec.set_gauge("temp", 2.5);
        assert_eq!(rec.gauge("temp"), Some(2.5));
        assert_eq!(rec.report("g").gauge("temp"), Some(2.5));
    }

    #[test]
    fn begin_end_events_pair_and_nest_in_order() {
        let rec = Recorder::enabled();
        {
            let _outer = rec.begin("compile", &[("context", 0usize.into())]);
            {
                let _inner = rec.begin("route", &[]);
                rec.instant("route_iteration", &[("iteration", 1usize.into())]);
            }
        }
        let events = rec.trace_events();
        let shape: Vec<(&str, TracePhase)> =
            events.iter().map(|e| (e.name.as_str(), e.phase)).collect();
        assert_eq!(
            shape,
            vec![
                ("compile", TracePhase::Begin),
                ("route", TracePhase::Begin),
                ("route_iteration", TracePhase::Instant),
                ("route", TracePhase::End),
                ("compile", TracePhase::End),
            ]
        );
        assert_eq!(events[0].arg_u64("context"), Some(0));
        // Timestamps are monotone within the single emitting thread.
        assert!(events.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
    }

    #[test]
    fn disabled_recorder_emits_no_events() {
        let rec = Recorder::disabled();
        rec.instant("x", &[("k", 1u64.into())]);
        let _g = rec.begin("y", &[]);
        drop(_g);
        assert!(rec.trace_events().is_empty());
        assert_eq!(rec.trace_dropped(), 0);
        let doc = serde_json::parse(&rec.chrome_trace_json()).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn ring_capacity_bounds_recorded_events() {
        let rec = Recorder::enabled_with_capacity(3);
        for i in 0..10u64 {
            rec.instant("tick", &[("i", i.into())]);
        }
        let events = rec.trace_events();
        assert_eq!(events.len(), 3);
        assert_eq!(rec.trace_dropped(), 7);
        assert_eq!(events[0].arg_u64("i"), Some(7));
    }

    #[test]
    fn concurrent_events_carry_distinct_thread_ids() {
        let rec = Recorder::enabled();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let rec = rec.clone();
                thread::spawn(move || {
                    rec.instant("worker_tick", &[]);
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let tids: std::collections::BTreeSet<u64> =
            rec.trace_events().iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4, "each thread must get its own tid");
    }

    #[test]
    fn chrome_trace_json_is_valid_and_carries_spans_events_and_args() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("flow");
            rec.instant(
                "context_switch",
                &[("from", 0usize.into()), ("change_rate", 0.25.into())],
            );
        }
        let doc = serde_json::parse(&rec.chrome_trace_json()).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        assert_eq!(events.len(), 2);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("X"))
            .expect("span event");
        assert_eq!(span.get("name").and_then(|v| v.as_str()), Some("flow"));
        assert!(span.get("dur").is_some());
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("i"))
            .expect("instant event");
        let args = inst.get("args").expect("args object");
        assert_eq!(args.get("from").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(args.get("change_rate").and_then(|v| v.as_f64()), Some(0.25));
    }

    #[test]
    fn chrome_trace_json_escapes_adversarial_names_and_args() {
        // Event names and string args flow from netlist/tenant identifiers
        // the library does not control; quotes, backslashes, and control
        // characters must come out as valid JSON escapes, not raw bytes.
        let rec = Recorder::enabled();
        let hostile = "quote\" slash\\ newline\n tab\t esc\u{1b} null\u{0}";
        rec.instant(hostile, &[("note", TraceValue::Str(hostile.to_string()))]);
        let json = rec.chrome_trace_json();
        // Raw control bytes must never reach the output (pretty-printing
        // itself emits newlines, but never tabs, ESC, or NUL)...
        for raw in ['\t', '\u{1b}', '\u{0}'] {
            assert!(!json.contains(raw), "raw control byte {raw:?} in output");
        }
        // ...because each one was rewritten as a JSON escape sequence.
        for escaped in ["\\\"", "\\\\", "\\n", "\\t", "\\u001b", "\\u0000"] {
            assert!(json.contains(escaped), "missing escape {escaped}");
        }
        let doc = serde_json::parse(&json).expect("escaped output must re-parse");
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let inst = events
            .iter()
            .find(|e| e.get("ph").and_then(|v| v.as_str()) == Some("i"))
            .expect("instant exported");
        // Round-trip fidelity: the hostile bytes survive escape + re-parse.
        assert_eq!(inst.get("name").and_then(|v| v.as_str()), Some(hostile));
        let args = inst.get("args").expect("args object");
        assert_eq!(args.get("note").and_then(|v| v.as_str()), Some(hostile));
    }

    #[test]
    fn report_round_trips_through_json() {
        let rec = Recorder::enabled();
        {
            let _s = rec.span("phase");
            rec.incr("n", 3);
            rec.observe("h", 1.0);
        }
        let report = rec.report("roundtrip");
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
