//! Structured trace events: the event-level companion to the aggregate
//! spans/counters in the crate root.
//!
//! A [`TraceEvent`] is one timestamped occurrence — a begin/end pair
//! bracketing a duration, or an instant — carrying typed key/value
//! arguments ([`TraceValue`]) and the id of the thread that emitted it.
//! Events land in a bounded ring buffer inside the recorder (oldest events
//! are evicted first; the eviction count is reported alongside), so
//! instrumenting a hot loop cannot grow memory without bound.
//!
//! [`ReconfigTelemetry`] condenses the per-context-switch events the
//! simulator emits (bits flipped, measured change rate, pattern-class
//! census, SE decoder cost — the paper's Figs. 3–5 quantities) into a
//! summary suitable for a run report.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A typed trace-event argument value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceValue {
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
}

impl TraceValue {
    /// Unsigned view of the value, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TraceValue::UInt(n) => Some(*n),
            TraceValue::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric view of the value (integers widen losslessly enough here).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TraceValue::Float(x) => Some(*x),
            TraceValue::UInt(n) => Some(*n as f64),
            TraceValue::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            TraceValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The JSON value this argument takes in a Chrome trace `args` object.
    pub(crate) fn to_json(&self) -> serde::Value {
        match self {
            TraceValue::Bool(b) => serde::Value::Bool(*b),
            TraceValue::Int(n) => serde::Value::I64(*n),
            TraceValue::UInt(n) => serde::Value::U64(*n),
            TraceValue::Float(x) => serde::Value::F64(*x),
            TraceValue::Str(s) => serde::Value::Str(s.clone()),
        }
    }
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> TraceValue {
        TraceValue::Bool(v)
    }
}

impl From<i64> for TraceValue {
    fn from(v: i64) -> TraceValue {
        TraceValue::Int(v)
    }
}

impl From<u64> for TraceValue {
    fn from(v: u64) -> TraceValue {
        TraceValue::UInt(v)
    }
}

impl From<u32> for TraceValue {
    fn from(v: u32) -> TraceValue {
        TraceValue::UInt(v as u64)
    }
}

impl From<usize> for TraceValue {
    fn from(v: usize) -> TraceValue {
        TraceValue::UInt(v as u64)
    }
}

impl From<f64> for TraceValue {
    fn from(v: f64) -> TraceValue {
        TraceValue::Float(v)
    }
}

impl From<&str> for TraceValue {
    fn from(v: &str) -> TraceValue {
        TraceValue::Str(v.to_string())
    }
}

impl From<String> for TraceValue {
    fn from(v: String) -> TraceValue {
        TraceValue::Str(v)
    }
}

/// Which kind of occurrence an event marks (Chrome phase `B` / `E` / `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracePhase {
    Begin,
    End,
    Instant,
}

impl TracePhase {
    /// The Chrome trace-event-format phase letter.
    pub fn chrome_ph(&self) -> &'static str {
        match self {
            TracePhase::Begin => "B",
            TracePhase::End => "E",
            TracePhase::Instant => "i",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    pub name: String,
    pub phase: TracePhase,
    /// Microseconds from recorder creation.
    pub ts_us: u64,
    /// Small sequential id of the emitting thread (process-wide).
    pub tid: u64,
    pub args: Vec<(String, TraceValue)>,
    /// Request-scoped correlation id, when the event was emitted through a
    /// [`crate::Recorder::correlated`] handle (see [`crate::correlate`]).
    pub job: Option<u64>,
    /// Tenant label riding with the correlation id.
    pub tenant: Option<String>,
}

impl TraceEvent {
    /// Look up an argument by key.
    pub fn arg(&self, key: &str) -> Option<&TraceValue> {
        self.args.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Unsigned-integer argument, if present and integral.
    pub fn arg_u64(&self, key: &str) -> Option<u64> {
        self.arg(key).and_then(TraceValue::as_u64)
    }

    /// Numeric argument, if present.
    pub fn arg_f64(&self, key: &str) -> Option<f64> {
        self.arg(key).and_then(TraceValue::as_f64)
    }

    /// String argument, if present.
    pub fn arg_str(&self, key: &str) -> Option<&str> {
        self.arg(key).and_then(TraceValue::as_str)
    }
}

/// Bounded event store: oldest events are evicted once `capacity` is
/// reached, counting into `dropped`.
pub(crate) struct TraceRing {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceRing {
    pub(crate) fn new(capacity: usize) -> TraceRing {
        TraceRing {
            events: VecDeque::new(),
            capacity,
            dropped: 0,
        }
    }

    pub(crate) fn push(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    pub(crate) fn snapshot(&self) -> Vec<TraceEvent> {
        self.events.iter().cloned().collect()
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small sequential id of the calling thread, assigned on first use and
/// stable for the thread's lifetime (used for span and event attribution).
pub fn current_thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// One context switch as seen in the event stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchTelemetry {
    pub from_context: usize,
    pub to_context: usize,
    /// Routing-switch configuration bits that differ between the two
    /// contexts' bitstreams.
    pub bits_flipped: u64,
    /// `bits_flipped / n_columns`: the measured inter-context change rate
    /// the paper parameterises at 5%.
    pub change_rate: f64,
}

/// Per-run reconfiguration summary, aggregated from the simulator's
/// `context_switch` trace events.
///
/// The pattern-class census (`n_constant` / `n_single_bit` / `n_general`,
/// paper Figs. 3–5) and total SE decoder cost (Fig. 9) are properties of
/// the compiled device's switch columns; the per-switch list records what
/// each individual context switch actually flipped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReconfigTelemetry {
    /// Context switches observed.
    pub n_switches: usize,
    pub total_bits_flipped: u64,
    pub mean_change_rate: f64,
    pub max_change_rate: f64,
    /// Switch-column census of the device the switches ran on.
    pub n_columns: usize,
    pub n_constant: usize,
    pub n_single_bit: usize,
    pub n_general: usize,
    /// Total SEs across all column decoders.
    pub se_cost_total: u64,
    pub switches: Vec<SwitchTelemetry>,
}

impl ReconfigTelemetry {
    /// Aggregate every `context_switch` instant event in `events`; `None`
    /// when no context switch was traced.
    pub fn from_events(events: &[TraceEvent]) -> Option<ReconfigTelemetry> {
        let mut switches = Vec::new();
        let mut census: Option<(usize, usize, usize, usize, u64)> = None;
        for e in events {
            if e.name != "context_switch" || e.phase != TracePhase::Instant {
                continue;
            }
            switches.push(SwitchTelemetry {
                from_context: e.arg_u64("from")? as usize,
                to_context: e.arg_u64("to")? as usize,
                bits_flipped: e.arg_u64("bits_flipped")?,
                change_rate: e.arg_f64("change_rate")?,
            });
            census = Some((
                e.arg_u64("n_columns")? as usize,
                e.arg_u64("n_constant")? as usize,
                e.arg_u64("n_single_bit")? as usize,
                e.arg_u64("n_general")? as usize,
                e.arg_u64("se_cost_total")?,
            ));
        }
        let (n_columns, n_constant, n_single_bit, n_general, se_cost_total) = census?;
        let n = switches.len();
        let total_bits_flipped = switches.iter().map(|s| s.bits_flipped).sum();
        let mean_change_rate = switches.iter().map(|s| s.change_rate).sum::<f64>() / n as f64;
        let max_change_rate = switches
            .iter()
            .map(|s| s.change_rate)
            .fold(0.0f64, f64::max);
        Some(ReconfigTelemetry {
            n_switches: n,
            total_bits_flipped,
            mean_change_rate,
            max_change_rate,
            n_columns,
            n_constant,
            n_single_bit,
            n_general,
            se_cost_total,
            switches,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch_event(from: usize, to: usize, flipped: u64, rate: f64) -> TraceEvent {
        TraceEvent {
            name: "context_switch".into(),
            phase: TracePhase::Instant,
            ts_us: 0,
            tid: 1,
            args: vec![
                ("from".into(), from.into()),
                ("to".into(), to.into()),
                ("bits_flipped".into(), flipped.into()),
                ("change_rate".into(), rate.into()),
                ("n_columns".into(), 10usize.into()),
                ("n_constant".into(), 6usize.into()),
                ("n_single_bit".into(), 3usize.into()),
                ("n_general".into(), 1usize.into()),
                ("se_cost_total".into(), 13u64.into()),
            ],
            job: None,
            tenant: None,
        }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut ring = TraceRing::new(2);
        for i in 0..5u64 {
            ring.push(TraceEvent {
                name: format!("e{i}"),
                phase: TracePhase::Instant,
                ts_us: i,
                tid: 1,
                args: vec![],
                job: None,
                tenant: None,
            });
        }
        let kept = ring.snapshot();
        assert_eq!(ring.dropped(), 3);
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].name, "e3");
        assert_eq!(kept[1].name, "e4");
    }

    #[test]
    fn zero_capacity_ring_keeps_nothing() {
        let mut ring = TraceRing::new(0);
        ring.push(TraceEvent {
            name: "e".into(),
            phase: TracePhase::Instant,
            ts_us: 0,
            tid: 1,
            args: vec![],
            job: None,
            tenant: None,
        });
        assert!(ring.snapshot().is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn telemetry_aggregates_switch_events() {
        let events = vec![
            switch_event(0, 1, 4, 0.4),
            switch_event(1, 2, 2, 0.2),
            TraceEvent {
                name: "other".into(),
                phase: TracePhase::Instant,
                ts_us: 0,
                tid: 1,
                args: vec![],
                job: None,
                tenant: None,
            },
        ];
        let t = ReconfigTelemetry::from_events(&events).expect("telemetry");
        assert_eq!(t.n_switches, 2);
        assert_eq!(t.total_bits_flipped, 6);
        assert!((t.mean_change_rate - 0.3).abs() < 1e-12);
        assert_eq!(t.max_change_rate, 0.4);
        assert_eq!(
            t.n_constant + t.n_single_bit + t.n_general,
            t.n_columns,
            "class census must cover every column"
        );
        assert_eq!(t.se_cost_total, 13);
    }

    #[test]
    fn telemetry_is_none_without_switch_events() {
        assert!(ReconfigTelemetry::from_events(&[]).is_none());
    }

    #[test]
    fn trace_values_convert_and_read_back() {
        assert_eq!(TraceValue::from(3usize).as_u64(), Some(3));
        assert_eq!(TraceValue::from(-2i64).as_u64(), None);
        assert_eq!(TraceValue::from(-2i64).as_f64(), Some(-2.0));
        assert_eq!(TraceValue::from(0.5).as_f64(), Some(0.5));
        assert_eq!(TraceValue::from("x").as_str(), Some("x"));
        assert_eq!(TraceValue::from(true), TraceValue::Bool(true));
    }
}
