//! Waveform capture export: standard VCD plus a compact JSON form.
//!
//! A [`Waveform`] is an ordered set of named multi-bit signals sampled on a
//! shared clock — what the simulator's probe rings hold after a batched run.
//! [`Waveform::to_vcd`] renders IEEE 1364 Value Change Dump text that any
//! off-the-shelf viewer (GTKWave, Surfer, WaveTrace) opens directly;
//! [`Waveform::to_json`] renders the same data as one compact JSON object
//! for programmatic diffing. Both outputs are fully deterministic — the
//! header carries no timestamp and identifier codes are assigned by signal
//! order — so golden-file tests and CI artifact diffs are stable.

use serde::{Deserialize, Serialize};

/// One named signal: `width` bits per sample, LSB-first in each `u64` word.
///
/// Bit `b` of `samples[t]` is the value of signal bit `b` at cycle `t`; the
/// simulator's probe path stores one stimulus lane per bit, so a 64-wide
/// signal carries all lanes of one probe and a 1-wide signal carries a
/// single extracted lane.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WaveSignal {
    pub name: String,
    /// Bits per sample, `1..=64`.
    pub width: usize,
    pub samples: Vec<u64>,
}

/// An ordered set of sampled signals under one module scope.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Waveform {
    /// VCD `$scope module` name.
    pub module: String,
    /// Nanoseconds per sample tick (`$timescale`).
    pub timescale_ns: u64,
    signals: Vec<WaveSignal>,
}

impl Waveform {
    /// An empty waveform scoped under `module`, at 1 ns per tick.
    pub fn new(module: &str) -> Waveform {
        Waveform {
            module: sanitize_identifier(module),
            timescale_ns: 1,
            signals: Vec::new(),
        }
    }

    /// Append a signal. `width` is clamped to `1..=64`; sample words are
    /// masked to `width` bits on export. Signal order is export order.
    pub fn push_signal(&mut self, name: &str, width: usize, samples: Vec<u64>) {
        self.signals.push(WaveSignal {
            name: sanitize_identifier(name),
            width: width.clamp(1, 64),
            samples,
        });
    }

    pub fn signals(&self) -> &[WaveSignal] {
        &self.signals
    }

    /// Sample count of the longest signal (the dump's final tick).
    pub fn n_samples(&self) -> usize {
        self.signals
            .iter()
            .map(|s| s.samples.len())
            .max()
            .unwrap_or(0)
    }

    /// Render as IEEE 1364 VCD text.
    ///
    /// Deterministic: no date/version stamp, identifier codes assigned by
    /// signal order. Tick 0 dumps every signal inside `$dumpvars`; later
    /// ticks emit only signals whose value changed, and a final bare `#n`
    /// closes the last sample interval.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$comment mcfpga fabric probe export $end\n");
        out.push_str(&format!("$timescale {}ns $end\n", self.timescale_ns));
        out.push_str(&format!("$scope module {} $end\n", self.module));
        for (i, sig) in self.signals.iter().enumerate() {
            if sig.width == 1 {
                out.push_str(&format!("$var wire 1 {} {} $end\n", id_code(i), sig.name));
            } else {
                out.push_str(&format!(
                    "$var wire {} {} {} [{}:0] $end\n",
                    sig.width,
                    id_code(i),
                    sig.name,
                    sig.width - 1
                ));
            }
        }
        out.push_str("$upscope $end\n");
        out.push_str("$enddefinitions $end\n");
        let n = self.n_samples();
        let mut prev: Vec<Option<u64>> = vec![None; self.signals.len()];
        for t in 0..n {
            let mut changes = String::new();
            for (i, sig) in self.signals.iter().enumerate() {
                let Some(&word) = sig.samples.get(t) else {
                    continue;
                };
                let value = word & mask(sig.width);
                if prev[i] == Some(value) {
                    continue;
                }
                prev[i] = Some(value);
                changes.push_str(&format_value(value, sig.width, &id_code(i)));
            }
            if t == 0 {
                out.push_str("#0\n$dumpvars\n");
                out.push_str(&changes);
                out.push_str("$end\n");
            } else if !changes.is_empty() {
                out.push_str(&format!("#{t}\n"));
                out.push_str(&changes);
            }
        }
        if n > 0 {
            out.push_str(&format!("#{n}\n"));
        }
        out
    }

    /// Render as one compact JSON object (`module`, `timescale_ns`,
    /// `signals[{name,width,samples}]`).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("waveform serialization is infallible")
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// One value-change line: scalar form (`1!`) for 1-bit signals, binary
/// vector form (`b101 !`) otherwise, MSB first.
fn format_value(value: u64, width: usize, id: &str) -> String {
    if width == 1 {
        format!("{}{}\n", value & 1, id)
    } else {
        let mut bits = String::with_capacity(width);
        for b in (0..width).rev() {
            bits.push(if (value >> b) & 1 == 1 { '1' } else { '0' });
        }
        format!("b{bits} {id}\n")
    }
}

/// VCD identifier code for signal `i`: base-94 over the printable ASCII
/// range `!`..=`~`, shortest code first (`!`, `"`, … then two-char codes).
fn id_code(mut i: usize) -> String {
    const BASE: usize = 94;
    let mut code = Vec::new();
    loop {
        code.push((b'!' + (i % BASE) as u8) as char);
        i /= BASE;
        if i == 0 {
            break;
        }
        i -= 1; // bijective numeration: "!!" follows "~", not "!"
    }
    code.into_iter().rev().collect()
}

/// VCD identifiers cannot contain whitespace; map offending characters
/// (and non-printables) to `_` so arbitrary netlist names stay loadable.
fn sanitize_identifier(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| if c.is_ascii_graphic() { c } else { '_' })
        .collect();
    if cleaned.is_empty() {
        "_".to_string()
    } else {
        cleaned
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)), "{code:?}");
            assert!(seen.insert(code.clone()), "duplicate id {code:?} at {i}");
        }
        assert_eq!(id_code(0), "!");
        assert_eq!(id_code(93), "~");
        assert_eq!(id_code(94), "!!");
    }

    #[test]
    fn change_only_emission_after_tick_zero() {
        let mut w = Waveform::new("dut");
        w.push_signal("a", 1, vec![1, 1, 0, 0, 1]);
        let vcd = w.to_vcd();
        // a is dumped at #0, changes at #2 and #4 only; #1/#3 are elided.
        assert!(vcd.contains("#0\n$dumpvars\n1!\n$end\n"), "{vcd}");
        assert!(vcd.contains("#2\n0!\n"), "{vcd}");
        assert!(vcd.contains("#4\n1!\n"), "{vcd}");
        assert!(!vcd.contains("#1\n"), "{vcd}");
        assert!(!vcd.contains("#3\n"), "{vcd}");
        assert!(vcd.ends_with("#5\n"), "{vcd}");
    }

    #[test]
    fn vector_signals_use_binary_form_msb_first() {
        let mut w = Waveform::new("dut");
        w.push_signal("bus", 4, vec![0b1010]);
        let vcd = w.to_vcd();
        assert!(vcd.contains("$var wire 4 ! bus [3:0] $end"), "{vcd}");
        assert!(vcd.contains("b1010 !"), "{vcd}");
    }

    #[test]
    fn samples_are_masked_to_width() {
        let mut w = Waveform::new("dut");
        w.push_signal("narrow", 2, vec![0xFF]);
        assert!(w.to_vcd().contains("b11 !"), "{}", w.to_vcd());
    }

    #[test]
    fn names_with_whitespace_are_sanitized() {
        let mut w = Waveform::new("top level");
        w.push_signal("a b\tc", 1, vec![0]);
        let vcd = w.to_vcd();
        assert!(vcd.contains("$scope module top_level $end"), "{vcd}");
        assert!(vcd.contains("$var wire 1 ! a_b_c $end"), "{vcd}");
    }

    #[test]
    fn json_round_trips() {
        let mut w = Waveform::new("dut");
        w.push_signal("x", 64, vec![u64::MAX, 0, 7]);
        let json = w.to_json();
        let v = serde_json::parse(&json).expect("valid json");
        assert_eq!(v.get("module").and_then(|m| m.as_str()), Some("dut"));
        let sig = v
            .get("signals")
            .and_then(|s| s.as_array())
            .and_then(|a| a.first())
            .expect("one signal");
        assert_eq!(sig.get("width").and_then(|x| x.as_u64()), Some(64));
    }

    #[test]
    fn empty_waveform_still_renders_a_valid_header() {
        let vcd = Waveform::new("empty").to_vcd();
        assert!(vcd.contains("$enddefinitions $end"), "{vcd}");
        assert!(!vcd.contains("#0"), "{vcd}");
    }
}
