//! Golden-file lock on the VCD export: header layout, declaration order,
//! identifier assignment, `$dumpvars` at tick 0, change-only emission after,
//! and the closing bare timestamp. Any byte-level drift in `to_vcd` is an
//! interface change for downstream viewers and must show up here.

use mcfpga_obs::Waveform;

const GOLDEN: &str = include_str!("golden_waveform.vcd");

fn golden_waveform() -> Waveform {
    let mut w = Waveform::new("probe");
    w.push_signal("clk_q", 1, vec![0, 1, 0, 1]);
    w.push_signal("bus", 4, vec![0b0011, 0b0011, 0b1010, 0b1111]);
    w
}

#[test]
fn vcd_export_matches_golden_file() {
    assert_eq!(golden_waveform().to_vcd(), GOLDEN);
}

#[test]
fn golden_header_precedes_definitions_in_declaration_order() {
    let vcd = golden_waveform().to_vcd();
    let pos = |needle: &str| {
        vcd.find(needle)
            .unwrap_or_else(|| panic!("missing {needle:?}"))
    };
    let order = [
        "$comment",
        "$timescale 1ns $end",
        "$scope module probe $end",
        "$var wire 1 ! clk_q $end",
        "$var wire 4 \" bus [3:0] $end",
        "$upscope $end",
        "$enddefinitions $end",
        "#0",
        "$dumpvars",
    ];
    for pair in order.windows(2) {
        assert!(
            pos(pair[0]) < pos(pair[1]),
            "{:?} must precede {:?}",
            pair[0],
            pair[1]
        );
    }
}
