//! The simulated-annealing engine (VPR-style adaptive schedule).

use mcfpga_arch::Coord;
use mcfpga_obs::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::problem::{BlockKind, PlacementProblem};

/// Annealer knobs.
#[derive(Debug, Clone, Copy)]
pub struct AnnealOptions {
    pub seed: u64,
    /// Moves per temperature step, per block.
    pub moves_per_block: usize,
    /// Stop when temperature falls below `t_min * cost/nets`.
    pub t_min_factor: f64,
}

impl Default for AnnealOptions {
    fn default() -> Self {
        AnnealOptions {
            seed: 0xF1A9,
            moves_per_block: 12,
            t_min_factor: 0.005,
        }
    }
}

/// A finished placement.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    /// Full-grid coordinate of every block.
    pub position: Vec<Coord>,
    /// Final HPWL cost.
    pub cost: u64,
}

impl Placement {
    /// Verify legality against a problem: logic on logic sites, I/O on ring
    /// sites, no two blocks sharing a site.
    pub fn validate(&self, problem: &PlacementProblem) -> Result<(), String> {
        if self.position.len() != problem.n_blocks() {
            return Err("position count mismatch".into());
        }
        let mut used = std::collections::HashSet::new();
        for (b, &pos) in self.position.iter().enumerate() {
            match problem.kinds[b] {
                BlockKind::Logic if !problem.grid.is_logic(pos) => {
                    return Err(format!("logic block {b} on non-logic site {pos}"));
                }
                BlockKind::Io if !problem.grid.is_io(pos) => {
                    return Err(format!("I/O block {b} off the ring at {pos}"));
                }
                _ => {}
            }
            if !used.insert(pos) {
                return Err(format!("two blocks share site {pos}"));
            }
        }
        Ok(())
    }
}

fn net_hpwl(net: &[usize], position: &[Coord]) -> u64 {
    // An empty net has no bounding box; without this guard the fold below
    // would leave min = u16::MAX, max = 0 and underflow in debug builds.
    if net.is_empty() {
        return 0;
    }
    let mut min_x = u16::MAX;
    let mut max_x = 0u16;
    let mut min_y = u16::MAX;
    let mut max_y = 0u16;
    for &b in net {
        let p = position[b];
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    (max_x - min_x) as u64 + (max_y - min_y) as u64
}

fn total_cost(problem: &PlacementProblem, position: &[Coord]) -> u64 {
    problem.nets.iter().map(|n| net_hpwl(n, position)).sum()
}

/// Place a problem with simulated annealing. Deterministic in the seed.
pub fn place(problem: &PlacementProblem, opts: &AnnealOptions) -> Placement {
    place_with(problem, opts, &Recorder::disabled())
}

/// Delta entry point: place `problem`, reusing a stale placement when it is
/// provably still the answer.
///
/// Annealing is a deterministic pure function of `(problem, opts)` — the RNG
/// is seeded from `opts.seed` and every move decision follows from it — so
/// when the problem is identical to the one `stale_placement` was produced
/// from (with the same options, which the caller guarantees; compile
/// pipelines derive the seed from the context index, stable across
/// recompiles of the same slot), the stale placement *is* the cold result.
/// An incremental anneal seeded from the stale positions would converge to a
/// different (if equally good) placement and break downstream bit-identity,
/// which is why this is an equality-gated memo and not a warm restart.
///
/// Returns the placement plus whether the stale result was reused.
pub fn place_delta(
    problem: &PlacementProblem,
    opts: &AnnealOptions,
    stale_problem: &PlacementProblem,
    stale_placement: &Placement,
    rec: &Recorder,
) -> (Placement, bool) {
    if problem == stale_problem {
        rec.incr("place.delta_reused", 1);
        return (stale_placement.clone(), true);
    }
    (place_with(problem, opts, rec), false)
}

/// As [`place`], recording the annealing schedule into `rec`: a `place` span,
/// per-temperature-step acceptance statistics, and move counters. The result
/// is identical to [`place`] for the same problem and options.
pub fn place_with(problem: &PlacementProblem, opts: &AnnealOptions, rec: &Recorder) -> Placement {
    let _span = rec.span("place");
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let logic_sites = problem.grid.logic_sites();
    let io_sites = problem.grid.io_sites();

    // Initial placement: blocks in site order.
    let mut position: Vec<Coord> = Vec::with_capacity(problem.n_blocks());
    let mut logic_cursor = 0usize;
    let mut io_cursor = 0usize;
    for kind in &problem.kinds {
        match kind {
            BlockKind::Logic => {
                position.push(logic_sites[logic_cursor]);
                logic_cursor += 1;
            }
            BlockKind::Io => {
                position.push(io_sites[io_cursor]);
                io_cursor += 1;
            }
        }
    }

    // Per-site occupancy for swap moves.
    use std::collections::HashMap;
    let mut occupant: HashMap<Coord, usize> =
        position.iter().enumerate().map(|(b, &p)| (p, b)).collect();

    // Nets touching each block, for incremental cost.
    let mut nets_of: Vec<Vec<usize>> = vec![Vec::new(); problem.n_blocks()];
    for (ni, net) in problem.nets.iter().enumerate() {
        for &b in net {
            nets_of[b].push(ni);
        }
    }

    let mut cost = total_cost(problem, &position);
    if problem.nets.is_empty() || problem.n_blocks() < 2 {
        return Placement { position, cost };
    }

    // Scratch for the move loop: the affected-net set is rebuilt every move,
    // so deduplicate with a generation stamp per net instead of allocating,
    // sorting and deduping a fresh Vec each time. Summation order over the
    // set does not matter, so dropping the sort leaves results identical.
    let mut affected: Vec<usize> = Vec::with_capacity(16);
    let mut net_stamp: Vec<u64> = vec![0; problem.nets.len()];
    let mut move_stamp: u64 = 0;

    // Initial temperature: spread of random-move deltas.
    let mut t = (cost as f64 / problem.nets.len() as f64).max(1.0) * 2.0;
    let t_min = opts.t_min_factor;
    let moves_per_t = opts.moves_per_block * problem.n_blocks();

    while t > t_min {
        let mut accepted = 0usize;
        for _ in 0..moves_per_t {
            // Pick a block and a target site of the same kind.
            let b = rng.gen_range(0..problem.n_blocks());
            let target = match problem.kinds[b] {
                BlockKind::Logic => logic_sites[rng.gen_range(0..logic_sites.len())],
                BlockKind::Io => io_sites[rng.gen_range(0..io_sites.len())],
            };
            if target == position[b] {
                continue;
            }
            let other = occupant.get(&target).copied();
            // Cost of affected nets before the move.
            move_stamp += 1;
            affected.clear();
            for &n in &nets_of[b] {
                if net_stamp[n] != move_stamp {
                    net_stamp[n] = move_stamp;
                    affected.push(n);
                }
            }
            if let Some(o) = other {
                for &n in &nets_of[o] {
                    if net_stamp[n] != move_stamp {
                        net_stamp[n] = move_stamp;
                        affected.push(n);
                    }
                }
            }
            let before: u64 = affected
                .iter()
                .map(|&n| net_hpwl(&problem.nets[n], &position))
                .sum();
            // Apply.
            let old = position[b];
            position[b] = target;
            if let Some(o) = other {
                position[o] = old;
            }
            let after: u64 = affected
                .iter()
                .map(|&n| net_hpwl(&problem.nets[n], &position))
                .sum();
            let delta = after as i64 - before as i64;
            let accept = delta <= 0 || rng.gen_bool((-(delta as f64) / t).exp().min(1.0));
            if accept {
                occupant.remove(&old);
                if let Some(o) = other {
                    occupant.insert(old, o);
                }
                occupant.insert(target, b);
                cost = (cost as i64 + delta) as u64;
                accepted += 1;
            } else {
                // Revert.
                position[b] = old;
                if let Some(o) = other {
                    position[o] = target;
                }
            }
        }
        // Adaptive cooling: cool faster when the acceptance rate strays from
        // the productive band (VPR's rule of thumb).
        let rate = accepted as f64 / moves_per_t as f64;
        rec.incr("anneal.temperature_steps", 1);
        rec.incr("place.moves_accepted", accepted as u64);
        rec.incr("place.moves_attempted", moves_per_t as u64);
        rec.observe("place.acceptance_rate", rate);
        rec.set_gauge("anneal.temperature", t);
        rec.instant(
            "anneal_step",
            &[
                ("temperature", t.into()),
                ("acceptance_rate", rate.into()),
                ("moves_accepted", (accepted as u64).into()),
                ("cost", cost.into()),
            ],
        );
        let alpha = if rate > 0.96 {
            0.5
        } else if rate > 0.8 {
            0.9
        } else if rate > 0.15 {
            0.95
        } else {
            0.8
        };
        t *= alpha;
    }
    debug_assert_eq!(cost, total_cost(problem, &position));
    Placement { position, cost }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::PlacementProblem;
    use mcfpga_arch::ArchSpec;
    use mcfpga_map::map_netlist;
    use mcfpga_netlist::library;

    fn placed(circuit: mcfpga_netlist::Netlist, seed: u64) -> (PlacementProblem, Placement) {
        let arch = ArchSpec::paper_default();
        let mapped = map_netlist(&circuit, 6).unwrap();
        let problem = PlacementProblem::from_mapped(&mapped, &arch).unwrap();
        let placement = place(
            &problem,
            &AnnealOptions {
                seed,
                ..Default::default()
            },
        );
        (problem, placement)
    }

    #[test]
    fn placements_are_legal() {
        for circuit in [library::adder(4), library::alu(4), library::multiplier(3)] {
            let (problem, placement) = placed(circuit, 1);
            placement.validate(&problem).unwrap();
        }
    }

    #[test]
    fn annealing_beats_the_initial_placement() {
        let arch = ArchSpec::paper_default();
        let mapped = map_netlist(&library::multiplier(3), 6).unwrap();
        let problem = PlacementProblem::from_mapped(&mapped, &arch).unwrap();
        // Initial cost: blocks in site order.
        let sites = problem.grid.logic_sites();
        let ios = problem.grid.io_sites();
        let mut pos = Vec::new();
        let (mut lc, mut ic) = (0, 0);
        for k in &problem.kinds {
            match k {
                crate::problem::BlockKind::Logic => {
                    pos.push(sites[lc]);
                    lc += 1;
                }
                crate::problem::BlockKind::Io => {
                    pos.push(ios[ic]);
                    ic += 1;
                }
            }
        }
        let initial = super::total_cost(&problem, &pos);
        let placement = place(&problem, &AnnealOptions::default());
        assert!(
            placement.cost <= initial,
            "annealed {} vs initial {initial}",
            placement.cost
        );
    }

    #[test]
    fn empty_net_costs_zero_instead_of_underflowing() {
        // Regression: an empty net used to leave min = u16::MAX, max = 0 and
        // panic on `max - min` in debug builds.
        let positions = vec![Coord::new(3, 4), Coord::new(1, 2)];
        assert_eq!(super::net_hpwl(&[], &positions), 0);
        assert_eq!(super::net_hpwl(&[0], &positions), 0);
        assert_eq!(super::net_hpwl(&[0, 1], &positions), 4);
    }

    #[test]
    fn placement_is_deterministic_in_seed() {
        let (_, a) = placed(library::alu(4), 7);
        let (_, b) = placed(library::alu(4), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn reported_cost_matches_recomputation() {
        let (problem, placement) = placed(library::adder(6), 3);
        assert_eq!(
            placement.cost,
            super::total_cost(&problem, &placement.position)
        );
    }

    #[test]
    fn trivial_problem_places() {
        let arch = ArchSpec::paper_default();
        let mapped = map_netlist(&library::parity(4), 6).unwrap();
        let problem = PlacementProblem::from_mapped(&mapped, &arch).unwrap();
        let placement = place(&problem, &AnnealOptions::default());
        placement.validate(&problem).unwrap();
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::problem::PlacementProblem;
    use mcfpga_arch::ArchSpec;
    use mcfpga_map::map_netlist;
    use mcfpga_netlist::{random_netlist, RandomNetlistParams};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        /// Every random circuit places legally at every seed, and the
        /// reported cost matches recomputation.
        #[test]
        fn random_placements_are_legal(seed in 0u64..1000, anneal_seed in 0u64..1000) {
            let arch = ArchSpec::paper_default();
            let params = RandomNetlistParams {
                n_inputs: 6,
                n_gates: 50,
                n_outputs: 6,
                dff_fraction: 0.1,
            };
            let netlist = random_netlist(params, seed);
            let mapped = map_netlist(&netlist, 6).unwrap();
            let problem = PlacementProblem::from_mapped(&mapped, &arch).unwrap();
            let placement = place(
                &problem,
                &AnnealOptions {
                    seed: anneal_seed,
                    moves_per_block: 4, // keep the property run fast
                    ..Default::default()
                },
            );
            placement.validate(&problem).unwrap();
            prop_assert_eq!(placement.cost, super::total_cost(&problem, &placement.position));
        }
    }
}
