//! Simulated-annealing placement for the MC-FPGA.
//!
//! The fabric is modelled as the logic-block grid of Fig. 1 surrounded by a
//! ring of I/O sites: a `W x H` architecture becomes a `(W+2) x (H+2)`
//! placement grid whose interior cells are logic-block sites and whose ring
//! cells hold primary inputs/outputs. Placement minimises total net
//! half-perimeter wirelength (HPWL) with the classic VPR-style adaptive
//! annealing schedule.
//!
//! Placement is per-fabric, not per-context: a multi-context workload shares
//! one placement (the whole point of an MC-FPGA is that contexts share the
//! physical array), so the placement problem aggregates the nets of every
//! context.

pub mod anneal;
pub mod problem;

pub use anneal::{place, place_delta, place_with, AnnealOptions, Placement};
pub use problem::{lb_of_lut, PlaceError, PlacementGrid, PlacementProblem};
