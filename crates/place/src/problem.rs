//! Placement problem construction from mapped netlists.

use mcfpga_arch::{ArchSpec, Coord, GridDim};
use mcfpga_map::{MappedNetlist, MappedSource};
use serde::{Deserialize, Serialize};

/// The placement grid: architecture grid plus an I/O ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementGrid {
    /// Full grid including the ring; logic sites are `1..=W`, `1..=H`.
    pub full: GridDim,
}

impl PlacementGrid {
    pub fn of(arch: &ArchSpec) -> Self {
        PlacementGrid {
            full: GridDim::new(arch.grid.width + 2, arch.grid.height + 2),
        }
    }

    /// Whether a full-grid coordinate is a logic-block site.
    pub fn is_logic(&self, c: Coord) -> bool {
        c.x >= 1 && c.y >= 1 && c.x < self.full.width - 1 && c.y < self.full.height - 1
    }

    /// Whether a full-grid coordinate is an I/O ring site (excludes the
    /// four corners, which have no adjacent channel).
    pub fn is_io(&self, c: Coord) -> bool {
        if self.is_logic(c) || !self.full.contains(c) {
            return false;
        }
        let corner =
            (c.x == 0 || c.x == self.full.width - 1) && (c.y == 0 || c.y == self.full.height - 1);
        !corner
    }

    /// All logic sites.
    pub fn logic_sites(&self) -> Vec<Coord> {
        self.full.coords().filter(|&c| self.is_logic(c)).collect()
    }

    /// All I/O sites, in a deterministic clockwise-ish order.
    pub fn io_sites(&self) -> Vec<Coord> {
        self.full.coords().filter(|&c| self.is_io(c)).collect()
    }
}

/// A block to place: a logic block (movable) or an I/O (fixed by
/// construction to a ring site, but still swappable along the ring).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BlockKind {
    Logic,
    Io,
}

/// Placement problem: blocks and the nets connecting them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementProblem {
    pub grid: PlacementGrid,
    pub kinds: Vec<BlockKind>,
    /// Nets as block-id lists (source first). Single-block nets are dropped.
    pub nets: Vec<Vec<usize>>,
    /// Number of logic blocks (ids `0..n_logic`); I/O ids follow.
    pub n_logic: usize,
}

/// Errors constructing a placement problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlaceError {
    /// More logic blocks than sites.
    TooManyBlocks { blocks: usize, sites: usize },
    /// More I/Os than ring sites.
    TooManyIos { ios: usize, sites: usize },
}

impl std::fmt::Display for PlaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlaceError::TooManyBlocks { blocks, sites } => {
                write!(f, "{blocks} logic blocks exceed {sites} sites")
            }
            PlaceError::TooManyIos { ios, sites } => {
                write!(f, "{ios} I/Os exceed {sites} ring sites")
            }
        }
    }
}

impl std::error::Error for PlaceError {}

/// Which logic block hosts LUT position `i`: consecutive positions pack into
/// the same block, `outputs` per block.
pub fn lb_of_lut(lut_index: usize, outputs_per_lb: usize) -> usize {
    lut_index / outputs_per_lb
}

impl PlacementProblem {
    /// Build the problem for a mapped netlist on an architecture. LUT
    /// positions pack `arch.lut.outputs` per logic block; every primary
    /// input and output becomes an I/O block; registers live in the logic
    /// block of their driving LUT.
    pub fn from_mapped(mapped: &MappedNetlist, arch: &ArchSpec) -> Result<Self, PlaceError> {
        let grid = PlacementGrid::of(arch);
        let outs = arch.lut.outputs;
        let n_logic = mapped.luts.len().div_ceil(outs).max(1);
        let logic_sites = grid.logic_sites().len();
        if n_logic > logic_sites {
            return Err(PlaceError::TooManyBlocks {
                blocks: n_logic,
                sites: logic_sites,
            });
        }
        let n_io = mapped.n_inputs + mapped.outputs.len();
        let io_sites = grid.io_sites().len();
        if n_io > io_sites {
            return Err(PlaceError::TooManyIos {
                ios: n_io,
                sites: io_sites,
            });
        }

        // Block ids: logic 0..n_logic, then input I/Os, then output I/Os.
        let input_io = |i: usize| n_logic + i;
        let output_io = |o: usize| n_logic + mapped.n_inputs + o;

        // A register's value appears at the block of the LUT feeding it (the
        // FF sits in that block); registers fed by inputs/constants act as
        // the input itself.
        let source_block = |src: &MappedSource| -> Option<usize> {
            match src {
                MappedSource::Input(i) => Some(input_io(*i)),
                MappedSource::Lut(l) => Some(lb_of_lut(*l, outs)),
                MappedSource::Register(r) => match &mapped.dffs[*r].d {
                    MappedSource::Lut(l) => Some(lb_of_lut(*l, outs)),
                    MappedSource::Input(i) => Some(input_io(*i)),
                    MappedSource::Register(_) | MappedSource::Const(_) => None,
                },
                MappedSource::Const(_) => None,
            }
        };

        // Nets: one per driving block, gathering all sink blocks.
        use std::collections::{BTreeMap, BTreeSet};
        let mut nets_by_source: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
        for (i, lut) in mapped.luts.iter().enumerate() {
            let sink = lb_of_lut(i, outs);
            for inp in &lut.inputs {
                if let Some(src) = source_block(inp) {
                    if src != sink {
                        nets_by_source.entry(src).or_default().insert(sink);
                    }
                }
            }
        }
        for (o, (_, src)) in mapped.outputs.iter().enumerate() {
            if let Some(s) = source_block(src) {
                nets_by_source.entry(s).or_default().insert(output_io(o));
            }
        }
        let nets: Vec<Vec<usize>> = nets_by_source
            .into_iter()
            .map(|(src, sinks)| {
                let mut v = vec![src];
                v.extend(sinks);
                v
            })
            .filter(|n| n.len() > 1)
            .collect();

        let mut kinds = vec![BlockKind::Logic; n_logic];
        kinds.extend(vec![BlockKind::Io; n_io]);
        Ok(PlacementProblem {
            grid,
            kinds,
            nets,
            n_logic,
        })
    }

    pub fn n_blocks(&self) -> usize {
        self.kinds.len()
    }

    pub fn n_ios(&self) -> usize {
        self.kinds.len() - self.n_logic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_map::map_netlist;
    use mcfpga_netlist::library;

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn grid_partitions_into_logic_and_io() {
        let grid = PlacementGrid::of(&arch());
        assert_eq!(grid.full.width, 10);
        let logic = grid.logic_sites();
        let io = grid.io_sites();
        assert_eq!(logic.len(), 64);
        assert_eq!(io.len(), 4 * 8, "ring minus corners");
        for c in &logic {
            assert!(!grid.is_io(*c));
        }
        for c in &io {
            assert!(!grid.is_logic(*c));
        }
        // Corners belong to neither.
        assert!(!grid.is_logic(Coord::new(0, 0)));
        assert!(!grid.is_io(Coord::new(0, 0)));
    }

    #[test]
    fn problem_from_adder() {
        let mapped = map_netlist(&library::adder(4), 6).unwrap();
        let p = PlacementProblem::from_mapped(&mapped, &arch()).unwrap();
        assert!(p.n_logic >= mapped.luts.len() / 2);
        assert_eq!(p.n_ios(), 9 + 5); // 2x4+cin inputs, 4+cout outputs
        assert!(!p.nets.is_empty());
        // Every net references valid blocks.
        for net in &p.nets {
            assert!(net.len() >= 2);
            for &b in net {
                assert!(b < p.n_blocks());
            }
        }
    }

    #[test]
    fn sequential_circuits_place_registers_with_their_luts() {
        let mapped = map_netlist(&library::counter(4), 4).unwrap();
        let p = PlacementProblem::from_mapped(&mapped, &arch()).unwrap();
        // One input (en) + 4 outputs.
        assert_eq!(p.n_ios(), 5);
    }

    #[test]
    fn oversize_designs_are_rejected() {
        let tiny = arch().with_grid(1, 1);
        let mapped = map_netlist(&library::multiplier(3), 4).unwrap();
        let err = PlacementProblem::from_mapped(&mapped, &tiny).unwrap_err();
        assert!(matches!(err, PlaceError::TooManyBlocks { .. }));
    }

    #[test]
    fn lut_packing_is_consecutive() {
        assert_eq!(lb_of_lut(0, 2), 0);
        assert_eq!(lb_of_lut(1, 2), 0);
        assert_eq!(lb_of_lut(2, 2), 1);
        assert_eq!(lb_of_lut(5, 2), 2);
    }
}
