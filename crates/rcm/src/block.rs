//! The RCM block (Fig. 7): a bounded pool of switch elements, programmable
//! cross-point switches and input controllers attached to one cell.
//!
//! A block is asked to realise a set of configuration columns — the
//! decoders for every routing switch of its switch block plus any local
//! size-controller bits of the adjacent logic block. Allocation synthesises
//! each column (sharing identical columns, the Table 1 `G2 = G4`
//! redundancy) and accounts SEs, pass stages and inverters against the
//! block's capacity.

use mcfpga_arch::ContextId;
use mcfpga_config::ConfigColumn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

use crate::decoder::{synthesize, DecoderProgram};

/// Capacity of one RCM block, in fine-grained resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RcmBlock {
    /// Switch-element grid rows x cols (Fig. 7(a)).
    pub rows: usize,
    pub cols: usize,
}

impl RcmBlock {
    pub fn new(rows: usize, cols: usize) -> Self {
        RcmBlock { rows, cols }
    }

    /// Total switch elements available.
    pub fn capacity(&self) -> usize {
        self.rows * self.cols
    }

    /// Synthesise decoders for a set of columns against this block's
    /// capacity. Identical columns share one decoder (the inter-switch
    /// redundancy of Table 1): the shared decoder's output fans out over the
    /// block's tracks.
    pub fn allocate(
        &self,
        columns: &[ConfigColumn],
        ctx: ContextId,
    ) -> Result<RcmProgram, RcmCapacityError> {
        let mut unique: HashMap<u32, usize> = HashMap::new();
        let mut decoders: Vec<DecoderProgram> = Vec::new();
        let mut assignment = Vec::with_capacity(columns.len());
        for col in columns {
            let slot = *unique.entry(col.mask()).or_insert_with(|| {
                decoders.push(synthesize(*col, ctx));
                decoders.len() - 1
            });
            assignment.push(slot);
        }
        let se_used: usize = decoders.iter().map(|d| d.netlist.n_ses()).sum();
        if se_used > self.capacity() {
            return Err(RcmCapacityError {
                requested: se_used,
                capacity: self.capacity(),
            });
        }
        Ok(RcmProgram {
            decoders,
            assignment,
            ctx,
        })
    }

    /// The smallest square block that fits `columns` (used to size the
    /// fabric in the area model).
    pub fn fitting(columns: &[ConfigColumn], ctx: ContextId) -> RcmBlock {
        let mut side = 1usize;
        loop {
            let block = RcmBlock::new(side, side);
            if block.allocate(columns, ctx).is_ok() {
                return block;
            }
            side += 1;
        }
    }
}

/// Allocation failed: the column set needs more SEs than the block has.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RcmCapacityError {
    pub requested: usize,
    pub capacity: usize,
}

impl std::fmt::Display for RcmCapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "RCM block capacity exceeded: need {} SEs, have {}",
            self.requested, self.capacity
        )
    }
}

impl std::error::Error for RcmCapacityError {}

/// A programmed RCM block: one decoder per *distinct* column, plus the
/// mapping from requested column index to decoder slot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RcmProgram {
    pub decoders: Vec<DecoderProgram>,
    /// `assignment[i]` = decoder slot realising requested column `i`.
    pub assignment: Vec<usize>,
    ctx: ContextId,
}

impl RcmProgram {
    /// Generated configuration bit for requested column `i` in `context`.
    pub fn config_bit(&self, i: usize, context: usize) -> bool {
        self.decoders[self.assignment[i]].eval(self.ctx, context)
    }

    /// Total switch elements consumed.
    pub fn n_ses(&self) -> usize {
        self.decoders.iter().map(|d| d.netlist.n_ses()).sum()
    }

    /// Total inverting input controllers consumed.
    pub fn n_inverters(&self) -> usize {
        self.decoders.iter().map(|d| d.netlist.n_inverters()).sum()
    }

    /// Total pass stages (programmable-switch usage).
    pub fn n_pass_stages(&self) -> usize {
        self.decoders
            .iter()
            .map(|d| d.netlist.n_pass_stages())
            .sum()
    }

    /// Decoders actually synthesised (after sharing).
    pub fn n_unique_decoders(&self) -> usize {
        self.decoders.len()
    }

    /// Worst mux-tree depth across decoders (context-switch decode latency).
    pub fn max_depth(&self) -> usize {
        self.decoders
            .iter()
            .map(|d| d.tree.depth())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    #[test]
    fn allocation_shares_identical_columns() {
        // Table 1: G2 and G4 are identical -> one decoder serves both.
        let ctx = ctx4();
        let cols = vec![
            ConfigColumn::id_bit(ctx, 0, true), // G2
            ConfigColumn::constant(false, 4),   // G3
            ConfigColumn::id_bit(ctx, 0, true), // G4 = G2
            ConfigColumn::constant(true, 4),    // G9
        ];
        let block = RcmBlock::new(4, 4);
        let prog = block.allocate(&cols, ctx).unwrap();
        assert_eq!(prog.n_unique_decoders(), 3);
        assert_eq!(prog.assignment[0], prog.assignment[2]);
        assert_eq!(prog.n_ses(), 3, "three 1-SE decoders");
        // Generated bits match the requested columns.
        for (i, col) in cols.iter().enumerate() {
            for c in 0..4 {
                assert_eq!(prog.config_bit(i, c), col.value_in(c), "col {i} ctx {c}");
            }
        }
    }

    #[test]
    fn capacity_is_enforced() {
        let ctx = ctx4();
        // 5 distinct general patterns at 4 SEs each = 20 SEs > 4x4 block.
        let cols: Vec<ConfigColumn> = [0b1000u32, 0b0100, 0b0010, 0b1110, 0b1011]
            .iter()
            .map(|&m| ConfigColumn::from_mask(m, 4))
            .collect();
        let block = RcmBlock::new(4, 4);
        let err = block.allocate(&cols, ctx).unwrap_err();
        assert_eq!(err.requested, 20);
        assert_eq!(err.capacity, 16);
        assert!(err.to_string().contains("capacity exceeded"));
    }

    #[test]
    fn fitting_block_is_minimal() {
        let ctx = ctx4();
        let cols: Vec<ConfigColumn> = (0..6)
            .map(|i| ConfigColumn::constant(i % 2 == 0, 4))
            .collect();
        // Two unique constants -> 2 SEs -> a 2x2 block suffices but 1x1
        // does not.
        let block = RcmBlock::fitting(&cols, ctx);
        assert_eq!((block.rows, block.cols), (2, 2));
    }

    #[test]
    fn empty_allocation_is_free() {
        let ctx = ctx4();
        let block = RcmBlock::new(1, 1);
        let prog = block.allocate(&[], ctx).unwrap();
        assert_eq!(prog.n_ses(), 0);
        assert_eq!(prog.max_depth(), 0);
    }

    #[test]
    fn program_accounts_inverters_and_stages() {
        let ctx = ctx4();
        let cols = vec![
            ConfigColumn::id_bit(ctx, 1, true), // 1 SE + 1 inverter
            ConfigColumn::from_mask(0b1000, 4), // 4 SEs, 2 pass stages
        ];
        let prog = RcmBlock::new(8, 8).allocate(&cols, ctx).unwrap();
        assert_eq!(prog.n_ses(), 5);
        assert!(
            prog.n_inverters() >= 2,
            "!S1 leaf plus the mux's !S1 control"
        );
        assert_eq!(prog.n_pass_stages(), 2);
        assert_eq!(prog.max_depth(), 1);
    }
}
