#![allow(clippy::needless_range_loop)]
//! Reconfigurable decoder synthesis: configuration column -> SE netlist.
//!
//! Given the cross-context column a configuration bit must realise, the
//! synthesiser picks the cheapest SE structure:
//!
//! * constant columns (Fig. 3) -> one SE in constant mode;
//! * single-ID-bit columns (Fig. 4) -> one SE following `S_i` (the input
//!   controller supplies the complement for free);
//! * everything else (Fig. 5) -> Shannon decomposition into a pass-gate
//!   multiplexer (Fig. 9), choosing the split bit that minimises SE count.
//!
//! For the paper's four contexts every general pattern costs exactly four
//! SEs, reproducing Fig. 9; larger context counts recurse.

use mcfpga_arch::ContextId;
use mcfpga_config::ConfigColumn;
use serde::{Deserialize, Serialize};

use crate::se::{JoinWire, PassStage, SeInput, SeInstance, SeNetlist};

/// Logical decoder tree, before lowering to SEs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecoderNode {
    /// Constant output (one SE, Fig. 3).
    Constant(bool),
    /// Output follows `S_bit`, optionally inverted (one SE, Fig. 4).
    IdBit { bit: usize, inverted: bool },
    /// Pass-gate 2:1 mux on `S_sel_bit` (two control SEs plus the branches,
    /// Figs. 5 and 9).
    Mux {
        sel_bit: usize,
        hi: Box<DecoderNode>,
        lo: Box<DecoderNode>,
    },
}

impl DecoderNode {
    /// SE count of this tree: leaves cost one, each mux stage adds two.
    pub fn se_cost(&self) -> usize {
        match self {
            DecoderNode::Constant(_) | DecoderNode::IdBit { .. } => 1,
            DecoderNode::Mux { hi, lo, .. } => 2 + hi.se_cost() + lo.se_cost(),
        }
    }

    /// Evaluate the tree for a context.
    pub fn eval(&self, ctx: ContextId, context: usize) -> bool {
        match self {
            DecoderNode::Constant(v) => *v,
            DecoderNode::IdBit { bit, inverted } => ctx.id_bit(context, *bit) ^ inverted,
            DecoderNode::Mux { sel_bit, hi, lo } => {
                if ctx.id_bit(context, *sel_bit) {
                    hi.eval(ctx, context)
                } else {
                    lo.eval(ctx, context)
                }
            }
        }
    }

    /// Mux-tree depth (0 for leaves): routing through this many pass gates
    /// in series, the delay figure the double-length lines compensate.
    pub fn depth(&self) -> usize {
        match self {
            DecoderNode::Constant(_) | DecoderNode::IdBit { .. } => 0,
            DecoderNode::Mux { hi, lo, .. } => 1 + hi.depth().max(lo.depth()),
        }
    }
}

/// Cost breakdown of a synthesised decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecoderCost {
    pub n_ses: usize,
    pub n_inverters: usize,
    pub n_pass_stages: usize,
    pub depth: usize,
}

/// A synthesised decoder: the logic tree, its lowered SE netlist, and the
/// column it realises.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderProgram {
    pub column: ConfigColumn,
    pub tree: DecoderNode,
    pub netlist: SeNetlist,
}

impl DecoderProgram {
    pub fn cost(&self) -> DecoderCost {
        DecoderCost {
            n_ses: self.netlist.n_ses(),
            n_inverters: self.netlist.n_inverters(),
            n_pass_stages: self.netlist.n_pass_stages(),
            depth: self.tree.depth(),
        }
    }

    /// Evaluate the lowered netlist (not just the tree) for a context.
    pub fn eval(&self, ctx: ContextId, context: usize) -> bool {
        self.netlist
            .eval(ctx, context)
            .expect("lowered decoder netlists are always well-formed")
    }
}

/// Column values as a partial function over full ID-bit assignments:
/// `values[assignment]` is `None` for assignments that name no context
/// (don't-cares when the context count is not a power of two).
fn column_table(column: ConfigColumn, ctx: ContextId) -> Vec<Option<bool>> {
    let k = ctx.n_bits();
    let mut table = vec![None; 1 << k];
    for c in 0..ctx.n_contexts() {
        table[c] = Some(column.value_in(c));
    }
    table
}

/// Restrict a table to `bit = value`, producing a table over the remaining
/// bit positions (bit indices keep their absolute meaning via `bits`).
fn restrict(table: &[Option<bool>], k: usize, bit: usize, value: bool) -> Vec<Option<bool>> {
    let mut out = Vec::with_capacity(table.len() / 2);
    for a in 0..table.len() {
        if (a >> bit) & 1 == usize::from(value) {
            out.push(table[a]);
        }
    }
    debug_assert_eq!(out.len(), 1 << (k - 1));
    out
}

/// Core recursive synthesis over a partial truth table. `bits` lists the
/// absolute ID-bit indices still free, LSB of the table first.
fn synth_table(table: &[Option<bool>], bits: &[usize]) -> DecoderNode {
    // Constant (including all-don't-care)?
    let defined: Vec<bool> = table.iter().flatten().copied().collect();
    if defined.is_empty() {
        return DecoderNode::Constant(false);
    }
    if defined.iter().all(|&v| v) {
        return DecoderNode::Constant(true);
    }
    if defined.iter().all(|&v| !v) {
        return DecoderNode::Constant(false);
    }
    // Single ID bit (or complement)? `bits[i]` is table position i.
    for (pos, &abs_bit) in bits.iter().enumerate() {
        for inverted in [false, true] {
            let matches = table.iter().enumerate().all(|(a, v)| match v {
                None => true,
                Some(v) => {
                    let bit_val = (a >> pos) & 1 == 1;
                    *v == (bit_val ^ inverted)
                }
            });
            if matches {
                return DecoderNode::IdBit {
                    bit: abs_bit,
                    inverted,
                };
            }
        }
    }
    // General: Shannon-decompose on the cheapest bit.
    let k = bits.len();
    debug_assert!(k >= 2, "1-bit tables are always constant or the bit");
    let mut best: Option<DecoderNode> = None;
    let mut best_cost = usize::MAX;
    for (pos, &abs_bit) in bits.iter().enumerate() {
        let mut rest: Vec<usize> = bits.to_vec();
        rest.remove(pos);
        let hi_t = restrict(table, k, pos, true);
        let lo_t = restrict(table, k, pos, false);
        let hi = synth_table(&hi_t, &rest);
        let lo = synth_table(&lo_t, &rest);
        let node = DecoderNode::Mux {
            sel_bit: abs_bit,
            hi: Box::new(hi),
            lo: Box::new(lo),
        };
        let cost = node.se_cost();
        if cost < best_cost {
            best_cost = cost;
            best = Some(node);
        }
    }
    best.expect("at least one split bit exists")
}

/// Lower a decoder tree to an SE netlist. Returns the netlist input that
/// carries the tree's value.
fn lower(node: &DecoderNode, nl: &mut SeNetlist) -> SeInput {
    match node {
        DecoderNode::Constant(v) => {
            nl.ses.push(SeInstance::constant(*v));
            SeInput::Se(nl.ses.len() - 1)
        }
        DecoderNode::IdBit { bit, inverted } => {
            nl.ses.push(SeInstance::follow(SeInput::IdBit {
                bit: *bit,
                inverted: *inverted,
            }));
            SeInput::Se(nl.ses.len() - 1)
        }
        DecoderNode::Mux { sel_bit, hi, lo } => {
            let hi_in = lower(hi, nl);
            let lo_in = lower(lo, nl);
            // Control SEs passing the selected branch onto the join wire.
            let hi_ctl = nl.ses.len();
            nl.ses.push(SeInstance::follow(SeInput::IdBit {
                bit: *sel_bit,
                inverted: false,
            }));
            let lo_ctl = nl.ses.len();
            nl.ses.push(SeInstance::follow(SeInput::IdBit {
                bit: *sel_bit,
                inverted: true,
            }));
            let wire = nl.wires.len();
            nl.wires.push(JoinWire {
                stages: vec![
                    PassStage {
                        control_se: hi_ctl,
                        input: hi_in,
                    },
                    PassStage {
                        control_se: lo_ctl,
                        input: lo_in,
                    },
                ],
            });
            SeInput::Wire(wire)
        }
    }
}

/// Synthesise a decoder for one configuration column.
pub fn synthesize(column: ConfigColumn, ctx: ContextId) -> DecoderProgram {
    synthesize_with(column, ctx, &mcfpga_obs::Recorder::disabled())
}

/// As [`synthesize`], recording the per-column SE count into the
/// `rcm.ses_per_column` histogram (Table 1 / Fig. 9 territory: the SE
/// distribution is what drives the area headline). No span is opened here —
/// columns are synthesized by the thousand; callers wrap the batch.
pub fn synthesize_with(
    column: ConfigColumn,
    ctx: ContextId,
    rec: &mcfpga_obs::Recorder,
) -> DecoderProgram {
    let table = column_table(column, ctx);
    let bits: Vec<usize> = (0..ctx.n_bits()).collect();
    let tree = synth_table(&table, &bits);
    let mut nl = SeNetlist::default();
    let out = lower(&tree, &mut nl);
    nl.output = Some(out);
    let prog = DecoderProgram {
        column,
        tree,
        netlist: nl,
    };
    debug_assert!(
        (0..ctx.n_contexts()).all(|c| prog.tree.eval(ctx, c) == column.value_in(c)),
        "tree must realise the column"
    );
    rec.incr("rcm.columns_synthesized", 1);
    rec.observe("rcm.ses_per_column", prog.netlist.n_ses() as f64);
    prog
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_config::{classify, PatternClass};

    fn ctx(n: usize) -> ContextId {
        ContextId::new(n).unwrap()
    }

    /// Every one of the 16 four-context patterns: the synthesised decoder
    /// (both tree and lowered SE netlist) must reproduce the column in
    /// every context — the paper's Figs. 3-5 and 9, verified functionally.
    #[test]
    fn all_16_patterns_synthesise_and_evaluate_correctly() {
        let c = ctx(4);
        for col in ConfigColumn::enumerate_all(4) {
            let prog = synthesize(col, c);
            for context in 0..4 {
                assert_eq!(
                    prog.tree.eval(c, context),
                    col.value_in(context),
                    "tree for {col} in context {context}"
                );
                assert_eq!(
                    prog.eval(c, context),
                    col.value_in(context),
                    "netlist for {col} in context {context}"
                );
            }
        }
    }

    /// The paper's cost structure for four contexts: constants and
    /// single-ID-bit patterns cost 1 SE, all ten general patterns cost 4
    /// (Fig. 9 builds pattern 1000 from four SEs).
    #[test]
    fn four_context_se_costs_match_paper() {
        let c = ctx(4);
        for col in ConfigColumn::enumerate_all(4) {
            let prog = synthesize(col, c);
            let expected = match classify(col, c) {
                PatternClass::Constant { .. } | PatternClass::SingleBit { .. } => 1,
                PatternClass::General => 4,
            };
            assert_eq!(
                prog.cost().n_ses,
                expected,
                "SE cost for pattern {}",
                col.pattern_string()
            );
            assert_eq!(prog.tree.se_cost(), prog.cost().n_ses);
        }
    }

    #[test]
    fn fig9_example_pattern_1000() {
        // (C3, C2, C1, C0) = (1, 0, 0, 0): on only in context 3.
        let c = ctx(4);
        let col = ConfigColumn::from_fn(4, |ctx_i| ctx_i == 3);
        assert_eq!(col.pattern_string(), "1000");
        let prog = synthesize(col, c);
        assert_eq!(prog.cost().n_ses, 4, "Fig. 9 uses four SEs");
        assert_eq!(prog.tree.depth(), 1, "single mux stage");
        // The mux must decompose into an ID-bit branch and a constant.
        match &prog.tree {
            DecoderNode::Mux { hi, lo, .. } => {
                let leaves = [hi.as_ref(), lo.as_ref()];
                assert!(leaves
                    .iter()
                    .any(|l| matches!(l, DecoderNode::IdBit { .. })));
                assert!(leaves
                    .iter()
                    .any(|l| matches!(l, DecoderNode::Constant(false))));
            }
            other => panic!("expected a mux, got {other:?}"),
        }
    }

    #[test]
    fn eight_context_decoders_are_correct_and_bounded() {
        let c = ctx(8);
        // Exhaustive over all 256 columns.
        for mask in 0..256u32 {
            let col = ConfigColumn::from_mask(mask, 8);
            let prog = synthesize(col, c);
            for context in 0..8 {
                assert_eq!(
                    prog.eval(c, context),
                    col.value_in(context),
                    "mask {mask:08b} context {context}"
                );
            }
            // Worst case for 3 ID bits: 2 + 2*(worst for 2 bits) = 2+2*4 = 10.
            assert!(prog.cost().n_ses <= 10, "mask {mask:08b} cost too high");
        }
    }

    #[test]
    fn non_power_of_two_context_counts_use_dont_cares() {
        // 3 contexts: assignment 3 (S1=1, S0=1) is a don't-care the
        // synthesiser may exploit.
        let c = ctx(3);
        for mask in 0..8u32 {
            let col = ConfigColumn::from_mask(mask, 3);
            let prog = synthesize(col, c);
            for context in 0..3 {
                assert_eq!(prog.eval(c, context), col.value_in(context));
            }
        }
        // Column 100 (on only in context 2, where S1=1): with the context-3
        // don't-care, this is just S1 -> one SE.
        let col = ConfigColumn::from_fn(3, |i| i == 2);
        assert_eq!(synthesize(col, c).cost().n_ses, 1);
    }

    #[test]
    fn two_context_patterns_never_need_muxes() {
        let c = ctx(2);
        for mask in 0..4u32 {
            let col = ConfigColumn::from_mask(mask, 2);
            let prog = synthesize(col, c);
            assert_eq!(prog.cost().n_ses, 1, "pattern {}", col.pattern_string());
            for context in 0..2 {
                assert_eq!(prog.eval(c, context), col.value_in(context));
            }
        }
    }

    #[test]
    fn decoder_costs_report_inverters_and_stages() {
        let c = ctx(4);
        // !S1 pattern: single SE fed through an inverting input controller.
        let col = ConfigColumn::id_bit(c, 1, true);
        let cost = synthesize(col, c).cost();
        assert_eq!(cost.n_ses, 1);
        assert_eq!(cost.n_inverters, 1);
        assert_eq!(cost.n_pass_stages, 0);
        // A general pattern uses one mux = 2 pass stages.
        let col = ConfigColumn::from_mask(0b1000, 4);
        let cost = synthesize(col, c).cost();
        assert_eq!(cost.n_pass_stages, 2);
    }

    #[test]
    fn depth_grows_with_context_count() {
        let c8 = ctx(8);
        // A "random-looking" 8-context pattern needing nested muxes.
        let col = ConfigColumn::from_mask(0b1011_0010, 8);
        let prog = synthesize(col, c8);
        assert!(prog.tree.depth() >= 2);
        for context in 0..8 {
            assert_eq!(prog.eval(c8, context), col.value_in(context));
        }
    }
}
