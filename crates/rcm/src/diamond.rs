//! The diamond switch of the double-length-line fabric (Figs. 10–11).
//!
//! Double-length lines bypass alternate diamond switches so critical nets
//! cross two cells per switch instead of threading every RCM. A diamond
//! switch is itself built from seven SEs (Fig. 11) and connects a line
//! arriving from one direction to the three lines leaving in the other
//! directions, through ports U1–U6.
//!
//! Functionally a diamond switch is a small crossbar with multi-context
//! configuration: each of its internal SEs holds per-context on/off state
//! (decoded by the same RCM machinery). This module models the port-level
//! connectivity and the SE budget; electrical detail stays in the area and
//! delay models.

use mcfpga_arch::ContextId;
use mcfpga_config::ConfigColumn;
use serde::{Deserialize, Serialize};

/// The six ports of a diamond switch (Fig. 11's U1–U6): one pair per axis
/// plus the two logic-block taps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DiamondPort {
    U1,
    U2,
    U3,
    U4,
    U5,
    U6,
}

impl DiamondPort {
    pub const ALL: [DiamondPort; 6] = [
        DiamondPort::U1,
        DiamondPort::U2,
        DiamondPort::U3,
        DiamondPort::U4,
        DiamondPort::U5,
        DiamondPort::U6,
    ];

    fn index(self) -> usize {
        match self {
            DiamondPort::U1 => 0,
            DiamondPort::U2 => 1,
            DiamondPort::U3 => 2,
            DiamondPort::U4 => 3,
            DiamondPort::U5 => 4,
            DiamondPort::U6 => 5,
        }
    }
}

/// Number of SEs a diamond switch consumes (Fig. 11).
pub const DIAMOND_SES: usize = 7;

/// A diamond switch: per-context pairwise connectivity between its ports.
///
/// Each undirected port pair has a configuration column saying in which
/// contexts the pair is connected. The seven physical SEs constrain how
/// many *simultaneous* connections one context may hold: each SE is a pass
/// gate on one internal edge, and a port pair routes through at most two
/// SEs, so we conservatively cap the per-context connected pair count at 3
/// (three disjoint pairs saturate six ports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiamondSwitch {
    n_contexts: usize,
    /// Upper-triangular pair -> column; `None` = never connected.
    pairs: Vec<Option<ConfigColumn>>,
}

/// Error: a context asks for more simultaneous connections than the seven
/// SEs can realise, or a port is used by two connections at once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DiamondError {
    TooManyConnections { context: usize, got: usize },
    PortConflict { context: usize, port: DiamondPort },
}

impl std::fmt::Display for DiamondError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiamondError::TooManyConnections { context, got } => {
                write!(f, "context {context} wants {got} connections (max 3)")
            }
            DiamondError::PortConflict { context, port } => {
                write!(f, "context {context} drives port {port:?} twice")
            }
        }
    }
}

impl std::error::Error for DiamondError {}

fn pair_slot(a: DiamondPort, b: DiamondPort) -> usize {
    let (i, j) = {
        let (x, y) = (a.index(), b.index());
        if x < y {
            (x, y)
        } else {
            (y, x)
        }
    };
    // Upper triangular packing over 6 ports.
    i * 6 + j - (i + 1) * (i + 2) / 2
}

impl DiamondSwitch {
    pub fn new(n_contexts: usize) -> Self {
        DiamondSwitch {
            n_contexts,
            pairs: vec![None; 15],
        }
    }

    /// Program a port pair with a per-context connectivity column.
    pub fn connect(&mut self, a: DiamondPort, b: DiamondPort, column: ConfigColumn) {
        assert_ne!(a, b, "cannot connect a port to itself");
        assert_eq!(column.n_contexts(), self.n_contexts);
        self.pairs[pair_slot(a, b)] = Some(column);
    }

    /// Whether `a` and `b` are connected in `context`.
    pub fn connected(&self, a: DiamondPort, b: DiamondPort, context: usize) -> bool {
        if a == b {
            return true;
        }
        self.pairs[pair_slot(a, b)]
            .map(|c| c.value_in(context))
            .unwrap_or(false)
    }

    /// Validate per-context resource limits.
    pub fn validate(&self, ctx: ContextId) -> Result<(), DiamondError> {
        for context in 0..ctx.n_contexts() {
            let mut port_use = [0usize; 6];
            let mut live = 0usize;
            for (slot, col) in self.pairs.iter().enumerate() {
                let Some(col) = col else { continue };
                if !col.value_in(context) {
                    continue;
                }
                live += 1;
                // Recover the pair from the slot index.
                let (a, b) = Self::slot_pair(slot);
                port_use[a] += 1;
                port_use[b] += 1;
            }
            if live > 3 {
                return Err(DiamondError::TooManyConnections { context, got: live });
            }
            for (p, &uses) in port_use.iter().enumerate() {
                if uses > 1 {
                    return Err(DiamondError::PortConflict {
                        context,
                        port: DiamondPort::ALL[p],
                    });
                }
            }
        }
        Ok(())
    }

    fn slot_pair(slot: usize) -> (usize, usize) {
        let mut s = slot;
        for i in 0..6 {
            let row = 5 - i;
            if s < row {
                return (i, i + 1 + s);
            }
            s -= row;
        }
        unreachable!("slot out of range")
    }

    /// All configuration columns this switch contributes to the bitstream.
    pub fn columns(&self) -> Vec<ConfigColumn> {
        self.pairs.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    #[test]
    fn pair_slots_are_bijective() {
        let mut seen = [false; 15];
        for (i, &a) in DiamondPort::ALL.iter().enumerate() {
            for &b in &DiamondPort::ALL[i + 1..] {
                let slot = pair_slot(a, b);
                assert!(!seen[slot], "slot {slot} reused for {a:?}-{b:?}");
                seen[slot] = true;
                assert_eq!(DiamondSwitch::slot_pair(slot), (a.index(), b.index()));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn connectivity_is_symmetric_and_per_context() {
        let mut d = DiamondSwitch::new(4);
        // Connect U1-U3 in contexts 1 and 3 only (= S0 pattern).
        d.connect(
            DiamondPort::U1,
            DiamondPort::U3,
            ConfigColumn::id_bit(ctx4(), 0, false),
        );
        assert!(d.connected(DiamondPort::U1, DiamondPort::U3, 1));
        assert!(d.connected(DiamondPort::U3, DiamondPort::U1, 1));
        assert!(!d.connected(DiamondPort::U1, DiamondPort::U3, 0));
        assert!(!d.connected(DiamondPort::U1, DiamondPort::U4, 1));
        d.validate(ctx4()).unwrap();
    }

    #[test]
    fn port_conflicts_are_rejected() {
        let mut d = DiamondSwitch::new(4);
        let always = ConfigColumn::constant(true, 4);
        d.connect(DiamondPort::U1, DiamondPort::U2, always);
        d.connect(DiamondPort::U1, DiamondPort::U3, always);
        assert!(matches!(
            d.validate(ctx4()),
            Err(DiamondError::PortConflict { .. })
        ));
    }

    #[test]
    fn context_isolated_connections_coexist() {
        // The same port can serve different partners in different contexts —
        // the whole point of multi-context routing.
        let ctx = ctx4();
        let mut d = DiamondSwitch::new(4);
        d.connect(
            DiamondPort::U1,
            DiamondPort::U2,
            ConfigColumn::id_bit(ctx, 0, false), // contexts 1, 3
        );
        d.connect(
            DiamondPort::U1,
            DiamondPort::U3,
            ConfigColumn::id_bit(ctx, 0, true), // contexts 0, 2
        );
        d.validate(ctx).unwrap();
        assert!(d.connected(DiamondPort::U1, DiamondPort::U3, 0));
        assert!(d.connected(DiamondPort::U1, DiamondPort::U2, 1));
    }

    #[test]
    fn three_disjoint_pairs_saturate() {
        let ctx = ctx4();
        let always = ConfigColumn::constant(true, 4);
        let mut d = DiamondSwitch::new(4);
        d.connect(DiamondPort::U1, DiamondPort::U2, always);
        d.connect(DiamondPort::U3, DiamondPort::U4, always);
        d.connect(DiamondPort::U5, DiamondPort::U6, always);
        d.validate(ctx).unwrap();
        assert_eq!(d.columns().len(), 3);
    }
}
