//! Physical layout of decoders onto the RCM's switch-element grid
//! (Fig. 7(a)): SEs arranged in rows and columns, vertical/horizontal
//! tracks between them, programmable cross-points (P) joining tracks, and
//! input controllers (C) on the block boundary.
//!
//! The functional model ([`crate::block`]) answers *whether* a column set
//! fits a block's SE budget; this module answers *where*: each decoder's
//! SEs occupy consecutive cells of one grid column (their interconnection
//! rides that column's vertical track), and each decoder output leaves on a
//! horizontal track through one cross-point. The layout exposes physical
//! quantities the area model's overhead terms stand for: cross-point count,
//! vertical track occupancy, horizontal output tracks.

use serde::{Deserialize, Serialize};

use crate::decoder::DecoderProgram;

/// A physical SE grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RcmGrid {
    pub rows: usize,
    pub cols: usize,
}

/// Placement of one decoder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SePlacement {
    /// Index into the laid-out decoder list.
    pub decoder: usize,
    /// Grid column hosting the decoder.
    pub col: usize,
    /// First row of the consecutive SE run.
    pub row: usize,
    /// Number of SEs.
    pub len: usize,
    /// Horizontal track carrying the decoder output.
    pub out_track: usize,
}

/// A complete layout.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GridLayout {
    pub grid: RcmGrid,
    pub placements: Vec<SePlacement>,
    /// Programmable cross-points consumed (internal joins + output taps).
    pub n_cross_points: usize,
    /// Horizontal tracks used (one per decoder output).
    pub n_out_tracks: usize,
}

impl GridLayout {
    /// SEs consumed.
    pub fn ses_used(&self) -> usize {
        self.placements.iter().map(|p| p.len).sum()
    }

    /// Occupancy fraction of the SE grid.
    pub fn utilisation(&self) -> f64 {
        self.ses_used() as f64 / (self.grid.rows * self.grid.cols) as f64
    }

    /// Check that no two placements overlap and everything is in bounds.
    pub fn validate(&self) -> Result<(), LayoutError> {
        let mut occupied = vec![false; self.grid.rows * self.grid.cols];
        for p in &self.placements {
            if p.col >= self.grid.cols || p.row + p.len > self.grid.rows {
                return Err(LayoutError::OutOfBounds { decoder: p.decoder });
            }
            for r in p.row..p.row + p.len {
                let cell = r * self.grid.cols + p.col;
                if occupied[cell] {
                    return Err(LayoutError::Overlap { decoder: p.decoder });
                }
                occupied[cell] = true;
            }
        }
        Ok(())
    }
}

/// Layout failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// A decoder needs more SEs than one column holds.
    DecoderTooTall {
        decoder: usize,
        len: usize,
        rows: usize,
    },
    /// The grid ran out of space.
    GridFull { placed: usize, total: usize },
    /// (validation) a placement leaves the grid.
    OutOfBounds { decoder: usize },
    /// (validation) two placements overlap.
    Overlap { decoder: usize },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::DecoderTooTall { decoder, len, rows } => {
                write!(
                    f,
                    "decoder {decoder} needs {len} SEs but columns have {rows}"
                )
            }
            LayoutError::GridFull { placed, total } => {
                write!(f, "grid full after {placed} of {total} decoders")
            }
            LayoutError::OutOfBounds { decoder } => {
                write!(f, "decoder {decoder} placed out of bounds")
            }
            LayoutError::Overlap { decoder } => write!(f, "decoder {decoder} overlaps"),
        }
    }
}

impl std::error::Error for LayoutError {}

impl RcmGrid {
    pub fn new(rows: usize, cols: usize) -> Self {
        RcmGrid { rows, cols }
    }

    /// Lay out decoders column-major, first-fit. Each decoder's SEs sit in
    /// one column; internal joins cost one cross-point per SE beyond the
    /// first, the output tap one more.
    pub fn layout(&self, programs: &[DecoderProgram]) -> Result<GridLayout, LayoutError> {
        // Sort big decoders first so fragmentation stays low, keeping the
        // original index for reporting.
        let mut order: Vec<usize> = (0..programs.len()).collect();
        order.sort_by_key(|&i| usize::MAX - programs[i].netlist.n_ses());

        let mut col_fill = vec![0usize; self.cols];
        let mut placements = Vec::with_capacity(programs.len());
        let mut n_cross_points = 0usize;
        for (placed, &i) in order.iter().enumerate() {
            let len = programs[i].netlist.n_ses().max(1);
            if len > self.rows {
                return Err(LayoutError::DecoderTooTall {
                    decoder: i,
                    len,
                    rows: self.rows,
                });
            }
            let slot = (0..self.cols).find(|&c| col_fill[c] + len <= self.rows);
            let Some(col) = slot else {
                return Err(LayoutError::GridFull {
                    placed,
                    total: programs.len(),
                });
            };
            let row = col_fill[col];
            col_fill[col] += len;
            n_cross_points += (len - 1) + 1; // internal joins + output tap
            placements.push(SePlacement {
                decoder: i,
                col,
                row,
                len,
                out_track: placed % self.rows,
            });
        }
        let layout = GridLayout {
            grid: *self,
            placements,
            n_cross_points,
            n_out_tracks: programs.len(),
        };
        debug_assert!(layout.validate().is_ok());
        Ok(layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::synthesize;
    use mcfpga_arch::ContextId;
    use mcfpga_config::ConfigColumn;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    fn programs(masks: &[u32]) -> Vec<DecoderProgram> {
        masks
            .iter()
            .map(|&m| synthesize(ConfigColumn::from_mask(m, 4), ctx4()))
            .collect()
    }

    #[test]
    fn all_16_patterns_fit_an_8x8_grid() {
        let progs = programs(&(0..16u32).collect::<Vec<_>>());
        let layout = RcmGrid::new(8, 8).layout(&progs).unwrap();
        layout.validate().unwrap();
        // 6 cheap (1 SE) + 10 general (4 SEs) = 46 SEs.
        assert_eq!(layout.ses_used(), 46);
        assert!(layout.utilisation() <= 1.0);
        assert_eq!(layout.placements.len(), 16);
        // Cross-points: per decoder len-1 joins + 1 tap.
        assert_eq!(layout.n_cross_points, 46 - 16 + 16);
    }

    #[test]
    fn grid_overflow_is_reported() {
        let progs = programs(&[0b1000, 0b0100, 0b0010, 0b1110, 0b1011]);
        // 5 general decoders x 4 SEs = 20 SEs > 4x4 grid.
        let err = RcmGrid::new(4, 4).layout(&progs).unwrap_err();
        assert!(matches!(err, LayoutError::GridFull { .. }));
    }

    #[test]
    fn too_tall_decoder_is_reported() {
        let progs = programs(&[0b1000]);
        let err = RcmGrid::new(2, 8).layout(&progs).unwrap_err();
        assert!(matches!(
            err,
            LayoutError::DecoderTooTall {
                len: 4,
                rows: 2,
                ..
            }
        ));
    }

    #[test]
    fn columns_pack_multiple_small_decoders() {
        // Eight 1-SE constants in one 8-row column.
        let progs = programs(&[0, 0xF, 0, 0xF, 0, 0xF, 0, 0xF]);
        let layout = RcmGrid::new(8, 1).layout(&progs).unwrap();
        layout.validate().unwrap();
        assert!(layout.placements.iter().all(|p| p.col == 0));
        assert_eq!(layout.ses_used(), 8);
    }

    #[test]
    fn validation_catches_corruption() {
        let progs = programs(&[0, 0xF]);
        let mut layout = RcmGrid::new(4, 2).layout(&progs).unwrap();
        layout.placements[1].col = layout.placements[0].col;
        layout.placements[1].row = layout.placements[0].row;
        assert!(matches!(
            layout.validate(),
            Err(LayoutError::Overlap { .. })
        ));
        layout.placements[1].col = 99;
        assert!(matches!(
            layout.validate(),
            Err(LayoutError::OutOfBounds { .. })
        ));
    }
}
