//! Reconfigurable context memory (RCM): the paper's core contribution.
//!
//! The RCM (Fig. 7) is a fine-grained fabric of *switch elements* (SEs,
//! Fig. 8), programmable cross-point switches, and invertible input
//! controllers. The same SEs serve two roles:
//!
//! * programmable interconnect between logic blocks (ordinary FPGA routing
//!   switches), and
//! * *reconfigurable decoders* that generate configuration bits from the
//!   context-ID bits, exploiting the redundancy and regularity of
//!   configuration data (Figs. 3–5): constants and single-ID-bit patterns
//!   cost one SE, general patterns are built as pass-gate mux trees
//!   (Fig. 9 — four SEs for the pattern `1000`).
//!
//! This crate provides the SE functional model, decoder synthesis and
//! lowering to SE netlists, RCM block capacity accounting, and the diamond
//! switch of the double-length-line fabric (Figs. 10–11).

pub mod block;
pub mod decoder;
pub mod diamond;
pub mod grid;
pub mod se;

pub use block::{RcmBlock, RcmCapacityError, RcmProgram};
pub use decoder::{synthesize, synthesize_with, DecoderCost, DecoderNode, DecoderProgram};
pub use diamond::{DiamondPort, DiamondSwitch};
pub use grid::{GridLayout, LayoutError, RcmGrid, SePlacement};
pub use se::{InputController, ProgrammableSwitch, SeInput, SeInstance, SeNetlist};
