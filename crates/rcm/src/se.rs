//! The switch element (SE) of Fig. 8 and its companions: the invertible
//! input controller and the programmable cross-point switch of Fig. 7.
//!
//! An SE holds two memory bits `(D1, D0)` and a 2:1 multiplexer feeding a
//! pass gate. Its truth table (Fig. 8):
//!
//! | D1 | D0 | G              |
//! |----|----|----------------|
//! | 0  | 0  | 0 (constant)   |
//! | 0  | 1  | 1 (constant)   |
//! | 1  | –  | U (variable)   |
//!
//! `G = constant` implements Fig. 3's patterns with one SE; `G = U` wired to
//! a context-ID bit implements Fig. 4's; several SEs combine into the
//! pass-gate multiplexers of Fig. 9 for the rest.

use mcfpga_arch::ContextId;
use serde::{Deserialize, Serialize};

/// Where an SE's variable input `U` comes from inside an SE netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SeInput {
    /// Context-ID bit `S_bit`, optionally routed through an inverting input
    /// controller (Fig. 7(c)).
    IdBit { bit: usize, inverted: bool },
    /// The output of switch element `i` in the same netlist.
    Se(usize),
    /// The joined output of a pass-stage wire in the SE fabric.
    Wire(usize),
    /// Unconnected (legal only when `d1 = 0`, i.e. constant mode).
    Open,
}

/// One programmed switch element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SeInstance {
    pub d1: bool,
    pub d0: bool,
    pub u: SeInput,
}

impl SeInstance {
    /// Constant-output SE (`D1 = 0`).
    pub fn constant(value: bool) -> Self {
        SeInstance {
            d1: false,
            d0: value,
            u: SeInput::Open,
        }
    }

    /// Variable-output SE following `u` (`D1 = 1`).
    pub fn follow(u: SeInput) -> Self {
        SeInstance {
            d1: true,
            d0: false,
            u,
        }
    }

    /// The Fig. 8 truth table, given the resolved value of `U`.
    #[inline]
    pub fn output(&self, u_value: bool) -> bool {
        if self.d1 {
            u_value
        } else {
            self.d0
        }
    }

    /// Whether this SE consumes an inverted ID bit, i.e. needs an input
    /// controller programmed to invert (Fig. 7(c)).
    pub fn uses_inverter(&self) -> bool {
        matches!(self.u, SeInput::IdBit { inverted: true, .. })
    }
}

/// An inverting input controller (Fig. 7(c)): a memory bit selecting whether
/// the block input is passed straight or inverted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct InputController {
    pub invert: bool,
}

impl InputController {
    pub fn apply(&self, input: bool) -> bool {
        input ^ self.invert
    }
}

/// A programmable cross-point switch (Fig. 7(b)): a memory bit controlling a
/// pass gate between a vertical and a horizontal track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct ProgrammableSwitch {
    pub on: bool,
}

/// A wire joining several pass stages: each stage passes `input` onto the
/// wire when its controlling SE outputs 1. Exactly one stage must drive the
/// wire in every context — [`SeNetlist::eval`] enforces this, mirroring the
/// electrical requirement that pass-gate multiplexers never fight or float.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JoinWire {
    pub stages: Vec<PassStage>,
}

/// One pass-gate stage of a [`JoinWire`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PassStage {
    /// Index of the SE whose output drives the pass-gate's gate.
    pub control_se: usize,
    /// Signal passed onto the wire when the gate is on.
    pub input: SeInput,
}

/// A small netlist of SEs and join wires — the lowered form of one
/// reconfigurable decoder (Fig. 9 shows the netlist for pattern `1000`).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SeNetlist {
    pub ses: Vec<SeInstance>,
    pub wires: Vec<JoinWire>,
    /// The decoder's output: either a single SE or a join wire.
    pub output: Option<SeInput>,
}

/// Evaluation error: a join wire floated or was driven by several stages at
/// once (an illegally-programmed pass-gate mux).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeEvalError {
    FloatingWire { wire: usize, context: usize },
    Contention { wire: usize, context: usize },
}

impl std::fmt::Display for SeEvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SeEvalError::FloatingWire { wire, context } => {
                write!(f, "join wire {wire} floats in context {context}")
            }
            SeEvalError::Contention { wire, context } => {
                write!(
                    f,
                    "join wire {wire} has multiple drivers in context {context}"
                )
            }
        }
    }
}

impl std::error::Error for SeEvalError {}

impl SeNetlist {
    /// Number of switch elements (the paper's area currency).
    pub fn n_ses(&self) -> usize {
        self.ses.len()
    }

    /// Number of input controllers programmed to invert.
    pub fn n_inverters(&self) -> usize {
        self.ses.iter().filter(|se| se.uses_inverter()).count()
            + self
                .wires
                .iter()
                .flat_map(|w| &w.stages)
                .filter(|s| matches!(s.input, SeInput::IdBit { inverted: true, .. }))
                .count()
    }

    /// Number of pass stages, a proxy for programmable-switch usage.
    pub fn n_pass_stages(&self) -> usize {
        self.wires.iter().map(|w| w.stages.len()).sum()
    }

    /// Evaluate the netlist output for a given active context.
    ///
    /// SEs may reference wires and wires reference SEs; evaluation iterates
    /// wires in index order, which the lowering guarantees is topological.
    pub fn eval(&self, ctx: ContextId, context: usize) -> Result<bool, SeEvalError> {
        fn resolve(
            input: SeInput,
            ctx: ContextId,
            context: usize,
            se_out: &[bool],
            wire_val: &[Option<bool>],
        ) -> bool {
            match input {
                SeInput::IdBit { bit, inverted } => ctx.id_bit(context, bit) ^ inverted,
                SeInput::Se(i) => se_out[i],
                SeInput::Wire(w) => wire_val[w].unwrap_or(false),
                SeInput::Open => false,
            }
        }

        // SEs may read earlier SEs or wires, and wires read SEs; lowering
        // emits everything in dependency order, so a small fixpoint (wires
        // + 1 rounds) converges and tolerates any emission order.
        let mut se_out = vec![false; self.ses.len()];
        let mut wire_val: Vec<Option<bool>> = vec![None; self.wires.len()];
        let mut float_err = None;
        let mut contention_err = None;
        for _round in 0..=self.wires.len() {
            for (i, se) in self.ses.iter().enumerate() {
                let u = resolve(se.u, ctx, context, &se_out, &wire_val);
                se_out[i] = se.output(u);
            }
            float_err = None;
            contention_err = None;
            for (wi, wire) in self.wires.iter().enumerate() {
                let mut driver: Option<bool> = None;
                let mut drivers = 0usize;
                for stage in &wire.stages {
                    if se_out[stage.control_se] {
                        drivers += 1;
                        driver = Some(resolve(stage.input, ctx, context, &se_out, &wire_val));
                    }
                }
                match drivers {
                    0 => float_err = Some(SeEvalError::FloatingWire { wire: wi, context }),
                    1 => wire_val[wi] = driver,
                    _ => contention_err = Some(SeEvalError::Contention { wire: wi, context }),
                }
            }
        }
        if let Some(e) = contention_err {
            return Err(e);
        }
        if let Some(e) = float_err {
            return Err(e);
        }
        let out = self.output.expect("netlist has an output");
        Ok(resolve(out, ctx, context, &se_out, &wire_val))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx4() -> ContextId {
        ContextId::new(4).unwrap()
    }

    #[test]
    fn se_truth_table_matches_fig8() {
        // (D1, D0) = (0, 0) -> G = 0; (0, 1) -> G = 1; (1, x) -> G = U.
        for u in [false, true] {
            assert!(!SeInstance::constant(false).output(u));
            assert!(SeInstance::constant(true).output(u));
            assert_eq!(
                SeInstance::follow(SeInput::IdBit {
                    bit: 0,
                    inverted: false
                })
                .output(u),
                u
            );
        }
    }

    #[test]
    fn input_controller_inverts() {
        assert!(InputController { invert: true }.apply(false));
        assert!(!InputController { invert: true }.apply(true));
        assert!(InputController { invert: false }.apply(true));
    }

    #[test]
    fn single_se_netlist_follows_id_bit() {
        let ctx = ctx4();
        let mut nl = SeNetlist::default();
        nl.ses.push(SeInstance::follow(SeInput::IdBit {
            bit: 1,
            inverted: false,
        }));
        nl.output = Some(SeInput::IdBit {
            bit: 1,
            inverted: false,
        });
        for c in 0..4 {
            assert_eq!(nl.eval(ctx, c).unwrap(), ctx.id_bit(c, 1));
        }
    }

    #[test]
    fn pass_gate_mux_netlist_selects_branch() {
        // Fig. 9: output = S1 ? S0 : 0, i.e. pattern (C3,C2,C1,C0) = 1000.
        let ctx = ctx4();
        let mut nl = SeNetlist::default();
        // SE0: branch value S0; SE1: branch value constant 0.
        nl.ses.push(SeInstance::follow(SeInput::IdBit {
            bit: 0,
            inverted: false,
        }));
        nl.ses.push(SeInstance::constant(false));
        // SE2: control = S1; SE3: control = !S1.
        nl.ses.push(SeInstance::follow(SeInput::IdBit {
            bit: 1,
            inverted: false,
        }));
        nl.ses.push(SeInstance::follow(SeInput::IdBit {
            bit: 1,
            inverted: true,
        }));
        nl.wires.push(JoinWire {
            stages: vec![
                PassStage {
                    control_se: 2,
                    input: SeInput::IdBit {
                        bit: 0,
                        inverted: false,
                    },
                },
                PassStage {
                    control_se: 3,
                    input: SeInput::Open, // constant 0 branch
                },
            ],
        });
        nl.output = Some(SeInput::Wire(0));
        let expected = [false, false, false, true]; // contexts 0..3
        for (c, &want) in expected.iter().enumerate() {
            assert_eq!(nl.eval(ctx, c).unwrap(), want, "context {c}");
        }
        assert_eq!(nl.n_ses(), 4);
        assert_eq!(nl.n_inverters(), 1);
    }

    #[test]
    fn contention_and_float_are_detected() {
        let ctx = ctx4();
        let mut nl = SeNetlist::default();
        nl.ses.push(SeInstance::constant(true));
        nl.ses.push(SeInstance::constant(true));
        nl.wires.push(JoinWire {
            stages: vec![
                PassStage {
                    control_se: 0,
                    input: SeInput::Open,
                },
                PassStage {
                    control_se: 1,
                    input: SeInput::Open,
                },
            ],
        });
        nl.output = Some(SeInput::Wire(0));
        assert!(matches!(
            nl.eval(ctx, 0),
            Err(SeEvalError::Contention { .. })
        ));

        let mut nl = SeNetlist::default();
        nl.ses.push(SeInstance::constant(false));
        nl.wires.push(JoinWire {
            stages: vec![PassStage {
                control_se: 0,
                input: SeInput::Open,
            }],
        });
        nl.output = Some(SeInput::Wire(0));
        assert!(matches!(
            nl.eval(ctx, 2),
            Err(SeEvalError::FloatingWire { .. })
        ));
    }
}
