//! Minimum channel width: the classic architecture-evaluation experiment.
//!
//! For a fixed placement, binary-search the smallest channel width (tracks
//! per channel) at which PathFinder still resolves congestion. Relates the
//! RCM's routing structure to track demand: the per-track cost difference
//! between a conventional multi-context switch and an RCM column multiplies
//! with exactly this number.

use mcfpga_arch::ArchSpec;

use crate::graph::RoutingGraph;
use crate::pathfinder::{route_context, Net, RouteOptions};

/// Result of the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelWidthResult {
    /// Smallest total tracks per channel that routed.
    pub min_tracks: usize,
    /// Double-length tracks used at that width (same fraction as the
    /// template architecture, rounded down).
    pub double_tracks: usize,
}

/// Whether the nets route congestion-free on `arch` as given.
pub fn routes_at(arch: &ArchSpec, nets: &[Net], opts: &RouteOptions) -> bool {
    let graph = RoutingGraph::build(arch);
    route_context(&graph, nets, opts).is_ok_and(|r| r.converged)
}

/// Binary-search the minimum channel width for a net set, keeping the
/// template's double-length fraction. `max_tracks` bounds the search.
pub fn min_channel_width(
    template: &ArchSpec,
    nets: &[Net],
    max_tracks: usize,
    opts: &RouteOptions,
) -> Option<ChannelWidthResult> {
    let dl_fraction =
        template.routing.double_length_tracks as f64 / template.routing.tracks_per_channel as f64;
    let arch_with = |tracks: usize| -> ArchSpec {
        let mut a = template.clone();
        a.routing.tracks_per_channel = tracks;
        a.routing.double_length_tracks =
            ((tracks as f64 * dl_fraction) as usize).min(tracks.saturating_sub(1));
        a
    };
    if !routes_at(&arch_with(max_tracks), nets, opts) {
        return None;
    }
    let (mut lo, mut hi) = (1usize, max_tracks);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if routes_at(&arch_with(mid), nets, opts) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let final_arch = arch_with(lo);
    Some(ChannelWidthResult {
        min_tracks: lo,
        double_tracks: final_arch.routing.double_length_tracks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::Coord;
    use mcfpga_map::map_netlist;
    use mcfpga_netlist::library;
    use mcfpga_place::{place, AnnealOptions, PlacementProblem};

    use crate::switches::nets_from_placement;

    fn circuit_nets(circuit: &mcfpga_netlist::Netlist, arch: &ArchSpec) -> Vec<Net> {
        let mapped = map_netlist(circuit, arch.lut.min_inputs).unwrap();
        let problem = PlacementProblem::from_mapped(&mapped, arch).unwrap();
        let placement = place(&problem, &AnnealOptions::default());
        nets_from_placement(&problem, &placement)
    }

    #[test]
    fn adder_needs_few_tracks() {
        let arch = ArchSpec::paper_default();
        let nets = circuit_nets(&library::adder(4), &arch);
        let r = min_channel_width(&arch, &nets, 16, &RouteOptions::default()).unwrap();
        assert!(r.min_tracks >= 1);
        assert!(
            r.min_tracks <= arch.routing.tracks_per_channel,
            "a small adder cannot need more than the default channel"
        );
        // Minimality: one fewer track must fail (when > 1).
        if r.min_tracks > 1 {
            let mut narrow = arch.clone();
            narrow.routing.tracks_per_channel = r.min_tracks - 1;
            narrow.routing.double_length_tracks = narrow
                .routing
                .double_length_tracks
                .min(r.min_tracks.saturating_sub(2));
            assert!(!routes_at(&narrow, &nets, &RouteOptions::default()));
        }
    }

    #[test]
    fn denser_designs_need_wider_channels() {
        let arch = ArchSpec::paper_default();
        let sparse = circuit_nets(&library::parity(8), &arch);
        let dense = circuit_nets(&library::multiplier(3), &arch);
        let opts = RouteOptions::default();
        let ws = min_channel_width(&arch, &sparse, 24, &opts).unwrap();
        let wd = min_channel_width(&arch, &dense, 24, &opts).unwrap();
        assert!(
            wd.min_tracks >= ws.min_tracks,
            "multiplier {} vs parity {}",
            wd.min_tracks,
            ws.min_tracks
        );
    }

    #[test]
    fn impossible_demand_returns_none() {
        // Hundreds of nets crossing one boundary of a 2x2 fabric cannot
        // route even with the search bound.
        let arch = ArchSpec::paper_default().with_grid(2, 2);
        let nets: Vec<Net> = (0..200)
            .map(|i| Net {
                source: Coord::new(1, 1 + (i % 2) as u16),
                sinks: vec![Coord::new(2, 1 + ((i / 2) % 2) as u16)],
            })
            .collect();
        let opts = RouteOptions {
            max_iterations: 6,
            ..Default::default()
        };
        assert_eq!(min_channel_width(&arch, &nets, 8, &opts), None);
    }
}
