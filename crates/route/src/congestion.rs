//! Congestion heatmaps: rank and diff routing pressure per edge.
//!
//! PathFinder exports its final negotiation state on every
//! [`RoutedContext`] (sparse per-edge occupancy and history cost);
//! [`CongestionMap::measure`] joins that export with the graph's edge
//! capacities into one ranked, diffable view. Occupancy says where nets
//! ended up; history says where the negotiation repeatedly fought, which
//! flags channels that converged only under pressure — the edges most
//! likely to tip over when a delta-compile perturbs the workload.

use mcfpga_arch::Coord;
use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, RoutingGraph};
use crate::pathfinder::RoutedContext;

/// One edge's congestion record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeCongestion {
    pub edge: EdgeId,
    /// Channel endpoints, for rendering heatmaps on the grid.
    pub a: Coord,
    pub b: Coord,
    /// Nets using the edge in the final routing.
    pub occupancy: usize,
    pub capacity: usize,
    /// `occupancy / capacity` — 1.0 is a full channel.
    pub utilization: f64,
    /// Accumulated PathFinder history cost (0.0 if never overused).
    pub history: f64,
}

/// Per-edge congestion of one routed context: every edge that carries a net
/// or accumulated negotiation history, ascending by edge id.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionMap {
    pub edges: Vec<EdgeCongestion>,
}

impl CongestionMap {
    /// Join `routed`'s PathFinder export with `graph`'s capacities.
    pub fn measure(graph: &RoutingGraph, routed: &RoutedContext) -> CongestionMap {
        let mut history = vec![0.0f64; graph.edges.len()];
        for &(e, h) in &routed.edge_history {
            history[e] = h;
        }
        let mut seen = vec![false; graph.edges.len()];
        let mut edges: Vec<EdgeCongestion> = routed
            .edge_occupancy
            .iter()
            .map(|&(e, occupancy)| {
                seen[e] = true;
                edge_record(graph, e, occupancy, history[e])
            })
            .collect();
        // History can outlive occupancy: an edge fought over mid-negotiation
        // may carry no net in the final routing. Keep it visible.
        for &(e, h) in &routed.edge_history {
            if !seen[e] {
                edges.push(edge_record(graph, e, 0, h));
            }
        }
        edges.sort_by_key(|r| r.edge);
        CongestionMap { edges }
    }

    /// The `n` hottest edges: utilization first, then history, then
    /// occupancy, then edge id — fully deterministic.
    pub fn hottest(&self, n: usize) -> Vec<&EdgeCongestion> {
        let mut ranked: Vec<&EdgeCongestion> = self.edges.iter().collect();
        ranked.sort_by(|x, y| {
            y.utilization
                .partial_cmp(&x.utilization)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    y.history
                        .partial_cmp(&x.history)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(y.occupancy.cmp(&x.occupancy))
                .then(x.edge.cmp(&y.edge))
        });
        ranked.truncate(n);
        ranked
    }

    /// Worst utilization over all edges (0.0 for an empty map).
    pub fn peak_utilization(&self) -> f64 {
        self.edges.iter().map(|e| e.utilization).fold(0.0, f64::max)
    }

    /// Edges changed from `self` to `newer` (e.g. across a delta-compile):
    /// sparse non-zero deltas, ascending by edge id.
    pub fn diff(&self, newer: &CongestionMap) -> Vec<CongestionDelta> {
        let mut deltas: Vec<CongestionDelta> = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() || j < newer.edges.len() {
            let old = self.edges.get(i);
            let new = newer.edges.get(j);
            let (edge, o, n) = match (old, new) {
                (Some(o), Some(n)) if o.edge == n.edge => {
                    i += 1;
                    j += 1;
                    (o.edge, Some(o), Some(n))
                }
                (Some(o), None) => {
                    i += 1;
                    (o.edge, Some(o), None)
                }
                (Some(o), Some(n)) if o.edge < n.edge => {
                    i += 1;
                    (o.edge, Some(o), None)
                }
                (_, Some(n)) => {
                    j += 1;
                    (n.edge, None, Some(n))
                }
                (None, None) => unreachable!("loop condition"),
            };
            let occupancy_delta =
                n.map_or(0, |r| r.occupancy as i64) - o.map_or(0, |r| r.occupancy as i64);
            let history_delta = n.map_or(0.0, |r| r.history) - o.map_or(0.0, |r| r.history);
            if occupancy_delta != 0 || history_delta != 0.0 {
                deltas.push(CongestionDelta {
                    edge,
                    occupancy_delta,
                    history_delta,
                });
            }
        }
        deltas
    }
}

fn edge_record(graph: &RoutingGraph, e: EdgeId, occupancy: usize, history: f64) -> EdgeCongestion {
    let info = &graph.edges[e];
    let capacity = info.capacity;
    EdgeCongestion {
        edge: e,
        a: info.a,
        b: info.b,
        occupancy,
        capacity,
        utilization: if capacity == 0 {
            0.0
        } else {
            occupancy as f64 / capacity as f64
        },
        history,
    }
}

/// One edge's change between two congestion maps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionDelta {
    pub edge: EdgeId,
    pub occupancy_delta: i64,
    pub history_delta: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathfinder::{route_context, Net, RouteOptions};
    use mcfpga_arch::ArchSpec;

    fn routed_map(nets: Vec<Net>) -> (RoutingGraph, RoutedContext, CongestionMap) {
        let g = RoutingGraph::build(&ArchSpec::paper_default());
        let r = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        let m = CongestionMap::measure(&g, &r);
        (g, r, m)
    }

    fn cross_nets(n: u16) -> Vec<Net> {
        (1..=n)
            .map(|y| Net {
                source: Coord::new(1, y),
                sinks: vec![Coord::new(8, y), Coord::new(4, 4)],
            })
            .collect()
    }

    #[test]
    fn map_matches_the_pathfinder_export() {
        let (_, r, m) = routed_map(cross_nets(4));
        assert_eq!(m.edges.iter().filter(|e| e.occupancy > 0).count(), {
            r.edge_occupancy.len()
        });
        for e in &m.edges {
            let exported = r
                .edge_occupancy
                .iter()
                .find(|&&(id, _)| id == e.edge)
                .map_or(0, |&(_, u)| u);
            assert_eq!(e.occupancy, exported);
            assert!(e.capacity > 0);
            assert!(e.utilization <= 1.0, "converged routing never overuses");
        }
    }

    #[test]
    fn occupancy_export_agrees_with_trees() {
        let (g, r, _) = routed_map(cross_nets(3));
        let mut from_trees = vec![0usize; g.edges.len()];
        for t in &r.trees {
            for &e in t {
                from_trees[e] += 1;
            }
        }
        for (e, &u) in from_trees.iter().enumerate() {
            let exported = r
                .edge_occupancy
                .iter()
                .find(|&&(id, _)| id == e)
                .map_or(0, |&(_, u)| u);
            assert_eq!(exported, u, "edge {e}");
        }
    }

    #[test]
    fn hottest_ranks_by_utilization_and_truncates() {
        let (_, _, m) = routed_map(cross_nets(4));
        let top = m.hottest(5);
        assert!(top.len() <= 5);
        for pair in top.windows(2) {
            assert!(pair[0].utilization >= pair[1].utilization);
        }
        assert_eq!(top[0].utilization, m.peak_utilization());
    }

    #[test]
    fn diff_is_empty_for_identical_routings_and_sparse_otherwise() {
        let (g, _, m1) = routed_map(cross_nets(2));
        assert!(m1.diff(&m1).is_empty(), "self-diff must be empty");
        let r2 = route_context(&g, &cross_nets(4), &RouteOptions::default()).unwrap();
        let m2 = CongestionMap::measure(&g, &r2);
        let deltas = m1.diff(&m2);
        assert!(!deltas.is_empty(), "adding nets must change occupancy");
        assert!(deltas
            .iter()
            .all(|d| d.occupancy_delta != 0 || d.history_delta != 0.0));
        // The diff is reversible: applying it backwards negates occupancy.
        let back = m2.diff(&m1);
        assert_eq!(deltas.len(), back.len());
        for (d, b) in deltas.iter().zip(&back) {
            assert_eq!(d.edge, b.edge);
            assert_eq!(d.occupancy_delta, -b.occupancy_delta);
        }
    }

    #[test]
    fn empty_routing_yields_empty_map() {
        let (_, _, m) = routed_map(vec![]);
        assert!(m.edges.is_empty());
        assert_eq!(m.peak_utilization(), 0.0);
        assert!(m.hottest(3).is_empty());
    }
}
