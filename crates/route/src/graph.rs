//! The routing graph: cells of the placement grid joined by channel hops.

use mcfpga_arch::{ArchSpec, Coord, SegmentKind};
use mcfpga_place::PlacementGrid;
use serde::{Deserialize, Serialize};

/// Index of an edge in the routing graph.
pub type EdgeId = usize;

/// One routing edge (undirected): a bundle of parallel tracks between two
/// cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EdgeInfo {
    pub a: Coord,
    pub b: Coord,
    pub kind: SegmentKind,
    /// Parallel tracks available.
    pub capacity: usize,
    /// Delay of traversing this hop (arbitrary units; single-length hops
    /// thread an RCM switch element, double-length hops ride a buffered
    /// line through a diamond switch).
    pub delay: f64,
}

/// Delay of one single-length hop (through RCM switch elements).
pub const SINGLE_HOP_DELAY: f64 = 2.0;
/// Delay of one double-length hop (two cells through a diamond switch).
pub const DOUBLE_HOP_DELAY: f64 = 2.4;

/// The routing graph over a placement grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingGraph {
    pub grid: PlacementGrid,
    pub edges: Vec<EdgeInfo>,
    /// Adjacency: node (full-grid index) -> incident edge ids.
    adj: Vec<Vec<EdgeId>>,
}

impl RoutingGraph {
    /// Build the graph for an architecture.
    pub fn build(arch: &ArchSpec) -> Self {
        let grid = PlacementGrid::of(arch);
        let full = grid.full;
        let mut edges = Vec::new();
        let mut adj: Vec<Vec<EdgeId>> = vec![Vec::new(); full.n_cells()];
        let single_cap = arch.routing.single_tracks();
        let double_cap = arch.routing.double_length_tracks;
        let push = |a: Coord,
                    b: Coord,
                    kind: SegmentKind,
                    cap: usize,
                    delay: f64,
                    edges: &mut Vec<EdgeInfo>,
                    adj: &mut Vec<Vec<EdgeId>>| {
            if cap == 0 {
                return;
            }
            let id = edges.len();
            edges.push(EdgeInfo {
                a,
                b,
                kind,
                capacity: cap,
                delay,
            });
            adj[full.index(a)].push(id);
            adj[full.index(b)].push(id);
        };
        for c in full.coords() {
            // Single-length hops to the east and north neighbours.
            if c.x + 1 < full.width {
                push(
                    c,
                    Coord::new(c.x + 1, c.y),
                    SegmentKind::Single,
                    single_cap,
                    SINGLE_HOP_DELAY,
                    &mut edges,
                    &mut adj,
                );
            }
            if c.y + 1 < full.height {
                push(
                    c,
                    Coord::new(c.x, c.y + 1),
                    SegmentKind::Single,
                    single_cap,
                    SINGLE_HOP_DELAY,
                    &mut edges,
                    &mut adj,
                );
            }
            // Double-length hops skip one cell (Fig. 10's lines bypassing
            // alternate diamond switches).
            if c.x + 2 < full.width {
                push(
                    c,
                    Coord::new(c.x + 2, c.y),
                    SegmentKind::Double,
                    double_cap,
                    DOUBLE_HOP_DELAY,
                    &mut edges,
                    &mut adj,
                );
            }
            if c.y + 2 < full.height {
                push(
                    c,
                    Coord::new(c.x, c.y + 2),
                    SegmentKind::Double,
                    double_cap,
                    DOUBLE_HOP_DELAY,
                    &mut edges,
                    &mut adj,
                );
            }
        }
        RoutingGraph { grid, edges, adj }
    }

    pub fn n_nodes(&self) -> usize {
        self.grid.full.n_cells()
    }

    pub fn node(&self, c: Coord) -> usize {
        self.grid.full.index(c)
    }

    pub fn coord(&self, node: usize) -> Coord {
        self.grid.full.coord(node)
    }

    /// Edges incident to a node.
    pub fn incident(&self, node: usize) -> &[EdgeId] {
        &self.adj[node]
    }

    /// The node on the far side of `edge` from `node`.
    pub fn other_end(&self, edge: EdgeId, node: usize) -> usize {
        let e = &self.edges[edge];
        let a = self.node(e.a);
        if a == node {
            self.node(e.b)
        } else {
            debug_assert_eq!(self.node(e.b), node);
            a
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;

    #[test]
    fn graph_covers_the_grid() {
        let arch = ArchSpec::paper_default();
        let g = RoutingGraph::build(&arch);
        assert_eq!(g.n_nodes(), 100);
        // Every node has at least two incident edges.
        for n in 0..g.n_nodes() {
            assert!(g.incident(n).len() >= 2, "node {n} isolated");
        }
        // Both segment kinds present.
        assert!(g.edges.iter().any(|e| e.kind == SegmentKind::Single));
        assert!(g.edges.iter().any(|e| e.kind == SegmentKind::Double));
    }

    #[test]
    fn capacities_follow_the_channel_split() {
        let arch = ArchSpec::paper_default(); // 8 tracks, 2 double
        let g = RoutingGraph::build(&arch);
        for e in &g.edges {
            match e.kind {
                SegmentKind::Single => assert_eq!(e.capacity, 6),
                SegmentKind::Double => assert_eq!(e.capacity, 2),
            }
        }
    }

    #[test]
    fn no_double_edges_without_double_tracks() {
        let mut arch = ArchSpec::paper_default();
        arch.routing.double_length_tracks = 0;
        let g = RoutingGraph::build(&arch);
        assert!(g.edges.iter().all(|e| e.kind == SegmentKind::Single));
    }

    #[test]
    fn other_end_is_an_involution() {
        let g = RoutingGraph::build(&ArchSpec::paper_default());
        for (id, e) in g.edges.iter().enumerate() {
            let a = g.node(e.a);
            let b = g.node(e.b);
            assert_eq!(g.other_end(id, a), b);
            assert_eq!(g.other_end(id, b), a);
        }
    }

    #[test]
    fn double_hops_are_cheaper_per_cell() {
        // Guard the architecture premise against constant edits.
        let (double, single) = (DOUBLE_HOP_DELAY, SINGLE_HOP_DELAY);
        assert!(double < 2.0 * single);
    }
}
