//! Routing for the MC-FPGA: a channel-capacity routing graph with
//! single-length RCM-switched wires and the high-speed double-length lines
//! of Fig. 10, routed per context by PathFinder negotiated congestion.
//!
//! Model granularity: routing resources are channel hops between adjacent
//! cells (capacity = single-length tracks) plus length-2 hops that bypass a
//! switch point through a diamond switch (capacity = double-length tracks,
//! lower delay per cell). Connection and switch blocks are taken as fully
//! flexible — each hop assigns a free track independently — which keeps the
//! congestion structure and the per-switch configuration columns (what the
//! RCM decodes) while abstracting the track-graph detail the paper never
//! specifies.
//!
//! Each context routes its own netlist on the shared fabric; the per-switch
//! cross-context usage vectors become the [`mcfpga_config::ConfigColumn`]s
//! that RCM decoder synthesis and the area model consume.

pub mod channel_width;
pub mod congestion;
pub mod graph;
pub mod pathfinder;
pub mod stats;
pub mod switches;

pub use channel_width::{min_channel_width, routes_at, ChannelWidthResult};
pub use congestion::{CongestionDelta, CongestionMap, EdgeCongestion};
pub use graph::{EdgeId, EdgeInfo, RoutingGraph};
pub use pathfinder::{
    route_context, route_context_delta, route_context_with, Net, RouteError, RouteOptions,
    RoutedContext,
};
pub use stats::{routing_stats, RoutingStats};
pub use switches::{nets_from_placement, switch_columns, SwitchUsage};
