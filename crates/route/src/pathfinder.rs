//! PathFinder negotiated-congestion routing.
//!
//! Classic scheme with an incremental twist: nets are routed with edge costs
//! `delay * (1 + present_overuse * p) + history`, where history accumulates
//! on persistently congested edges. After the first full routing pass, only
//! nets whose trees touch an overused edge are ripped up and re-routed each
//! iteration (the classic rip-up-everything behaviour remains available via
//! [`RouteOptions::full_ripup`]). Iteration stops when no edge exceeds its
//! capacity.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use mcfpga_arch::Coord;
use mcfpga_obs::Recorder;
use serde::{Deserialize, Serialize};

use crate::graph::{EdgeId, RoutingGraph};

/// One net to route.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Net {
    pub source: Coord,
    pub sinks: Vec<Coord>,
}

/// Router knobs.
///
/// `#[non_exhaustive]`: build with `Default` plus the `with_*` setters so
/// future knobs land without breaking downstream crates:
///
/// ```
/// use mcfpga_route::RouteOptions;
/// let opts = RouteOptions::default()
///     .with_max_iterations(60)
///     .with_full_ripup(true);
/// assert_eq!(opts.max_iterations, 60);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub struct RouteOptions {
    pub max_iterations: usize,
    /// Present-congestion multiplier growth per iteration.
    pub present_growth: f64,
    /// History increment for overused edges.
    pub history_increment: f64,
    /// Rip up *every* net each iteration (the textbook PathFinder schedule)
    /// instead of only the nets whose trees touch an overused edge. The
    /// incremental default converges to the same legality guarantee — an
    /// overused edge is by definition on some net's tree, so congestion can
    /// never outlive the nets causing it — while re-routing far fewer nets
    /// per iteration on lightly congested fabrics.
    pub full_ripup: bool,
}

impl Default for RouteOptions {
    fn default() -> Self {
        RouteOptions {
            max_iterations: 40,
            present_growth: 1.6,
            history_increment: 1.0,
            full_ripup: false,
        }
    }
}

impl RouteOptions {
    /// Negotiation-iteration cap before the router gives up.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Present-congestion multiplier growth per iteration.
    pub fn with_present_growth(mut self, present_growth: f64) -> Self {
        self.present_growth = present_growth;
        self
    }

    /// History increment for overused edges.
    pub fn with_history_increment(mut self, history_increment: f64) -> Self {
        self.history_increment = history_increment;
        self
    }

    /// Rip up every net each iteration (textbook PathFinder schedule).
    pub fn with_full_ripup(mut self, full_ripup: bool) -> Self {
        self.full_ripup = full_ripup;
        self
    }
}

/// Routing failure.
#[derive(Debug, Clone, PartialEq)]
pub enum RouteError {
    /// Congestion never resolved.
    Unroutable { overused_edges: usize },
    /// A sink could not be reached at all (disconnected graph).
    NoPath { net: usize, sink: Coord },
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::Unroutable { overused_edges } => {
                write!(f, "congestion unresolved: {overused_edges} edges overused")
            }
            RouteError::NoPath { net, sink } => {
                write!(f, "net {net} cannot reach sink {sink}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A routed context: per net, the set of edges forming its routing tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutedContext {
    pub nets: Vec<Net>,
    /// Edge sets per net (a routing tree over the graph).
    pub trees: Vec<Vec<EdgeId>>,
    /// Per-net worst source-to-sink delay.
    pub delays: Vec<f64>,
    /// Iterations PathFinder needed.
    pub iterations: usize,
    /// Whether congestion fully resolved within the iteration budget. When
    /// false, `trees` holds the final (still congested) attempt.
    pub converged: bool,
    /// Edges still over capacity in the final iteration (0 when converged).
    pub overused_edges: usize,
    /// Final per-edge occupancy: sparse `(edge, uses)` pairs, ascending by
    /// edge id, for every edge on at least one routing tree — the raw
    /// signal behind congestion heatmaps ([`crate::CongestionMap`]).
    pub edge_occupancy: Vec<(EdgeId, usize)>,
    /// Final PathFinder history cost: sparse `(edge, cost)` pairs, ascending
    /// by edge id, for every edge that accumulated history — the edges the
    /// negotiation repeatedly fought over, even if the final routing no
    /// longer overuses them.
    pub edge_history: Vec<(EdgeId, f64)>,
}

impl RoutedContext {
    /// Total wirelength in edges.
    pub fn total_edges(&self) -> usize {
        self.trees.iter().map(|t| t.len()).sum()
    }

    /// Critical-path routing delay (worst net).
    pub fn critical_delay(&self) -> f64 {
        self.delays.iter().copied().fold(0.0, f64::max)
    }

    /// Turn a non-converged result into the classic `Unroutable` error, for
    /// callers (like device compilation) that cannot use a congested routing.
    pub fn require_converged(self) -> Result<RoutedContext, RouteError> {
        if self.converged {
            Ok(self)
        } else {
            Err(RouteError::Unroutable {
                overused_edges: self.overused_edges,
            })
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    cost: f64,
    node: usize,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on cost.
        other
            .cost
            .partial_cmp(&self.cost)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Reusable Dijkstra state, generation-stamped so successive searches skip
/// the O(V) reset: a node's `dist`/`via` entries are only meaningful when its
/// stamp matches the current generation.
struct DijkstraScratch {
    dist: Vec<f64>,
    via: Vec<Option<(usize, EdgeId)>>,
    stamp: Vec<u32>,
    generation: u32,
    heap: BinaryHeap<HeapEntry>,
    /// Node membership of the net currently being routed (cleared per net).
    in_tree: Vec<bool>,
}

impl DijkstraScratch {
    fn new(n_nodes: usize) -> DijkstraScratch {
        DijkstraScratch {
            dist: vec![f64::INFINITY; n_nodes],
            via: vec![None; n_nodes],
            stamp: vec![0; n_nodes],
            generation: 0,
            heap: BinaryHeap::new(),
            in_tree: vec![false; n_nodes],
        }
    }

    /// Start a fresh search: bump the generation instead of clearing arrays.
    fn begin_search(&mut self) {
        self.generation += 1;
        self.heap.clear();
    }

    fn touch(&mut self, node: usize) {
        if self.stamp[node] != self.generation {
            self.stamp[node] = self.generation;
            self.dist[node] = f64::INFINITY;
            self.via[node] = None;
        }
    }

    fn dist(&self, node: usize) -> f64 {
        if self.stamp[node] == self.generation {
            self.dist[node]
        } else {
            f64::INFINITY
        }
    }

    fn via(&self, node: usize) -> Option<(usize, EdgeId)> {
        if self.stamp[node] == self.generation {
            self.via[node]
        } else {
            None
        }
    }
}

/// Delta entry point: route `nets`, reusing a stale [`RoutedContext`] when
/// it is provably still the answer.
///
/// PathFinder is a deterministic pure function of `(graph, nets, opts)` —
/// net selection, rip-up, and re-route all run in net-index order with no
/// randomness — so when the nets are identical to the ones `stale` was
/// routed from (on the same graph, with the same options, which the caller
/// guarantees), the stale trees *are* the cold result and can be returned
/// verbatim. Anything weaker breaks bit-identity: warm-starting the
/// negotiation from stale trees changes the congestion history and yields a
/// legal-but-different routing, which is why this entry point is an
/// equality-gated memo and not a seeded re-negotiation.
///
/// Returns the routed context plus whether the stale result was reused.
/// Reuse additionally requires `stale.converged` (a congested stale attempt
/// is re-routed from scratch so the caller sees the normal error path).
pub fn route_context_delta(
    graph: &RoutingGraph,
    nets: &[Net],
    opts: &RouteOptions,
    stale: &RoutedContext,
    rec: &Recorder,
) -> Result<(RoutedContext, bool), RouteError> {
    if stale.converged && stale.nets == nets {
        rec.incr("route.delta_reused", 1);
        return Ok((stale.clone(), true));
    }
    route_context_with(graph, nets, opts, rec).map(|r| (r, false))
}

/// Route one context's nets on the graph (no instrumentation).
pub fn route_context(
    graph: &RoutingGraph,
    nets: &[Net],
    opts: &RouteOptions,
) -> Result<RoutedContext, RouteError> {
    route_context_with(graph, nets, opts, &Recorder::disabled())
}

/// Route one context's nets, recording per-iteration congestion into `rec`.
///
/// Exhausting `max_iterations` with congestion left is NOT an error: the
/// final attempt is returned with `converged == false` and the residual
/// `overused_edges` count, so callers can inspect or report the near-miss.
/// Use [`RoutedContext::require_converged`] where a congested routing is
/// unusable. `Err` is reserved for structurally unreachable sinks.
pub fn route_context_with(
    graph: &RoutingGraph,
    nets: &[Net],
    opts: &RouteOptions,
    rec: &Recorder,
) -> Result<RoutedContext, RouteError> {
    let _span = rec.span("route");
    let n_edges = graph.edges.len();
    let mut usage = vec![0usize; n_edges];
    let mut history = vec![0.0f64; n_edges];
    let mut trees: Vec<Vec<EdgeId>> = vec![Vec::new(); nets.len()];
    let mut present_factor = 0.6;
    let mut overused = 0usize;
    let mut scratch = DijkstraScratch::new(graph.n_nodes());
    let mut reroute: Vec<usize> = Vec::with_capacity(nets.len());

    for iteration in 0..opts.max_iterations {
        // Select the nets to rip up: everything on the first pass (or in
        // full-rip-up mode), otherwise only nets whose current tree touches
        // an overused edge. Selection and re-routing both run in net-index
        // order, so the schedule is deterministic.
        reroute.clear();
        if iteration == 0 || opts.full_ripup {
            reroute.extend(0..nets.len());
        } else {
            for (ni, tree) in trees.iter().enumerate() {
                if tree.iter().any(|&e| usage[e] > graph.edges[e].capacity) {
                    reroute.push(ni);
                }
            }
        }
        for &ni in &reroute {
            for &e in &trees[ni] {
                usage[e] -= 1;
            }
            trees[ni].clear();
        }
        for &ni in &reroute {
            let tree = route_net(
                graph,
                &nets[ni],
                &usage,
                &history,
                present_factor,
                &mut scratch,
            )
            .map_err(|sink| RouteError::NoPath { net: ni, sink })?;
            for &e in &tree {
                usage[e] += 1;
            }
            trees[ni] = tree;
        }
        rec.incr("route.nets_rerouted", reroute.len() as u64);
        // Congestion check.
        overused = 0;
        for e in 0..n_edges {
            if usage[e] > graph.edges[e].capacity {
                overused += 1;
                history[e] += opts.history_increment;
            }
        }
        rec.incr("route.iterations", 1);
        rec.observe("route.overuse_per_iteration", overused as f64);
        rec.instant(
            "route_iteration",
            &[
                ("iteration", iteration.into()),
                ("nets_rerouted", reroute.len().into()),
                ("overused_edges", overused.into()),
            ],
        );
        if overused == 0 {
            return Ok(finish(
                graph,
                nets,
                trees,
                &usage,
                &history,
                iteration + 1,
                0,
            ));
        }
        present_factor *= opts.present_growth;
    }
    rec.incr("route.nonconverged_contexts", 1);
    rec.incr("route.overused_edges", overused as u64);
    Ok(finish(
        graph,
        nets,
        trees,
        &usage,
        &history,
        opts.max_iterations,
        overused,
    ))
}

/// Assemble the final [`RoutedContext`] from the surviving trees, exporting
/// the negotiation's per-edge occupancy and history as sparse pairs.
fn finish(
    graph: &RoutingGraph,
    nets: &[Net],
    trees: Vec<Vec<EdgeId>>,
    usage: &[usize],
    history: &[f64],
    iterations: usize,
    overused: usize,
) -> RoutedContext {
    let mut edge_mark = vec![false; graph.edges.len()];
    let delays = nets
        .iter()
        .zip(&trees)
        .map(|(net, tree)| tree_delay(graph, net, tree, &mut edge_mark))
        .collect();
    let edge_occupancy = usage
        .iter()
        .enumerate()
        .filter(|(_, &u)| u > 0)
        .map(|(e, &u)| (e, u))
        .collect();
    let edge_history = history
        .iter()
        .enumerate()
        .filter(|(_, &h)| h > 0.0)
        .map(|(e, &h)| (e, h))
        .collect();
    RoutedContext {
        nets: nets.to_vec(),
        trees,
        delays,
        iterations,
        converged: overused == 0,
        overused_edges: overused,
        edge_occupancy,
        edge_history,
    }
}

/// Route one net: grow a tree from the source, adding sinks one at a time
/// with Dijkstra from the whole current tree (zero cost inside the tree).
fn route_net(
    graph: &RoutingGraph,
    net: &Net,
    usage: &[usize],
    history: &[f64],
    present_factor: f64,
    scratch: &mut DijkstraScratch,
) -> Result<Vec<EdgeId>, Coord> {
    let mut tree_edges: Vec<EdgeId> = Vec::new();
    let src = graph.node(net.source);
    let mut tree_nodes: Vec<usize> = vec![src];
    scratch.in_tree[src] = true;
    let mut result = Ok(());
    for &sink in &net.sinks {
        let target = graph.node(sink);
        if scratch.in_tree[target] {
            continue;
        }
        // Dijkstra seeded with every tree node at cost 0.
        scratch.begin_search();
        for &n in &tree_nodes {
            scratch.touch(n);
            scratch.dist[n] = 0.0;
            scratch.heap.push(HeapEntry { cost: 0.0, node: n });
        }
        while let Some(HeapEntry { cost, node }) = scratch.heap.pop() {
            if cost > scratch.dist(node) {
                continue;
            }
            if node == target {
                break;
            }
            for &e in graph.incident(node) {
                let info = &graph.edges[e];
                let over = (usage[e] + 1).saturating_sub(info.capacity) as f64;
                let edge_cost = info.delay * (1.0 + over * present_factor) + history[e];
                let next = graph.other_end(e, node);
                let nd = cost + edge_cost;
                if nd < scratch.dist(next) {
                    scratch.touch(next);
                    scratch.dist[next] = nd;
                    scratch.via[next] = Some((node, e));
                    scratch.heap.push(HeapEntry {
                        cost: nd,
                        node: next,
                    });
                }
            }
        }
        if scratch.dist(target).is_infinite() {
            result = Err(sink);
            break;
        }
        // Walk back to the tree, adding nodes and edges. Termination
        // invariant: `via` is `None` exactly at this search's seed nodes —
        // they start at distance 0 and every edge cost is strictly positive,
        // so no relaxation ever overwrites a seed's `via`. The walk
        // therefore stops at the first node already in the tree (which may
        // be an earlier sink's branch point, not necessarily the source).
        let mut cur = target;
        while let Some((prev, e)) = scratch.via(cur) {
            tree_edges.push(e);
            tree_nodes.push(cur);
            scratch.in_tree[cur] = true;
            cur = prev;
        }
        debug_assert!(scratch.in_tree[cur], "walk-back must end on the tree");
    }
    // The membership flags are scratch shared across nets; clear them before
    // handing control back.
    for &n in &tree_nodes {
        scratch.in_tree[n] = false;
    }
    result?;
    tree_edges.sort_unstable();
    tree_edges.dedup();
    Ok(tree_edges)
}

/// Worst source-to-sink delay through a routed tree. `edge_mark` is a
/// caller-provided scratch of size `graph.edges.len()`, false on entry and
/// restored to false on exit (O(tree) membership instead of O(tree) scans
/// per edge).
fn tree_delay(graph: &RoutingGraph, net: &Net, tree: &[EdgeId], edge_mark: &mut [bool]) -> f64 {
    for &e in tree {
        edge_mark[e] = true;
    }
    // BFS/Dijkstra restricted to tree edges.
    let src = graph.node(net.source);
    let mut dist = vec![f64::INFINITY; graph.n_nodes()];
    dist[src] = 0.0;
    let mut frontier = vec![src];
    while let Some(node) = frontier.pop() {
        for &e in graph.incident(node) {
            if !edge_mark[e] {
                continue;
            }
            let next = graph.other_end(e, node);
            let nd = dist[node] + graph.edges[e].delay;
            if nd < dist[next] {
                dist[next] = nd;
                frontier.push(next);
            }
        }
    }
    for &e in tree {
        edge_mark[e] = false;
    }
    net.sinks
        .iter()
        .map(|&s| dist[graph.node(s)])
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;

    fn graph() -> RoutingGraph {
        RoutingGraph::build(&ArchSpec::paper_default())
    }

    #[test]
    fn single_net_routes_directly() {
        let g = graph();
        let nets = vec![Net {
            source: Coord::new(1, 1),
            sinks: vec![Coord::new(5, 1)],
        }];
        let routed = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        assert_eq!(routed.iterations, 1);
        assert!(!routed.trees[0].is_empty());
        // Double-length lines make the 4-cell hop cheaper than 4 singles.
        assert!(routed.delays[0] <= 4.0 * crate::graph::SINGLE_HOP_DELAY);
    }

    #[test]
    fn multi_sink_nets_form_trees() {
        let g = graph();
        let nets = vec![Net {
            source: Coord::new(4, 4),
            sinks: vec![Coord::new(1, 1), Coord::new(8, 8), Coord::new(1, 8)],
        }];
        let routed = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        let tree = &routed.trees[0];
        // A tree visiting all corners is larger than any single path but
        // smaller than three independent paths.
        assert!(tree.len() >= 7);
        assert!(routed.delays[0] > 0.0);
    }

    #[test]
    fn walk_back_stops_at_the_existing_tree_not_the_source() {
        // Source in a corner, two sinks stacked far away: the second sink's
        // walk-back must graft onto the first sink's branch instead of
        // retracing a full independent path from the source.
        let g = graph();
        let source = Coord::new(1, 1);
        let near = Coord::new(8, 1);
        let far = Coord::new(8, 3);
        let nets = vec![Net {
            source,
            sinks: vec![near, far],
        }];
        let routed = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        let tree = &routed.trees[0];
        // An independent path to each sink costs at least 7 + 9 cells of
        // wire; sharing the horizontal run bounds the tree well below that.
        let independent = route_context(
            &g,
            &[
                Net {
                    source,
                    sinks: vec![near],
                },
                Net {
                    source,
                    sinks: vec![far],
                },
            ],
            &RouteOptions::default(),
        )
        .unwrap();
        let independent_edges: usize = independent.trees.iter().map(|t| t.len()).sum();
        assert!(
            tree.len() < independent_edges,
            "tree {} edges vs {} for two independent paths: second sink did \
             not reuse the existing tree",
            tree.len(),
            independent_edges
        );
        // And the shared tree still reaches both sinks (delays finite).
        assert!(routed.delays[0].is_finite() && routed.delays[0] > 0.0);
    }

    #[test]
    fn congestion_resolves_under_pressure() {
        // Many parallel nets crossing the same column must spread across
        // tracks and rows.
        let g = graph();
        let nets: Vec<Net> = (1..=8)
            .map(|y| Net {
                source: Coord::new(1, y),
                sinks: vec![Coord::new(8, y)],
            })
            .collect();
        let routed = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        // Capacity check: recompute usage.
        let mut usage = vec![0usize; g.edges.len()];
        for t in &routed.trees {
            for &e in t {
                usage[e] += 1;
            }
        }
        for (e, &u) in usage.iter().enumerate() {
            assert!(u <= g.edges[e].capacity, "edge {e} overused");
        }
    }

    #[test]
    fn incremental_and_full_ripup_both_resolve_congestion() {
        // The congestion_resolves_under_pressure scenario, routed both ways:
        // identical legality guarantees (no overuse), converged, and the
        // incremental schedule re-routes no more nets than the full one.
        let g = graph();
        let nets: Vec<Net> = (1..=8)
            .map(|y| Net {
                source: Coord::new(1, y),
                sinks: vec![Coord::new(8, y)],
            })
            .collect();
        let check_legal = |routed: &RoutedContext| {
            let mut usage = vec![0usize; g.edges.len()];
            for t in &routed.trees {
                for &e in t {
                    usage[e] += 1;
                }
            }
            for (e, &u) in usage.iter().enumerate() {
                assert!(u <= g.edges[e].capacity, "edge {e} overused");
            }
        };
        let rec_inc = Recorder::enabled();
        let incremental = route_context_with(
            &g,
            &nets,
            &RouteOptions {
                full_ripup: false,
                ..Default::default()
            },
            &rec_inc,
        )
        .unwrap();
        let rec_full = Recorder::enabled();
        let full = route_context_with(
            &g,
            &nets,
            &RouteOptions {
                full_ripup: true,
                ..Default::default()
            },
            &rec_full,
        )
        .unwrap();
        assert!(incremental.converged);
        assert!(full.converged);
        assert_eq!(incremental.overused_edges, 0);
        assert_eq!(full.overused_edges, 0);
        check_legal(&incremental);
        check_legal(&full);
        let inc_rerouted = rec_inc.counter("route.nets_rerouted");
        let full_rerouted = rec_full.counter("route.nets_rerouted");
        assert!(
            inc_rerouted <= full_rerouted,
            "incremental re-routed {inc_rerouted} nets vs full {full_rerouted}"
        );
    }

    #[test]
    fn unroutable_fabric_reports_failure() {
        // A 2x2 fabric with 1 track cannot carry 12 crossing nets.
        let mut arch = ArchSpec::paper_default().with_grid(2, 2);
        arch.routing.tracks_per_channel = 1;
        arch.routing.double_length_tracks = 0;
        let g = RoutingGraph::build(&arch);
        let nets: Vec<Net> = (0..12)
            .map(|i| Net {
                source: Coord::new(0, 1 + (i % 2) as u16),
                sinks: vec![Coord::new(3, 1 + ((i / 2) % 2) as u16)],
            })
            .collect();
        let opts = RouteOptions {
            max_iterations: 8,
            ..Default::default()
        };
        let routed = route_context(&g, &nets, &opts).unwrap();
        assert!(!routed.converged);
        assert!(routed.overused_edges > 0);
        assert_eq!(routed.iterations, opts.max_iterations);
        // Compile-style callers still see the classic error.
        match routed.require_converged() {
            Err(RouteError::Unroutable { overused_edges }) => assert!(overused_edges > 0),
            other => panic!("expected congestion failure, got {other:?}"),
        }
    }

    #[test]
    fn route_recorder_collects_iteration_metrics() {
        let rec = mcfpga_obs::Recorder::enabled();
        let g = graph();
        let nets = vec![Net {
            source: Coord::new(1, 1),
            sinks: vec![Coord::new(5, 1)],
        }];
        let routed = route_context_with(&g, &nets, &RouteOptions::default(), &rec).unwrap();
        assert!(routed.converged);
        assert_eq!(routed.overused_edges, 0);
        let report = rec.report("route");
        assert_eq!(report.counter("route.iterations"), routed.iterations as u64);
        assert_eq!(report.counter("route.nonconverged_contexts"), 0);
        assert!(report.counter("route.nets_rerouted") >= nets.len() as u64);
        assert!(report.span_total_us("route") > 0 || report.spans.len() == 1);
        // One instant trace event per PathFinder iteration, with the
        // iteration's congestion state attached.
        let iters: Vec<_> = rec
            .trace_events()
            .into_iter()
            .filter(|e| e.name == "route_iteration")
            .collect();
        assert_eq!(iters.len(), routed.iterations);
        assert_eq!(iters[0].arg_u64("iteration"), Some(0));
        assert!(iters[0].arg_u64("nets_rerouted").unwrap() >= nets.len() as u64);
        // The run converged, so the final iteration saw no overuse.
        assert_eq!(iters.last().unwrap().arg_u64("overused_edges"), Some(0));
    }

    #[test]
    fn sink_equal_to_source_is_trivial() {
        let g = graph();
        let nets = vec![Net {
            source: Coord::new(3, 3),
            sinks: vec![Coord::new(3, 3)],
        }];
        let routed = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        assert!(routed.trees[0].is_empty());
        assert_eq!(routed.delays[0], 0.0);
    }

    #[test]
    fn routing_is_deterministic() {
        let g = graph();
        let nets = vec![
            Net {
                source: Coord::new(1, 2),
                sinks: vec![Coord::new(7, 5)],
            },
            Net {
                source: Coord::new(2, 7),
                sinks: vec![Coord::new(6, 1), Coord::new(8, 3)],
            },
        ];
        let a = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        let b = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
