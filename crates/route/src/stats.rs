//! Routing-quality statistics: wirelength, segment-kind usage, channel
//! occupancy — the quantities behind the area model's interconnect terms
//! and the delay experiment.

use mcfpga_arch::SegmentKind;
use serde::{Deserialize, Serialize};

use crate::graph::RoutingGraph;
use crate::pathfinder::RoutedContext;

/// Aggregate statistics of one routed context.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoutingStats {
    /// Total edges used (with multiplicity across nets).
    pub total_wirelength: usize,
    /// Edges of each kind used.
    pub single_segments: usize,
    pub double_segments: usize,
    /// Worst per-edge occupancy observed.
    pub max_occupancy: usize,
    /// Histogram of per-edge occupancy (`hist[u]` = edges used by `u` nets;
    /// unused edges are excluded).
    pub occupancy_histogram: Vec<usize>,
    /// Mean source-to-sink delay over nets.
    pub mean_delay: f64,
    /// Worst net delay.
    pub critical_delay: f64,
}

/// Measure a routed context.
pub fn routing_stats(graph: &RoutingGraph, routed: &RoutedContext) -> RoutingStats {
    let mut usage = vec![0usize; graph.edges.len()];
    let mut single = 0usize;
    let mut double = 0usize;
    for tree in &routed.trees {
        for &e in tree {
            usage[e] += 1;
            match graph.edges[e].kind {
                SegmentKind::Single => single += 1,
                SegmentKind::Double => double += 1,
            }
        }
    }
    let max_occupancy = usage.iter().copied().max().unwrap_or(0);
    let mut occupancy_histogram = vec![0usize; max_occupancy + 1];
    for &u in &usage {
        if u > 0 {
            occupancy_histogram[u] += 1;
        }
    }
    let mean_delay = if routed.delays.is_empty() {
        0.0
    } else {
        routed.delays.iter().sum::<f64>() / routed.delays.len() as f64
    };
    RoutingStats {
        total_wirelength: single + double,
        single_segments: single,
        double_segments: double,
        max_occupancy,
        occupancy_histogram,
        mean_delay,
        critical_delay: routed.critical_delay(),
    }
}

impl RoutingStats {
    /// Fraction of used segments that are double-length (how much of the
    /// fabric's fast wiring the router exploited).
    pub fn double_fraction(&self) -> f64 {
        if self.total_wirelength == 0 {
            0.0
        } else {
            self.double_segments as f64 / self.total_wirelength as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathfinder::{route_context, Net, RouteOptions};
    use mcfpga_arch::{ArchSpec, Coord};

    fn routed(arch: &ArchSpec, nets: Vec<Net>) -> (RoutingGraph, RoutedContext) {
        let g = RoutingGraph::build(arch);
        let r = route_context(&g, &nets, &RouteOptions::default()).unwrap();
        (g, r)
    }

    #[test]
    fn stats_count_segments() {
        let arch = ArchSpec::paper_default();
        let (g, r) = routed(
            &arch,
            vec![Net {
                source: Coord::new(1, 1),
                sinks: vec![Coord::new(7, 1)],
            }],
        );
        let s = routing_stats(&g, &r);
        assert_eq!(s.total_wirelength, s.single_segments + s.double_segments);
        assert!(s.total_wirelength >= 3, "6 cells away needs >= 3 hops");
        assert!(s.double_segments > 0, "long straight runs ride DL lines");
        assert_eq!(s.max_occupancy, 1);
        assert_eq!(s.occupancy_histogram[1], s.total_wirelength);
        assert!(s.critical_delay >= s.mean_delay);
    }

    #[test]
    fn occupancy_histogram_sums_to_used_edges() {
        let arch = ArchSpec::paper_default();
        let nets: Vec<Net> = (1..=4)
            .map(|y| Net {
                source: Coord::new(1, y),
                sinks: vec![Coord::new(8, y), Coord::new(4, 4)],
            })
            .collect();
        let (g, r) = routed(&arch, nets);
        let s = routing_stats(&g, &r);
        let used_edges: usize = s.occupancy_histogram.iter().sum();
        let mut distinct = std::collections::HashSet::new();
        for t in &r.trees {
            distinct.extend(t.iter().copied());
        }
        assert_eq!(used_edges, distinct.len());
    }

    #[test]
    fn no_double_tracks_means_no_double_segments() {
        let mut arch = ArchSpec::paper_default();
        arch.routing.double_length_tracks = 0;
        let (g, r) = routed(
            &arch,
            vec![Net {
                source: Coord::new(1, 1),
                sinks: vec![Coord::new(8, 8)],
            }],
        );
        let s = routing_stats(&g, &r);
        assert_eq!(s.double_segments, 0);
        assert_eq!(s.double_fraction(), 0.0);
    }

    #[test]
    fn empty_context_is_all_zero() {
        let arch = ArchSpec::paper_default();
        let (g, r) = routed(&arch, vec![]);
        let s = routing_stats(&g, &r);
        assert_eq!(s.total_wirelength, 0);
        assert_eq!(s.mean_delay, 0.0);
        assert_eq!(s.max_occupancy, 0);
    }
}
