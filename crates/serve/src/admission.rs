//! Pluggable admission control: turn live overload telemetry into shed
//! decisions *before* a job is enqueued.
//!
//! The hard queue-capacity bound is not a policy — a full queue always
//! rejects with [`crate::SubmitError::QueueFull`], exactly as before. An
//! [`AdmissionPolicy`] runs *after* that check and may shed a submission
//! that would otherwise fit, based on the [`AdmissionContext`] the server
//! assembles from its health counters (queue depth and high watermark,
//! the submitting tenant's in-flight count, the rolling wait-time p99).
//!
//! Every shed is attributable: the server bumps `serve.shed.total` and
//! `serve.shed.<reason>` counters, charges the tenant's
//! [`crate::TenantStats::shed`], and emits a correlated `job_shed` trace
//! instant carrying the job id, tenant, and reason — so an operator can
//! reconstruct exactly which tenant lost which jobs and why.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Which kind of work a submission carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobKind {
    Compile,
    Sim,
    Checkpoint,
    Restore,
}

impl JobKind {
    /// Stable lowercase name, used in trace args and metric labels.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Compile => "compile",
            JobKind::Sim => "sim",
            JobKind::Checkpoint => "checkpoint",
            JobKind::Restore => "restore",
        }
    }
}

/// The live overload signals an [`AdmissionPolicy`] decides on. Assembled
/// by the server at submit time; `#[non_exhaustive]` so new signals can be
/// added without breaking external policies.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct AdmissionContext<'a> {
    /// Tenant label of the submission (the default tenant when unlabeled).
    pub tenant: &'a str,
    /// What the submission would run.
    pub kind: JobKind,
    /// Jobs queued right now (the submission is not yet among them).
    pub queue_depth: usize,
    /// Hard queue bound; `queue_depth < queue_capacity` is already checked.
    pub queue_capacity: usize,
    /// Deepest the queue has ever been on this server.
    pub queue_depth_hwm: usize,
    /// The submitting tenant's accepted-but-not-finished job count.
    pub tenant_inflight: u64,
    /// Rolling-window p99 of queue wait, in microseconds (0 until enough
    /// jobs have been dequeued to estimate it).
    pub rolling_wait_p99_us: f64,
}

/// Why a submission was shed. Carried in [`crate::SubmitError::Shed`] and
/// summarized per-reason in `serve.shed.*` counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShedReason {
    /// Queue depth reached the policy's watermark (soft bound below the
    /// hard capacity).
    QueueWatermark { depth: usize, watermark: usize },
    /// The tenant already has its cap of in-flight jobs.
    TenantInflight { inflight: u64, cap: u64 },
    /// A custom policy shed for its own reason.
    Policy(String),
}

impl ShedReason {
    /// Stable counter suffix: `serve.shed.<key>`.
    pub fn key(&self) -> &'static str {
        match self {
            ShedReason::QueueWatermark { .. } => "queue_watermark",
            ShedReason::TenantInflight { .. } => "tenant_inflight",
            ShedReason::Policy(_) => "policy",
        }
    }
}

impl fmt::Display for ShedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShedReason::QueueWatermark { depth, watermark } => {
                write!(f, "queue depth {depth} at watermark {watermark}")
            }
            ShedReason::TenantInflight { inflight, cap } => {
                write!(f, "tenant has {inflight} jobs in flight (cap {cap})")
            }
            ShedReason::Policy(why) => write!(f, "policy: {why}"),
        }
    }
}

/// What the policy decided for one submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Enqueue the job.
    Admit,
    /// Refuse it with [`crate::SubmitError::Shed`].
    Shed(ShedReason),
}

/// A load-shedding policy consulted once per submission, after the hard
/// capacity check. Implementations must be cheap (they run under the queue
/// lock) and side-effect free — the server does all the accounting.
pub trait AdmissionPolicy: fmt::Debug + Send + Sync {
    fn admit(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision;
}

/// The default policy: watermark-based shedding, off until configured.
///
/// With both knobs `None` (the default) it admits everything, so a default
/// server behaves exactly as before — backpressure only at hard capacity.
///
/// ```
/// use mcfpga_serve::{ServeConfig, WatermarkAdmission};
/// use std::sync::Arc;
///
/// let cfg = ServeConfig::default().with_admission(Arc::new(
///     WatermarkAdmission::default()
///         .with_queue_watermark(24)
///         .with_tenant_inflight_cap(4),
/// ));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WatermarkAdmission {
    /// Shed any submission arriving while `queue_depth >= watermark`.
    pub queue_watermark: Option<usize>,
    /// Shed a tenant's submission while it has this many jobs in flight.
    pub tenant_inflight_cap: Option<u64>,
}

impl WatermarkAdmission {
    /// Soft queue-depth bound (below the hard capacity).
    pub fn with_queue_watermark(mut self, watermark: usize) -> Self {
        self.queue_watermark = Some(watermark);
        self
    }

    /// Per-tenant in-flight cap — the aggressor-isolation lever: one tenant
    /// flooding the server sheds against its own cap while others admit.
    pub fn with_tenant_inflight_cap(mut self, cap: u64) -> Self {
        self.tenant_inflight_cap = Some(cap);
        self
    }
}

impl AdmissionPolicy for WatermarkAdmission {
    fn admit(&self, ctx: &AdmissionContext<'_>) -> AdmissionDecision {
        if let Some(watermark) = self.queue_watermark {
            if ctx.queue_depth >= watermark {
                return AdmissionDecision::Shed(ShedReason::QueueWatermark {
                    depth: ctx.queue_depth,
                    watermark,
                });
            }
        }
        if let Some(cap) = self.tenant_inflight_cap {
            if ctx.tenant_inflight >= cap {
                return AdmissionDecision::Shed(ShedReason::TenantInflight {
                    inflight: ctx.tenant_inflight,
                    cap,
                });
            }
        }
        AdmissionDecision::Admit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(depth: usize, inflight: u64) -> AdmissionContext<'static> {
        AdmissionContext {
            tenant: "t",
            kind: JobKind::Sim,
            queue_depth: depth,
            queue_capacity: 64,
            queue_depth_hwm: depth,
            tenant_inflight: inflight,
            rolling_wait_p99_us: 0.0,
        }
    }

    #[test]
    fn default_policy_admits_everything() {
        let p = WatermarkAdmission::default();
        assert_eq!(p.admit(&ctx(63, 1_000_000)), AdmissionDecision::Admit);
    }

    #[test]
    fn watermark_sheds_at_and_above_the_line() {
        let p = WatermarkAdmission::default().with_queue_watermark(4);
        assert_eq!(p.admit(&ctx(3, 0)), AdmissionDecision::Admit);
        match p.admit(&ctx(4, 0)) {
            AdmissionDecision::Shed(
                r @ ShedReason::QueueWatermark {
                    depth: 4,
                    watermark: 4,
                },
            ) => {
                assert_eq!(r.key(), "queue_watermark");
            }
            other => panic!("expected watermark shed, got {other:?}"),
        }
    }

    #[test]
    fn inflight_cap_sheds_the_saturated_tenant_only() {
        let p = WatermarkAdmission::default().with_tenant_inflight_cap(2);
        assert_eq!(p.admit(&ctx(0, 1)), AdmissionDecision::Admit);
        match p.admit(&ctx(0, 2)) {
            AdmissionDecision::Shed(ShedReason::TenantInflight {
                inflight: 2,
                cap: 2,
            }) => {}
            other => panic!("expected inflight shed, got {other:?}"),
        }
    }
}
