//! Content-addressed LRU cache of compiled designs.

use std::collections::HashMap;
use std::sync::Arc;

use crate::design::CompiledDesign;

/// A bounded map from [`crate::design_key`] to compiled artifact, evicting
/// the least-recently-used design on overflow. Capacities are small (tens
/// of designs), so the O(capacity) eviction scan is cheaper than keeping an
/// intrusive recency list.
#[derive(Debug)]
pub(crate) struct DesignCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, (u64, Arc<CompiledDesign>)>,
}

impl DesignCache {
    pub(crate) fn new(capacity: usize) -> DesignCache {
        DesignCache {
            capacity: capacity.max(1),
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Look up a design, refreshing its recency on hit.
    pub(crate) fn get(&mut self, key: u64) -> Option<Arc<CompiledDesign>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|(used, design)| {
            *used = tick;
            design.clone()
        })
    }

    /// Insert a design, evicting the least-recently-used entry if the cache
    /// is full. Returns the number of evictions (0 or 1).
    pub(crate) fn insert(&mut self, key: u64, design: Arc<CompiledDesign>) -> u64 {
        self.tick += 1;
        let mut evicted = 0;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&lru) = self
                .entries
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&lru);
                evicted = 1;
            }
        }
        self.entries.insert(key, (self.tick, design));
        evicted
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;
    use mcfpga_netlist::library;
    use mcfpga_sim::CompileOptions;

    fn design() -> Arc<CompiledDesign> {
        let arch = ArchSpec::paper_default();
        let circuits = vec![library::adder(2)];
        Arc::new(
            CompiledDesign::compile(
                &arch,
                &circuits,
                &CompileOptions::default().with_parallel(false),
            )
            .expect("compiles"),
        )
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let d = design();
        let mut cache = DesignCache::new(2);
        assert_eq!(cache.insert(1, d.clone()), 0);
        assert_eq!(cache.insert(2, d.clone()), 0);
        // Touch key 1 so key 2 is the LRU.
        assert!(cache.get(1).is_some());
        assert_eq!(cache.insert(3, d.clone()), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "LRU entry survived eviction");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let d = design();
        let mut cache = DesignCache::new(2);
        cache.insert(1, d.clone());
        cache.insert(2, d.clone());
        assert_eq!(cache.insert(1, d.clone()), 0);
        assert_eq!(cache.len(), 2);
    }
}
