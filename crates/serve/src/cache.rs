//! Content-addressed LRU cache of compiled designs, with near-match lookup
//! for delta compilation.

use std::collections::HashMap;
use std::sync::Arc;

use crate::design::{CompiledDesign, DesignFingerprint};

/// A bounded map from [`crate::design_key`] to compiled artifact, evicting
/// the least-recently-used design on overflow. Capacities are small (tens
/// of designs), so the O(capacity) eviction scan is cheaper than keeping an
/// intrusive recency list.
///
/// Capacity 0 means *caching disabled*: every lookup misses, every insert
/// is dropped, and the cache never holds a design — the explicit
/// pass-through path for callers that want each compile to run cold.
#[derive(Debug)]
pub(crate) struct DesignCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<u64, (u64, Arc<CompiledDesign>)>,
}

impl DesignCache {
    pub(crate) fn new(capacity: usize) -> DesignCache {
        DesignCache {
            capacity,
            tick: 0,
            entries: HashMap::new(),
        }
    }

    /// Look up a design, refreshing its recency on hit.
    pub(crate) fn get(&mut self, key: u64) -> Option<Arc<CompiledDesign>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|(used, design)| {
            *used = tick;
            design.clone()
        })
    }

    /// After an exact miss: find the best cached delta base for `fp` — a
    /// design compiled under the same architecture and router options
    /// ([`DesignFingerprint::env_matches`]) sharing at least one identical
    /// per-context netlist hash. Among candidates the one sharing the
    /// *most* contexts wins; ties break to the most recently used (larger
    /// recency tick — deterministic, since ticks are unique). The winner's
    /// recency is refreshed: serving as a delta base is a use.
    ///
    /// Returns the base and how many context slots it shares with `fp`.
    pub(crate) fn near_match(
        &mut self,
        fp: &DesignFingerprint,
    ) -> Option<(Arc<CompiledDesign>, usize)> {
        self.tick += 1;
        let tick = self.tick;
        let mut best: Option<(u64, usize, u64)> = None;
        for (&key, &(used, ref design)) in &self.entries {
            let candidate = design.design_fingerprint();
            if key == fp.key() || !candidate.env_matches(fp) {
                continue;
            }
            let shared = candidate.shared_contexts(fp);
            if shared == 0 {
                continue;
            }
            if best.is_none_or(|(_, s, u)| (shared, used) > (s, u)) {
                best = Some((key, shared, used));
            }
        }
        let (key, shared, _) = best?;
        let (used, design) = self.entries.get_mut(&key).expect("winner is present");
        *used = tick;
        Some((design.clone(), shared))
    }

    /// Insert a design, evicting the least-recently-used entry if the cache
    /// is full. Returns the number of evictions (0 or 1). With capacity 0
    /// the design is dropped untouched (caching disabled).
    pub(crate) fn insert(&mut self, key: u64, design: Arc<CompiledDesign>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        let mut evicted = 0;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(&lru) = self
                .entries
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k)
            {
                self.entries.remove(&lru);
                evicted = 1;
            }
        }
        self.entries.insert(key, (self.tick, design));
        evicted
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;
    use mcfpga_netlist::{library, Netlist};
    use mcfpga_sim::CompileOptions;
    use proptest::prelude::*;

    fn design() -> Arc<CompiledDesign> {
        let arch = ArchSpec::paper_default();
        let circuits = vec![library::adder(2)];
        Arc::new(
            CompiledDesign::compile(
                &arch,
                &circuits,
                &CompileOptions::default().with_parallel(false),
            )
            .expect("compiles"),
        )
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let d = design();
        let mut cache = DesignCache::new(2);
        assert_eq!(cache.insert(1, d.clone()), 0);
        assert_eq!(cache.insert(2, d.clone()), 0);
        // Touch key 1 so key 2 is the LRU.
        assert!(cache.get(1).is_some());
        assert_eq!(cache.insert(3, d.clone()), 1);
        assert_eq!(cache.len(), 2);
        assert!(cache.get(2).is_none(), "LRU entry survived eviction");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let d = design();
        let mut cache = DesignCache::new(2);
        cache.insert(1, d.clone());
        cache.insert(2, d.clone());
        assert_eq!(cache.insert(1, d.clone()), 0);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn capacity_zero_disables_caching() {
        let d = design();
        let mut cache = DesignCache::new(0);
        assert_eq!(cache.insert(1, d.clone()), 0, "insert must not evict");
        assert_eq!(cache.len(), 0, "insert must not store");
        assert!(cache.get(1).is_none());
        assert!(
            cache.near_match(d.design_fingerprint()).is_none(),
            "nothing stored, so nothing to near-match"
        );
    }

    // ---- model-based proptest ------------------------------------------
    //
    // The reference model is the dumbest possible implementation of the
    // documented semantics: an association list with explicit recency
    // counters. The real cache must agree with it on every observable —
    // hit/miss, near-match winner (identified by key), shared count,
    // eviction count, and length — across arbitrary op sequences.

    /// Cheap netlists with distinct content for fingerprint building.
    fn circuit(id: u8) -> Netlist {
        library::parity(2 + (id as usize % 4))
    }

    fn fingerprint(ctx_ids: &[u8], route_sel: u8) -> DesignFingerprint {
        let arch = ArchSpec::paper_default();
        let circuits: Vec<Netlist> = ctx_ids.iter().map(|&i| circuit(i)).collect();
        // Two distinct router-knob environments, so near-match must prove
        // it never pairs designs across an env boundary.
        let iters = if route_sel == 0 { 40 } else { 7 };
        let opts = CompileOptions::default()
            .with_route(mcfpga_route::RouteOptions::default().with_max_iterations(iters));
        DesignFingerprint::new(&arch, &circuits, &opts)
    }

    /// The naive reference: Vec of (key, fingerprint, last-used tick).
    struct Model {
        capacity: usize,
        tick: u64,
        entries: Vec<(u64, DesignFingerprint, u64)>,
    }

    impl Model {
        fn get(&mut self, key: u64) -> bool {
            self.tick += 1;
            match self.entries.iter_mut().find(|(k, _, _)| *k == key) {
                Some(e) => {
                    e.2 = self.tick;
                    true
                }
                None => false,
            }
        }

        fn near_match(&mut self, fp: &DesignFingerprint) -> Option<(u64, usize)> {
            self.tick += 1;
            let tick = self.tick;
            let best = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (k, f, _))| *k != fp.key() && f.env_matches(fp))
                .map(|(i, (k, f, used))| (i, *k, f.shared_contexts(fp), *used))
                .filter(|&(_, _, shared, _)| shared > 0)
                .max_by_key(|&(_, _, shared, used)| (shared, used))?;
            self.entries[best.0].2 = tick;
            Some((best.1, best.2))
        }

        fn insert(&mut self, key: u64, fp: DesignFingerprint) -> u64 {
            if self.capacity == 0 {
                return 0;
            }
            self.tick += 1;
            let mut evicted = 0;
            let exists = self.entries.iter().any(|(k, _, _)| *k == key);
            if !exists && self.entries.len() >= self.capacity {
                let lru = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, (_, _, used))| *used)
                    .map(|(i, _)| i)
                    .expect("non-empty");
                self.entries.remove(lru);
                evicted = 1;
            }
            match self.entries.iter_mut().find(|(k, _, _)| *k == key) {
                Some(e) => e.2 = self.tick,
                None => self.entries.push((key, fp, self.tick)),
            }
            evicted
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn cache_matches_naive_reference(
            capacity in 0usize..4,
            // Each op: (kind 0=get 1=insert 2=near_match, context ids,
            // router-env selector). Fingerprints are built from the same
            // encoding on both sides, so cache and model see equal keys.
            ops in proptest::collection::vec(
                (0u8..3, proptest::collection::vec(0u8..4, 1..4), 0u8..2),
                1..40,
            ),
        ) {
            let mut cache = DesignCache::new(capacity);
            let mut model = Model { capacity, tick: 0, entries: Vec::new() };
            for (kind, ctx_ids, route_sel) in ops {
                let fp = fingerprint(&ctx_ids, route_sel);
                match kind {
                    0 => {
                        let got = cache.get(fp.key());
                        let want = model.get(fp.key());
                        prop_assert_eq!(got.is_some(), want);
                        if let Some(d) = got {
                            prop_assert_eq!(d.key(), fp.key());
                        }
                    }
                    1 => {
                        let design = Arc::new(CompiledDesign::fake(fp.clone()));
                        let got = cache.insert(fp.key(), design);
                        let want = model.insert(fp.key(), fp);
                        prop_assert_eq!(got, want);
                    }
                    _ => {
                        let got = cache.near_match(&fp).map(|(d, s)| (d.key(), s));
                        let want = model.near_match(&fp);
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(cache.len(), model.entries.len());
            }
        }
    }
}
