//! Server sizing knobs.

use std::sync::Arc;
use std::time::Duration;

use crate::admission::{AdmissionPolicy, WatermarkAdmission};

/// Sizing and policy knobs for a [`crate::Server`].
///
/// Marked `#[non_exhaustive]`: construct via [`ServeConfig::default`] and
/// the `with_*` builders so future knobs (cache policy, priorities, …) stay
/// non-breaking.
///
/// ```
/// use mcfpga_serve::ServeConfig;
/// use std::time::Duration;
///
/// let cfg = ServeConfig::default()
///     .with_workers(4)
///     .with_queue_capacity(128)
///     .with_default_deadline(Some(Duration::from_secs(30)));
/// assert_eq!(cfg.workers, 4);
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct ServeConfig {
    /// Worker threads draining the submission queue. `0` resolves to the
    /// machine's available parallelism at server start.
    pub workers: usize,
    /// Bound on queued (not yet dequeued) jobs; submissions beyond it are
    /// rejected with [`crate::SubmitError::QueueFull`] — explicit
    /// backpressure instead of unbounded memory growth.
    pub queue_capacity: usize,
    /// Compiled designs kept in the content-addressed LRU cache.
    ///
    /// `0` disables caching entirely: every compile runs cold (no exact or
    /// near-match hits, nothing retained, nothing evicted) and
    /// [`crate::Server::cached_designs`] stays 0. This is an explicit
    /// pass-through, not a clamp — earlier releases silently treated 0
    /// as 1.
    pub cache_capacity: usize,
    /// Deadline applied to jobs that don't carry their own. A job still
    /// queued when its deadline elapses completes with
    /// [`crate::ServeError::Deadline`] instead of running.
    pub default_deadline: Option<Duration>,
    /// Load-shedding policy consulted after the hard capacity check. The
    /// default ([`WatermarkAdmission::default`]) never sheds.
    pub admission: Arc<dyn AdmissionPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 64,
            cache_capacity: 32,
            default_deadline: None,
            admission: Arc::new(WatermarkAdmission::default()),
        }
    }
}

impl ServeConfig {
    /// Worker threads (`0` = available parallelism).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Submission-queue bound before [`crate::SubmitError::QueueFull`].
    pub fn with_queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.queue_capacity = queue_capacity;
        self
    }

    /// Compiled designs kept in the LRU cache. `0` disables caching: every
    /// compile runs cold and nothing is retained (see
    /// [`ServeConfig::cache_capacity`]).
    pub fn with_cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cache_capacity = cache_capacity;
        self
    }

    /// Deadline for jobs that don't carry their own.
    pub fn with_default_deadline(mut self, deadline: Option<Duration>) -> Self {
        self.default_deadline = deadline;
        self
    }

    /// Admission policy; every shed it causes surfaces as
    /// [`crate::SubmitError::Shed`], `serve.shed.*` counters, the tenant's
    /// shed count, and a correlated `job_shed` trace event.
    pub fn with_admission(mut self, admission: Arc<dyn AdmissionPolicy>) -> Self {
        self.admission = admission;
        self
    }

    /// Worker threads the server will actually spawn.
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        }
    }
}
