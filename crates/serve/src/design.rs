//! The immutable compile artifact the cache stores and sessions execute.

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::Netlist;
use mcfpga_obs::Recorder;
use mcfpga_sim::{CompileError, CompileOptions, CompiledKernel, MultiDevice};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Content address of a compile request: FNV-1a over the serialized
/// architecture, the serialized netlist set, and the router knobs.
///
/// `CompileOptions::parallel` is deliberately *excluded*: the parallel and
/// serial schedules produce bit-for-bit identical devices (a property the
/// sim crate's tests pin down), so they must share a cache slot.
pub fn design_key(arch: &ArchSpec, circuits: &[Netlist], options: &CompileOptions) -> u64 {
    let mut h = FNV_OFFSET;
    let arch_json = serde_json::to_string(arch).expect("ArchSpec serializes");
    h = fnv1a(h, arch_json.as_bytes());
    for c in circuits {
        let c_json = serde_json::to_string(c).expect("Netlist serializes");
        h = fnv1a(h, c_json.as_bytes());
    }
    let r = &options.route;
    h = fnv1a(h, &(r.max_iterations as u64).to_le_bytes());
    h = fnv1a(h, &r.present_growth.to_bits().to_le_bytes());
    h = fnv1a(h, &r.history_increment.to_bits().to_le_bytes());
    h = fnv1a(h, &[r.full_ripup as u8]);
    h
}

/// Everything a session needs to execute a compiled workload, detached from
/// the [`MultiDevice`] that produced it: per-context batch kernels, initial
/// register state, and a configuration fingerprint. Immutable once built,
/// so one `Arc<CompiledDesign>` is shared by the cache and every session
/// running it. Compare designs through [`CompiledDesign::fingerprint`] and
/// [`CompiledDesign::kernel`] (`compile_us` is wall-clock, not content).
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    key: u64,
    kernels: Vec<CompiledKernel>,
    initial_regs: Vec<Vec<bool>>,
    fingerprint: u64,
    compile_us: u64,
}

impl CompiledDesign {
    /// Compile `circuits` onto `arch` and extract the serving artifact,
    /// discarding the device's own telemetry (disabled recorder). Inside a
    /// server, compiles instead run through [`CompiledDesign::compile_with`]
    /// so per-phase spans land in the serving trace, correlated to the job
    /// that caused them.
    pub fn compile(
        arch: &ArchSpec,
        circuits: &[Netlist],
        options: &CompileOptions,
    ) -> Result<CompiledDesign, CompileError> {
        CompiledDesign::compile_with(arch, circuits, options, &Recorder::disabled())
    }

    /// Like [`CompiledDesign::compile`], but routing the compile pipeline's
    /// telemetry (per-context map/place/route spans) into `rec`. When `rec`
    /// is a [`Recorder::correlated`] handle, every span is stamped with the
    /// owning job id and tenant.
    pub fn compile_with(
        arch: &ArchSpec,
        circuits: &[Netlist],
        options: &CompileOptions,
        rec: &Recorder,
    ) -> Result<CompiledDesign, CompileError> {
        let start = std::time::Instant::now();
        let mut device = MultiDevice::compile_opts(arch, circuits, options, rec)?;
        let n = device.n_contexts();
        let mut kernels = Vec::with_capacity(n);
        let mut initial_regs = Vec::with_capacity(n);
        let mut fp = FNV_OFFSET;
        for c in 0..n {
            kernels.push(device.kernel(c).expect("context in range").clone());
            initial_regs.push(device.initial_registers(c).expect("context in range"));
            for bit in device.switch_state_bits(c) {
                fp = fnv1a(fp, &[bit as u8]);
            }
        }
        Ok(CompiledDesign {
            key: design_key(arch, circuits, options),
            kernels,
            initial_regs,
            fingerprint: fp,
            compile_us: start.elapsed().as_micros() as u64,
        })
    }

    /// The content address this design is cached under.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Programmed context count.
    pub fn n_contexts(&self) -> usize {
        self.kernels.len()
    }

    /// The batch kernel for `context` (panics out of range; sessions
    /// validate the index first).
    pub fn kernel(&self, context: usize) -> &CompiledKernel {
        &self.kernels[context]
    }

    /// Power-on register state of `context`.
    pub fn initial_registers(&self, context: usize) -> &[bool] {
        &self.initial_regs[context]
    }

    /// FNV-1a over every context's routing-switch state — a cheap identity
    /// for "same configuration bits", used by tests to prove cache hits
    /// return the cold-compile artifact.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Wall-clock microseconds the compile took (0 on a cache hit, since
    /// the cached artifact is returned without recompiling).
    pub fn compile_us(&self) -> u64 {
        self.compile_us
    }
}
