//! The immutable compile artifact the cache stores and sessions execute,
//! and the structured content address it is filed under.

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::Netlist;
use mcfpga_obs::Recorder;
use mcfpga_sim::{
    CompileError, CompileOptions, CompiledKernel, ContextArtifacts, DeltaSeed, DeltaStats,
    MultiDevice,
};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// FNV-1a over a list of byte strings with explicit framing: the element
/// count, then each element's length prefix followed by its bytes. Without
/// the framing, two different lists whose concatenations coincide would
/// collide (`["ab","c"]` vs `["a","bc"]`); with it, list boundaries are part
/// of the hash.
pub(crate) fn fnv1a_framed<'a>(mut h: u64, parts: impl ExactSizeIterator<Item = &'a [u8]>) -> u64 {
    h = fnv1a(h, &(parts.len() as u64).to_le_bytes());
    for p in parts {
        h = fnv1a(h, &(p.len() as u64).to_le_bytes());
        h = fnv1a(h, p);
    }
    h
}

/// Structured content address of a compile request: one hash for the
/// architecture, one for the router knobs, and one *per context netlist* —
/// the shape that lets the design cache see that two requests share most of
/// their contexts and delta-compile only the ones that changed.
///
/// Two fingerprints with equal [`DesignFingerprint::key`] describe
/// byte-identical requests. Two fingerprints that agree on
/// [`DesignFingerprint::env_matches`] were compiled under the same
/// architecture and router options, so their per-context artifacts are
/// interchangeable wherever the context hashes agree.
///
/// Stability caveat: the key is a cache address, not a wire format — it may
/// change across releases (hash layout, serialization details). What may
/// *not* change is artifact bit-identity: however a design is compiled
/// (cold, delta, any release), identical inputs must yield identical
/// kernels, registers, and switch bits.
///
/// `CompileOptions::parallel` is deliberately *excluded*: the parallel and
/// serial schedules produce bit-for-bit identical devices (a property the
/// sim crate's tests pin down), so they must share a cache slot.
/// `CompileOptions::kernel` is deliberately *included*: the kernel
/// optimizer changes the compiled instruction stream (identical behaviour,
/// different artifact), so optimized and unoptimized designs must never
/// alias in the cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignFingerprint {
    arch: u64,
    route: u64,
    contexts: Vec<u64>,
    key: u64,
}

impl DesignFingerprint {
    /// Fingerprint a compile request.
    pub fn new(arch: &ArchSpec, circuits: &[Netlist], options: &CompileOptions) -> Self {
        let arch_json = serde_json::to_string(arch).expect("ArchSpec serializes");
        let arch_hash = fnv1a_framed(FNV_OFFSET, std::iter::once(arch_json.as_bytes()));
        let r = &options.route;
        let mut route_hash = FNV_OFFSET;
        route_hash = fnv1a(route_hash, &(r.max_iterations as u64).to_le_bytes());
        route_hash = fnv1a(route_hash, &r.present_growth.to_bits().to_le_bytes());
        route_hash = fnv1a(route_hash, &r.history_increment.to_bits().to_le_bytes());
        route_hash = fnv1a(route_hash, &[r.full_ripup as u8]);
        // Kernel lowering knobs live in the same options hash: a framed
        // one-byte block per knob, appended after the router fields.
        route_hash = fnv1a(route_hash, &[options.kernel.optimize as u8]);
        let contexts: Vec<u64> = circuits
            .iter()
            .map(|c| {
                let json = serde_json::to_string(c).expect("Netlist serializes");
                fnv1a_framed(FNV_OFFSET, std::iter::once(json.as_bytes()))
            })
            .collect();
        // The combined key frames its components too: fixed 8-byte blocks
        // for the arch/route hashes, then the context count, then each
        // context hash — no concatenation ambiguity anywhere.
        let mut key = FNV_OFFSET;
        key = fnv1a(key, &arch_hash.to_le_bytes());
        key = fnv1a(key, &route_hash.to_le_bytes());
        key = fnv1a(key, &(contexts.len() as u64).to_le_bytes());
        for &c in &contexts {
            key = fnv1a(key, &c.to_le_bytes());
        }
        DesignFingerprint {
            arch: arch_hash,
            route: route_hash,
            contexts,
            key,
        }
    }

    /// The combined cache key (see the type docs for stability caveats).
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Hash of the serialized architecture.
    pub fn arch_hash(&self) -> u64 {
        self.arch
    }

    /// Hash of the routing and kernel options that shape the artifact.
    pub fn route_hash(&self) -> u64 {
        self.route
    }

    /// Per-context netlist hashes, in context order.
    pub fn context_hashes(&self) -> &[u64] {
        &self.contexts
    }

    /// Number of contexts in the fingerprinted request.
    pub fn n_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Whether `other` was compiled under the same architecture and router
    /// options — the precondition for any per-context artifact exchange.
    pub fn env_matches(&self, other: &DesignFingerprint) -> bool {
        self.arch == other.arch && self.route == other.route
    }

    /// How many context slots hold byte-identical netlists in both
    /// fingerprints (compared position-wise up to the shorter one).
    pub fn shared_contexts(&self, other: &DesignFingerprint) -> usize {
        self.contexts
            .iter()
            .zip(&other.contexts)
            .filter(|(a, b)| a == b)
            .count()
    }
}

/// Content address of a compile request — the combined
/// [`DesignFingerprint::key`]. Kept as the simple entry point for callers
/// that only need the exact-match address.
pub fn design_key(arch: &ArchSpec, circuits: &[Netlist], options: &CompileOptions) -> u64 {
    DesignFingerprint::new(arch, circuits, options).key()
}

/// Everything a session needs to execute a compiled workload, detached from
/// the [`MultiDevice`] that produced it: per-context batch kernels, initial
/// register state, and a configuration fingerprint — plus the per-context
/// intermediate compile artifacts that let a near-match cache hit
/// delta-compile only the contexts that changed. Immutable once built, so
/// one `Arc<CompiledDesign>` is shared by the cache and every session
/// running it. Compare designs through [`CompiledDesign::fingerprint`] and
/// [`CompiledDesign::kernel`] (`compile_us` is wall-clock, not content).
#[derive(Debug, Clone)]
pub struct CompiledDesign {
    fingerprint: DesignFingerprint,
    kernels: Vec<CompiledKernel>,
    initial_regs: Vec<Vec<bool>>,
    artifacts: Vec<ContextArtifacts>,
    switch_fp: u64,
    compile_us: u64,
    /// The compile request the design was built from, retained so a session
    /// checkpoint can carry everything needed to recompile the design on a
    /// server that has never seen it (see [`crate::SessionSnapshot`]).
    arch: ArchSpec,
    circuits: Vec<Netlist>,
    options: CompileOptions,
}

impl CompiledDesign {
    /// Compile `circuits` onto `arch` and extract the serving artifact,
    /// discarding the device's own telemetry (disabled recorder). Inside a
    /// server, compiles instead run through [`CompiledDesign::compile_with`]
    /// so per-phase spans land in the serving trace, correlated to the job
    /// that caused them.
    pub fn compile(
        arch: &ArchSpec,
        circuits: &[Netlist],
        options: &CompileOptions,
    ) -> Result<CompiledDesign, CompileError> {
        CompiledDesign::compile_with(arch, circuits, options, &Recorder::disabled())
    }

    /// Like [`CompiledDesign::compile`], but routing the compile pipeline's
    /// telemetry (per-context map/place/route spans) into `rec`. When `rec`
    /// is a [`Recorder::correlated`] handle, every span is stamped with the
    /// owning job id and tenant.
    pub fn compile_with(
        arch: &ArchSpec,
        circuits: &[Netlist],
        options: &CompileOptions,
        rec: &Recorder,
    ) -> Result<CompiledDesign, CompileError> {
        CompiledDesign::compile_cancellable(arch, circuits, options, rec, None)
    }

    /// Like [`CompiledDesign::compile_with`], polling `cancel` between
    /// per-context compile phases: when it reports `true`, the compile
    /// stops with [`CompileError::DeadlineExceeded`] — how a server stops
    /// burning a worker on a job whose deadline lapsed mid-service.
    pub fn compile_cancellable(
        arch: &ArchSpec,
        circuits: &[Netlist],
        options: &CompileOptions,
        rec: &Recorder,
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<CompiledDesign, CompileError> {
        let start = std::time::Instant::now();
        let fingerprint = DesignFingerprint::new(arch, circuits, options);
        let seeds = vec![DeltaSeed::Cold; circuits.len()];
        let (device, _) = MultiDevice::compile_delta(arch, circuits, options, rec, &seeds, cancel)?;
        Ok(CompiledDesign::from_device(
            device,
            fingerprint,
            start,
            arch,
            circuits,
            options,
        ))
    }

    /// Recompile a perturbed request against a cached near-match `base`,
    /// reusing every artifact whose inputs are unchanged: contexts whose
    /// netlist hash matches `base`'s are taken verbatim; changed contexts
    /// re-enter the pipeline seeded with `base`'s stale artifacts (reused
    /// per-stage behind equality gates — see
    /// [`MultiDevice::compile_delta`]). The result is bit-for-bit identical
    /// to a cold compile of the same request; only the time to produce it
    /// differs. Returns the design plus what was reused.
    ///
    /// The caller must have checked `fingerprint.env_matches(base)` — the
    /// per-context exchange is only sound under the same architecture and
    /// router options (debug-asserted here).
    pub fn delta_compile_with(
        arch: &ArchSpec,
        circuits: &[Netlist],
        options: &CompileOptions,
        rec: &Recorder,
        base: &CompiledDesign,
        cancel: Option<&(dyn Fn() -> bool + Sync)>,
    ) -> Result<(CompiledDesign, DeltaStats), CompileError> {
        let start = std::time::Instant::now();
        let fingerprint = DesignFingerprint::new(arch, circuits, options);
        debug_assert!(
            fingerprint.env_matches(&base.fingerprint),
            "delta base compiled under a different arch / route options"
        );
        let seeds: Vec<DeltaSeed<'_>> = fingerprint
            .context_hashes()
            .iter()
            .enumerate()
            .map(|(c, h)| match base.artifacts.get(c) {
                Some(a) if base.fingerprint.contexts.get(c) == Some(h) => DeltaSeed::Unchanged(a),
                Some(a) => DeltaSeed::Changed(a),
                None => DeltaSeed::Cold,
            })
            .collect();
        let (device, stats) =
            MultiDevice::compile_delta(arch, circuits, options, rec, &seeds, cancel)?;
        Ok((
            CompiledDesign::from_device(device, fingerprint, start, arch, circuits, options),
            stats,
        ))
    }

    fn from_device(
        mut device: MultiDevice,
        fingerprint: DesignFingerprint,
        start: std::time::Instant,
        arch: &ArchSpec,
        circuits: &[Netlist],
        options: &CompileOptions,
    ) -> CompiledDesign {
        let n = device.n_contexts();
        let mut kernels = Vec::with_capacity(n);
        let mut initial_regs = Vec::with_capacity(n);
        let mut fp = FNV_OFFSET;
        for c in 0..n {
            kernels.push(device.kernel(c).expect("context in range").clone());
            initial_regs.push(device.initial_registers(c).expect("context in range"));
            for bit in device.switch_state_bits(c) {
                fp = fnv1a(fp, &[bit as u8]);
            }
        }
        CompiledDesign {
            fingerprint,
            kernels,
            initial_regs,
            artifacts: device.context_artifacts(),
            switch_fp: fp,
            compile_us: start.elapsed().as_micros() as u64,
            arch: arch.clone(),
            circuits: circuits.to_vec(),
            options: *options,
        }
    }

    /// Build a design with the given fingerprint and no contexts — a stand-in
    /// for cache-behavior tests that must not pay for real compiles.
    #[cfg(test)]
    pub(crate) fn fake(fingerprint: DesignFingerprint) -> CompiledDesign {
        CompiledDesign {
            fingerprint,
            kernels: Vec::new(),
            initial_regs: Vec::new(),
            artifacts: Vec::new(),
            switch_fp: 0,
            compile_us: 0,
            arch: ArchSpec::paper_default(),
            circuits: Vec::new(),
            options: CompileOptions::default(),
        }
    }

    /// The content address this design is cached under.
    pub fn key(&self) -> u64 {
        self.fingerprint.key()
    }

    /// The structured content address: arch/route hashes plus one hash per
    /// context netlist — what the near-match cache compares.
    pub fn design_fingerprint(&self) -> &DesignFingerprint {
        &self.fingerprint
    }

    /// Programmed context count.
    pub fn n_contexts(&self) -> usize {
        self.kernels.len()
    }

    /// The batch kernel for `context` (panics out of range; sessions
    /// validate the index first).
    pub fn kernel(&self, context: usize) -> &CompiledKernel {
        &self.kernels[context]
    }

    /// Power-on register state of `context`.
    pub fn initial_registers(&self, context: usize) -> &[bool] {
        &self.initial_regs[context]
    }

    /// FNV-1a over every context's routing-switch state — a cheap identity
    /// for "same configuration bits", used by tests to prove cache hits
    /// (and delta compiles) return the cold-compile artifact.
    pub fn fingerprint(&self) -> u64 {
        self.switch_fp
    }

    /// Wall-clock microseconds the compile took (0 on a cache hit, since
    /// the cached artifact is returned without recompiling).
    pub fn compile_us(&self) -> u64 {
        self.compile_us
    }

    /// The architecture the design was compiled onto.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// The per-context netlists of the compile request.
    pub fn circuits(&self) -> &[Netlist] {
        &self.circuits
    }

    /// The compile options of the request.
    pub fn options(&self) -> &CompileOptions {
        &self.options
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw_unframed(parts: &[&[u8]]) -> u64 {
        parts.iter().fold(FNV_OFFSET, |h, p| fnv1a(h, p))
    }

    #[test]
    fn framed_hash_separates_list_boundaries() {
        // The adversarial shape the framing exists for: same concatenated
        // bytes, different element boundaries. Unframed FNV collides on
        // these by construction; the framed hash must not.
        let a: &[&[u8]] = &[b"ab", b"c"];
        let b: &[&[u8]] = &[b"a", b"bc"];
        assert_eq!(
            raw_unframed(a),
            raw_unframed(b),
            "premise: unframed collides"
        );
        assert_ne!(
            fnv1a_framed(FNV_OFFSET, a.iter().copied()),
            fnv1a_framed(FNV_OFFSET, b.iter().copied()),
        );
        // Element count is part of the frame too: a list and its
        // empty-padded variant hash differently even though the
        // concatenated payload is identical.
        let c: &[&[u8]] = &[b"abc"];
        let d: &[&[u8]] = &[b"abc", b""];
        assert_eq!(
            raw_unframed(c),
            raw_unframed(d),
            "premise: unframed collides"
        );
        assert_ne!(
            fnv1a_framed(FNV_OFFSET, c.iter().copied()),
            fnv1a_framed(FNV_OFFSET, d.iter().copied()),
        );
    }

    #[test]
    fn design_key_depends_on_circuit_list_structure() {
        use mcfpga_netlist::library;
        let arch = mcfpga_arch::ArchSpec::paper_default();
        let opts = CompileOptions::default();
        let c = library::adder(2);
        let one = design_key(&arch, std::slice::from_ref(&c), &opts);
        let two = design_key(&arch, &[c.clone(), c.clone()], &opts);
        let three = design_key(&arch, &[c.clone(), c.clone(), c.clone()], &opts);
        assert_ne!(one, two);
        assert_ne!(two, three);
        // Identical circuits in different slots hash identically per slot,
        // which is exactly what near-match context sharing relies on.
        let fp = DesignFingerprint::new(&arch, &[c.clone(), c], &opts);
        assert_eq!(fp.context_hashes()[0], fp.context_hashes()[1]);
    }

    #[test]
    fn fingerprint_structure_reflects_what_changed() {
        use mcfpga_netlist::library;
        let arch = mcfpga_arch::ArchSpec::paper_default();
        let opts = CompileOptions::default();
        let a = library::adder(2);
        let b = library::adder(3);
        let base = DesignFingerprint::new(&arch, &[a.clone(), b.clone()], &opts);
        let perturbed = DesignFingerprint::new(&arch, &[a.clone(), a.clone()], &opts);
        assert!(base.env_matches(&perturbed));
        assert_eq!(base.shared_contexts(&perturbed), 1);
        assert_ne!(base.key(), perturbed.key());
        let other_opts = CompileOptions::default()
            .with_route(mcfpga_route::RouteOptions::default().with_max_iterations(7));
        let fp_opts = DesignFingerprint::new(&arch, &[a, b], &other_opts);
        assert!(!base.env_matches(&fp_opts), "route knobs are environment");
        assert_eq!(base.arch_hash(), fp_opts.arch_hash());
    }

    #[test]
    fn kernel_options_separate_cache_slots() {
        use mcfpga_netlist::library;
        use mcfpga_sim::KernelOptions;
        let arch = mcfpga_arch::ArchSpec::paper_default();
        let a = library::adder(2);
        let plain = CompileOptions::default();
        let optimized =
            CompileOptions::default().with_kernel_options(KernelOptions::new().with_optimize(true));
        let fp_plain = DesignFingerprint::new(&arch, std::slice::from_ref(&a), &plain);
        let fp_opt = DesignFingerprint::new(&arch, std::slice::from_ref(&a), &optimized);
        // The optimizer changes the compiled instruction stream, so the two
        // requests must never alias in the design cache.
        assert_ne!(fp_plain.key(), fp_opt.key());
        assert_ne!(fp_plain.route_hash(), fp_opt.route_hash());
        assert!(
            !fp_plain.env_matches(&fp_opt),
            "kernel knobs are environment"
        );
        // The parallel toggle, by contrast, stays excluded: identical slot.
        let par = CompileOptions::default().with_parallel(true);
        let fp_par = DesignFingerprint::new(&arch, std::slice::from_ref(&a), &par);
        assert_eq!(fp_plain.key(), fp_par.key());
    }
}
