//! Typed failures of the serving layer: rejection at the door
//! ([`SubmitError`]) and failure after acceptance ([`ServeError`]).

use crate::admission::ShedReason;
use crate::server::SessionId;

/// Why a submission was structurally invalid — caught at submit time,
/// before the job ever reaches the queue (see [`SubmitError::Malformed`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MalformedReason {
    /// A sim job named a context the session's design does not program.
    ContextOutOfRange { context: usize, programmed: usize },
    /// A sim job's stimulus row carries the wrong number of input words for
    /// the targeted context's kernel.
    InputArity {
        cycle: usize,
        expected: usize,
        got: usize,
    },
    /// A snapshot's register state does not match its own compile request
    /// (wrong per-context count), or its active context is out of range.
    SnapshotShape { detail: String },
    /// A snapshot was written by an incompatible snapshot-format version.
    SnapshotVersion { expected: u32, got: u32 },
    /// A routed submission named a session no alive shard holds.
    UnknownSession { session: SessionId },
}

impl std::fmt::Display for MalformedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MalformedReason::ContextOutOfRange {
                context,
                programmed,
            } => write!(
                f,
                "context {context} out of range ({programmed} programmed)"
            ),
            MalformedReason::InputArity {
                cycle,
                expected,
                got,
            } => write!(
                f,
                "stimulus cycle {cycle} carries {got} input words, kernel expects {expected}"
            ),
            MalformedReason::SnapshotShape { detail } => {
                write!(f, "snapshot shape invalid: {detail}")
            }
            MalformedReason::SnapshotVersion { expected, got } => {
                write!(f, "snapshot version {got}, this build reads {expected}")
            }
            MalformedReason::UnknownSession { session } => {
                write!(f, "no alive shard holds session {}", session.raw())
            }
        }
    }
}

/// A submission the server refused to enqueue. The job never ran; the
/// caller decides whether to retry, shed, or redirect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is at capacity — explicit backpressure.
    QueueFull { capacity: usize },
    /// The admission policy refused the job while the queue still had room
    /// (overload protection; see [`crate::AdmissionPolicy`]). The reason is
    /// also counted under `serve.shed.*` and traced as a `job_shed` event.
    Shed { reason: ShedReason },
    /// The submission is structurally invalid (bad stimulus shape, bad
    /// snapshot) — caught at submit time so a malformed job never burns a
    /// worker. Counted under `serve.jobs_malformed` and charged to the
    /// tenant's `rejected` bucket.
    Malformed { reason: MalformedReason },
    /// The server is shutting down and accepts no new work.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            SubmitError::Shed { reason } => write!(f, "shed by admission policy: {reason}"),
            SubmitError::Malformed { reason } => write!(f, "malformed submission: {reason}"),
            SubmitError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// An accepted job that did not produce its outcome.
#[derive(Debug)]
pub enum ServeError {
    /// The job's deadline elapsed while it was still queued; it was never
    /// serviced.
    Deadline { waited_us: u64 },
    /// The underlying compile or simulation failed; the full
    /// [`mcfpga_sim::Error`] payload is preserved for discrimination.
    Job(mcfpga_sim::Error),
    /// A [`crate::SimJob`] named a session this server doesn't hold
    /// (never opened, or already closed).
    SessionNotFound { session: SessionId },
    /// A restore's register state does not fit the design its compile
    /// request resolves to on this build — the snapshot and the artifact
    /// disagree about register counts or context count.
    SnapshotMismatch { detail: String },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Deadline { waited_us } => {
                write!(f, "deadline elapsed after {waited_us} us in queue")
            }
            ServeError::Job(e) => write!(f, "job failed: {e}"),
            ServeError::SessionNotFound { session } => {
                write!(f, "unknown session {session:?}")
            }
            ServeError::SnapshotMismatch { detail } => {
                write!(f, "snapshot does not fit restored design: {detail}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Job(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mcfpga_sim::Error> for ServeError {
    fn from(e: mcfpga_sim::Error) -> Self {
        ServeError::Job(e)
    }
}

impl From<mcfpga_sim::SimError> for ServeError {
    fn from(e: mcfpga_sim::SimError) -> Self {
        ServeError::Job(e.into())
    }
}

impl From<mcfpga_sim::CompileError> for ServeError {
    fn from(e: mcfpga_sim::CompileError) -> Self {
        ServeError::Job(e.into())
    }
}
