//! Typed failures of the serving layer: rejection at the door
//! ([`SubmitError`]) and failure after acceptance ([`ServeError`]).

use crate::admission::ShedReason;
use crate::server::SessionId;

/// A submission the server refused to enqueue. The job never ran; the
/// caller decides whether to retry, shed, or redirect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded submission queue is at capacity — explicit backpressure.
    QueueFull { capacity: usize },
    /// The admission policy refused the job while the queue still had room
    /// (overload protection; see [`crate::AdmissionPolicy`]). The reason is
    /// also counted under `serve.shed.*` and traced as a `job_shed` event.
    Shed { reason: ShedReason },
    /// The server is shutting down and accepts no new work.
    Shutdown,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "submission queue full ({capacity} jobs)")
            }
            SubmitError::Shed { reason } => write!(f, "shed by admission policy: {reason}"),
            SubmitError::Shutdown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// An accepted job that did not produce its outcome.
#[derive(Debug)]
pub enum ServeError {
    /// The job's deadline elapsed while it was still queued; it was never
    /// serviced.
    Deadline { waited_us: u64 },
    /// The underlying compile or simulation failed; the full
    /// [`mcfpga_sim::Error`] payload is preserved for discrimination.
    Job(mcfpga_sim::Error),
    /// A [`crate::SimJob`] named a session this server doesn't hold
    /// (never opened, or already closed).
    SessionNotFound { session: SessionId },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Deadline { waited_us } => {
                write!(f, "deadline elapsed after {waited_us} us in queue")
            }
            ServeError::Job(e) => write!(f, "job failed: {e}"),
            ServeError::SessionNotFound { session } => {
                write!(f, "unknown session {session:?}")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Job(e) => Some(e),
            _ => None,
        }
    }
}

impl From<mcfpga_sim::Error> for ServeError {
    fn from(e: mcfpga_sim::Error) -> Self {
        ServeError::Job(e)
    }
}

impl From<mcfpga_sim::SimError> for ServeError {
    fn from(e: mcfpga_sim::SimError) -> Self {
        ServeError::Job(e.into())
    }
}

impl From<mcfpga_sim::CompileError> for ServeError {
    fn from(e: mcfpga_sim::CompileError) -> Self {
        ServeError::Job(e.into())
    }
}
