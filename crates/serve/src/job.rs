//! Job descriptions, their outcomes, and the handle a submission returns.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::Netlist;
use mcfpga_sim::CompileOptions;

use crate::design::CompiledDesign;
use crate::error::ServeError;
use crate::server::SessionId;

/// Server-assigned identity of one accepted job, stamped on every trace
/// event the job emits (see `mcfpga_obs::job_trace`) and carried in its
/// outcome — the correlation key tying a client's result back to the exact
/// queue wait, cache lookup, and per-context compile spans it caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The raw id, matching the `job` field on correlated trace events.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Compile a netlist set onto an architecture. Repeat submissions with the
/// same content hit the server's design cache instead of recompiling.
#[derive(Debug, Clone)]
pub struct CompileJob {
    pub(crate) arch: ArchSpec,
    pub(crate) circuits: Vec<Netlist>,
    pub(crate) options: CompileOptions,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tenant: Option<String>,
}

impl CompileJob {
    /// One netlist per context, to be compiled onto `arch` with default
    /// options and the server's default deadline.
    pub fn new(arch: ArchSpec, circuits: Vec<Netlist>) -> CompileJob {
        CompileJob {
            arch,
            circuits,
            options: CompileOptions::default(),
            deadline: None,
            tenant: None,
        }
    }

    /// Compile-pipeline knobs. `parallel` does not affect the artifact (or
    /// the cache key) — only the schedule inside this one job.
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Maximum time this job may sit in the queue before it is failed with
    /// [`ServeError::Deadline`] instead of being serviced.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tenant label this job is accounted to (see
    /// [`crate::Server::tenant_stats`]) and tagged with in the trace ring.
    /// Unlabeled jobs are charged to [`crate::DEFAULT_TENANT`].
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// What a completed [`CompileJob`] yields: the shared artifact, a fresh
/// session bound to it, and where the time went.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// The server-assigned job id — the trace correlation key.
    pub job: JobId,
    /// The compiled artifact (shared with the cache and other sessions).
    pub design: Arc<CompiledDesign>,
    /// A fresh session holding private register state for this tenant.
    /// Cache hits still get their own session — tenants share the compiled
    /// configuration, never runtime state.
    pub session: SessionId,
    /// Whether the design came out of the content-addressed cache.
    pub cache_hit: bool,
    /// Set when the design was delta-compiled against a cached near match
    /// (same arch/route options, overlapping per-context netlists): what
    /// was reused versus recomputed. `None` for exact cache hits and cold
    /// compiles. The artifact is bit-identical either way — this only
    /// explains where the service time went.
    pub delta: Option<mcfpga_sim::DeltaStats>,
    /// Microseconds the job waited in the queue.
    pub wait_us: u64,
    /// Microseconds of service time (cache lookup + compile if any).
    pub service_us: u64,
}

/// Step a session's compiled kernel: one word per primary input per cycle,
/// 64 stimulus lanes per word (see `mcfpga_sim::LANES`).
#[derive(Debug, Clone)]
pub struct SimJob {
    pub(crate) session: SessionId,
    pub(crate) context: usize,
    pub(crate) words: Vec<Vec<u64>>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tenant: Option<String>,
}

impl SimJob {
    /// Run `words` (one inner vec of input words per cycle) through
    /// `context` of the session's design, carrying the session's private
    /// register state across cycles and across jobs.
    pub fn new(session: SessionId, context: usize, words: Vec<Vec<u64>>) -> SimJob {
        SimJob {
            session,
            context,
            words,
            deadline: None,
            tenant: None,
        }
    }

    /// Maximum queue wait before [`ServeError::Deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tenant label for accounting and trace correlation (defaults to
    /// [`crate::DEFAULT_TENANT`]).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// What a completed [`SimJob`] yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// The server-assigned job id — the trace correlation key.
    pub job: JobId,
    /// One inner vec of output words per submitted cycle.
    pub outputs: Vec<Vec<u64>>,
    /// Microseconds the job waited in the queue.
    pub wait_us: u64,
    /// Microseconds of kernel service time.
    pub service_us: u64,
}

/// The completion slot a worker fills and a client waits on.
pub(crate) struct Shared<T> {
    slot: Mutex<Option<Result<T, ServeError>>>,
    done: Condvar,
}

impl<T> Shared<T> {
    pub(crate) fn new() -> Arc<Shared<T>> {
        Arc::new(Shared {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<T, ServeError>) {
        let mut slot = self.slot.lock().unwrap();
        debug_assert!(slot.is_none(), "job completed twice");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// A ticket for one accepted job. [`JobHandle::wait`] blocks until a worker
/// completes the job; every accepted job is completed even during server
/// shutdown (the pool drains its queue before exiting), so `wait` never
/// hangs.
pub struct JobHandle<T> {
    pub(crate) job: JobId,
    pub(crate) shared: Arc<Shared<T>>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("job", &self.job)
            .finish_non_exhaustive()
    }
}

impl<T> JobHandle<T> {
    /// The server-assigned id of the accepted job — usable immediately (the
    /// outcome carries the same id) to correlate against trace events.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// Block until the job completes.
    pub fn wait(self) -> Result<T, ServeError> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.shared.done.wait(slot).unwrap();
        }
    }

    /// The outcome if the job already completed, `None` while it is still
    /// queued or running.
    pub fn try_wait(&self) -> Option<Result<T, ServeError>> {
        self.shared.slot.lock().unwrap().take()
    }
}
