//! Job descriptions, their outcomes, the unified [`Request`] / [`Outcome`]
//! surface, and the handle a submission returns.
//!
//! Every submission — compile, sim, checkpoint, restore — enters the server
//! through one typed door: [`crate::Server::submit`] accepts anything
//! `Into<Request>` and returns a `JobHandle<Outcome>`. The per-kind
//! convenience methods (`submit_compile`, `submit_sim`) are thin wrappers
//! that [`JobHandle::map`] the unified outcome back to the concrete type,
//! which is also what lets a shard router forward one request type instead
//! of N methods.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::Netlist;
use mcfpga_sim::CompileOptions;

use crate::admission::JobKind;
use crate::design::CompiledDesign;
use crate::error::ServeError;
use crate::server::SessionId;
use crate::session::SessionSnapshot;

/// Server-assigned identity of one accepted job, stamped on every trace
/// event the job emits (see `mcfpga_obs::job_trace`) and carried in its
/// outcome — the correlation key tying a client's result back to the exact
/// queue wait, cache lookup, and per-context compile spans it caused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub(crate) u64);

impl JobId {
    /// The raw id, matching the `job` field on correlated trace events.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// Compile a netlist set onto an architecture. Repeat submissions with the
/// same content hit the server's design cache instead of recompiling.
#[derive(Debug, Clone)]
pub struct CompileJob {
    pub(crate) arch: ArchSpec,
    pub(crate) circuits: Vec<Netlist>,
    pub(crate) options: CompileOptions,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tenant: Option<String>,
}

impl CompileJob {
    /// One netlist per context, to be compiled onto `arch` with default
    /// options and the server's default deadline.
    pub fn new(arch: ArchSpec, circuits: Vec<Netlist>) -> CompileJob {
        CompileJob {
            arch,
            circuits,
            options: CompileOptions::default(),
            deadline: None,
            tenant: None,
        }
    }

    /// Compile-pipeline knobs. `parallel` does not affect the artifact (or
    /// the cache key) — only the schedule inside this one job.
    pub fn with_options(mut self, options: CompileOptions) -> Self {
        self.options = options;
        self
    }

    /// Maximum time this job may sit in the queue before it is failed with
    /// [`ServeError::Deadline`] instead of being serviced.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tenant label this job is accounted to (see
    /// [`crate::Server::tenant_stats`]) and tagged with in the trace ring.
    /// Unlabeled jobs are charged to [`crate::DEFAULT_TENANT`].
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// What a completed [`CompileJob`] yields: the shared artifact, a fresh
/// session bound to it, and where the time went.
#[derive(Debug, Clone)]
pub struct CompileOutcome {
    /// The server-assigned job id — the trace correlation key.
    pub job: JobId,
    /// The compiled artifact (shared with the cache and other sessions).
    pub design: Arc<CompiledDesign>,
    /// A fresh session holding private register state for this tenant.
    /// Cache hits still get their own session — tenants share the compiled
    /// configuration, never runtime state.
    pub session: SessionId,
    /// Whether the design came out of the content-addressed cache.
    pub cache_hit: bool,
    /// Set when the design was delta-compiled against a cached near match
    /// (same arch/route options, overlapping per-context netlists): what
    /// was reused versus recomputed. `None` for exact cache hits and cold
    /// compiles. The artifact is bit-identical either way — this only
    /// explains where the service time went.
    pub delta: Option<mcfpga_sim::DeltaStats>,
    /// Microseconds the job waited in the queue.
    pub wait_us: u64,
    /// Microseconds of service time (cache lookup + compile if any).
    pub service_us: u64,
}

/// Step a session's compiled kernel: one word per primary input per cycle,
/// 64 stimulus lanes per word (see `mcfpga_sim::LANES`).
///
/// Stimulus shape is validated at submit time against the session's design
/// (when the session exists): a wrong context index or input arity is
/// refused with [`crate::SubmitError::Malformed`] instead of failing on a
/// worker.
#[derive(Debug, Clone)]
pub struct SimJob {
    pub(crate) session: SessionId,
    pub(crate) context: usize,
    pub(crate) words: Vec<Vec<u64>>,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tenant: Option<String>,
}

impl SimJob {
    /// Run `words` (one inner vec of input words per cycle) through
    /// `context` of the session's design, carrying the session's private
    /// register state across cycles and across jobs.
    pub fn new(session: SessionId, context: usize, words: Vec<Vec<u64>>) -> SimJob {
        SimJob {
            session,
            context,
            words,
            deadline: None,
            tenant: None,
        }
    }

    /// Maximum queue wait before [`ServeError::Deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tenant label for accounting and trace correlation (defaults to
    /// [`crate::DEFAULT_TENANT`]).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// What a completed [`SimJob`] yields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// The server-assigned job id — the trace correlation key.
    pub job: JobId,
    /// One inner vec of output words per submitted cycle.
    pub outputs: Vec<Vec<u64>>,
    /// Microseconds the job waited in the queue.
    pub wait_us: u64,
    /// Microseconds of kernel service time.
    pub service_us: u64,
}

/// Checkpoint a live session into a serializable [`SessionSnapshot`].
/// Serialized behind the session's own lock, so the snapshot is always a
/// consistent between-jobs state.
#[derive(Debug, Clone)]
pub struct CheckpointJob {
    pub(crate) session: SessionId,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tenant: Option<String>,
}

impl CheckpointJob {
    /// Checkpoint `session`.
    pub fn new(session: SessionId) -> CheckpointJob {
        CheckpointJob {
            session,
            deadline: None,
            tenant: None,
        }
    }

    /// Maximum queue wait before [`ServeError::Deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tenant label for accounting (defaults to [`crate::DEFAULT_TENANT`]).
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// What a completed [`CheckpointJob`] yields.
#[derive(Debug, Clone)]
pub struct CheckpointOutcome {
    /// The server-assigned job id — the trace correlation key.
    pub job: JobId,
    /// The session the snapshot was taken from (still live).
    pub session: SessionId,
    /// The serializable checkpoint.
    pub snapshot: SessionSnapshot,
    /// Microseconds the job waited in the queue.
    pub wait_us: u64,
    /// Microseconds of service time.
    pub service_us: u64,
}

/// Restore a [`SessionSnapshot`] into a fresh session on this server,
/// resolving the design through the cache and delta/cold-compiling on a
/// miss — subsequent output is bit-identical to the uninterrupted run.
#[derive(Debug, Clone)]
pub struct RestoreJob {
    pub(crate) snapshot: SessionSnapshot,
    pub(crate) deadline: Option<Duration>,
    pub(crate) tenant: Option<String>,
}

impl RestoreJob {
    /// Restore `snapshot`. The restored session keeps the snapshot's tenant
    /// label; `with_tenant` only relabels the restore job itself.
    pub fn new(snapshot: SessionSnapshot) -> RestoreJob {
        RestoreJob {
            snapshot,
            deadline: None,
            tenant: None,
        }
    }

    /// Maximum queue wait before [`ServeError::Deadline`].
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Tenant the restore *job* is accounted to (defaults to the
    /// snapshot's tenant). The restored session always keeps the
    /// snapshot's tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }
}

/// What a completed [`RestoreJob`] yields.
#[derive(Debug, Clone)]
pub struct RestoreOutcome {
    /// The server-assigned job id — the trace correlation key.
    pub job: JobId,
    /// The fresh session resuming the snapshot's state.
    pub session: SessionId,
    /// The resolved design (cache hit or recompiled — bit-identical).
    pub design: Arc<CompiledDesign>,
    /// Whether restore had to compile (exact cache miss). The
    /// recompile-on-restore rate the shard experiment reports is the mean
    /// of this flag.
    pub recompiled: bool,
    /// Delta-compile reuse stats when the recompile found a near-match
    /// base; `None` on exact hits and cold compiles.
    pub delta: Option<mcfpga_sim::DeltaStats>,
    /// `true` when the design key recorded in the snapshot no longer
    /// matches the fingerprint this build computes from the same request —
    /// the cross-build re-key case. The restore is still valid: register
    /// counts were checked against the freshly resolved design.
    pub refingerprinted: bool,
    /// Microseconds the job waited in the queue.
    pub wait_us: u64,
    /// Microseconds of service time (resolve + compile if any).
    pub service_us: u64,
}

/// The unified submission type: everything [`crate::Server::submit`]
/// accepts. Each job type converts with `From`, so call sites write
/// `server.submit(CompileJob::new(..))` and shard routers forward one
/// request type.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Request {
    Compile(CompileJob),
    Sim(SimJob),
    Checkpoint(CheckpointJob),
    Restore(RestoreJob),
}

impl Request {
    /// Which admission kind this request carries.
    pub fn kind(&self) -> JobKind {
        match self {
            Request::Compile(_) => JobKind::Compile,
            Request::Sim(_) => JobKind::Sim,
            Request::Checkpoint(_) => JobKind::Checkpoint,
            Request::Restore(_) => JobKind::Restore,
        }
    }

    pub(crate) fn deadline(&self) -> Option<Duration> {
        match self {
            Request::Compile(j) => j.deadline,
            Request::Sim(j) => j.deadline,
            Request::Checkpoint(j) => j.deadline,
            Request::Restore(j) => j.deadline,
        }
    }

    /// The tenant label to account the job to. Restore jobs default to the
    /// snapshot's own tenant.
    pub(crate) fn tenant(&self) -> Option<String> {
        match self {
            Request::Compile(j) => j.tenant.clone(),
            Request::Sim(j) => j.tenant.clone(),
            Request::Checkpoint(j) => j.tenant.clone(),
            Request::Restore(j) => j.tenant.clone().or_else(|| Some(j.snapshot.tenant.clone())),
        }
    }
}

impl From<CompileJob> for Request {
    fn from(j: CompileJob) -> Request {
        Request::Compile(j)
    }
}

impl From<SimJob> for Request {
    fn from(j: SimJob) -> Request {
        Request::Sim(j)
    }
}

impl From<CheckpointJob> for Request {
    fn from(j: CheckpointJob) -> Request {
        Request::Checkpoint(j)
    }
}

impl From<RestoreJob> for Request {
    fn from(j: RestoreJob) -> Request {
        Request::Restore(j)
    }
}

/// The unified completion type [`crate::Server::submit`] resolves to — one
/// variant per [`Request`] variant. `#[non_exhaustive]`: future request
/// kinds add variants without breaking matches.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Outcome {
    Compile(CompileOutcome),
    Sim(SimOutcome),
    Checkpoint(CheckpointOutcome),
    Restore(RestoreOutcome),
}

impl Outcome {
    /// The job id every variant carries.
    pub fn job(&self) -> JobId {
        match self {
            Outcome::Compile(o) => o.job,
            Outcome::Sim(o) => o.job,
            Outcome::Checkpoint(o) => o.job,
            Outcome::Restore(o) => o.job,
        }
    }

    /// Microseconds the job waited in the queue.
    pub fn wait_us(&self) -> u64 {
        match self {
            Outcome::Compile(o) => o.wait_us,
            Outcome::Sim(o) => o.wait_us,
            Outcome::Checkpoint(o) => o.wait_us,
            Outcome::Restore(o) => o.wait_us,
        }
    }

    /// Microseconds of service time.
    pub fn service_us(&self) -> u64 {
        match self {
            Outcome::Compile(o) => o.service_us,
            Outcome::Sim(o) => o.service_us,
            Outcome::Checkpoint(o) => o.service_us,
            Outcome::Restore(o) => o.service_us,
        }
    }

    /// The compile outcome, if this is one.
    pub fn into_compile(self) -> Option<CompileOutcome> {
        match self {
            Outcome::Compile(o) => Some(o),
            _ => None,
        }
    }

    /// The sim outcome, if this is one.
    pub fn into_sim(self) -> Option<SimOutcome> {
        match self {
            Outcome::Sim(o) => Some(o),
            _ => None,
        }
    }

    /// The checkpoint outcome, if this is one.
    pub fn into_checkpoint(self) -> Option<CheckpointOutcome> {
        match self {
            Outcome::Checkpoint(o) => Some(o),
            _ => None,
        }
    }

    /// The restore outcome, if this is one.
    pub fn into_restore(self) -> Option<RestoreOutcome> {
        match self {
            Outcome::Restore(o) => Some(o),
            _ => None,
        }
    }

    pub(crate) fn set_times(&mut self, wait_us: u64, service_us: u64) {
        match self {
            Outcome::Compile(o) => {
                o.wait_us = wait_us;
                o.service_us = service_us;
            }
            Outcome::Sim(o) => {
                o.wait_us = wait_us;
                o.service_us = service_us;
            }
            Outcome::Checkpoint(o) => {
                o.wait_us = wait_us;
                o.service_us = service_us;
            }
            Outcome::Restore(o) => {
                o.wait_us = wait_us;
                o.service_us = service_us;
            }
        }
    }
}

/// The completion slot a worker fills and a client waits on. Workers always
/// complete the unified [`Outcome`]; typed handles convert on the way out.
pub(crate) struct Shared {
    slot: Mutex<Option<Result<Outcome, ServeError>>>,
    done: Condvar,
}

impl Shared {
    pub(crate) fn new() -> Arc<Shared> {
        Arc::new(Shared {
            slot: Mutex::new(None),
            done: Condvar::new(),
        })
    }

    pub(crate) fn complete(&self, result: Result<Outcome, ServeError>) {
        let mut slot = self.slot.lock().unwrap();
        debug_assert!(slot.is_none(), "job completed twice");
        *slot = Some(result);
        self.done.notify_all();
    }
}

/// A ticket for one accepted job. [`JobHandle::wait`] blocks until a worker
/// completes the job; every accepted job is completed even during server
/// shutdown (the pool drains its queue before exiting), so `wait` never
/// hangs.
///
/// The handle is typed by what the caller asked for: [`crate::Server::submit`]
/// returns `JobHandle<Outcome>`, the per-kind wrappers return handles
/// already mapped to the concrete outcome, and [`JobHandle::map`] composes
/// further conversions without touching the completion slot.
pub struct JobHandle<T> {
    pub(crate) job: JobId,
    pub(crate) shared: Arc<Shared>,
    pub(crate) convert: Arc<dyn Fn(Outcome) -> T + Send + Sync>,
}

impl<T> std::fmt::Debug for JobHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("job", &self.job)
            .finish_non_exhaustive()
    }
}

impl JobHandle<Outcome> {
    /// An identity handle over the unified outcome slot.
    pub(crate) fn new(job: JobId, shared: Arc<Shared>) -> JobHandle<Outcome> {
        JobHandle {
            job,
            shared,
            convert: Arc::new(|o| o),
        }
    }
}

impl<T> JobHandle<T> {
    /// The server-assigned id of the accepted job — usable immediately (the
    /// outcome carries the same id) to correlate against trace events.
    pub fn job(&self) -> JobId {
        self.job
    }

    /// Block until the job completes.
    pub fn wait(self) -> Result<T, ServeError> {
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                drop(slot);
                return result.map(|o| (self.convert)(o));
            }
            slot = self.shared.done.wait(slot).unwrap();
        }
    }

    /// The outcome if the job already completed, `None` while it is still
    /// queued or running.
    pub fn try_wait(&self) -> Option<Result<T, ServeError>> {
        let taken = self.shared.slot.lock().unwrap().take();
        taken.map(|result| result.map(|o| (self.convert)(o)))
    }

    /// Block until the job completes or `timeout` elapses. `None` means the
    /// timeout fired with the job still in flight — the handle remains
    /// valid, so callers can keep waiting (no hand-rolled `try_wait` poll
    /// loops). `Some` consumes the outcome, exactly like
    /// [`JobHandle::try_wait`].
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, ServeError>> {
        let deadline = Instant::now() + timeout;
        let mut slot = self.shared.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                drop(slot);
                return Some(result.map(|o| (self.convert)(o)));
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.shared.done.wait_timeout(slot, deadline - now).unwrap();
            slot = guard;
        }
    }

    /// Lazily post-process the outcome: the conversion runs on the waiting
    /// thread when the result is taken, not on the worker. Composes — this
    /// is how the typed `submit_compile`/`submit_sim` wrappers are built on
    /// the unified [`Outcome`] slot.
    pub fn map<U>(self, f: impl Fn(T) -> U + Send + Sync + 'static) -> JobHandle<U>
    where
        T: 'static,
    {
        let convert = self.convert;
        JobHandle {
            job: self.job,
            shared: self.shared,
            convert: Arc::new(move |o| f(convert(o))),
        }
    }
}
