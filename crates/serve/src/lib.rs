//! Multi-tenant job serving over the MC-FPGA compile flow and batched
//! simulator.
//!
//! The reproduction's north star is a system that serves many concurrent
//! clients from one fabric model — the workload shape multi-context FPGAs
//! are built for (shared, dynamically re-tasked hardware). This crate is
//! that layer:
//!
//! - A [`Server`] owns a fixed worker pool and a **bounded** submission
//!   queue. When the queue is full, [`Server::submit_compile`] /
//!   [`Server::submit_sim`] return [`SubmitError::QueueFull`] — callers get
//!   explicit backpressure, never unbounded memory growth. Jobs can carry
//!   deadlines; a job still queued past its deadline completes with
//!   [`ServeError::Deadline`] instead of running late.
//! - [`CompileJob`]s (netlist set + architecture + options) resolve through
//!   a **content-addressed LRU cache** of [`CompiledDesign`]s: repeat
//!   submissions of the same content hit cache instead of recompiling, and
//!   the artifact is shared (`Arc`) across every tenant running it.
//! - Each completed compile opens a private session. [`SimJob`]s step the
//!   design's 64-lane batch kernels against that session's own register
//!   state — tenants share configuration, never runtime state.
//! - Queue depth, cache hits/misses/evictions, wait/service latency
//!   histograms, and per-job outcomes stream through `mcfpga-obs`;
//!   [`Server::report`] condenses them into a serializable [`ServeReport`].
//!
//! The whole crate is written against the redesigned fallible API surface
//! (`try_*` + the [`mcfpga_sim::Error`] umbrella): a malformed job fails
//! with a typed error through its [`JobHandle`]; it can never poison the
//! worker pool.

mod cache;
mod config;
mod design;
mod error;
mod job;
mod report;
mod server;

pub use config::ServeConfig;
pub use design::{design_key, CompiledDesign};
pub use error::{ServeError, SubmitError};
pub use job::{CompileJob, CompileOutcome, JobHandle, SimJob, SimOutcome};
pub use report::ServeReport;
pub use server::{Server, SessionId};
