//! Multi-tenant job serving over the MC-FPGA compile flow and batched
//! simulator.
//!
//! The reproduction's north star is a system that serves many concurrent
//! clients from one fabric model — the workload shape multi-context FPGAs
//! are built for (shared, dynamically re-tasked hardware). This crate is
//! that layer:
//!
//! - A [`Server`] owns a fixed worker pool and a **bounded** submission
//!   queue behind one unified door: [`Server::submit`] accepts anything
//!   `Into<`[`Request`]`>` — compile, sim, checkpoint, restore — and
//!   resolves to an [`Outcome`]; the typed wrappers
//!   ([`Server::submit_compile`], [`Server::submit_sim`], …) are thin
//!   [`JobHandle::map`]s over it. When the queue is full, submission
//!   returns [`SubmitError::QueueFull`] — callers get explicit
//!   backpressure, never unbounded memory growth. Structurally invalid
//!   submissions (bad stimulus shape, bad snapshot) are refused at the
//!   door with [`SubmitError::Malformed`]. Jobs can carry deadlines; a job
//!   still queued past its deadline completes with [`ServeError::Deadline`]
//!   instead of running late.
//! - [`CompileJob`]s (netlist set + architecture + options) resolve through
//!   a **content-addressed LRU cache** of [`CompiledDesign`]s: repeat
//!   submissions of the same content hit cache instead of recompiling, and
//!   the artifact is shared (`Arc`) across every tenant running it.
//! - Each completed compile opens a private session. [`SimJob`]s step the
//!   design's 64-lane batch kernels against that session's own register
//!   state — tenants share configuration, never runtime state.
//! - Sessions are **portable**: [`Server::checkpoint_session`] serializes
//!   one into a [`SessionSnapshot`] (full compile request + per-context
//!   register lanes + counters) and [`Server::restore_session`] resumes it
//!   — on this server or any other — with bit-identical subsequent output,
//!   delta/cold-recompiling through the design cache when the artifact is
//!   unknown.
//! - A [`ShardRouter`] scales the same [`Request`] door across N servers:
//!   rendezvous-hashed placement by design fingerprint, live migration
//!   ([`ShardRouter::migrate_session`]), and kill/recovery built on the
//!   checkpoint store ([`ShardRouter::kill_shard`] /
//!   [`ShardRouter::recover`]).
//! - Queue depth, cache hits/misses/evictions, wait/service latency
//!   histograms, and per-job outcomes stream through `mcfpga-obs`;
//!   [`Server::report`] condenses them into a serializable [`ServeReport`].
//!
//! Production-observability surface:
//!
//! - **Correlation** — every accepted job gets a [`JobId`] and a tenant
//!   label ([`CompileJob::with_tenant`] / [`SimJob::with_tenant`], default
//!   [`DEFAULT_TENANT`]); every trace event the job causes — submit,
//!   dequeue, cache lookup, per-context compile phases, sim batches — is
//!   stamped with both, so `mcfpga_obs::job_trace` reconstructs one
//!   request's span tree out of the shared ring.
//! - **Per-tenant accounting** — a conserved [`TenantStats`] ledger per
//!   tenant (`submitted == completed + failed + expired + rejected + shed
//!   + inflight`), with service-time split by job kind, cache hit rate,
//!   and sim lane-cycles; queryable live via [`Server::tenant_stats`] and
//!   condensed into [`ServeReport::tenants`].
//! - **Live health** — [`Server::snapshot`] returns a [`HealthSnapshot`]
//!   (queue depth + high watermark, worker utilization, per-tenant
//!   inflight, rolling-window p99s) without touching the queue lock.
//! - **Admission control** — a pluggable [`AdmissionPolicy`]
//!   (default: [`WatermarkAdmission`], which never sheds until configured)
//!   turns those signals into typed [`SubmitError::Shed`] refusals, each
//!   counted under `serve.shed.*` and traced as a `job_shed` event.
//!
//! The whole crate is written against the redesigned fallible API surface
//! (`try_*` + the [`mcfpga_sim::Error`] umbrella): a malformed job fails
//! with a typed error through its [`JobHandle`]; it can never poison the
//! worker pool.

mod admission;
mod cache;
mod config;
mod design;
mod error;
mod job;
mod report;
mod server;
mod session;
mod shard;
mod snapshot;
mod tenant;

pub use admission::{
    AdmissionContext, AdmissionDecision, AdmissionPolicy, JobKind, ShedReason, WatermarkAdmission,
};
pub use config::ServeConfig;
pub use design::{design_key, CompiledDesign, DesignFingerprint};
pub use error::{MalformedReason, ServeError, SubmitError};
pub use job::{
    CheckpointJob, CheckpointOutcome, CompileJob, CompileOutcome, JobHandle, JobId, Outcome,
    Request, RestoreJob, RestoreOutcome, SimJob, SimOutcome,
};
pub use mcfpga_sim::DeltaStats;
pub use report::ServeReport;
pub use server::{Server, SessionId};
pub use session::{SessionSnapshot, SNAPSHOT_VERSION};
pub use shard::{Migration, ShardError, ShardRouter};
pub use snapshot::{HealthSnapshot, TenantInflight};
pub use tenant::{TenantReport, TenantStats, DEFAULT_TENANT};
