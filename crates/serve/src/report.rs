//! The serving layer's machine-readable telemetry snapshot.

use mcfpga_obs::{HistogramEntry, Recorder};
use serde::{Deserialize, Serialize};

use crate::tenant::TenantReport;

/// Snapshot of a server's counters and latency histograms, in the shape the
/// benchmark driver embeds into `BENCH_serve.json`. Built from the same
/// `mcfpga-obs` recorder the server streams into, so a live dashboard and
/// this report can never disagree.
///
/// Outcome conservation: every submission attempt terminates as exactly one
/// of completed / failed / expired / rejected / shed (or is still in
/// flight), both globally and inside each [`TenantReport`]'s stats.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs serviced to a successful outcome.
    pub jobs_completed: u64,
    /// Jobs serviced to an error (compile/sim failure, unknown session).
    pub jobs_failed: u64,
    /// Jobs whose deadline elapsed while queued; never serviced.
    pub jobs_expired: u64,
    /// Jobs whose deadline elapsed *mid-service*, caught between
    /// per-context compile phases and completed with `ServeError::Deadline`.
    /// These consumed worker time, so they are also counted in
    /// `jobs_failed` (and the tenant's `failed` bucket) — this counter is a
    /// breakdown, not a new conservation bucket.
    pub jobs_expired_in_service: u64,
    /// Submissions refused with `QueueFull` backpressure.
    pub jobs_rejected: u64,
    /// Submissions refused by the admission policy (`serve.shed.total`).
    pub jobs_shed: u64,
    /// Sheds caused by the queue-depth watermark.
    pub shed_queue_watermark: u64,
    /// Sheds caused by a per-tenant in-flight cap.
    pub shed_tenant_inflight: u64,
    /// Sheds caused by a custom policy reason.
    pub shed_policy: u64,
    /// Compile jobs answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Compile jobs that had to compile.
    pub cache_misses: u64,
    /// Exact-miss compiles that found a near-match base (same arch/route
    /// options, overlapping contexts) and ran the delta path instead of a
    /// cold compile. A subset of `cache_misses`.
    pub cache_near_hits: u64,
    /// Context compiles skipped across all delta compiles: contexts whose
    /// netlist hash matched the near-match base and were reused verbatim.
    pub delta_contexts_reused: u64,
    /// Designs evicted by LRU pressure.
    pub cache_evictions: u64,
    /// Submissions refused at the door as structurally invalid
    /// (`serve.jobs_malformed`) — counted into the submitting tenant's
    /// `rejected` bucket, so conservation still holds.
    pub jobs_malformed: u64,
    /// Session checkpoints taken (`serve.checkpoints`), queued and
    /// synchronous alike.
    pub checkpoints: u64,
    /// Sessions restored from snapshots (`serve.restores`).
    pub restores: u64,
    /// Restores that missed the design cache and had to compile
    /// (`serve.restore.recompiles`). A subset of `restores`.
    pub restore_recompiles: u64,
    /// Deepest the submission queue has ever been.
    pub queue_depth_hwm: u64,
    /// Trace events evicted from the recorder's ring — nonzero means the
    /// trace (and anything reconstructed from it) is truncated.
    pub trace_dropped: u64,
    /// Context switches executed by compiled fabrics during the run
    /// (`sim.context_switches` — sim jobs share the server's recorder).
    pub context_switches: u64,
    /// Configuration bits flipped across those switches
    /// (`sim.switch.bits_flipped`; accounted on traced devices).
    pub reconfig_bits_flipped: u64,
    /// Cumulative context-switch energy under the per-bit proxy model
    /// ([`mcfpga_sim::SWITCH_ENERGY_PJ_PER_BIT`] — proxy pJ, not silicon).
    pub reconfig_energy_pj: f64,
    /// Queue-wait latency distribution (`serve.wait_us`), if any job ran.
    pub wait_us: Option<HistogramEntry>,
    /// Service latency distribution (`serve.service_us`), if any job ran.
    pub service_us: Option<HistogramEntry>,
    /// Per-tenant ledgers, label-ordered. Empty when built via
    /// [`ServeReport::from_recorder`] (the recorder holds no tenant table);
    /// [`crate::Server::report`] fills it.
    pub tenants: Vec<TenantReport>,
}

impl ServeReport {
    /// Condense the `serve.*` metrics out of `rec`. Tenant rows are only
    /// known to a live server — [`crate::Server::report`] adds them.
    pub fn from_recorder(rec: &Recorder) -> ServeReport {
        let report = rec.report("serve");
        ServeReport {
            jobs_submitted: report.counter("serve.jobs_submitted"),
            jobs_completed: report.counter("serve.jobs_completed"),
            jobs_failed: report.counter("serve.jobs_failed"),
            jobs_expired: report.counter("serve.jobs_expired"),
            jobs_expired_in_service: report.counter("serve.jobs_expired_in_service"),
            jobs_rejected: report.counter("serve.jobs_rejected"),
            jobs_shed: report.counter("serve.shed.total"),
            shed_queue_watermark: report.counter("serve.shed.queue_watermark"),
            shed_tenant_inflight: report.counter("serve.shed.tenant_inflight"),
            shed_policy: report.counter("serve.shed.policy"),
            cache_hits: report.counter("serve.cache_hits"),
            cache_misses: report.counter("serve.cache_misses"),
            cache_near_hits: report.counter("serve.cache.near_hit"),
            delta_contexts_reused: report.counter("serve.delta.contexts_reused"),
            cache_evictions: report.counter("serve.cache_evictions"),
            jobs_malformed: report.counter("serve.jobs_malformed"),
            checkpoints: report.counter("serve.checkpoints"),
            restores: report.counter("serve.restores"),
            restore_recompiles: report.counter("serve.restore.recompiles"),
            queue_depth_hwm: report.gauge("serve.queue_depth_hwm").unwrap_or(0.0) as u64,
            context_switches: report.counter("sim.context_switches"),
            reconfig_bits_flipped: report.counter("sim.switch.bits_flipped"),
            reconfig_energy_pj: mcfpga_sim::switch_energy_pj(
                report.counter("sim.switch.bits_flipped"),
            ),
            trace_dropped: rec.trace_dropped(),
            wait_us: report.histogram("serve.wait_us").cloned(),
            service_us: report.histogram("serve.service_us").cloned(),
            tenants: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconfig_energy_flows_from_sim_counters() {
        let rec = Recorder::enabled();
        rec.incr("sim.context_switches", 3);
        rec.incr("sim.switch.bits_flipped", 250);
        let report = ServeReport::from_recorder(&rec);
        assert_eq!(report.context_switches, 3);
        assert_eq!(report.reconfig_bits_flipped, 250);
        assert!(
            (report.reconfig_energy_pj - mcfpga_sim::switch_energy_pj(250)).abs() < 1e-12,
            "energy must follow the documented per-bit proxy constant"
        );
    }

    #[test]
    fn untraced_runs_report_zero_energy() {
        let report = ServeReport::from_recorder(&Recorder::disabled());
        assert_eq!(report.context_switches, 0);
        assert_eq!(report.reconfig_bits_flipped, 0);
        assert_eq!(report.reconfig_energy_pj, 0.0);
    }
}
