//! The serving layer's machine-readable telemetry snapshot.

use mcfpga_obs::{HistogramEntry, Recorder};
use serde::{Deserialize, Serialize};

/// Snapshot of a server's counters and latency histograms, in the shape the
/// benchmark driver embeds into `BENCH_serve.json`. Built from the same
/// `mcfpga-obs` recorder the server streams into, so a live dashboard and
/// this report can never disagree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Jobs accepted into the queue.
    pub jobs_submitted: u64,
    /// Jobs serviced to a successful outcome.
    pub jobs_completed: u64,
    /// Jobs serviced to an error (compile/sim failure, unknown session).
    pub jobs_failed: u64,
    /// Jobs whose deadline elapsed while queued; never serviced.
    pub jobs_expired: u64,
    /// Submissions refused with `QueueFull` backpressure.
    pub jobs_rejected: u64,
    /// Compile jobs answered from the content-addressed cache.
    pub cache_hits: u64,
    /// Compile jobs that had to compile.
    pub cache_misses: u64,
    /// Designs evicted by LRU pressure.
    pub cache_evictions: u64,
    /// Queue-wait latency distribution (`serve.wait_us`), if any job ran.
    pub wait_us: Option<HistogramEntry>,
    /// Service latency distribution (`serve.service_us`), if any job ran.
    pub service_us: Option<HistogramEntry>,
}

impl ServeReport {
    /// Condense the `serve.*` metrics out of `rec`.
    pub fn from_recorder(rec: &Recorder) -> ServeReport {
        let report = rec.report("serve");
        ServeReport {
            jobs_submitted: report.counter("serve.jobs_submitted"),
            jobs_completed: report.counter("serve.jobs_completed"),
            jobs_failed: report.counter("serve.jobs_failed"),
            jobs_expired: report.counter("serve.jobs_expired"),
            jobs_rejected: report.counter("serve.jobs_rejected"),
            cache_hits: report.counter("serve.cache_hits"),
            cache_misses: report.counter("serve.cache_misses"),
            cache_evictions: report.counter("serve.cache_evictions"),
            wait_us: report.histogram("serve.wait_us").cloned(),
            service_us: report.histogram("serve.service_us").cloned(),
        }
    }
}
