//! The worker pool, bounded queue, session table, and job execution.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mcfpga_obs::Recorder;
use mcfpga_sim::{KernelScratch, SimError};

use crate::cache::DesignCache;
use crate::config::ServeConfig;
use crate::design::{design_key, CompiledDesign};
use crate::error::{ServeError, SubmitError};
use crate::job::{CompileJob, CompileOutcome, JobHandle, Shared, SimJob, SimOutcome};
use crate::report::ServeReport;

/// Opaque handle to one tenant's private runtime state on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, for logging.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// One tenant's mutable state: per-context lane-parallel register words and
/// reusable kernel scratch. The compiled design itself is shared and
/// immutable; only this struct is private to the session, which is what
/// keeps tenants from contaminating each other.
struct Session {
    design: Arc<CompiledDesign>,
    regs: Vec<Vec<u64>>,
    scratch: KernelScratch,
}

impl Session {
    fn new(design: Arc<CompiledDesign>) -> Session {
        // Every lane of every context starts from the design's power-on
        // register state (bit broadcast across the 64 lanes).
        let regs = (0..design.n_contexts())
            .map(|c| {
                design
                    .initial_registers(c)
                    .iter()
                    .map(|&b| if b { !0u64 } else { 0 })
                    .collect()
            })
            .collect();
        Session {
            design,
            regs,
            scratch: KernelScratch::new(),
        }
    }
}

enum Work {
    Compile(CompileJob, Arc<Shared<CompileOutcome>>),
    Sim(SimJob, Arc<Shared<SimOutcome>>),
}

struct QueuedJob {
    work: Work,
    enqueued: Instant,
    deadline: Option<std::time::Duration>,
}

struct ServerInner {
    config: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    cache: Mutex<DesignCache>,
    sessions: Mutex<HashMap<SessionId, Arc<Mutex<Session>>>>,
    next_session: AtomicU64,
    rec: Recorder,
}

/// A multi-tenant job server over the MC-FPGA compile flow and batched
/// simulator: a fixed worker pool drains a bounded submission queue;
/// compiled designs are shared through a content-addressed LRU cache; each
/// tenant's register state lives in a private session.
///
/// Dropping the server stops intake, drains every already-accepted job, and
/// joins the workers — so an accepted [`JobHandle`] always completes.
///
/// ```no_run
/// use mcfpga_serve::{CompileJob, ServeConfig, Server, SimJob};
///
/// let server = Server::new(ServeConfig::default().with_workers(4));
/// let arch = mcfpga_arch::ArchSpec::paper_default();
/// let circuits = vec![mcfpga_netlist::library::adder(4)];
/// let handle = server.submit_compile(CompileJob::new(arch, circuits))?;
/// let compiled = handle.wait()?;
/// let sim = server
///     .submit_sim(SimJob::new(compiled.session, 0, vec![vec![0; 9]]))?
///     .wait()?;
/// println!("outputs: {:?}", sim.outputs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server with its own (disabled) recorder.
    pub fn new(config: ServeConfig) -> Server {
        Server::with_recorder(config, &Recorder::disabled())
    }

    /// Start a server routing queue/cache/latency telemetry into `rec`
    /// (counters `serve.*`, histograms `serve.wait_us` / `serve.service_us`,
    /// a span per serviced job).
    pub fn with_recorder(config: ServeConfig, rec: &Recorder) -> Server {
        let n_workers = config.resolved_workers();
        let cache = DesignCache::new(config.cache_capacity);
        let inner = Arc::new(ServerInner {
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(cache),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            rec: rec.clone(),
        });
        inner.rec.set_gauge("serve.workers", n_workers as f64);
        let workers = (0..n_workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Enqueue a compile job. Rejected with [`SubmitError::QueueFull`] when
    /// the bounded queue is at capacity — the caller owns the retry policy.
    pub fn submit_compile(
        &self,
        job: CompileJob,
    ) -> Result<JobHandle<CompileOutcome>, SubmitError> {
        let shared = Shared::new();
        let deadline = job.deadline;
        self.submit(Work::Compile(job, shared.clone()), deadline)?;
        Ok(JobHandle { shared })
    }

    /// Enqueue a sim job against a session returned by a completed compile.
    pub fn submit_sim(&self, job: SimJob) -> Result<JobHandle<SimOutcome>, SubmitError> {
        let shared = Shared::new();
        let deadline = job.deadline;
        self.submit(Work::Sim(job, shared.clone()), deadline)?;
        Ok(JobHandle { shared })
    }

    fn submit(&self, work: Work, deadline: Option<std::time::Duration>) -> Result<(), SubmitError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::Shutdown);
        }
        let mut queue = inner.queue.lock().unwrap();
        if queue.len() >= inner.config.queue_capacity {
            inner.rec.incr("serve.jobs_rejected", 1);
            return Err(SubmitError::QueueFull {
                capacity: inner.config.queue_capacity,
            });
        }
        queue.push_back(QueuedJob {
            work,
            enqueued: Instant::now(),
            deadline: deadline.or(inner.config.default_deadline),
        });
        inner.rec.incr("serve.jobs_submitted", 1);
        inner.rec.set_gauge("serve.queue_depth", queue.len() as f64);
        drop(queue);
        inner.available.notify_one();
        Ok(())
    }

    /// Drop a session's private state. Sim jobs naming it afterwards fail
    /// with [`ServeError::SessionNotFound`]. Returns whether it existed.
    pub fn close_session(&self, session: SessionId) -> bool {
        self.inner
            .sessions
            .lock()
            .unwrap()
            .remove(&session)
            .is_some()
    }

    /// Live session count.
    pub fn n_sessions(&self) -> usize {
        self.inner.sessions.lock().unwrap().len()
    }

    /// Designs currently held by the LRU cache.
    pub fn cached_designs(&self) -> usize {
        self.inner.cache.lock().unwrap().len()
    }

    /// Snapshot the serving metrics collected so far.
    pub fn report(&self) -> ServeReport {
        ServeReport::from_recorder(&self.inner.rec)
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(inner: &ServerInner) {
    loop {
        let queued = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    inner.rec.set_gauge("serve.queue_depth", queue.len() as f64);
                    break job;
                }
                // Drain-then-exit: accepted handles always complete even
                // when the pool is being torn down.
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.available.wait(queue).unwrap();
            }
        };
        let waited = queued.enqueued.elapsed();
        let wait_us = waited.as_micros() as u64;
        inner.rec.observe("serve.wait_us", wait_us as f64);
        if let Some(deadline) = queued.deadline {
            if waited > deadline {
                inner.rec.incr("serve.jobs_expired", 1);
                let expired = ServeError::Deadline { waited_us: wait_us };
                match queued.work {
                    Work::Compile(_, shared) => shared.complete(Err(expired)),
                    Work::Sim(_, shared) => shared.complete(Err(expired)),
                }
                continue;
            }
        }
        let start = Instant::now();
        match queued.work {
            Work::Compile(job, shared) => {
                let result = {
                    let _span = inner.rec.span("compile_job");
                    process_compile(inner, job)
                };
                finish(inner, start, wait_us, result, &shared);
            }
            Work::Sim(job, shared) => {
                let result = {
                    let _span = inner.rec.span("sim_job");
                    process_sim(inner, &job)
                };
                finish(inner, start, wait_us, result, &shared);
            }
        }
    }
}

/// Record service latency + outcome counters, stamp the timings into the
/// outcome, and release the waiting client.
fn finish<T: Timed>(
    inner: &ServerInner,
    start: Instant,
    wait_us: u64,
    result: Result<T, ServeError>,
    shared: &Shared<T>,
) {
    let service_us = start.elapsed().as_micros() as u64;
    inner.rec.observe("serve.service_us", service_us as f64);
    match result {
        Ok(mut outcome) => {
            inner.rec.incr("serve.jobs_completed", 1);
            outcome.set_times(wait_us, service_us);
            shared.complete(Ok(outcome));
        }
        Err(e) => {
            inner.rec.incr("serve.jobs_failed", 1);
            shared.complete(Err(e));
        }
    }
}

trait Timed {
    fn set_times(&mut self, wait_us: u64, service_us: u64);
}

impl Timed for CompileOutcome {
    fn set_times(&mut self, wait_us: u64, service_us: u64) {
        self.wait_us = wait_us;
        self.service_us = service_us;
    }
}

impl Timed for SimOutcome {
    fn set_times(&mut self, wait_us: u64, service_us: u64) {
        self.wait_us = wait_us;
        self.service_us = service_us;
    }
}

fn process_compile(inner: &ServerInner, job: CompileJob) -> Result<CompileOutcome, ServeError> {
    let key = design_key(&job.arch, &job.circuits, &job.options);
    let cached = inner.cache.lock().unwrap().get(key);
    let (design, cache_hit) = match cached {
        Some(design) => {
            inner.rec.incr("serve.cache_hits", 1);
            (design, true)
        }
        None => {
            inner.rec.incr("serve.cache_misses", 1);
            // The cache lock is NOT held across the compile: two tenants
            // missing on the same key may both compile, but the artifact is
            // deterministic, so either insert is correct and the queue
            // never stalls behind a slow compile.
            let design = Arc::new(CompiledDesign::compile(
                &job.arch,
                &job.circuits,
                &job.options,
            )?);
            let evicted = inner.cache.lock().unwrap().insert(key, design.clone());
            inner.rec.incr("serve.cache_evictions", evicted);
            (design, false)
        }
    };
    let session = SessionId(inner.next_session.fetch_add(1, Ordering::Relaxed));
    inner
        .sessions
        .lock()
        .unwrap()
        .insert(session, Arc::new(Mutex::new(Session::new(design.clone()))));
    Ok(CompileOutcome {
        design,
        session,
        cache_hit,
        wait_us: 0,
        service_us: 0,
    })
}

fn process_sim(inner: &ServerInner, job: &SimJob) -> Result<SimOutcome, ServeError> {
    let session = inner
        .sessions
        .lock()
        .unwrap()
        .get(&job.session)
        .cloned()
        .ok_or(ServeError::SessionNotFound {
            session: job.session,
        })?;
    let mut guard = session.lock().unwrap();
    let s = &mut *guard;
    if job.context >= s.design.n_contexts() {
        return Err(SimError::ContextNotProgrammed {
            context: job.context,
            programmed: s.design.n_contexts(),
        }
        .into());
    }
    let kernel = s.design.kernel(job.context);
    let regs = &mut s.regs[job.context];
    let mut outputs = Vec::with_capacity(job.words.len());
    for words in &job.words {
        if words.len() != kernel.n_inputs() {
            return Err(SimError::InputArity {
                context: job.context,
                expected: kernel.n_inputs(),
                got: words.len(),
            }
            .into());
        }
        let mut out = Vec::with_capacity(kernel.n_outputs());
        kernel.step(words, regs, &mut s.scratch, &mut out);
        outputs.push(out);
    }
    Ok(SimOutcome {
        outputs,
        wait_us: 0,
        service_us: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_types_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        assert_send_sync::<Arc<CompiledDesign>>();
        fn assert_send<T: Send>() {}
        assert_send::<JobHandle<CompileOutcome>>();
        assert_send::<JobHandle<SimOutcome>>();
    }
}
