//! The worker pool, bounded queue, session table, tenant ledger, and job
//! execution.
//!
//! Telemetry discipline: the queue-depth gauges are derived from one
//! authoritative source — [`note_queue_depth`], called with the queue's
//! length at every transition *while the queue lock is held* — so the
//! submit and dequeue paths can never publish contradictory depths. An
//! atomic mirror of the same value serves lock-free snapshot reads.
//!
//! Lock ordering: queue → tenants. The tenant table is never locked before
//! the queue, and no lock is held across a compile or sim step.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mcfpga_obs::Recorder;
use mcfpga_sim::{CompileError, DeltaStats, KernelScratch, SimError, LANES};

use crate::admission::{AdmissionContext, AdmissionDecision, JobKind};
use crate::cache::DesignCache;
use crate::config::ServeConfig;
use crate::design::{CompiledDesign, DesignFingerprint};
use crate::error::{ServeError, SubmitError};
use crate::job::{CompileJob, CompileOutcome, JobHandle, JobId, Shared, SimJob, SimOutcome};
use crate::report::ServeReport;
use crate::snapshot::{HealthSnapshot, RollingLatency, TenantInflight};
use crate::tenant::{TenantStats, TenantTable, DEFAULT_TENANT};

/// Opaque handle to one tenant's private runtime state on a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, for logging.
    pub fn raw(&self) -> u64 {
        self.0
    }
}

/// One tenant's mutable state: per-context lane-parallel register words and
/// reusable kernel scratch. The compiled design itself is shared and
/// immutable; only this struct is private to the session, which is what
/// keeps tenants from contaminating each other.
struct Session {
    design: Arc<CompiledDesign>,
    regs: Vec<Vec<u64>>,
    scratch: KernelScratch,
}

impl Session {
    fn new(design: Arc<CompiledDesign>) -> Session {
        // Every lane of every context starts from the design's power-on
        // register state (bit broadcast across the 64 lanes).
        let regs = (0..design.n_contexts())
            .map(|c| {
                design
                    .initial_registers(c)
                    .iter()
                    .map(|&b| if b { !0u64 } else { 0 })
                    .collect()
            })
            .collect();
        Session {
            design,
            regs,
            scratch: KernelScratch::new(),
        }
    }
}

enum Work {
    Compile(CompileJob, Arc<Shared<CompileOutcome>>),
    Sim(SimJob, Arc<Shared<SimOutcome>>),
}

impl Work {
    fn kind(&self) -> JobKind {
        match self {
            Work::Compile(..) => JobKind::Compile,
            Work::Sim(..) => JobKind::Sim,
        }
    }
}

struct QueuedJob {
    job: JobId,
    tenant: String,
    work: Work,
    enqueued: Instant,
    deadline: Option<std::time::Duration>,
}

struct ServerInner {
    config: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    cache: Mutex<DesignCache>,
    sessions: Mutex<HashMap<SessionId, Arc<Mutex<Session>>>>,
    next_session: AtomicU64,
    next_job: AtomicU64,
    // Lock-free mirrors of queue state for snapshot reads; written only by
    // `note_queue_depth` while the queue lock is held.
    depth: AtomicUsize,
    depth_hwm: AtomicUsize,
    busy_workers: AtomicUsize,
    n_workers: usize,
    tenants: TenantTable,
    wait_window: RollingLatency,
    service_window: RollingLatency,
    rec: Recorder,
}

/// Publish a new queue depth. Must be called with the queue lock held and
/// `len` equal to the queue's current length — the single authoritative
/// source both gauges and the snapshot mirror derive from.
fn note_queue_depth(inner: &ServerInner, len: usize) {
    inner.depth.store(len, Ordering::Relaxed);
    let mut hwm = inner.depth_hwm.load(Ordering::Relaxed);
    while len > hwm {
        match inner
            .depth_hwm
            .compare_exchange_weak(hwm, len, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                hwm = len;
                break;
            }
            Err(actual) => hwm = actual,
        }
    }
    inner.rec.set_gauge("serve.queue_depth", len as f64);
    inner
        .rec
        .set_gauge("serve.queue_depth_hwm", hwm.max(len) as f64);
}

/// RAII increment of the busy-worker gauge while a job is being serviced.
struct BusyGuard<'a>(&'a ServerInner);

impl<'a> BusyGuard<'a> {
    fn new(inner: &'a ServerInner) -> BusyGuard<'a> {
        inner.busy_workers.fetch_add(1, Ordering::Relaxed);
        BusyGuard(inner)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A multi-tenant job server over the MC-FPGA compile flow and batched
/// simulator: a fixed worker pool drains a bounded submission queue;
/// compiled designs are shared through a content-addressed LRU cache; each
/// tenant's register state lives in a private session.
///
/// Every submission attempt is accounted to its tenant's [`TenantStats`]
/// ledger (conserved: `submitted` equals `completed + failed + expired +
/// rejected + shed + inflight`), every accepted job's trace events carry its
/// [`JobId`] and tenant label (reconstructable with `mcfpga_obs::job_trace`),
/// and [`Server::snapshot`] reads live health without touching the queue
/// lock. An [`crate::AdmissionPolicy`] may shed work before the hard
/// capacity bound; each shed is typed, counted, and traced.
///
/// Dropping the server stops intake, drains every already-accepted job, and
/// joins the workers — so an accepted [`JobHandle`] always completes.
///
/// ```no_run
/// use mcfpga_serve::{CompileJob, ServeConfig, Server, SimJob};
///
/// let server = Server::new(ServeConfig::default().with_workers(4));
/// let arch = mcfpga_arch::ArchSpec::paper_default();
/// let circuits = vec![mcfpga_netlist::library::adder(4)];
/// let handle = server.submit_compile(CompileJob::new(arch, circuits))?;
/// let compiled = handle.wait()?;
/// let sim = server
///     .submit_sim(SimJob::new(compiled.session, 0, vec![vec![0; 9]]))?
///     .wait()?;
/// println!("outputs: {:?}", sim.outputs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server with its own (disabled) recorder.
    pub fn new(config: ServeConfig) -> Server {
        Server::with_recorder(config, &Recorder::disabled())
    }

    /// Start a server routing queue/cache/latency telemetry into `rec`
    /// (counters `serve.*`, histograms `serve.wait_us` / `serve.service_us`,
    /// a span per serviced job, and per-job correlated trace events).
    pub fn with_recorder(config: ServeConfig, rec: &Recorder) -> Server {
        let n_workers = config.resolved_workers();
        let cache = DesignCache::new(config.cache_capacity);
        let inner = Arc::new(ServerInner {
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(cache),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
            next_job: AtomicU64::new(1),
            depth: AtomicUsize::new(0),
            depth_hwm: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            n_workers,
            tenants: TenantTable::default(),
            wait_window: RollingLatency::default(),
            service_window: RollingLatency::default(),
            rec: rec.clone(),
        });
        inner.rec.set_gauge("serve.workers", n_workers as f64);
        let workers = (0..n_workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Enqueue a compile job. Refused with [`SubmitError::QueueFull`] when
    /// the bounded queue is at capacity, or [`SubmitError::Shed`] when the
    /// admission policy declines it — the caller owns the retry policy.
    pub fn submit_compile(
        &self,
        job: CompileJob,
    ) -> Result<JobHandle<CompileOutcome>, SubmitError> {
        let shared = Shared::new();
        let deadline = job.deadline;
        let tenant = job.tenant.clone();
        let id = self.submit(Work::Compile(job, shared.clone()), deadline, tenant)?;
        Ok(JobHandle { job: id, shared })
    }

    /// Enqueue a sim job against a session returned by a completed compile.
    pub fn submit_sim(&self, job: SimJob) -> Result<JobHandle<SimOutcome>, SubmitError> {
        let shared = Shared::new();
        let deadline = job.deadline;
        let tenant = job.tenant.clone();
        let id = self.submit(Work::Sim(job, shared.clone()), deadline, tenant)?;
        Ok(JobHandle { job: id, shared })
    }

    fn submit(
        &self,
        work: Work,
        deadline: Option<std::time::Duration>,
        tenant: Option<String>,
    ) -> Result<JobId, SubmitError> {
        let inner = &self.inner;
        let tenant = tenant.unwrap_or_else(|| DEFAULT_TENANT.to_string());
        let kind = work.kind();
        let job = JobId(inner.next_job.fetch_add(1, Ordering::Relaxed));
        let crec = inner.rec.correlated(job.raw(), &tenant);
        inner.tenants.on_submitted(&tenant);
        if inner.shutdown.load(Ordering::SeqCst) {
            inner.rec.incr("serve.jobs_rejected", 1);
            inner.tenants.on_rejected(&tenant);
            return Err(SubmitError::Shutdown);
        }
        let mut queue = inner.queue.lock().unwrap();
        if queue.len() >= inner.config.queue_capacity {
            drop(queue);
            inner.rec.incr("serve.jobs_rejected", 1);
            inner.tenants.on_rejected(&tenant);
            crec.instant(
                "job_rejected",
                &[
                    ("kind", kind.name().into()),
                    ("capacity", inner.config.queue_capacity.into()),
                ],
            );
            return Err(SubmitError::QueueFull {
                capacity: inner.config.queue_capacity,
            });
        }
        let ctx = AdmissionContext {
            tenant: &tenant,
            kind,
            queue_depth: queue.len(),
            queue_capacity: inner.config.queue_capacity,
            queue_depth_hwm: inner.depth_hwm.load(Ordering::Relaxed),
            tenant_inflight: inner.tenants.inflight(&tenant),
            rolling_wait_p99_us: inner.wait_window.p99(),
        };
        if let AdmissionDecision::Shed(reason) = inner.config.admission.admit(&ctx) {
            let depth = queue.len();
            drop(queue);
            inner.rec.incr("serve.shed.total", 1);
            inner.rec.incr(&format!("serve.shed.{}", reason.key()), 1);
            inner.tenants.on_shed(&tenant);
            crec.instant(
                "job_shed",
                &[
                    ("kind", kind.name().into()),
                    ("reason", reason.key().into()),
                    ("detail", reason.to_string().into()),
                    ("queue_depth", depth.into()),
                    ("tenant_inflight", ctx.tenant_inflight.into()),
                ],
            );
            return Err(SubmitError::Shed { reason });
        }
        inner.tenants.on_accepted(&tenant, kind);
        queue.push_back(QueuedJob {
            job,
            tenant,
            work,
            enqueued: Instant::now(),
            deadline: deadline.or(inner.config.default_deadline),
        });
        inner.rec.incr("serve.jobs_submitted", 1);
        let depth = queue.len();
        note_queue_depth(inner, depth);
        drop(queue);
        crec.instant(
            "job_submitted",
            &[("kind", kind.name().into()), ("queue_depth", depth.into())],
        );
        inner.available.notify_one();
        Ok(job)
    }

    /// Drop a session's private state. Sim jobs naming it afterwards fail
    /// with [`ServeError::SessionNotFound`]. Returns whether it existed.
    pub fn close_session(&self, session: SessionId) -> bool {
        self.inner
            .sessions
            .lock()
            .unwrap()
            .remove(&session)
            .is_some()
    }

    /// Live session count.
    pub fn n_sessions(&self) -> usize {
        self.inner.sessions.lock().unwrap().len()
    }

    /// Designs currently held by the LRU cache.
    pub fn cached_designs(&self) -> usize {
        self.inner.cache.lock().unwrap().len()
    }

    /// One tenant's exact counters right now (`None` if the tenant never
    /// submitted). The stats are conserved: see [`TenantStats::is_conserved`].
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.inner.tenants.stats(tenant)
    }

    /// A point-in-time health view, cheap enough to call on every submit:
    /// reads atomic mirrors and the tenant/session tables, never the job
    /// queue lock.
    pub fn snapshot(&self) -> HealthSnapshot {
        let inner = &self.inner;
        let tenant_inflight: Vec<TenantInflight> = inner
            .tenants
            .inflight_all()
            .into_iter()
            .map(|(tenant, inflight)| TenantInflight { tenant, inflight })
            .collect();
        let inflight = tenant_inflight.iter().map(|t| t.inflight).sum();
        let busy = inner.busy_workers.load(Ordering::Relaxed);
        HealthSnapshot {
            queue_depth: inner.depth.load(Ordering::Relaxed),
            queue_capacity: inner.config.queue_capacity,
            queue_depth_hwm: inner.depth_hwm.load(Ordering::Relaxed),
            inflight,
            workers: inner.n_workers,
            busy_workers: busy,
            worker_utilization: if inner.n_workers == 0 {
                0.0
            } else {
                busy as f64 / inner.n_workers as f64
            },
            sessions: inner.sessions.lock().unwrap().len(),
            cached_designs: inner.cache.lock().unwrap().len(),
            rolling_wait_p99_us: inner.wait_window.p99_fresh(),
            rolling_service_p99_us: inner.service_window.p99_fresh(),
            jobs_shed: inner.rec.counter("serve.shed.total"),
            jobs_rejected: inner.rec.counter("serve.jobs_rejected"),
            trace_dropped: inner.rec.trace_dropped(),
            tenant_inflight,
        }
    }

    /// Snapshot the serving metrics collected so far, including per-tenant
    /// ledgers and the authoritative queue-depth high watermark.
    pub fn report(&self) -> ServeReport {
        let mut report = ServeReport::from_recorder(&self.inner.rec);
        report.queue_depth_hwm = self.inner.depth_hwm.load(Ordering::Relaxed) as u64;
        report.tenants = self.inner.tenants.reports();
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Everything `finish` needs to attribute one serviced job.
struct JobMeta {
    job: JobId,
    tenant: String,
    kind: JobKind,
    crec: Recorder,
    /// When the job entered the queue — with `deadline`, the remaining
    /// budget checked between per-context compile phases.
    enqueued: Instant,
    deadline: Option<std::time::Duration>,
}

fn worker_loop(inner: &ServerInner) {
    loop {
        let queued = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    note_queue_depth(inner, queue.len());
                    break job;
                }
                // Drain-then-exit: accepted handles always complete even
                // when the pool is being torn down.
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.available.wait(queue).unwrap();
            }
        };
        let _busy = BusyGuard::new(inner);
        let kind = queued.work.kind();
        let crec = inner.rec.correlated(queued.job.raw(), &queued.tenant);
        let waited = queued.enqueued.elapsed();
        let wait_us = waited.as_micros() as u64;
        inner.rec.observe("serve.wait_us", wait_us as f64);
        inner.wait_window.record(wait_us as f64);
        crec.instant(
            "job_dequeued",
            &[("kind", kind.name().into()), ("wait_us", wait_us.into())],
        );
        if let Some(deadline) = queued.deadline {
            if waited > deadline {
                inner.rec.incr("serve.jobs_expired", 1);
                inner.tenants.on_expired(&queued.tenant, wait_us);
                crec.instant(
                    "job_expired",
                    &[
                        ("kind", kind.name().into()),
                        ("wait_us", wait_us.into()),
                        ("deadline_us", (deadline.as_micros() as u64).into()),
                    ],
                );
                let expired = ServeError::Deadline { waited_us: wait_us };
                match queued.work {
                    Work::Compile(_, shared) => shared.complete(Err(expired)),
                    Work::Sim(_, shared) => shared.complete(Err(expired)),
                }
                continue;
            }
        }
        let meta = JobMeta {
            job: queued.job,
            tenant: queued.tenant,
            kind,
            crec,
            enqueued: queued.enqueued,
            deadline: queued.deadline,
        };
        let start = Instant::now();
        match queued.work {
            Work::Compile(job, shared) => {
                let result = {
                    let _span = meta.crec.span("compile_job");
                    let _g = meta.crec.begin("compile_job", &[]);
                    process_compile(inner, job, &meta)
                };
                finish(inner, start, wait_us, result, &shared, &meta);
            }
            Work::Sim(job, shared) => {
                let result = {
                    let _span = meta.crec.span("sim_job");
                    let _g = meta.crec.begin("sim_job", &[]);
                    process_sim(inner, &job, &meta)
                };
                finish(inner, start, wait_us, result, &shared, &meta);
            }
        }
    }
}

/// Record service latency + outcome counters, charge the tenant, stamp the
/// timings into the outcome, and release the waiting client.
fn finish<T: Timed>(
    inner: &ServerInner,
    start: Instant,
    wait_us: u64,
    result: Result<T, ServeError>,
    shared: &Shared<T>,
    meta: &JobMeta,
) {
    let service_us = start.elapsed().as_micros() as u64;
    inner.rec.observe("serve.service_us", service_us as f64);
    inner.service_window.record(service_us as f64);
    let ok = result.is_ok();
    inner
        .tenants
        .on_finished(&meta.tenant, meta.kind, ok, wait_us, service_us);
    match result {
        Ok(mut outcome) => {
            inner.rec.incr("serve.jobs_completed", 1);
            outcome.set_times(wait_us, service_us);
            shared.complete(Ok(outcome));
        }
        Err(e) => {
            inner.rec.incr("serve.jobs_failed", 1);
            meta.crec.instant(
                "job_failed",
                &[
                    ("kind", meta.kind.name().into()),
                    ("error", e.to_string().into()),
                ],
            );
            shared.complete(Err(e));
        }
    }
}

trait Timed {
    fn set_times(&mut self, wait_us: u64, service_us: u64);
}

impl Timed for CompileOutcome {
    fn set_times(&mut self, wait_us: u64, service_us: u64) {
        self.wait_us = wait_us;
        self.service_us = service_us;
    }
}

impl Timed for SimOutcome {
    fn set_times(&mut self, wait_us: u64, service_us: u64) {
        self.wait_us = wait_us;
        self.service_us = service_us;
    }
}

fn process_compile(
    inner: &ServerInner,
    job: CompileJob,
    meta: &JobMeta,
) -> Result<CompileOutcome, ServeError> {
    let fp = DesignFingerprint::new(&job.arch, &job.circuits, &job.options);
    let key = fp.key();
    let cached = inner.cache.lock().unwrap().get(key);
    let hit = cached.is_some();
    inner.tenants.on_cache(&meta.tenant, hit);
    meta.crec
        .instant("cache_lookup", &[("hit", hit.into()), ("key", key.into())]);
    let mut delta: Option<DeltaStats> = None;
    let (design, cache_hit) = match cached {
        Some(design) => {
            inner.rec.incr("serve.cache_hits", 1);
            (design, true)
        }
        None => {
            inner.rec.incr("serve.cache_misses", 1);
            // On an exact miss, look for a near match: a cached design
            // compiled under the same arch/route options sharing the most
            // per-context netlist hashes. If one exists, only the changed
            // contexts are recompiled; the rest are reused bit-for-bit.
            let near = inner.cache.lock().unwrap().near_match(&fp);
            // In-service deadline enforcement: the compile polls this
            // between per-context phases, so a job whose budget lapses
            // mid-service stops instead of burning the worker to the end.
            let enqueued = meta.enqueued;
            let deadline = meta.deadline;
            let cancel_fn = move || deadline.is_some_and(|d| enqueued.elapsed() > d);
            let cancel: Option<&(dyn Fn() -> bool + Sync)> = if deadline.is_some() {
                Some(&cancel_fn)
            } else {
                None
            };
            // The cache lock is NOT held across the compile: two tenants
            // missing on the same key may both compile, but the artifact is
            // deterministic, so either insert is correct and the queue
            // never stalls behind a slow compile. The correlated recorder
            // rides into the compile pipeline, so per-context map/place/
            // route events carry this job's id.
            let compiled = match near {
                Some((base, shared)) => {
                    inner.rec.incr("serve.cache.near_hit", 1);
                    CompiledDesign::delta_compile_with(
                        &job.arch,
                        &job.circuits,
                        &job.options,
                        &meta.crec,
                        &base,
                        cancel,
                    )
                    .map(|(design, stats)| {
                        inner
                            .rec
                            .incr("serve.delta.contexts_reused", stats.contexts_reused as u64);
                        meta.crec.instant(
                            "delta_compile",
                            &[
                                ("base_key", base.key().into()),
                                ("shared_contexts", shared.into()),
                                ("contexts_total", stats.contexts_total.into()),
                                ("contexts_reused", stats.contexts_reused.into()),
                                ("placements_reused", stats.placements_reused.into()),
                                ("routes_reused", stats.routes_reused.into()),
                            ],
                        );
                        delta = Some(stats);
                        design
                    })
                }
                None => CompiledDesign::compile_cancellable(
                    &job.arch,
                    &job.circuits,
                    &job.options,
                    &meta.crec,
                    cancel,
                ),
            };
            let design = match compiled {
                Ok(design) => Arc::new(design),
                Err(CompileError::DeadlineExceeded) => {
                    // Serviced-but-expired: distinct from `serve.jobs_expired`
                    // (lapsed while queued, never serviced). These jobs also
                    // count into `serve.jobs_failed` / the tenant's `failed`
                    // bucket, since they consumed service time.
                    let waited_us = enqueued.elapsed().as_micros() as u64;
                    inner.rec.incr("serve.jobs_expired_in_service", 1);
                    meta.crec.instant(
                        "job_expired_in_service",
                        &[
                            ("waited_us", waited_us.into()),
                            (
                                "deadline_us",
                                (deadline.map_or(0, |d| d.as_micros() as u64)).into(),
                            ),
                        ],
                    );
                    return Err(ServeError::Deadline { waited_us });
                }
                Err(e) => return Err(e.into()),
            };
            let evicted = inner.cache.lock().unwrap().insert(key, design.clone());
            inner.rec.incr("serve.cache_evictions", evicted);
            (design, false)
        }
    };
    let session = SessionId(inner.next_session.fetch_add(1, Ordering::Relaxed));
    inner
        .sessions
        .lock()
        .unwrap()
        .insert(session, Arc::new(Mutex::new(Session::new(design.clone()))));
    Ok(CompileOutcome {
        job: meta.job,
        design,
        session,
        cache_hit,
        delta,
        wait_us: 0,
        service_us: 0,
    })
}

fn process_sim(
    inner: &ServerInner,
    job: &SimJob,
    meta: &JobMeta,
) -> Result<SimOutcome, ServeError> {
    let session = inner
        .sessions
        .lock()
        .unwrap()
        .get(&job.session)
        .cloned()
        .ok_or(ServeError::SessionNotFound {
            session: job.session,
        })?;
    let mut guard = session.lock().unwrap();
    let s = &mut *guard;
    if job.context >= s.design.n_contexts() {
        return Err(SimError::ContextNotProgrammed {
            context: job.context,
            programmed: s.design.n_contexts(),
        }
        .into());
    }
    let kernel = s.design.kernel(job.context);
    let regs = &mut s.regs[job.context];
    let mut outputs = Vec::with_capacity(job.words.len());
    for words in &job.words {
        if words.len() != kernel.n_inputs() {
            return Err(SimError::InputArity {
                context: job.context,
                expected: kernel.n_inputs(),
                got: words.len(),
            }
            .into());
        }
        let mut out = Vec::with_capacity(kernel.n_outputs());
        kernel.step(words, regs, &mut s.scratch, &mut out);
        outputs.push(out);
    }
    // Lane-cycles: one queue word steps all 64 stimulus lanes one cycle.
    let cycles = (job.words.len() * LANES) as u64;
    inner.rec.incr("serve.sim_cycles", cycles);
    inner.tenants.on_sim_cycles(&meta.tenant, cycles);
    meta.crec.instant(
        "sim_batch",
        &[
            ("context", job.context.into()),
            ("cycles", job.words.len().into()),
            ("lane_cycles", cycles.into()),
        ],
    );
    Ok(SimOutcome {
        job: meta.job,
        outputs,
        wait_us: 0,
        service_us: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_types_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        assert_send_sync::<Arc<CompiledDesign>>();
        fn assert_send<T: Send>() {}
        assert_send::<JobHandle<CompileOutcome>>();
        assert_send::<JobHandle<SimOutcome>>();
    }
}
