//! The worker pool, bounded queue, session table, tenant ledger, and job
//! execution.
//!
//! Telemetry discipline: the queue-depth gauges are derived from one
//! authoritative source — [`note_queue_depth`], called with the queue's
//! length at every transition *while the queue lock is held* — so the
//! submit and dequeue paths can never publish contradictory depths. An
//! atomic mirror of the same value serves lock-free snapshot reads.
//!
//! Lock ordering: queue → tenants. The tenant table is never locked before
//! the queue, and no lock is held across a compile or sim step. The
//! sessions map lock only guards the `SessionId → Arc<Session>` table;
//! per-session state sits behind each session's own lock, so a checkpoint
//! of one session never stalls sim jobs on another.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use mcfpga_obs::Recorder;
use mcfpga_sim::{CompileError, DeltaStats, KernelScratch, SimError, LANES};

use crate::admission::{AdmissionContext, AdmissionDecision, JobKind};
use crate::cache::DesignCache;
use crate::config::ServeConfig;
use crate::design::{CompiledDesign, DesignFingerprint};
use crate::error::{MalformedReason, ServeError, SubmitError};
use crate::job::{
    CheckpointJob, CheckpointOutcome, CompileJob, CompileOutcome, JobHandle, JobId, Outcome,
    Request, RestoreJob, RestoreOutcome, Shared, SimJob, SimOutcome,
};
use crate::report::ServeReport;
use crate::session::{SessionSnapshot, SNAPSHOT_VERSION};
use crate::snapshot::{HealthSnapshot, RollingLatency, TenantInflight};
use crate::tenant::{TenantStats, TenantTable, DEFAULT_TENANT};

/// Session ids are allocated from one process-global counter, not
/// per-server, so an id stays meaningful as its session migrates between
/// the shards of a [`crate::ShardRouter`] — no two servers in a process
/// ever mint the same id.
static NEXT_SESSION: AtomicU64 = AtomicU64::new(1);

fn next_session_id() -> SessionId {
    SessionId(NEXT_SESSION.fetch_add(1, Ordering::Relaxed))
}

/// Opaque handle to one tenant's private runtime state on a server.
/// Process-globally unique: ids survive checkpoint/restore-based migration
/// between servers without collision (restore still mints a fresh id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    /// The raw id, for logging.
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rehydrate an id from its raw form — for the shard router's snapshot
    /// store, which keys by raw id. Ids are process-globally allocated, so
    /// this never forges a colliding identity.
    pub(crate) fn from_raw(raw: u64) -> SessionId {
        SessionId(raw)
    }
}

/// The mutable half of a session: per-context lane-parallel register words,
/// reusable kernel scratch, and the execution counters a checkpoint carries.
struct SessionState {
    regs: Vec<Vec<u64>>,
    scratch: KernelScratch,
    active_context: usize,
    words_stepped: u64,
    lane_cycles: u64,
}

/// One tenant's session. The compiled design is shared and immutable; only
/// [`SessionState`] is private to the session, which is what keeps tenants
/// from contaminating each other. The design and tenant label sit *outside*
/// the state lock so submit-time stimulus validation can read them while a
/// sim job holds the state — and a checkpoint taking the state lock
/// naturally serializes against in-flight sim jobs, so a snapshot is always
/// a consistent between-jobs state.
struct Session {
    design: Arc<CompiledDesign>,
    tenant: String,
    state: Mutex<SessionState>,
}

impl Session {
    fn new(design: Arc<CompiledDesign>, tenant: String) -> Session {
        // Every lane of every context starts from the design's power-on
        // register state (bit broadcast across the 64 lanes).
        let regs = (0..design.n_contexts())
            .map(|c| {
                design
                    .initial_registers(c)
                    .iter()
                    .map(|&b| if b { !0u64 } else { 0 })
                    .collect()
            })
            .collect();
        Session {
            design,
            tenant,
            state: Mutex::new(SessionState {
                regs,
                scratch: KernelScratch::new(),
                active_context: 0,
                words_stepped: 0,
                lane_cycles: 0,
            }),
        }
    }
}

struct QueuedJob {
    job: JobId,
    tenant: String,
    request: Request,
    shared: Arc<Shared>,
    enqueued: Instant,
    deadline: Option<std::time::Duration>,
}

struct ServerInner {
    config: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    available: Condvar,
    shutdown: AtomicBool,
    cache: Mutex<DesignCache>,
    sessions: Mutex<HashMap<SessionId, Arc<Session>>>,
    next_job: AtomicU64,
    // Lock-free mirrors of queue state for snapshot reads; written only by
    // `note_queue_depth` while the queue lock is held.
    depth: AtomicUsize,
    depth_hwm: AtomicUsize,
    busy_workers: AtomicUsize,
    n_workers: usize,
    tenants: TenantTable,
    wait_window: RollingLatency,
    service_window: RollingLatency,
    rec: Recorder,
}

/// Publish a new queue depth. Must be called with the queue lock held and
/// `len` equal to the queue's current length — the single authoritative
/// source both gauges and the snapshot mirror derive from.
fn note_queue_depth(inner: &ServerInner, len: usize) {
    inner.depth.store(len, Ordering::Relaxed);
    let mut hwm = inner.depth_hwm.load(Ordering::Relaxed);
    while len > hwm {
        match inner
            .depth_hwm
            .compare_exchange_weak(hwm, len, Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => {
                hwm = len;
                break;
            }
            Err(actual) => hwm = actual,
        }
    }
    inner.rec.set_gauge("serve.queue_depth", len as f64);
    inner
        .rec
        .set_gauge("serve.queue_depth_hwm", hwm.max(len) as f64);
}

/// RAII increment of the busy-worker gauge while a job is being serviced.
struct BusyGuard<'a>(&'a ServerInner);

impl<'a> BusyGuard<'a> {
    fn new(inner: &'a ServerInner) -> BusyGuard<'a> {
        inner.busy_workers.fetch_add(1, Ordering::Relaxed);
        BusyGuard(inner)
    }
}

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.busy_workers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// A multi-tenant job server over the MC-FPGA compile flow and batched
/// simulator: a fixed worker pool drains a bounded submission queue;
/// compiled designs are shared through a content-addressed LRU cache; each
/// tenant's register state lives in a private session.
///
/// All work enters through one door: [`Server::submit`] accepts anything
/// `Into<`[`Request`]`>` — compile, sim, checkpoint, restore — and returns
/// a `JobHandle<`[`Outcome`]`>`. The typed wrappers ([`Server::submit_compile`],
/// [`Server::submit_sim`], …) are thin [`JobHandle::map`]s over the same
/// path. Structurally invalid submissions (bad stimulus shape, bad
/// snapshot) are refused at the door with [`SubmitError::Malformed`]
/// instead of burning a worker.
///
/// Every submission attempt is accounted to its tenant's [`TenantStats`]
/// ledger (conserved: `submitted` equals `completed + failed + expired +
/// rejected + shed + inflight`), every accepted job's trace events carry its
/// [`JobId`] and tenant label (reconstructable with `mcfpga_obs::job_trace`),
/// and [`Server::snapshot`] reads live health without touching the queue
/// lock. An [`crate::AdmissionPolicy`] may shed work before the hard
/// capacity bound; each shed is typed, counted, and traced.
///
/// Sessions are portable: [`Server::checkpoint_session`] serializes one
/// into a [`SessionSnapshot`] and [`Server::restore_session`] resumes it —
/// on this server or any other — with bit-identical subsequent output,
/// recompiling through the design cache when the artifact is unknown.
///
/// Dropping the server stops intake, drains every already-accepted job, and
/// joins the workers — so an accepted [`JobHandle`] always completes.
///
/// ```no_run
/// use mcfpga_serve::{CompileJob, ServeConfig, Server, SimJob};
///
/// let server = Server::new(ServeConfig::default().with_workers(4));
/// let arch = mcfpga_arch::ArchSpec::paper_default();
/// let circuits = vec![mcfpga_netlist::library::adder(4)];
/// let handle = server.submit_compile(CompileJob::new(arch, circuits))?;
/// let compiled = handle.wait()?;
/// let sim = server
///     .submit_sim(SimJob::new(compiled.session, 0, vec![vec![0; 9]]))?
///     .wait()?;
/// println!("outputs: {:?}", sim.outputs);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Server {
    inner: Arc<ServerInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Start a server with its own (disabled) recorder.
    pub fn new(config: ServeConfig) -> Server {
        Server::with_recorder(config, &Recorder::disabled())
    }

    /// Start a server routing queue/cache/latency telemetry into `rec`
    /// (counters `serve.*`, histograms `serve.wait_us` / `serve.service_us`,
    /// a span per serviced job, and per-job correlated trace events).
    pub fn with_recorder(config: ServeConfig, rec: &Recorder) -> Server {
        let n_workers = config.resolved_workers();
        let cache = DesignCache::new(config.cache_capacity);
        let inner = Arc::new(ServerInner {
            config,
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(cache),
            sessions: Mutex::new(HashMap::new()),
            next_job: AtomicU64::new(1),
            depth: AtomicUsize::new(0),
            depth_hwm: AtomicUsize::new(0),
            busy_workers: AtomicUsize::new(0),
            n_workers,
            tenants: TenantTable::default(),
            wait_window: RollingLatency::default(),
            service_window: RollingLatency::default(),
            rec: rec.clone(),
        });
        inner.rec.set_gauge("serve.workers", n_workers as f64);
        let workers = (0..n_workers)
            .map(|i| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn serve worker")
            })
            .collect();
        Server { inner, workers }
    }

    /// Enqueue any request — the unified submission door. Refused with
    /// [`SubmitError::QueueFull`] when the bounded queue is at capacity,
    /// [`SubmitError::Shed`] when the admission policy declines it, or
    /// [`SubmitError::Malformed`] when the submission is structurally
    /// invalid — the caller owns the retry policy.
    pub fn submit(&self, request: impl Into<Request>) -> Result<JobHandle<Outcome>, SubmitError> {
        let request = request.into();
        let inner = &self.inner;
        let tenant = request
            .tenant()
            .unwrap_or_else(|| DEFAULT_TENANT.to_string());
        let kind = request.kind();
        let deadline = request.deadline();
        let job = JobId(inner.next_job.fetch_add(1, Ordering::Relaxed));
        let crec = inner.rec.correlated(job.raw(), &tenant);
        inner.tenants.on_submitted(&tenant);
        if inner.shutdown.load(Ordering::SeqCst) {
            inner.rec.incr("serve.jobs_rejected", 1);
            inner.tenants.on_rejected(&tenant);
            return Err(SubmitError::Shutdown);
        }
        // Structural validation before the queue lock: a malformed job is
        // refused here, typed, and never reaches a worker. Charged to the
        // tenant's `rejected` bucket so the ledger stays conserved.
        if let Err(reason) = self.validate(&request) {
            inner.rec.incr("serve.jobs_malformed", 1);
            inner.tenants.on_rejected(&tenant);
            crec.instant(
                "job_malformed",
                &[
                    ("kind", kind.name().into()),
                    ("reason", reason.to_string().into()),
                ],
            );
            return Err(SubmitError::Malformed { reason });
        }
        let mut queue = inner.queue.lock().unwrap();
        if queue.len() >= inner.config.queue_capacity {
            drop(queue);
            inner.rec.incr("serve.jobs_rejected", 1);
            inner.tenants.on_rejected(&tenant);
            crec.instant(
                "job_rejected",
                &[
                    ("kind", kind.name().into()),
                    ("capacity", inner.config.queue_capacity.into()),
                ],
            );
            return Err(SubmitError::QueueFull {
                capacity: inner.config.queue_capacity,
            });
        }
        let ctx = AdmissionContext {
            tenant: &tenant,
            kind,
            queue_depth: queue.len(),
            queue_capacity: inner.config.queue_capacity,
            queue_depth_hwm: inner.depth_hwm.load(Ordering::Relaxed),
            tenant_inflight: inner.tenants.inflight(&tenant),
            rolling_wait_p99_us: inner.wait_window.p99(),
        };
        if let AdmissionDecision::Shed(reason) = inner.config.admission.admit(&ctx) {
            let depth = queue.len();
            drop(queue);
            inner.rec.incr("serve.shed.total", 1);
            inner.rec.incr(&format!("serve.shed.{}", reason.key()), 1);
            inner.tenants.on_shed(&tenant);
            crec.instant(
                "job_shed",
                &[
                    ("kind", kind.name().into()),
                    ("reason", reason.key().into()),
                    ("detail", reason.to_string().into()),
                    ("queue_depth", depth.into()),
                    ("tenant_inflight", ctx.tenant_inflight.into()),
                ],
            );
            return Err(SubmitError::Shed { reason });
        }
        inner.tenants.on_accepted(&tenant, kind);
        let shared = Shared::new();
        queue.push_back(QueuedJob {
            job,
            tenant,
            request,
            shared: shared.clone(),
            enqueued: Instant::now(),
            deadline: deadline.or(inner.config.default_deadline),
        });
        inner.rec.incr("serve.jobs_submitted", 1);
        let depth = queue.len();
        note_queue_depth(inner, depth);
        drop(queue);
        crec.instant(
            "job_submitted",
            &[("kind", kind.name().into()), ("queue_depth", depth.into())],
        );
        inner.available.notify_one();
        Ok(JobHandle::new(job, shared))
    }

    /// Structural checks that need no worker: sim stimulus shape against
    /// the session's design, snapshot self-consistency. A sim job naming an
    /// unknown session passes here — session existence is racy by nature,
    /// so the worker reports [`ServeError::SessionNotFound`] as before.
    fn validate(&self, request: &Request) -> Result<(), MalformedReason> {
        match request {
            Request::Sim(job) => {
                let session = self
                    .inner
                    .sessions
                    .lock()
                    .unwrap()
                    .get(&job.session)
                    .cloned();
                let Some(session) = session else {
                    return Ok(());
                };
                let design = &session.design;
                if job.context >= design.n_contexts() {
                    return Err(MalformedReason::ContextOutOfRange {
                        context: job.context,
                        programmed: design.n_contexts(),
                    });
                }
                let expected = design.kernel(job.context).n_inputs();
                for (cycle, words) in job.words.iter().enumerate() {
                    if words.len() != expected {
                        return Err(MalformedReason::InputArity {
                            cycle,
                            expected,
                            got: words.len(),
                        });
                    }
                }
                Ok(())
            }
            Request::Restore(job) => job.snapshot.validate_shape(),
            _ => Ok(()),
        }
    }

    /// Enqueue a compile job. A typed wrapper over [`Server::submit`].
    pub fn submit_compile(
        &self,
        job: CompileJob,
    ) -> Result<JobHandle<CompileOutcome>, SubmitError> {
        Ok(self.submit(job)?.map(|o| {
            o.into_compile()
                .expect("compile request completes with a compile outcome")
        }))
    }

    /// Enqueue a sim job against a session returned by a completed compile.
    /// A typed wrapper over [`Server::submit`].
    pub fn submit_sim(&self, job: SimJob) -> Result<JobHandle<SimOutcome>, SubmitError> {
        Ok(self.submit(job)?.map(|o| {
            o.into_sim()
                .expect("sim request completes with a sim outcome")
        }))
    }

    /// Enqueue a checkpoint job. A typed wrapper over [`Server::submit`];
    /// see [`Server::checkpoint_session`] for the synchronous form.
    pub fn submit_checkpoint(
        &self,
        job: CheckpointJob,
    ) -> Result<JobHandle<CheckpointOutcome>, SubmitError> {
        Ok(self.submit(job)?.map(|o| {
            o.into_checkpoint()
                .expect("checkpoint request completes with a checkpoint outcome")
        }))
    }

    /// Enqueue a restore job. A typed wrapper over [`Server::submit`];
    /// see [`Server::restore_session`] for the synchronous form.
    pub fn submit_restore(
        &self,
        job: RestoreJob,
    ) -> Result<JobHandle<RestoreOutcome>, SubmitError> {
        Ok(self.submit(job)?.map(|o| {
            o.into_restore()
                .expect("restore request completes with a restore outcome")
        }))
    }

    /// Serialize one session into a portable [`SessionSnapshot`] — the
    /// synchronous control-plane form (a queued [`CheckpointJob`] does the
    /// same through the worker pool, with queue accounting). Taken behind
    /// the session's own lock, so the snapshot is a consistent between-jobs
    /// state: an in-flight sim job either fully precedes or fully follows
    /// it. The session stays live.
    pub fn checkpoint_session(&self, session: SessionId) -> Result<SessionSnapshot, ServeError> {
        let job = JobId(self.inner.next_job.fetch_add(1, Ordering::Relaxed));
        do_checkpoint(&self.inner, session, job)
    }

    /// Resume a [`SessionSnapshot`] as a fresh session on this server — the
    /// synchronous control-plane form of [`RestoreJob`]. The design is
    /// resolved through the cache by the fingerprint recomputed from the
    /// snapshot's carried compile request, delta/cold-compiling on a miss;
    /// subsequent output is bit-identical to the uninterrupted run.
    pub fn restore_session(&self, snapshot: SessionSnapshot) -> Result<RestoreOutcome, ServeError> {
        if let Err(reason) = snapshot.validate_shape() {
            return Err(ServeError::SnapshotMismatch {
                detail: reason.to_string(),
            });
        }
        let job = JobId(self.inner.next_job.fetch_add(1, Ordering::Relaxed));
        let (session, design, recompiled, delta, refingerprinted) =
            do_restore(&self.inner, &snapshot, job)?;
        Ok(RestoreOutcome {
            job,
            session,
            design,
            recompiled,
            delta,
            refingerprinted,
            wait_us: 0,
            service_us: 0,
        })
    }

    /// Drop a session's private state. Sim jobs naming it afterwards fail
    /// with [`ServeError::SessionNotFound`]. Returns whether it existed.
    pub fn close_session(&self, session: SessionId) -> bool {
        self.inner
            .sessions
            .lock()
            .unwrap()
            .remove(&session)
            .is_some()
    }

    /// Whether this server currently holds `session` — how a shard router
    /// locates a session's owner.
    pub fn has_session(&self, session: SessionId) -> bool {
        self.inner.sessions.lock().unwrap().contains_key(&session)
    }

    /// Ids of every live session, ascending.
    pub fn session_ids(&self) -> Vec<SessionId> {
        let mut ids: Vec<SessionId> = self
            .inner
            .sessions
            .lock()
            .unwrap()
            .keys()
            .copied()
            .collect();
        ids.sort();
        ids
    }

    /// The design-fingerprint key a live session runs (`None` if unknown) —
    /// what a shard router hashes to decide the session's home shard.
    pub fn session_design_key(&self, session: SessionId) -> Option<u64> {
        self.inner
            .sessions
            .lock()
            .unwrap()
            .get(&session)
            .map(|s| s.design.key())
    }

    /// Live session count.
    pub fn n_sessions(&self) -> usize {
        self.inner.sessions.lock().unwrap().len()
    }

    /// Designs currently held by the LRU cache.
    pub fn cached_designs(&self) -> usize {
        self.inner.cache.lock().unwrap().len()
    }

    /// One tenant's exact counters right now (`None` if the tenant never
    /// submitted). The stats are conserved: see [`TenantStats::is_conserved`].
    pub fn tenant_stats(&self, tenant: &str) -> Option<TenantStats> {
        self.inner.tenants.stats(tenant)
    }

    /// A point-in-time health view, cheap enough to call on every submit:
    /// reads atomic mirrors and the tenant/session tables, never the job
    /// queue lock.
    pub fn snapshot(&self) -> HealthSnapshot {
        let inner = &self.inner;
        let tenant_inflight: Vec<TenantInflight> = inner
            .tenants
            .inflight_all()
            .into_iter()
            .map(|(tenant, inflight)| TenantInflight { tenant, inflight })
            .collect();
        let inflight = tenant_inflight.iter().map(|t| t.inflight).sum();
        let busy = inner.busy_workers.load(Ordering::Relaxed);
        HealthSnapshot {
            queue_depth: inner.depth.load(Ordering::Relaxed),
            queue_capacity: inner.config.queue_capacity,
            queue_depth_hwm: inner.depth_hwm.load(Ordering::Relaxed),
            inflight,
            workers: inner.n_workers,
            busy_workers: busy,
            worker_utilization: if inner.n_workers == 0 {
                0.0
            } else {
                busy as f64 / inner.n_workers as f64
            },
            sessions: inner.sessions.lock().unwrap().len(),
            cached_designs: inner.cache.lock().unwrap().len(),
            rolling_wait_p99_us: inner.wait_window.p99_fresh(),
            rolling_service_p99_us: inner.service_window.p99_fresh(),
            jobs_shed: inner.rec.counter("serve.shed.total"),
            jobs_rejected: inner.rec.counter("serve.jobs_rejected"),
            trace_dropped: inner.rec.trace_dropped(),
            tenant_inflight,
        }
    }

    /// Snapshot the serving metrics collected so far, including per-tenant
    /// ledgers and the authoritative queue-depth high watermark.
    pub fn report(&self) -> ServeReport {
        let mut report = ServeReport::from_recorder(&self.inner.rec);
        report.queue_depth_hwm = self.inner.depth_hwm.load(Ordering::Relaxed) as u64;
        report.tenants = self.inner.tenants.reports();
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Everything `finish` needs to attribute one serviced job.
struct JobMeta {
    job: JobId,
    tenant: String,
    kind: JobKind,
    crec: Recorder,
    /// When the job entered the queue — with `deadline`, the remaining
    /// budget checked between per-context compile phases.
    enqueued: Instant,
    deadline: Option<std::time::Duration>,
}

fn worker_loop(inner: &ServerInner) {
    loop {
        let queued = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(job) = queue.pop_front() {
                    note_queue_depth(inner, queue.len());
                    break job;
                }
                // Drain-then-exit: accepted handles always complete even
                // when the pool is being torn down.
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.available.wait(queue).unwrap();
            }
        };
        let _busy = BusyGuard::new(inner);
        let kind = queued.request.kind();
        let crec = inner.rec.correlated(queued.job.raw(), &queued.tenant);
        let waited = queued.enqueued.elapsed();
        let wait_us = waited.as_micros() as u64;
        inner.rec.observe("serve.wait_us", wait_us as f64);
        inner.wait_window.record(wait_us as f64);
        crec.instant(
            "job_dequeued",
            &[("kind", kind.name().into()), ("wait_us", wait_us.into())],
        );
        if let Some(deadline) = queued.deadline {
            if waited > deadline {
                inner.rec.incr("serve.jobs_expired", 1);
                inner.tenants.on_expired(&queued.tenant, wait_us);
                crec.instant(
                    "job_expired",
                    &[
                        ("kind", kind.name().into()),
                        ("wait_us", wait_us.into()),
                        ("deadline_us", (deadline.as_micros() as u64).into()),
                    ],
                );
                queued
                    .shared
                    .complete(Err(ServeError::Deadline { waited_us: wait_us }));
                continue;
            }
        }
        let meta = JobMeta {
            job: queued.job,
            tenant: queued.tenant,
            kind,
            crec,
            enqueued: queued.enqueued,
            deadline: queued.deadline,
        };
        let start = Instant::now();
        let result = match queued.request {
            Request::Compile(job) => {
                let _span = meta.crec.span("compile_job");
                let _g = meta.crec.begin("compile_job", &[]);
                process_compile(inner, job, &meta).map(Outcome::Compile)
            }
            Request::Sim(job) => {
                let _span = meta.crec.span("sim_job");
                let _g = meta.crec.begin("sim_job", &[]);
                process_sim(inner, &job, &meta).map(Outcome::Sim)
            }
            Request::Checkpoint(job) => {
                let _span = meta.crec.span("checkpoint_job");
                let _g = meta.crec.begin("checkpoint_job", &[]);
                process_checkpoint(inner, &job, &meta).map(Outcome::Checkpoint)
            }
            Request::Restore(job) => {
                let _span = meta.crec.span("restore_job");
                let _g = meta.crec.begin("restore_job", &[]);
                process_restore(inner, &job, &meta).map(Outcome::Restore)
            }
        };
        finish(inner, start, wait_us, result, &queued.shared, &meta);
    }
}

/// Record service latency + outcome counters, charge the tenant, stamp the
/// timings into the outcome, and release the waiting client.
fn finish(
    inner: &ServerInner,
    start: Instant,
    wait_us: u64,
    result: Result<Outcome, ServeError>,
    shared: &Shared,
    meta: &JobMeta,
) {
    let service_us = start.elapsed().as_micros() as u64;
    inner.rec.observe("serve.service_us", service_us as f64);
    inner.service_window.record(service_us as f64);
    let ok = result.is_ok();
    inner
        .tenants
        .on_finished(&meta.tenant, meta.kind, ok, wait_us, service_us);
    match result {
        Ok(mut outcome) => {
            inner.rec.incr("serve.jobs_completed", 1);
            outcome.set_times(wait_us, service_us);
            shared.complete(Ok(outcome));
        }
        Err(e) => {
            inner.rec.incr("serve.jobs_failed", 1);
            meta.crec.instant(
                "job_failed",
                &[
                    ("kind", meta.kind.name().into()),
                    ("error", e.to_string().into()),
                ],
            );
            shared.complete(Err(e));
        }
    }
}

fn process_compile(
    inner: &ServerInner,
    job: CompileJob,
    meta: &JobMeta,
) -> Result<CompileOutcome, ServeError> {
    let fp = DesignFingerprint::new(&job.arch, &job.circuits, &job.options);
    let key = fp.key();
    let cached = inner.cache.lock().unwrap().get(key);
    let hit = cached.is_some();
    inner.tenants.on_cache(&meta.tenant, hit);
    meta.crec
        .instant("cache_lookup", &[("hit", hit.into()), ("key", key.into())]);
    let mut delta: Option<DeltaStats> = None;
    let (design, cache_hit) = match cached {
        Some(design) => {
            inner.rec.incr("serve.cache_hits", 1);
            (design, true)
        }
        None => {
            inner.rec.incr("serve.cache_misses", 1);
            // On an exact miss, look for a near match: a cached design
            // compiled under the same arch/route options sharing the most
            // per-context netlist hashes. If one exists, only the changed
            // contexts are recompiled; the rest are reused bit-for-bit.
            let near = inner.cache.lock().unwrap().near_match(&fp);
            // In-service deadline enforcement: the compile polls this
            // between per-context phases, so a job whose budget lapses
            // mid-service stops instead of burning the worker to the end.
            let enqueued = meta.enqueued;
            let deadline = meta.deadline;
            let cancel_fn = move || deadline.is_some_and(|d| enqueued.elapsed() > d);
            let cancel: Option<&(dyn Fn() -> bool + Sync)> = if deadline.is_some() {
                Some(&cancel_fn)
            } else {
                None
            };
            // The cache lock is NOT held across the compile: two tenants
            // missing on the same key may both compile, but the artifact is
            // deterministic, so either insert is correct and the queue
            // never stalls behind a slow compile. The correlated recorder
            // rides into the compile pipeline, so per-context map/place/
            // route events carry this job's id.
            let compiled = match near {
                Some((base, shared)) => {
                    inner.rec.incr("serve.cache.near_hit", 1);
                    CompiledDesign::delta_compile_with(
                        &job.arch,
                        &job.circuits,
                        &job.options,
                        &meta.crec,
                        &base,
                        cancel,
                    )
                    .map(|(design, stats)| {
                        inner
                            .rec
                            .incr("serve.delta.contexts_reused", stats.contexts_reused as u64);
                        meta.crec.instant(
                            "delta_compile",
                            &[
                                ("base_key", base.key().into()),
                                ("shared_contexts", shared.into()),
                                ("contexts_total", stats.contexts_total.into()),
                                ("contexts_reused", stats.contexts_reused.into()),
                                ("placements_reused", stats.placements_reused.into()),
                                ("routes_reused", stats.routes_reused.into()),
                            ],
                        );
                        delta = Some(stats);
                        design
                    })
                }
                None => CompiledDesign::compile_cancellable(
                    &job.arch,
                    &job.circuits,
                    &job.options,
                    &meta.crec,
                    cancel,
                ),
            };
            let design = match compiled {
                Ok(design) => Arc::new(design),
                Err(CompileError::DeadlineExceeded) => {
                    // Serviced-but-expired: distinct from `serve.jobs_expired`
                    // (lapsed while queued, never serviced). These jobs also
                    // count into `serve.jobs_failed` / the tenant's `failed`
                    // bucket, since they consumed service time.
                    let waited_us = enqueued.elapsed().as_micros() as u64;
                    inner.rec.incr("serve.jobs_expired_in_service", 1);
                    meta.crec.instant(
                        "job_expired_in_service",
                        &[
                            ("waited_us", waited_us.into()),
                            (
                                "deadline_us",
                                (deadline.map_or(0, |d| d.as_micros() as u64)).into(),
                            ),
                        ],
                    );
                    return Err(ServeError::Deadline { waited_us });
                }
                Err(e) => return Err(e.into()),
            };
            let evicted = inner.cache.lock().unwrap().insert(key, design.clone());
            inner.rec.incr("serve.cache_evictions", evicted);
            (design, false)
        }
    };
    let session = next_session_id();
    inner.sessions.lock().unwrap().insert(
        session,
        Arc::new(Session::new(design.clone(), meta.tenant.clone())),
    );
    Ok(CompileOutcome {
        job: meta.job,
        design,
        session,
        cache_hit,
        delta,
        wait_us: 0,
        service_us: 0,
    })
}

fn process_sim(
    inner: &ServerInner,
    job: &SimJob,
    meta: &JobMeta,
) -> Result<SimOutcome, ServeError> {
    let session = inner
        .sessions
        .lock()
        .unwrap()
        .get(&job.session)
        .cloned()
        .ok_or(ServeError::SessionNotFound {
            session: job.session,
        })?;
    let mut guard = session.state.lock().unwrap();
    let s = &mut *guard;
    // Defense in depth: submit-time validation already refused out-of-shape
    // stimulus for sessions it could see, but the session table is racy
    // (the session may have been restored with a different design since).
    if job.context >= session.design.n_contexts() {
        return Err(SimError::ContextNotProgrammed {
            context: job.context,
            programmed: session.design.n_contexts(),
        }
        .into());
    }
    let kernel = session.design.kernel(job.context);
    let regs = &mut s.regs[job.context];
    let mut outputs = Vec::with_capacity(job.words.len());
    for words in &job.words {
        if words.len() != kernel.n_inputs() {
            return Err(SimError::InputArity {
                context: job.context,
                expected: kernel.n_inputs(),
                got: words.len(),
            }
            .into());
        }
        let mut out = Vec::with_capacity(kernel.n_outputs());
        kernel.step(words, regs, &mut s.scratch, &mut out);
        outputs.push(out);
    }
    // Lane-cycles: one queue word steps all 64 stimulus lanes one cycle.
    let cycles = (job.words.len() * LANES) as u64;
    s.active_context = job.context;
    s.words_stepped += job.words.len() as u64;
    s.lane_cycles += cycles;
    inner.rec.incr("serve.sim_cycles", cycles);
    inner.tenants.on_sim_cycles(&meta.tenant, cycles);
    meta.crec.instant(
        "sim_batch",
        &[
            ("context", job.context.into()),
            ("cycles", job.words.len().into()),
            ("lane_cycles", cycles.into()),
        ],
    );
    Ok(SimOutcome {
        job: meta.job,
        outputs,
        wait_us: 0,
        service_us: 0,
    })
}

fn process_checkpoint(
    inner: &ServerInner,
    job: &CheckpointJob,
    meta: &JobMeta,
) -> Result<CheckpointOutcome, ServeError> {
    let snapshot = do_checkpoint(inner, job.session, meta.job)?;
    Ok(CheckpointOutcome {
        job: meta.job,
        session: job.session,
        snapshot,
        wait_us: 0,
        service_us: 0,
    })
}

fn process_restore(
    inner: &ServerInner,
    job: &RestoreJob,
    meta: &JobMeta,
) -> Result<RestoreOutcome, ServeError> {
    let (session, design, recompiled, delta, refingerprinted) =
        do_restore(inner, &job.snapshot, meta.job)?;
    Ok(RestoreOutcome {
        job: meta.job,
        session,
        design,
        recompiled,
        delta,
        refingerprinted,
        wait_us: 0,
        service_us: 0,
    })
}

/// The checkpoint core shared by the synchronous
/// [`Server::checkpoint_session`] and the queued [`CheckpointJob`] path:
/// serialize the session's full compile request plus its mutable state,
/// behind the session's own lock.
fn do_checkpoint(
    inner: &ServerInner,
    id: SessionId,
    job: JobId,
) -> Result<SessionSnapshot, ServeError> {
    let session = inner
        .sessions
        .lock()
        .unwrap()
        .get(&id)
        .cloned()
        .ok_or(ServeError::SessionNotFound { session: id })?;
    let snapshot = {
        let state = session.state.lock().unwrap();
        SessionSnapshot {
            version: SNAPSHOT_VERSION,
            source_session: id.raw(),
            design_key: session.design.key(),
            switch_fp: session.design.fingerprint(),
            arch: session.design.arch().clone(),
            circuits: session.design.circuits().to_vec(),
            options: *session.design.options(),
            tenant: session.tenant.clone(),
            active_context: state.active_context,
            regs: state.regs.clone(),
            words_stepped: state.words_stepped,
            lane_cycles: state.lane_cycles,
        }
    };
    inner.rec.incr("serve.checkpoints", 1);
    let crec = inner.rec.correlated(job.raw(), &session.tenant);
    crec.instant(
        "session_checkpoint",
        &[
            ("session", id.raw().into()),
            ("contexts", snapshot.regs.len().into()),
            ("words_stepped", snapshot.words_stepped.into()),
        ],
    );
    Ok(snapshot)
}

/// What [`do_restore`] hands back: the fresh session id, the resolved
/// design, whether it was recompiled, the delta stats if the near-match
/// path ran, and whether the snapshot's stored key had to be re-derived.
type Restored = (
    SessionId,
    Arc<CompiledDesign>,
    bool,
    Option<DeltaStats>,
    bool,
);

/// The restore core shared by the synchronous [`Server::restore_session`]
/// and the queued [`RestoreJob`] path. Resolution order: recompute the
/// fingerprint from the snapshot's carried request (authoritative — the
/// recorded `design_key` is never trusted across builds) → exact cache hit
/// → delta compile against a cached near match → cold compile; the artifact
/// is bit-identical on every path. The restored register state is validated
/// against the resolved design before the session goes live.
fn do_restore(
    inner: &ServerInner,
    snapshot: &SessionSnapshot,
    job: JobId,
) -> Result<Restored, ServeError> {
    let crec = inner.rec.correlated(job.raw(), &snapshot.tenant);
    let fp = snapshot.fingerprint();
    let key = fp.key();
    let refingerprinted = key != snapshot.design_key;
    let cached = inner.cache.lock().unwrap().get(key);
    let mut delta: Option<DeltaStats> = None;
    let (design, recompiled) = match cached {
        Some(design) => (design, false),
        None => {
            inner.rec.incr("serve.restore.recompiles", 1);
            let near = inner.cache.lock().unwrap().near_match(&fp);
            let compiled = match near {
                Some((base, shared)) => {
                    inner.rec.incr("serve.cache.near_hit", 1);
                    CompiledDesign::delta_compile_with(
                        &snapshot.arch,
                        &snapshot.circuits,
                        &snapshot.options,
                        &crec,
                        &base,
                        None,
                    )
                    .map(|(design, stats)| {
                        inner
                            .rec
                            .incr("serve.delta.contexts_reused", stats.contexts_reused as u64);
                        crec.instant(
                            "delta_compile",
                            &[
                                ("base_key", base.key().into()),
                                ("shared_contexts", shared.into()),
                                ("contexts_total", stats.contexts_total.into()),
                                ("contexts_reused", stats.contexts_reused.into()),
                            ],
                        );
                        delta = Some(stats);
                        design
                    })
                }
                None => CompiledDesign::compile_cancellable(
                    &snapshot.arch,
                    &snapshot.circuits,
                    &snapshot.options,
                    &crec,
                    None,
                ),
            };
            let design = Arc::new(compiled.map_err(ServeError::from)?);
            let evicted = inner.cache.lock().unwrap().insert(key, design.clone());
            inner.rec.incr("serve.cache_evictions", evicted);
            (design, true)
        }
    };
    // The snapshot's register state must fit the artifact its own request
    // resolves to on this build.
    if design.n_contexts() != snapshot.regs.len() {
        return Err(ServeError::SnapshotMismatch {
            detail: format!(
                "design programs {} contexts, snapshot carries {}",
                design.n_contexts(),
                snapshot.regs.len()
            ),
        });
    }
    for (c, regs) in snapshot.regs.iter().enumerate() {
        let expected = design.kernel(c).n_regs();
        if regs.len() != expected {
            return Err(ServeError::SnapshotMismatch {
                detail: format!(
                    "context {c}: {} register words, design has {} registers",
                    regs.len(),
                    expected
                ),
            });
        }
    }
    // Within one build, an unchanged design key must mean an unchanged
    // routed artifact — the snapshot's switch fingerprint is the witness.
    if !refingerprinted && design.fingerprint() != snapshot.switch_fp {
        return Err(ServeError::SnapshotMismatch {
            detail: "switch fingerprint diverged under an unchanged design key".to_string(),
        });
    }
    let session = next_session_id();
    inner.sessions.lock().unwrap().insert(
        session,
        Arc::new(Session {
            design: design.clone(),
            tenant: snapshot.tenant.clone(),
            state: Mutex::new(SessionState {
                regs: snapshot.regs.clone(),
                scratch: KernelScratch::new(),
                active_context: snapshot.active_context,
                words_stepped: snapshot.words_stepped,
                lane_cycles: snapshot.lane_cycles,
            }),
        }),
    );
    inner.rec.incr("serve.restores", 1);
    if recompiled {
        crec.instant(
            "session_restore_recompiled",
            &[
                ("design_key", key.into()),
                ("delta", delta.is_some().into()),
            ],
        );
    }
    crec.instant(
        "session_restore",
        &[
            ("source_session", snapshot.source_session.into()),
            ("session", session.raw().into()),
            ("recompiled", recompiled.into()),
            ("refingerprinted", refingerprinted.into()),
        ],
    );
    Ok((session, design, recompiled, delta, refingerprinted))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_types_cross_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Server>();
        assert_send_sync::<Arc<CompiledDesign>>();
        fn assert_send<T: Send>() {}
        assert_send::<JobHandle<CompileOutcome>>();
        assert_send::<JobHandle<SimOutcome>>();
        assert_send::<JobHandle<Outcome>>();
    }

    #[test]
    fn session_ids_are_process_global() {
        let a = next_session_id();
        let b = next_session_id();
        assert!(b.raw() > a.raw());
    }
}
