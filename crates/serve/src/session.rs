//! Serializable session checkpoints — the context-extraction/restoration
//! protocol that makes sessions portable across servers.
//!
//! A [`SessionSnapshot`] is everything needed to resume a session with
//! bit-identical subsequent output on *any* server, including one that has
//! never seen the design:
//!
//! - the **full compile request** (architecture, per-context netlists,
//!   options), so restore can recompile on a cache miss — through the same
//!   delta/cold path a [`crate::CompileJob`] takes;
//! - the **per-context 64-lane register words** — the complete mutable
//!   state of the paper's multi-context execution model. The structured
//!   premise of the source paper (context state is small and register-only)
//!   is exactly what makes the snapshot cheap;
//! - the **session metadata**: tenant label, last active context, and
//!   cycle/lane-cycle counters, so accounting and scheduling survive the
//!   move.
//!
//! Format caveat: `design_key` / `switch_fp` are *per-build content
//! addresses* (see [`crate::DesignFingerprint`] stability notes). Restore
//! never trusts them across builds — it recomputes the fingerprint from the
//! carried request and re-keys through the design cache, recompiling when
//! the key is unknown. Within one build this makes restore bit-identical;
//! across builds it is correct-by-recompile ([`crate::RestoreOutcome`]
//! reports `refingerprinted` when the recorded key no longer matches).

use mcfpga_arch::ArchSpec;
use mcfpga_netlist::Netlist;
use mcfpga_sim::CompileOptions;
use serde::{Deserialize, Serialize};

use crate::design::DesignFingerprint;
use crate::error::MalformedReason;

/// Snapshot-format version this build writes and reads.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A serializable checkpoint of one session — see the module docs for the
/// restore contract. Produced by [`crate::Server::checkpoint_session`] (or a
/// queued [`crate::CheckpointJob`]), consumed by
/// [`crate::Server::restore_session`] / [`crate::RestoreJob`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionSnapshot {
    /// Snapshot-format version ([`SNAPSHOT_VERSION`] when written by this
    /// build). Restore refuses other versions at submit time.
    pub version: u32,
    /// Raw id of the session this snapshot was taken from — bookkeeping
    /// only; restore always assigns a fresh [`crate::SessionId`].
    pub source_session: u64,
    /// The design's combined fingerprint key at checkpoint time. A
    /// per-build content address: a routing hint within one build, never
    /// trusted across builds (restore recomputes it from the request).
    pub design_key: u64,
    /// The compiled design's routing-switch fingerprint at checkpoint time
    /// — the bit-identity witness restore compares after resolving the
    /// design.
    pub switch_fp: u64,
    /// Architecture of the compile request.
    pub arch: ArchSpec,
    /// Per-context netlists of the compile request.
    pub circuits: Vec<Netlist>,
    /// Compile options of the request (`parallel` is carried but does not
    /// affect the artifact or the fingerprint).
    pub options: CompileOptions,
    /// Tenant the session belongs to; the restored session keeps it.
    pub tenant: String,
    /// Context the session last stepped (restored as-is).
    pub active_context: usize,
    /// Per-context register state: one `u64` word per register, one
    /// stimulus lane per bit — all 64·W lanes, verbatim.
    pub regs: Vec<Vec<u64>>,
    /// Stimulus words the session has stepped across all sim jobs.
    pub words_stepped: u64,
    /// Lane-cycles consumed (`words × 64 lanes`).
    pub lane_cycles: u64,
}

impl SessionSnapshot {
    /// Recompute the design fingerprint from the carried compile request —
    /// the authoritative address restore resolves through the cache,
    /// independent of the recorded [`SessionSnapshot::design_key`].
    pub fn fingerprint(&self) -> DesignFingerprint {
        DesignFingerprint::new(&self.arch, &self.circuits, &self.options)
    }

    /// Serialized size in bytes (pretty-printed JSON, the wire format the
    /// shard experiment reports).
    pub fn serialized_bytes(&self) -> usize {
        serde_json::to_string(self).map_or(0, |s| s.len())
    }

    /// Structural self-consistency checks that need no compiled design:
    /// version match, one register vector per context, active context in
    /// range. Run at submit time so a malformed snapshot is refused with
    /// [`crate::SubmitError::Malformed`] instead of burning a worker.
    pub(crate) fn validate_shape(&self) -> Result<(), MalformedReason> {
        if self.version != SNAPSHOT_VERSION {
            return Err(MalformedReason::SnapshotVersion {
                expected: SNAPSHOT_VERSION,
                got: self.version,
            });
        }
        if self.regs.len() != self.circuits.len() {
            return Err(MalformedReason::SnapshotShape {
                detail: format!(
                    "{} register vectors for {} contexts",
                    self.regs.len(),
                    self.circuits.len()
                ),
            });
        }
        if !self.circuits.is_empty() && self.active_context >= self.circuits.len() {
            return Err(MalformedReason::SnapshotShape {
                detail: format!(
                    "active context {} of {}",
                    self.active_context,
                    self.circuits.len()
                ),
            });
        }
        Ok(())
    }
}
