//! Sharded front-end: N [`Server`] instances behind the same unified
//! [`Request`] door, with live migration and kill/recovery built on session
//! checkpoints.
//!
//! Placement is **rendezvous hashing** over the *alive* shards, keyed by
//! the design fingerprint: every compile (and every restore) of the same
//! content lands on the same shard, so the per-shard design caches stay
//! disjoint and hot instead of N copies of everything. When the alive set
//! changes, rendezvous hashing moves only the sessions whose highest-scoring
//! shard changed — [`ShardRouter::rebalance`] migrates exactly those.
//!
//! Fault model: a killed shard ([`ShardRouter::kill_shard`]) drops its
//! server — in-flight handles still complete (the pool drains on drop), but
//! its live sessions are gone *unless they were checkpointed*. The router
//! keeps every checkpoint it has taken in a snapshot store;
//! [`ShardRouter::recover`] restores the orphans onto surviving shards,
//! recompiling where the survivor's cache misses. The `experiments shard`
//! failure drill proves the recovered sessions produce word-for-word the
//! output of an unkilled reference run.
//!
//! Control-plane operations (checkpoint, migrate, kill, recover, rebalance)
//! serialize on one internal lock; data-plane submissions only take the
//! targeted shard's read lock.

use std::collections::HashMap;
use std::sync::{Mutex, RwLock};
use std::time::Instant;

use mcfpga_obs::Recorder;

use crate::config::ServeConfig;
use crate::design::DesignFingerprint;
use crate::error::{MalformedReason, ServeError, SubmitError};
use crate::job::{JobHandle, Outcome, Request};
use crate::server::{Server, SessionId};
use crate::session::SessionSnapshot;
use crate::snapshot::HealthSnapshot;

/// A routed operation that could not reach a live server.
#[derive(Debug)]
pub enum ShardError {
    /// Every shard is killed; nothing can accept work.
    NoAliveShards,
    /// The named shard is killed (or out of range).
    ShardDown { shard: usize },
    /// No alive shard holds the session.
    SessionNotFound { session: SessionId },
    /// The targeted shard refused the submission.
    Submit(SubmitError),
    /// A control-plane checkpoint/restore failed on the shard.
    Serve(ServeError),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::NoAliveShards => write!(f, "no alive shards"),
            ShardError::ShardDown { shard } => write!(f, "shard {shard} is down"),
            ShardError::SessionNotFound { session } => {
                write!(f, "no alive shard holds session {}", session.raw())
            }
            ShardError::Submit(e) => write!(f, "shard refused submission: {e}"),
            ShardError::Serve(e) => write!(f, "shard operation failed: {e}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Submit(e) => Some(e),
            ShardError::Serve(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SubmitError> for ShardError {
    fn from(e: SubmitError) -> ShardError {
        ShardError::Submit(e)
    }
}

impl From<ServeError> for ShardError {
    fn from(e: ServeError) -> ShardError {
        ShardError::Serve(e)
    }
}

/// One completed live migration: the session's old and new identity and
/// what the move cost.
#[derive(Debug, Clone)]
pub struct Migration {
    /// Shard the session left.
    pub from: usize,
    /// Shard the session now runs on.
    pub to: usize,
    /// The session's id before the move (now closed).
    pub session: SessionId,
    /// The session's id after the move (restore always mints a fresh id).
    pub new_session: SessionId,
    /// Whether the destination had to compile the design (its cache
    /// missed).
    pub recompiled: bool,
    /// Wall microseconds checkpoint → restore → close took.
    pub migrate_us: u64,
}

/// SplitMix64 — the per-(key, shard) score mix for rendezvous hashing.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A fixed-width front-end over `n` independent [`Server`]s — the scale-out
/// unit. See the module docs for the placement and fault model.
///
/// ```no_run
/// use mcfpga_serve::{CompileJob, ServeConfig, ShardRouter, SimJob};
///
/// let router = ShardRouter::new(3, ServeConfig::default().with_workers(2));
/// let arch = mcfpga_arch::ArchSpec::paper_default();
/// let circuits = vec![mcfpga_netlist::library::adder(4)];
/// let compiled = router
///     .submit(CompileJob::new(arch, circuits))?
///     .wait()?
///     .into_compile()
///     .unwrap();
/// let sim = router
///     .submit(SimJob::new(compiled.session, 0, vec![vec![0; 9]]))?
///     .wait()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct ShardRouter {
    shards: Vec<RwLock<Option<Server>>>,
    config: ServeConfig,
    /// Serializes control-plane session movement (checkpoint / migrate /
    /// kill / recover / rebalance) so two operations never race over the
    /// same session. Data-plane submits don't take it.
    ctrl: Mutex<()>,
    /// Every checkpoint the router has taken, keyed by the source session's
    /// raw id — the recovery source after a shard kill. Refreshed on every
    /// checkpoint, dropped when the session is migrated or recovered (the
    /// old id is then dead).
    store: Mutex<HashMap<u64, SessionSnapshot>>,
    rec: Recorder,
}

impl ShardRouter {
    /// `n` shards, each its own [`Server`] sized by `config`, telemetry
    /// disabled.
    pub fn new(n: usize, config: ServeConfig) -> ShardRouter {
        ShardRouter::with_recorder(n, config, &Recorder::disabled())
    }

    /// `n` shards sharing one recorder: `serve.*` counters aggregate across
    /// shards; per-shard health stays separable via
    /// [`ShardRouter::shard_snapshot`].
    pub fn with_recorder(n: usize, config: ServeConfig, rec: &Recorder) -> ShardRouter {
        assert!(n > 0, "a router needs at least one shard");
        let shards = (0..n)
            .map(|_| RwLock::new(Some(Server::with_recorder(config.clone(), rec))))
            .collect();
        ShardRouter {
            shards,
            config,
            ctrl: Mutex::new(()),
            store: Mutex::new(HashMap::new()),
            rec: rec.clone(),
        }
    }

    /// Total shard slots (alive or killed).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Indices of shards currently alive.
    pub fn alive_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].read().unwrap().is_some())
            .collect()
    }

    /// Rendezvous winner for `key` among `alive`: the shard with the
    /// highest `mix(key ⊕ shard-salt)` score. Stable under membership
    /// change — only keys whose winner died move.
    fn rendezvous(key: u64, alive: &[usize]) -> usize {
        *alive
            .iter()
            .max_by_key(|&&i| mix(key ^ mix(i as u64 + 1)))
            .expect("rendezvous over a non-empty alive set")
    }

    /// The shard a design key routes to right now.
    pub fn home_shard(&self, design_key: u64) -> Result<usize, ShardError> {
        let alive = self.alive_shards();
        if alive.is_empty() {
            return Err(ShardError::NoAliveShards);
        }
        Ok(Self::rendezvous(design_key, &alive))
    }

    /// The shard currently holding `session`, found by scanning alive
    /// shards (session ids are process-global, so at most one holds it).
    pub fn session_owner(&self, session: SessionId) -> Option<usize> {
        (0..self.shards.len()).find(|&i| {
            self.shards[i]
                .read()
                .unwrap()
                .as_ref()
                .is_some_and(|s| s.has_session(session))
        })
    }

    /// Route one request to its shard — the same unified door as
    /// [`Server::submit`]. Compiles and restores route by design
    /// fingerprint (cache affinity); sims and checkpoints follow their
    /// session's current owner.
    pub fn submit(&self, request: impl Into<Request>) -> Result<JobHandle<Outcome>, ShardError> {
        let request = request.into();
        let shard = match &request {
            Request::Compile(job) => {
                let key = DesignFingerprint::new(&job.arch, &job.circuits, &job.options).key();
                self.home_shard(key)?
            }
            Request::Restore(job) => self.home_shard(job.snapshot.fingerprint().key())?,
            Request::Sim(job) => self.owner_or_unknown(job.session)?,
            Request::Checkpoint(job) => self.owner_or_unknown(job.session)?,
        };
        let guard = self.shards[shard].read().unwrap();
        let server = guard.as_ref().ok_or(ShardError::ShardDown { shard })?;
        Ok(server.submit(request)?)
    }

    fn owner_or_unknown(&self, session: SessionId) -> Result<usize, ShardError> {
        if self.alive_shards().is_empty() {
            return Err(ShardError::NoAliveShards);
        }
        self.session_owner(session)
            .ok_or(ShardError::Submit(SubmitError::Malformed {
                reason: MalformedReason::UnknownSession { session },
            }))
    }

    /// Checkpoint one session wherever it lives, retaining the snapshot in
    /// the router's store (the recovery source after a kill) and returning
    /// it to the caller.
    pub fn checkpoint(&self, session: SessionId) -> Result<SessionSnapshot, ShardError> {
        let _ctrl = self.ctrl.lock().unwrap();
        self.checkpoint_locked(session)
    }

    fn checkpoint_locked(&self, session: SessionId) -> Result<SessionSnapshot, ShardError> {
        let shard = self
            .session_owner(session)
            .ok_or(ShardError::SessionNotFound { session })?;
        let guard = self.shards[shard].read().unwrap();
        let server = guard.as_ref().ok_or(ShardError::ShardDown { shard })?;
        let snapshot = server.checkpoint_session(session)?;
        drop(guard);
        self.rec.incr("shard.checkpoints", 1);
        self.store
            .lock()
            .unwrap()
            .insert(session.raw(), snapshot.clone());
        Ok(snapshot)
    }

    /// Checkpoint every live session on every alive shard. The returned
    /// pairs are `(session, snapshot)`; all snapshots also land in the
    /// store.
    pub fn checkpoint_all(&self) -> Vec<(SessionId, SessionSnapshot)> {
        let _ctrl = self.ctrl.lock().unwrap();
        let mut out = Vec::new();
        for i in 0..self.shards.len() {
            let ids = {
                let guard = self.shards[i].read().unwrap();
                match guard.as_ref() {
                    Some(s) => s.session_ids(),
                    None => continue,
                }
            };
            for id in ids {
                if let Ok(snap) = self.checkpoint_locked(id) {
                    out.push((id, snap));
                }
            }
        }
        out
    }

    /// Live-migrate one session to shard `to`: checkpoint at the source,
    /// restore at the destination, close the source copy. The session's
    /// pending sim jobs either complete before the checkpoint (their effect
    /// is carried) or fail `SessionNotFound` after the close — never half
    /// applied.
    pub fn migrate_session(&self, session: SessionId, to: usize) -> Result<Migration, ShardError> {
        let _ctrl = self.ctrl.lock().unwrap();
        self.migrate_locked(session, to)
    }

    fn migrate_locked(&self, session: SessionId, to: usize) -> Result<Migration, ShardError> {
        let start = Instant::now();
        let from = self
            .session_owner(session)
            .ok_or(ShardError::SessionNotFound { session })?;
        let snapshot = {
            let guard = self.shards[from].read().unwrap();
            let server = guard
                .as_ref()
                .ok_or(ShardError::ShardDown { shard: from })?;
            server.checkpoint_session(session)?
        };
        let restored = {
            let slot = self
                .shards
                .get(to)
                .ok_or(ShardError::ShardDown { shard: to })?;
            let guard = slot.read().unwrap();
            let server = guard.as_ref().ok_or(ShardError::ShardDown { shard: to })?;
            server.restore_session(snapshot)?
        };
        {
            let guard = self.shards[from].read().unwrap();
            if let Some(server) = guard.as_ref() {
                server.close_session(session);
            }
        }
        // The old id is dead; any retained snapshot of it is unusable as a
        // recovery source for a *live* session, so drop it.
        self.store.lock().unwrap().remove(&session.raw());
        let migrate_us = start.elapsed().as_micros() as u64;
        self.rec.incr("shard.migrations", 1);
        if restored.recompiled {
            self.rec.incr("shard.migrate.recompiles", 1);
        }
        self.rec.observe("shard.migrate_us", migrate_us as f64);
        Ok(Migration {
            from,
            to,
            session,
            new_session: restored.session,
            recompiled: restored.recompiled,
            migrate_us,
        })
    }

    /// Kill shard `i`: the server is dropped (its queue drains first, so
    /// accepted handles still complete) and its live sessions die with it.
    /// Returns the ids that were live on the shard — the set
    /// [`ShardRouter::recover`] can bring back from stored checkpoints.
    pub fn kill_shard(&self, i: usize) -> Result<Vec<SessionId>, ShardError> {
        let _ctrl = self.ctrl.lock().unwrap();
        let server = {
            let mut guard = self
                .shards
                .get(i)
                .ok_or(ShardError::ShardDown { shard: i })?
                .write()
                .unwrap();
            guard.take().ok_or(ShardError::ShardDown { shard: i })?
        };
        let lost = server.session_ids();
        drop(server); // drains the pool, joins the workers
        self.rec.incr("shard.kills", 1);
        Ok(lost)
    }

    /// Restart a killed shard slot with a fresh (empty) server. Returns
    /// `false` if the slot was already alive.
    pub fn revive_shard(&self, i: usize) -> bool {
        let _ctrl = self.ctrl.lock().unwrap();
        let Some(slot) = self.shards.get(i) else {
            return false;
        };
        let mut guard = slot.write().unwrap();
        if guard.is_some() {
            return false;
        }
        *guard = Some(Server::with_recorder(self.config.clone(), &self.rec));
        true
    }

    /// Restore every stored snapshot whose session no alive shard holds —
    /// the recovery path after [`ShardRouter::kill_shard`]. Each orphan is
    /// restored onto its design's current home shard (so cache affinity is
    /// re-established) and returns `(old_id, new_id)`; the store entry
    /// moves to the new id.
    pub fn recover(&self) -> Result<Vec<(SessionId, SessionId)>, ShardError> {
        let _ctrl = self.ctrl.lock().unwrap();
        let alive = self.alive_shards();
        if alive.is_empty() {
            return Err(ShardError::NoAliveShards);
        }
        let orphans: Vec<SessionSnapshot> = {
            let store = self.store.lock().unwrap();
            store.values().cloned().collect()
        };
        let mut recovered = Vec::new();
        for snapshot in orphans {
            let old = snapshot.source_session;
            let old_id = SessionId::from_raw(old);
            if self.session_owner(old_id).is_some() {
                // Still alive somewhere — nothing to recover.
                continue;
            }
            let shard = Self::rendezvous(snapshot.fingerprint().key(), &alive);
            let restored = {
                let guard = self.shards[shard].read().unwrap();
                let server = guard.as_ref().ok_or(ShardError::ShardDown { shard })?;
                server.restore_session(snapshot.clone())?
            };
            self.rec.incr("shard.restores", 1);
            if restored.recompiled {
                self.rec.incr("shard.restore.recompiles", 1);
            }
            self.rec.incr("shard.sessions_recovered", 1);
            let mut store = self.store.lock().unwrap();
            store.remove(&old);
            let mut snap = snapshot;
            snap.source_session = restored.session.raw();
            store.insert(restored.session.raw(), snap);
            recovered.push((old_id, restored.session));
        }
        Ok(recovered)
    }

    /// Move every session whose design no longer hashes to its current
    /// shard (after a kill or revive changed the alive set). Returns the
    /// migrations performed.
    pub fn rebalance(&self) -> Result<Vec<Migration>, ShardError> {
        let _ctrl = self.ctrl.lock().unwrap();
        let alive = self.alive_shards();
        if alive.is_empty() {
            return Err(ShardError::NoAliveShards);
        }
        let mut moves = Vec::new();
        for &i in &alive {
            let pairs: Vec<(SessionId, u64)> = {
                let guard = self.shards[i].read().unwrap();
                match guard.as_ref() {
                    Some(s) => s
                        .session_ids()
                        .into_iter()
                        .filter_map(|id| s.session_design_key(id).map(|k| (id, k)))
                        .collect(),
                    None => continue,
                }
            };
            for (id, key) in pairs {
                let home = Self::rendezvous(key, &alive);
                if home != i {
                    moves.push(self.migrate_locked(id, home)?);
                }
            }
        }
        Ok(moves)
    }

    /// Snapshots retained in the recovery store right now.
    pub fn stored_snapshots(&self) -> usize {
        self.store.lock().unwrap().len()
    }

    /// Live sessions across all alive shards.
    pub fn n_sessions(&self) -> usize {
        (0..self.shards.len())
            .map(|i| {
                self.shards[i]
                    .read()
                    .unwrap()
                    .as_ref()
                    .map_or(0, |s| s.n_sessions())
            })
            .sum()
    }

    /// One shard's live health view (`None` if the shard is killed).
    pub fn shard_snapshot(&self, i: usize) -> Option<HealthSnapshot> {
        self.shards
            .get(i)?
            .read()
            .unwrap()
            .as_ref()
            .map(|s| s.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendezvous_is_stable_and_minimal() {
        let alive3 = vec![0, 1, 2];
        let alive2 = vec![0, 2]; // shard 1 died
        let mut moved = 0;
        let mut stayed = 0;
        for key in 0..1000u64 {
            let before = ShardRouter::rendezvous(key, &alive3);
            let after = ShardRouter::rendezvous(key, &alive2);
            // Determinism.
            assert_eq!(before, ShardRouter::rendezvous(key, &alive3));
            if before == 1 {
                // Keys homed on the dead shard must move to a survivor.
                assert_ne!(after, 1);
                moved += 1;
            } else {
                // Keys homed on survivors must not move at all.
                assert_eq!(after, before);
                stayed += 1;
            }
        }
        assert!(moved > 0 && stayed > 0, "both populations exercised");
    }

    #[test]
    fn rendezvous_spreads_keys() {
        let alive = vec![0, 1, 2];
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ShardRouter::rendezvous(key, &alive)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 600, "shard {i} got {c} of 3000 keys — badly skewed");
        }
    }
}
