//! Live health snapshots and the rolling latency windows that feed them.
//!
//! [`crate::Server::snapshot`] assembles a [`HealthSnapshot`] from counters
//! the hot paths already maintain — atomic queue depth mirror, busy-worker
//! count, per-tenant inflight gauges, and [`RollingLatency`] windows whose
//! p99 is cached and refreshed only every few records. Reading a snapshot
//! never touches the job queue lock, so it is cheap enough to consult on
//! every submission (the admission path does exactly that).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// One tenant's in-flight gauge inside a [`HealthSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantInflight {
    pub tenant: String,
    pub inflight: u64,
}

/// A point-in-time view of server health, built without blocking the
/// serving paths. All latency figures are rolling-window estimates over
/// the most recent jobs, not lifetime aggregates — that is what makes them
/// useful as overload signals (a lifetime p99 barely moves once the sample
/// count is large).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HealthSnapshot {
    /// Jobs queued right now.
    pub queue_depth: usize,
    /// Hard queue bound.
    pub queue_capacity: usize,
    /// Deepest the queue has ever been.
    pub queue_depth_hwm: usize,
    /// Accepted jobs not yet finished, summed over tenants.
    pub inflight: u64,
    /// Worker threads serving this queue.
    pub workers: usize,
    /// Workers currently servicing a job.
    pub busy_workers: usize,
    /// `busy_workers / workers` (0 when no workers).
    pub worker_utilization: f64,
    /// Open sim sessions.
    pub sessions: usize,
    /// Designs resident in the compile cache.
    pub cached_designs: usize,
    /// Rolling-window p99 of queue wait, microseconds.
    pub rolling_wait_p99_us: f64,
    /// Rolling-window p99 of service time, microseconds.
    pub rolling_service_p99_us: f64,
    /// Lifetime admission-policy sheds.
    pub jobs_shed: u64,
    /// Lifetime hard-backpressure rejections.
    pub jobs_rejected: u64,
    /// Trace events evicted from the ring so far.
    pub trace_dropped: u64,
    /// Per-tenant in-flight gauges, label-ordered.
    pub tenant_inflight: Vec<TenantInflight>,
}

/// Over how many recent samples the rolling p99 is computed.
pub(crate) const ROLLING_WINDOW: usize = 512;
/// Recompute the cached p99 every this many records.
const REFRESH_EVERY: u64 = 32;

/// A bounded ring of recent latency samples with a cached p99.
///
/// `record` is a short lock push plus, once every [`REFRESH_EVERY`]
/// records, an `O(window log window)` refresh; `p99` is a single atomic
/// load. The cache makes the admission path read stale-by-at-most-31
/// -samples data instead of sorting 512 floats per submission.
#[derive(Debug)]
pub(crate) struct RollingLatency {
    window: Mutex<VecDeque<f64>>,
    records: AtomicU64,
    /// f64 bits of the cached p99.
    cached_p99: AtomicU64,
}

impl Default for RollingLatency {
    fn default() -> RollingLatency {
        RollingLatency {
            window: Mutex::new(VecDeque::with_capacity(ROLLING_WINDOW)),
            records: AtomicU64::new(0),
            cached_p99: AtomicU64::new(0.0f64.to_bits()),
        }
    }
}

impl RollingLatency {
    pub fn record(&self, v: f64) {
        let mut window = self.window.lock().unwrap();
        if window.len() == ROLLING_WINDOW {
            window.pop_front();
        }
        window.push_back(v);
        let n = self.records.fetch_add(1, Ordering::Relaxed) + 1;
        if n % REFRESH_EVERY == 1 {
            // First record and every 32nd after: refresh while the lock is
            // already held.
            let p99 = Self::compute_p99(&window);
            self.cached_p99.store(p99.to_bits(), Ordering::Relaxed);
        }
    }

    /// The cached rolling p99 (0 until the first record).
    pub fn p99(&self) -> f64 {
        f64::from_bits(self.cached_p99.load(Ordering::Relaxed))
    }

    /// Recompute from the live window, bypassing the cache. Used by
    /// snapshots so a freshly idle server reports current tails.
    pub fn p99_fresh(&self) -> f64 {
        let window = self.window.lock().unwrap();
        Self::compute_p99(&window)
    }

    fn compute_p99(window: &VecDeque<f64>) -> f64 {
        if window.is_empty() {
            return 0.0;
        }
        let mut sorted: Vec<f64> = window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((0.99 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_p99_tracks_recent_samples_only() {
        let r = RollingLatency::default();
        assert_eq!(r.p99(), 0.0);
        for _ in 0..ROLLING_WINDOW {
            r.record(10.0);
        }
        assert_eq!(r.p99_fresh(), 10.0);
        // A flood of slow samples displaces the old regime entirely.
        for _ in 0..ROLLING_WINDOW {
            r.record(5_000.0);
        }
        assert_eq!(r.p99_fresh(), 5_000.0);
        // The cached value is refreshed periodically, so after a full
        // window of records it has certainly caught up.
        assert_eq!(r.p99(), 5_000.0);
    }

    #[test]
    fn p99_rank_picks_the_tail_sample() {
        let r = RollingLatency::default();
        for v in 1..=100 {
            r.record(v as f64);
        }
        assert_eq!(r.p99_fresh(), 99.0);
    }
}
