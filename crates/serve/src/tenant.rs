//! Per-tenant accounting: every submission attempt lands in exactly one
//! terminal bucket of its tenant's [`TenantStats`], so the table is a
//! conservation ledger — `submitted == completed + failed + expired +
//! rejected + shed + inflight` holds at every instant the table lock is
//! released.
//!
//! The table is keyed by the tenant label jobs carry (see
//! [`crate::CompileJob::with_tenant`]); unlabeled jobs are charged to
//! [`DEFAULT_TENANT`]. Alongside the exact counters each tenant keeps
//! bounded-memory latency histograms (queue wait and service time), so a
//! noisy-neighbor investigation can compare tail latency per tenant without
//! replaying traces.

use std::collections::BTreeMap;
use std::sync::Mutex;

use mcfpga_obs::{HistogramEntry, LogHistogram};
use serde::{Deserialize, Serialize};

use crate::admission::JobKind;

/// Tenant label charged when a job was submitted without one.
pub const DEFAULT_TENANT: &str = "default";

/// Exact per-tenant counters. Every submission attempt increments
/// `submitted` and then exactly one of the terminal counters (or stays in
/// `inflight` until serviced), so [`TenantStats::is_conserved`] holds
/// whenever the server is drained.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantStats {
    /// Submission attempts, including ones refused before enqueue.
    pub submitted: u64,
    /// Jobs serviced to a successful outcome.
    pub completed: u64,
    /// Jobs serviced to an error.
    pub failed: u64,
    /// Jobs whose deadline elapsed while queued.
    pub expired: u64,
    /// Submissions refused by hard backpressure (`QueueFull` / `Shutdown`).
    pub rejected: u64,
    /// Submissions refused by the admission policy.
    pub shed: u64,
    /// Accepted jobs not yet finished (queued or being serviced).
    pub inflight: u64,
    /// Accepted compile jobs.
    pub compile_jobs: u64,
    /// Accepted sim jobs.
    pub sim_jobs: u64,
    /// Accepted checkpoint jobs.
    pub checkpoint_jobs: u64,
    /// Accepted restore jobs.
    pub restore_jobs: u64,
    /// Total compile service time, microseconds.
    pub compile_service_us: u64,
    /// Total sim service time, microseconds.
    pub sim_service_us: u64,
    /// Total checkpoint/restore (session-control) service time,
    /// microseconds.
    pub ctrl_service_us: u64,
    /// Total queue wait across serviced and expired jobs, microseconds.
    pub wait_us_total: u64,
    /// Compile jobs answered from the design cache.
    pub cache_hits: u64,
    /// Compile jobs that had to compile.
    pub cache_misses: u64,
    /// Simulated lane-cycles consumed (`words × 64 lanes`).
    pub sim_cycles: u64,
}

impl TenantStats {
    /// Attempts that have reached a terminal state or are in flight.
    pub fn accounted(&self) -> u64 {
        self.completed + self.failed + self.expired + self.rejected + self.shed + self.inflight
    }

    /// The conservation invariant: no attempt lost, none double-counted.
    pub fn is_conserved(&self) -> bool {
        self.submitted == self.accounted()
    }

    /// Cache hit rate over this tenant's compile lookups (0 when none).
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }
}

/// One tenant's condensed report row: exact counters plus latency
/// distribution summaries.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    pub tenant: String,
    pub stats: TenantStats,
    /// Queue-wait distribution, `None` until a job was dequeued.
    pub wait_us: Option<HistogramEntry>,
    /// Service-time distribution, `None` until a job finished service.
    pub service_us: Option<HistogramEntry>,
}

/// Live accounting state for one tenant.
#[derive(Debug, Default)]
struct TenantAccount {
    stats: TenantStats,
    wait: LogHistogram,
    service: LogHistogram,
}

/// The server's tenant ledger. All mutation happens through the `on_*`
/// hooks the server calls at state transitions; each hook takes the table
/// lock once. Never hold this lock while taking the queue lock (the server
/// orders queue → tenants).
#[derive(Debug, Default)]
pub(crate) struct TenantTable {
    accounts: Mutex<BTreeMap<String, TenantAccount>>,
}

impl TenantTable {
    fn with<R>(&self, tenant: &str, f: impl FnOnce(&mut TenantAccount) -> R) -> R {
        let mut accounts = self.accounts.lock().unwrap();
        f(accounts.entry(tenant.to_string()).or_default())
    }

    /// A submission attempt arrived (before any accept/refuse decision).
    pub fn on_submitted(&self, tenant: &str) {
        self.with(tenant, |a| a.stats.submitted += 1);
    }

    /// The attempt was refused by hard backpressure or shutdown.
    pub fn on_rejected(&self, tenant: &str) {
        self.with(tenant, |a| a.stats.rejected += 1);
    }

    /// The attempt was refused by the admission policy.
    pub fn on_shed(&self, tenant: &str) {
        self.with(tenant, |a| a.stats.shed += 1);
    }

    /// The job was enqueued; it is now in flight.
    pub fn on_accepted(&self, tenant: &str, kind: JobKind) {
        self.with(tenant, |a| {
            a.stats.inflight += 1;
            match kind {
                JobKind::Compile => a.stats.compile_jobs += 1,
                JobKind::Sim => a.stats.sim_jobs += 1,
                JobKind::Checkpoint => a.stats.checkpoint_jobs += 1,
                JobKind::Restore => a.stats.restore_jobs += 1,
            }
        });
    }

    /// The job's deadline elapsed while queued.
    pub fn on_expired(&self, tenant: &str, wait_us: u64) {
        self.with(tenant, |a| {
            a.stats.inflight = a.stats.inflight.saturating_sub(1);
            a.stats.expired += 1;
            a.stats.wait_us_total += wait_us;
            a.wait.record(wait_us as f64);
        });
    }

    /// A compile job consulted the design cache.
    pub fn on_cache(&self, tenant: &str, hit: bool) {
        self.with(tenant, |a| {
            if hit {
                a.stats.cache_hits += 1;
            } else {
                a.stats.cache_misses += 1;
            }
        });
    }

    /// A sim job consumed lane-cycles.
    pub fn on_sim_cycles(&self, tenant: &str, cycles: u64) {
        self.with(tenant, |a| a.stats.sim_cycles += cycles);
    }

    /// The job finished service (successfully or not).
    pub fn on_finished(
        &self,
        tenant: &str,
        kind: JobKind,
        ok: bool,
        wait_us: u64,
        service_us: u64,
    ) {
        self.with(tenant, |a| {
            a.stats.inflight = a.stats.inflight.saturating_sub(1);
            if ok {
                a.stats.completed += 1;
            } else {
                a.stats.failed += 1;
            }
            a.stats.wait_us_total += wait_us;
            match kind {
                JobKind::Compile => a.stats.compile_service_us += service_us,
                JobKind::Sim => a.stats.sim_service_us += service_us,
                JobKind::Checkpoint | JobKind::Restore => a.stats.ctrl_service_us += service_us,
            }
            a.wait.record(wait_us as f64);
            a.service.record(service_us as f64);
        });
    }

    /// The tenant's accepted-but-unfinished job count right now.
    pub fn inflight(&self, tenant: &str) -> u64 {
        let accounts = self.accounts.lock().unwrap();
        accounts.get(tenant).map_or(0, |a| a.stats.inflight)
    }

    /// Snapshot one tenant's exact counters (`None` if never seen).
    pub fn stats(&self, tenant: &str) -> Option<TenantStats> {
        let accounts = self.accounts.lock().unwrap();
        accounts.get(tenant).map(|a| a.stats.clone())
    }

    /// Every tenant's `(label, inflight)` pair, label-ordered.
    pub fn inflight_all(&self) -> Vec<(String, u64)> {
        let accounts = self.accounts.lock().unwrap();
        accounts
            .iter()
            .map(|(t, a)| (t.clone(), a.stats.inflight))
            .collect()
    }

    /// Condense every tenant into report rows, label-ordered.
    pub fn reports(&self) -> Vec<TenantReport> {
        let accounts = self.accounts.lock().unwrap();
        accounts
            .iter()
            .map(|(tenant, a)| TenantReport {
                tenant: tenant.clone(),
                stats: a.stats.clone(),
                wait_us: (!a.wait.is_empty()).then(|| a.wait.entry("wait_us")),
                service_us: (!a.service.is_empty()).then(|| a.service.entry("service_us")),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_conserves_every_attempt() {
        let table = TenantTable::default();
        let t = "acme";
        // Two accepted (one completes, one fails), one expired, one
        // rejected, one shed.
        for _ in 0..5 {
            table.on_submitted(t);
        }
        table.on_accepted(t, JobKind::Compile);
        table.on_accepted(t, JobKind::Sim);
        table.on_accepted(t, JobKind::Sim);
        table.on_submitted(t); // sixth attempt: accepted, stays inflight
        table.on_accepted(t, JobKind::Sim);
        table.on_rejected(t);
        table.on_shed(t);
        table.on_expired(t, 700);
        table.on_cache(t, true);
        table.on_finished(t, JobKind::Compile, true, 100, 2_000);
        table.on_sim_cycles(t, 64 * 256);
        table.on_finished(t, JobKind::Sim, false, 50, 900);

        let s = table.stats(t).expect("tenant exists");
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 1);
        assert_eq!(s.failed, 1);
        assert_eq!(s.expired, 1);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.shed, 1);
        assert_eq!(s.inflight, 1);
        assert!(s.is_conserved(), "conservation: {s:?}");
        assert_eq!(s.compile_jobs, 1);
        assert_eq!(s.sim_jobs, 3);
        assert_eq!(s.compile_service_us, 2_000);
        assert_eq!(s.sim_service_us, 900);
        assert_eq!(s.wait_us_total, 850);
        assert_eq!(s.cache_hit_rate(), 1.0);
        assert_eq!(s.sim_cycles, 64 * 256);
        assert_eq!(table.inflight(t), 1);

        let rows = table.reports();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].tenant, t);
        let wait = rows[0].wait_us.as_ref().expect("waits recorded");
        assert_eq!(wait.count, 3);
        let service = rows[0].service_us.as_ref().expect("services recorded");
        assert_eq!(service.count, 2);
    }

    #[test]
    fn unknown_tenant_reads_empty() {
        let table = TenantTable::default();
        assert_eq!(table.inflight("ghost"), 0);
        assert!(table.stats("ghost").is_none());
        assert!(table.reports().is_empty());
    }
}
