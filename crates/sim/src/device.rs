//! The compiled multi-context device.

use mcfpga_arch::{ArchSpec, ContextId, LutMode};
use mcfpga_config::{Bitstream, ColumnSetStats};
use mcfpga_lut::{AdaptiveLogicBlock, LocalSizeController, SizeControl, TruthTable};
use mcfpga_map::{
    map_workload, share_workload, MapError, MappedNetlist, MappedSource, SharedDesign,
};
use mcfpga_netlist::Netlist;
use mcfpga_obs::Recorder;
use mcfpga_place::{lb_of_lut, place, AnnealOptions, PlaceError, Placement, PlacementProblem};
use mcfpga_route::{
    nets_from_placement, route_context, switch_columns, RouteError, RouteOptions, RoutedContext,
    RoutingGraph, SwitchUsage,
};

use crate::faults::LutFault;
use crate::kernel::{self, CompiledKernel, KernelScratch, LANES};
use crate::multi::SimError;
use crate::optimize::KernelOptions;

/// Compile-flow failure.
#[derive(Debug)]
pub enum CompileError {
    Map(MapError),
    Place(PlaceError),
    Route(RouteError),
    /// The workload needs more planes somewhere than the LUT pool offers.
    PlaneOverflow {
        lb: usize,
        needed: usize,
        available: usize,
    },
    /// Workloads must contain at least one context.
    EmptyWorkload,
    /// A cancellation hook (see [`crate::MultiDevice::compile_delta`])
    /// reported the budget exhausted between per-context compile phases;
    /// the partial result was discarded.
    DeadlineExceeded,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Map(e) => write!(f, "mapping failed: {e}"),
            CompileError::Place(e) => write!(f, "placement failed: {e}"),
            CompileError::Route(e) => write!(f, "routing failed: {e}"),
            CompileError::PlaneOverflow {
                lb,
                needed,
                available,
            } => write!(
                f,
                "logic block {lb} needs {needed} planes but the pool offers {available}"
            ),
            CompileError::EmptyWorkload => write!(f, "workload has no contexts"),
            CompileError::DeadlineExceeded => {
                write!(f, "compile cancelled: deadline exceeded between contexts")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<MapError> for CompileError {
    fn from(e: MapError) -> Self {
        CompileError::Map(e)
    }
}

impl From<PlaceError> for CompileError {
    fn from(e: PlaceError) -> Self {
        CompileError::Place(e)
    }
}

impl From<RouteError> for CompileError {
    fn from(e: RouteError) -> Self {
        CompileError::Route(e)
    }
}

/// Summary statistics of a compiled device, consumed by the experiments.
#[derive(Debug, Clone)]
pub struct CompileReport {
    /// The LUT input count the workload was mapped at (Fig. 12 mode).
    pub granularity: usize,
    pub n_luts: usize,
    pub n_lbs: usize,
    pub mean_planes: f64,
    pub plane_histogram: Vec<usize>,
    pub controller_ses: usize,
    pub switch_stats: ColumnSetStats,
    pub routing_iterations: usize,
    pub critical_delay: f64,
}

/// Word-level (64-lane) simulation state carried alongside the scalar
/// state. Lane 0 always mirrors the scalar registers; the remaining lanes
/// are independent stimulus streams that exist only between batched steps.
#[derive(Default)]
struct BatchLanes {
    /// Lane-parallel register words.
    regs: Vec<u64>,
    /// Lane-parallel previous LUT values (toggle accounting).
    prev_lut_words: Vec<u64>,
    scratch: KernelScratch,
    /// False whenever the scalar state has moved since the last batched
    /// step; the next batched step re-broadcasts it to every lane.
    synced: bool,
}

/// A compiled, runnable multi-context device.
pub struct Device {
    arch: ArchSpec,
    ctx: ContextId,
    shared: SharedDesign,
    /// Per-context mapped netlists (aligned).
    mapped: Vec<MappedNetlist>,
    /// One adaptive logic block per LB site used.
    lbs: Vec<AdaptiveLogicBlock>,
    /// LUT position -> (lb, output slot).
    slot_of: Vec<(usize, usize)>,
    /// Register state (device-wide; survives context switches).
    state: Vec<bool>,
    active: usize,
    /// Signal-activity accounting: previous LUT values, toggles, cycles.
    prev_lut_vals: Vec<bool>,
    toggles: u64,
    cycles: u64,
    placement: Placement,
    problem: PlacementProblem,
    graph: RoutingGraph,
    routed: RoutedContext,
    usage: SwitchUsage,
    /// Per-context compiled kernels tagged with the configuration epoch
    /// they snapshot; rebuilt lazily when stale.
    kernels: Vec<Option<(u64, CompiledKernel)>>,
    /// Bumped on every configuration mutation (fault injection,
    /// reprogramming) so cached kernels invalidate.
    config_epoch: u64,
    /// Kernel lowering knobs; [`Device::ensure_kernel`] rebuilds cached
    /// kernels whose optimization variant no longer matches.
    kernel_options: KernelOptions,
    batch: BatchLanes,
    /// Scalar hot-path scratch, persistent across cycles.
    scratch_lut_vals: Vec<bool>,
    scratch_in_bits: Vec<bool>,
    scratch_next: Vec<bool>,
    /// Observability sink; disabled (no-op) unless attached.
    recorder: Recorder,
}

impl Device {
    /// Compile a workload (one netlist per context, aligned structure) onto
    /// an architecture, mapping at the smallest LUT granularity so the
    /// maximum plane count is available everywhere.
    pub fn compile(arch: &ArchSpec, workload: &[Netlist]) -> Result<Device, CompileError> {
        Self::compile_at_granularity(arch, workload, arch.lut.min_inputs)
    }

    /// Adaptive granularity (the Fig. 12 trade, made automatically): try
    /// the *largest* LUT size first — fewer, bigger LUTs but fewer planes —
    /// and fall back towards `min_inputs` until every logic block's plane
    /// demand fits the pool. Workloads whose contexts share heavily compile
    /// at large `k`; divergent workloads need the full plane count and land
    /// at `min_inputs`.
    pub fn compile_adaptive(arch: &ArchSpec, workload: &[Netlist]) -> Result<Device, CompileError> {
        let mut last_err = None;
        for k in (arch.lut.min_inputs..=arch.lut.max_inputs).rev() {
            match Self::compile_at_granularity(arch, workload, k) {
                Ok(dev) => return Ok(dev),
                Err(e @ CompileError::PlaneOverflow { .. }) => last_err = Some(e),
                Err(other) => return Err(other),
            }
        }
        Err(last_err.expect("min_inputs attempt ran"))
    }

    /// Compile mapping at a specific LUT input count `k`
    /// (`min_inputs ..= max_inputs`); the plane budget is what the pool
    /// leaves: `2^(max_inputs - k)`.
    pub fn compile_at_granularity(
        arch: &ArchSpec,
        workload: &[Netlist],
        k: usize,
    ) -> Result<Device, CompileError> {
        assert!(
            (arch.lut.min_inputs..=arch.lut.max_inputs).contains(&k),
            "granularity {k} outside the pool's mode range"
        );
        if workload.is_empty() {
            return Err(CompileError::EmptyWorkload);
        }
        arch.validate().expect("valid architecture");
        let ctx = arch.context_id();
        let n_contexts = arch.n_contexts;
        assert!(
            workload.len() <= n_contexts,
            "workload has more contexts than the device"
        );
        // Pad the workload by repeating the last context so every device
        // context is programmed.
        let mut contexts: Vec<Netlist> = workload.to_vec();
        while contexts.len() < n_contexts {
            contexts.push(contexts.last().expect("non-empty").clone());
        }

        let mapped = map_workload(&contexts, k)?;
        let shared = share_workload(&mapped);

        // Build logic blocks: positions pack `outputs` per block; an LB's
        // plane map groups contexts by the tuple of its slots' tables.
        let outs = arch.lut.outputs;
        let n_lbs = shared.luts.len().div_ceil(outs).max(1);
        let p_max = 1usize << (arch.lut.max_inputs - k);
        let mode = LutMode {
            inputs: k,
            planes: p_max,
        };
        let mut lbs: Vec<AdaptiveLogicBlock> = Vec::with_capacity(n_lbs);
        let mut slot_of = Vec::with_capacity(shared.luts.len());
        for (i, _) in shared.luts.iter().enumerate() {
            slot_of.push((lb_of_lut(i, outs), i % outs));
        }
        for lb_index in 0..n_lbs {
            let members: Vec<usize> = (0..shared.luts.len())
                .filter(|&i| lb_of_lut(i, outs) == lb_index)
                .collect();
            // Group contexts by the tuple of member tables.
            let mut groups: Vec<(Vec<u64>, Vec<usize>)> = Vec::new();
            for c in 0..n_contexts {
                let key: Vec<u64> = members
                    .iter()
                    .map(|&i| {
                        let l = &shared.luts[i];
                        l.planes[l.plane_of_context[c]].table
                    })
                    .collect();
                match groups.iter_mut().find(|(k2, _)| *k2 == key) {
                    Some((_, ctxs)) => ctxs.push(c),
                    None => groups.push((key, vec![c])),
                }
            }
            if groups.len() > p_max {
                return Err(CompileError::PlaneOverflow {
                    lb: lb_index,
                    needed: groups.len(),
                    available: p_max,
                });
            }
            let mut plane_of_context = vec![0usize; n_contexts];
            for (p, (_, ctxs)) in groups.iter().enumerate() {
                for &c in ctxs {
                    plane_of_context[c] = p;
                }
            }
            let controller = LocalSizeController::new(ctx, &plane_of_context, mode);
            let mut lb = AdaptiveLogicBlock::new(arch.lut, mode, SizeControl::Local(controller))
                .expect("mode fits geometry");
            for (p, (key, _)) in groups.iter().enumerate() {
                for (slot, &i) in members.iter().enumerate() {
                    let _ = i;
                    let table = TruthTable::from_packed(mode.inputs, key[slot]);
                    lb.program(slot, p, &table);
                }
            }
            lbs.push(lb);
        }

        // Place once (shared structure) and route once; every context uses
        // the same routes because the netlist structure is shared.
        let problem = PlacementProblem::from_mapped(&mapped[0], arch)?;
        let placement = place(&problem, &AnnealOptions::default());
        let graph = RoutingGraph::build(arch);
        let nets = nets_from_placement(&problem, &placement);
        let routed = route_context(&graph, &nets, &RouteOptions::default())?.require_converged()?;
        let per_context: Vec<RoutedContext> = vec![routed.clone(); n_contexts];
        let usage = switch_columns(&graph, &per_context);

        let state = mapped[0].initial_state().bits;
        let n_positions = shared.luts.len();
        Ok(Device {
            arch: arch.clone(),
            ctx,
            shared,
            mapped,
            lbs,
            slot_of,
            state,
            active: 0,
            placement,
            problem,
            graph,
            routed,
            usage,
            prev_lut_vals: vec![false; n_positions],
            toggles: 0,
            cycles: 0,
            kernels: vec![None; n_contexts],
            config_epoch: 0,
            kernel_options: KernelOptions::default(),
            batch: BatchLanes::default(),
            scratch_lut_vals: Vec::new(),
            scratch_in_bits: Vec::new(),
            scratch_next: Vec::new(),
            recorder: Recorder::disabled(),
        })
    }

    /// Route simulation telemetry (`sim_kernel_build` spans, `sim.cycles` /
    /// `sim.words` counters) into `rec` for all later stepping.
    pub fn attach_recorder(&mut self, rec: &Recorder) {
        self.recorder = rec.clone();
    }

    /// The architecture this device was compiled for.
    pub fn arch(&self) -> &ArchSpec {
        &self.arch
    }

    /// The currently active context.
    pub fn active_context(&self) -> usize {
        self.active
    }

    /// Switch the active context (takes effect on the next evaluation —
    /// fast context switching is the MC-FPGA's raison d'être).
    ///
    /// Panicking `#[inline]` convenience wrapper over the canonical
    /// [`Device::try_switch_context`]; use the fallible form on serving
    /// paths that must survive bad input.
    #[inline]
    pub fn switch_context(&mut self, context: usize) {
        self.try_switch_context(context)
            .unwrap_or_else(|e| panic!("{e}"));
    }

    /// Switch the active context, reporting an out-of-range index in-band.
    pub fn try_switch_context(&mut self, context: usize) -> Result<(), SimError> {
        if context >= self.ctx.n_contexts() {
            return Err(SimError::ContextNotProgrammed {
                context,
                programmed: self.ctx.n_contexts(),
            });
        }
        self.active = context;
        Ok(())
    }

    /// One clock cycle in the active context.
    ///
    /// Panicking `#[inline]` convenience wrapper over the canonical
    /// [`Device::try_step`]; use the fallible form on serving paths that
    /// must survive bad input.
    #[inline]
    pub fn step(&mut self, inputs: &[bool]) -> Vec<bool> {
        self.try_step(inputs).unwrap_or_else(|e| panic!("{e}"))
    }

    /// One clock cycle in the active context, reporting an input-arity
    /// mismatch in-band instead of aborting the process.
    pub fn try_step(&mut self, inputs: &[bool]) -> Result<Vec<bool>, SimError> {
        if inputs.len() != self.mapped[self.active].n_inputs {
            return Err(SimError::InputArity {
                context: self.active,
                expected: self.mapped[self.active].n_inputs,
                got: inputs.len(),
            });
        }
        // Evaluate LUT positions in topological (emission) order, but pull
        // each value through the physical logic block hardware model. All
        // scratch is persistent — the only allocation left on this path is
        // the returned output vector.
        let mut lut_vals = std::mem::take(&mut self.scratch_lut_vals);
        let mut in_bits = std::mem::take(&mut self.scratch_in_bits);
        lut_vals.clear();
        lut_vals.resize(self.shared.luts.len(), false);
        for i in 0..self.shared.luts.len() {
            let srcs = &self.shared.luts[i].inputs;
            in_bits.clear();
            in_bits.extend(srcs.iter().map(|s| self.resolve(*s, inputs, &lut_vals)));
            let (lb, slot) = self.slot_of[i];
            lut_vals[i] = self.lbs[lb].output(self.ctx, self.active, &in_bits, slot);
        }
        let m = &self.mapped[self.active];
        let outs: Vec<bool> = m
            .outputs
            .iter()
            .map(|(_, s)| self.resolve(*s, inputs, &lut_vals))
            .collect();
        let mut next = std::mem::take(&mut self.scratch_next);
        next.clear();
        next.extend(
            self.mapped[self.active]
                .dffs
                .iter()
                .map(|d| self.resolve(d.d, inputs, &lut_vals)),
        );
        std::mem::swap(&mut self.state, &mut next);
        self.scratch_next = next;
        // Signal-activity accounting (dynamic-power proxy): LUT-output
        // toggles against the previous cycle, context switches included.
        self.toggles += lut_vals
            .iter()
            .zip(&self.prev_lut_vals)
            .filter(|(a, b)| a != b)
            .count() as u64;
        std::mem::swap(&mut self.prev_lut_vals, &mut lut_vals);
        self.scratch_lut_vals = lut_vals;
        self.scratch_in_bits = in_bits;
        self.cycles += 1;
        self.recorder.incr("sim.cycles", 1);
        self.batch.synced = false;
        Ok(outs)
    }

    /// One clock edge over [`LANES`] independent stimulus lanes: bit `l` of
    /// every input, output, and register word is one complete stimulus
    /// stream. Lane 0 is bit-for-bit the scalar path (and is written back to
    /// the scalar state after every batched step, so scalar and batched
    /// stepping interleave coherently).
    ///
    /// Panicking `#[inline]` convenience wrapper over the canonical
    /// [`Device::try_step_batch`].
    #[inline]
    pub fn step_batch(&mut self, inputs: &[u64]) -> Vec<u64> {
        self.try_step_batch(inputs)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// As [`Device::step_batch`], reporting an input-arity mismatch in-band.
    pub fn try_step_batch(&mut self, inputs: &[u64]) -> Result<Vec<u64>, SimError> {
        let mut out = Vec::new();
        self.try_step_batch_into(inputs, &mut out)?;
        Ok(out)
    }

    /// Allocation-free batched step: `out` is cleared and refilled with one
    /// word per primary output.
    pub fn try_step_batch_into(
        &mut self,
        inputs: &[u64],
        out: &mut Vec<u64>,
    ) -> Result<(), SimError> {
        let c = self.active;
        let n_inputs = self.mapped[c].n_inputs;
        if inputs.len() != n_inputs {
            return Err(SimError::InputArity {
                context: c,
                expected: n_inputs,
                got: inputs.len(),
            });
        }
        self.ensure_kernel(c);
        if !self.batch.synced {
            // The scalar state moved since the last batched step: every
            // lane resumes from the same (scalar) registers.
            kernel::broadcast(&self.state, &mut self.batch.regs);
            kernel::broadcast(&self.prev_lut_vals, &mut self.batch.prev_lut_words);
            self.batch.synced = true;
        }
        let kernel = &self.kernels[c].as_ref().expect("kernel built above").1;
        let optimized = kernel.optimized();
        kernel.step(inputs, &mut self.batch.regs, &mut self.batch.scratch, out);
        if !optimized {
            // Toggle accounting across all lanes: popcount of per-word XORs,
            // so a batched run counts exactly the sum of its lanes' scalar
            // toggles. Optimized kernels reorder and drop instructions, so
            // their words no longer align position-for-position with the
            // mapped LUTs — activity accounting pauses while they run (see
            // [`Device::set_kernel_options`]).
            let cur = &self.batch.scratch.lut_words;
            for (p, &w) in self.batch.prev_lut_words.iter_mut().zip(cur) {
                self.toggles += (*p ^ w).count_ones() as u64;
                *p = w;
            }
            kernel::extract_lane(&self.batch.prev_lut_words, 0, &mut self.prev_lut_vals);
        }
        self.cycles += LANES as u64;
        // Lane 0 writes back so the scalar view stays coherent.
        kernel::extract_lane(&self.batch.regs, 0, &mut self.state);
        self.recorder.incr("sim.words", 1);
        self.recorder.incr("sim.cycles", LANES as u64);
        Ok(())
    }

    /// Build (or reuse) the compiled kernel for `context`. Kernels snapshot
    /// the configuration: any mutation through [`Device::lb_mut`] bumps the
    /// epoch, and stale kernels rebuild here before their next use.
    fn ensure_kernel(&mut self, context: usize) {
        let want = self.kernel_options.optimize;
        if let Some((epoch, k)) = &self.kernels[context] {
            if *epoch == self.config_epoch && k.optimized() == want {
                return;
            }
        }
        let _span = self.recorder.span("sim_kernel_build");
        let mut kernel = self.build_kernel(context);
        if want {
            kernel = kernel.optimize();
        }
        self.kernels[context] = Some((self.config_epoch, kernel));
    }

    /// The kernel lowering knobs batched stepping compiles with.
    pub fn kernel_options(&self) -> KernelOptions {
        self.kernel_options
    }

    /// Change the kernel lowering knobs. Cached kernels whose optimization
    /// variant no longer matches rebuild lazily on their next use; the
    /// configuration epoch is untouched, so an unchanged variant keeps its
    /// cache. While an *optimized* kernel runs, batched steps skip LUT
    /// toggle accounting ([`Device::toggles`] freezes): eliminated and
    /// reordered instructions no longer align with mapped LUT positions.
    pub fn set_kernel_options(&mut self, options: KernelOptions) {
        self.kernel_options = options;
    }

    /// Lower `context` to a fresh instruction stream: the mapped netlist
    /// gives sources and emission (= topological) order, the logic blocks
    /// give each position's active plane and its packed truth table as the
    /// hardware currently holds it — faults included.
    pub(crate) fn build_kernel(&self, context: usize) -> CompiledKernel {
        let m = &self.mapped[context];
        CompiledKernel::build(
            m.n_inputs,
            self.state.len(),
            self.shared.luts.iter().enumerate().map(|(i, l)| {
                let (lb, slot) = self.slot_of[i];
                let block = &self.lbs[lb];
                let plane = block.active_plane(self.ctx, context);
                (l.inputs.as_slice(), block.plane_packed(slot, plane))
            }),
            m.outputs.iter().map(|(_, s)| *s),
            m.dffs.iter().map(|d| d.d),
        )
    }

    /// Clone every context's compiled kernel (building stale ones), for
    /// consumers that run many configuration variants in parallel — the
    /// fault campaign flips table bits on clones instead of mutating the
    /// device. Always *unoptimized*: campaign fault sites address
    /// pre-optimization LUT positions, so when the device is configured to
    /// optimize these are lowered fresh instead of read from the cache.
    pub(crate) fn compiled_kernels(&mut self) -> Vec<CompiledKernel> {
        (0..self.ctx.n_contexts())
            .map(|c| {
                if self.kernel_options.optimize {
                    return self.build_kernel(c);
                }
                self.ensure_kernel(c);
                self.kernels[c]
                    .as_ref()
                    .expect("kernel built above")
                    .1
                    .clone()
            })
            .collect()
    }

    /// Every `(context, LUT position)` whose compiled-kernel table images
    /// the given LUT-memory fault: positions mapped onto
    /// (`fault.lb`, `fault.output`) in contexts whose active plane is
    /// `fault.plane`.
    pub(crate) fn fault_kernel_sites(&self, fault: &LutFault) -> Vec<(usize, usize)> {
        let mut sites = Vec::new();
        for (i, &(lb, slot)) in self.slot_of.iter().enumerate() {
            if lb != fault.lb || slot != fault.output {
                continue;
            }
            for c in 0..self.ctx.n_contexts() {
                if self.lbs[lb].active_plane(self.ctx, c) == fault.plane {
                    sites.push((c, i));
                }
            }
        }
        sites
    }

    /// Number of device contexts (programmed or padded).
    pub fn n_contexts(&self) -> usize {
        self.ctx.n_contexts()
    }

    /// The current register values (lane 0 of a batched run).
    pub fn registers(&self) -> &[bool] {
        &self.state
    }

    /// Lane-cycles simulated since the last reset (a batched word counts
    /// [`LANES`]).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total LUT-output toggles since the last reset, summed over lanes.
    pub fn toggles(&self) -> u64 {
        self.toggles
    }

    /// Mean LUT-output toggles per signal per cycle since the last reset —
    /// the activity factor a dynamic-power estimate multiplies with.
    pub fn toggle_rate(&self) -> f64 {
        if self.cycles == 0 || self.prev_lut_vals.is_empty() {
            return 0.0;
        }
        self.toggles as f64 / (self.cycles as f64 * self.prev_lut_vals.len() as f64)
    }

    /// Configuration bits that change when switching `from` -> `to`
    /// (switch columns only): what a context switch costs dynamically.
    pub fn context_switch_toggles(&self, from: usize, to: usize) -> usize {
        self.usage
            .columns()
            .iter()
            .filter(|c| c.value_in(from) != c.value_in(to))
            .count()
    }

    fn resolve(&self, src: MappedSource, inputs: &[bool], lut_vals: &[bool]) -> bool {
        match src {
            MappedSource::Input(i) => inputs[i],
            MappedSource::Register(r) => self.state[r],
            MappedSource::Lut(l) => lut_vals[l],
            MappedSource::Const(c) => c,
        }
    }

    /// Reset all registers to their initial values and clear the activity
    /// counters.
    pub fn reset(&mut self) {
        self.state = self.mapped[0].initial_state().bits;
        self.prev_lut_vals.iter_mut().for_each(|b| *b = false);
        self.toggles = 0;
        self.cycles = 0;
        self.batch.synced = false;
    }

    /// Verify that every placed net is connected through switch state in
    /// every context: breadth-first search over cells using only switches
    /// that conduct in that context.
    pub fn check_routing(&self) -> Result<(), String> {
        use std::collections::{HashSet, VecDeque};
        let nets = nets_from_placement(&self.problem, &self.placement);
        for context in 0..self.ctx.n_contexts() {
            // Collect conducting edges once.
            let mut on: HashSet<usize> = HashSet::new();
            for (&(edge, _t), &mask) in &self.usage.switches {
                if (mask >> context) & 1 == 1 {
                    on.insert(edge);
                }
            }
            for (ni, net) in nets.iter().enumerate() {
                let start = self.graph.node(net.source);
                let mut seen = HashSet::new();
                seen.insert(start);
                let mut q = VecDeque::from([start]);
                while let Some(node) = q.pop_front() {
                    for &e in self.graph.incident(node) {
                        if !on.contains(&e) {
                            continue;
                        }
                        let next = self.graph.other_end(e, node);
                        if seen.insert(next) {
                            q.push_back(next);
                        }
                    }
                }
                for &sink in &net.sinks {
                    if !seen.contains(&self.graph.node(sink)) {
                        return Err(format!(
                            "net {ni} sink {sink} unreachable in context {context}"
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// The routing-switch bitstream of this device.
    pub fn switch_bitstream(&self) -> Bitstream {
        self.usage.to_bitstream(&self.graph, &self.arch)
    }

    /// Compile-quality report for the experiments.
    pub fn report(&self) -> CompileReport {
        CompileReport {
            granularity: self.shared.k,
            n_luts: self.shared.luts.len(),
            n_lbs: self.lbs.len(),
            mean_planes: self.shared.mean_planes(),
            plane_histogram: self.shared.plane_histogram(),
            controller_ses: self.lbs.iter().map(|l| l.controller_se_cost()).sum(),
            switch_stats: ColumnSetStats::measure(&self.usage.columns(), self.ctx),
            routing_iterations: self.routed.iterations,
            critical_delay: self.routed.critical_delay(),
        }
    }

    /// Number of physical logic blocks in use.
    pub fn n_lbs(&self) -> usize {
        self.lbs.len()
    }

    /// The LUT mode every logic block runs in.
    pub fn lb_mode(&self) -> LutMode {
        self.lbs.first().map(|lb| lb.mode()).unwrap_or(LutMode {
            inputs: self.arch.lut.min_inputs,
            planes: 1,
        })
    }

    /// Mutable logic-block access (fault injection). Any access is assumed
    /// to mutate configuration, so cached compiled kernels invalidate.
    pub(crate) fn lb_mut(&mut self, lb: usize) -> &mut AdaptiveLogicBlock {
        self.config_epoch += 1;
        &mut self.lbs[lb]
    }

    /// The shared design (for the area model).
    pub fn shared_design(&self) -> &SharedDesign {
        &self.shared
    }

    /// Per-switch usage (for the area model).
    pub fn switch_usage(&self) -> &SwitchUsage {
        &self.usage
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_netlist::{library, workload, RandomNetlistParams};

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn compile_and_run_single_circuit() {
        let add = library::adder(4);
        let mut dev = Device::compile(&arch(), std::slice::from_ref(&add)).unwrap();
        dev.check_routing().unwrap();
        // 3 + 5 = 8 with carry bit.
        let mut inputs = vec![true, true, false, false]; // a = 3
        inputs.extend([true, false, true, false]); // b = 5
        inputs.push(false); // cin
        let out = dev.step(&inputs);
        let sum: u64 = out[..4]
            .iter()
            .enumerate()
            .map(|(i, &b)| (b as u64) << i)
            .sum();
        let carry = out[4];
        assert_eq!(sum + ((carry as u64) << 4), 8);
    }

    #[test]
    fn context_switching_changes_behaviour() {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 40,
                n_outputs: 4,
                dff_fraction: 0.0,
            },
            4,
            0.5,
            77,
        );
        let mut dev = Device::compile(&arch(), &w).unwrap();
        let inputs = vec![true, false, true, true, false, true];
        let mut outs = Vec::new();
        for c in 0..4 {
            dev.switch_context(c);
            outs.push(dev.step(&inputs));
        }
        // With a 50% change rate, at least one pair of contexts must differ.
        assert!(
            outs.windows(2).any(|w| w[0] != w[1]),
            "contexts produced identical outputs: {outs:?}"
        );
    }

    #[test]
    fn registers_survive_context_switches() {
        let cnt = library::counter(4);
        let mut dev = Device::compile(&arch(), &[cnt.clone(), cnt]).unwrap();
        // Count three times in context 0.
        for _ in 0..3 {
            dev.step(&[true]);
        }
        // Switch to context 1 (same counter) and read: state continues.
        dev.switch_context(1);
        let out = dev.step(&[false]); // hold
        let v: u64 = out.iter().enumerate().map(|(i, &b)| (b as u64) << i).sum();
        assert_eq!(v, 3, "register state crossed the context switch");
    }

    #[test]
    fn report_is_coherent() {
        let w = workload(RandomNetlistParams::default(), 4, 0.05, 5);
        let dev = Device::compile(&arch(), &w).unwrap();
        let r = dev.report();
        assert!(r.n_luts > 0);
        assert_eq!(r.plane_histogram.iter().sum::<usize>(), r.n_luts);
        assert!(r.mean_planes >= 1.0 && r.mean_planes <= 4.0);
        assert!(r.switch_stats.n_columns > 0);
        assert!(r.critical_delay > 0.0);
        // 5% change keeps most planes shared.
        assert!(r.mean_planes < 2.0, "mean planes {}", r.mean_planes);
    }

    #[test]
    fn adaptive_granularity_grows_with_sharing() {
        let arch = ArchSpec::paper_default();
        // Identical contexts: one plane suffices everywhere, so the
        // adaptive compile lands at the largest LUT size (6).
        let circuit = library::alu(4);
        let shared_dev = Device::compile_adaptive(&arch, &vec![circuit.clone(); 4]).unwrap();
        assert_eq!(shared_dev.report().granularity, 6);
        // And uses fewer LUTs than the fixed k=4 compile.
        let fixed = Device::compile(&arch, &vec![circuit.clone(); 4]).unwrap();
        assert!(shared_dev.report().n_luts < fixed.report().n_luts);

        // Divergent contexts need planes and fall back towards k=4.
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 50,
                n_outputs: 5,
                dff_fraction: 0.0,
            },
            4,
            0.5,
            3,
        );
        let divergent = Device::compile_adaptive(&arch, &w).unwrap();
        assert!(divergent.report().granularity < 6);
    }

    #[test]
    fn adaptive_devices_stay_equivalent() {
        let arch = ArchSpec::paper_default();
        let contexts = vec![library::popcount(6); 4];
        let mut dev = Device::compile_adaptive(&arch, &contexts).unwrap();
        crate::equivalence::check_device_equivalence(&mut dev, &contexts, 40, 9).unwrap();
    }

    #[test]
    fn empty_workload_is_rejected() {
        assert!(matches!(
            Device::compile(&arch(), &[]),
            Err(CompileError::EmptyWorkload)
        ));
    }

    #[test]
    fn reset_restores_initial_state() {
        let cnt = library::counter(3);
        let mut dev = Device::compile(&arch(), &[cnt]).unwrap();
        dev.step(&[true]);
        dev.step(&[true]);
        dev.reset();
        let out = dev.step(&[false]);
        assert!(out.iter().all(|&b| !b), "counter back at zero");
    }
}

#[cfg(test)]
mod activity_tests {
    use super::*;
    use mcfpga_netlist::library;

    #[test]
    fn toggle_rate_tracks_activity() {
        let arch = ArchSpec::paper_default();
        let contexts = vec![library::parity(8); 4];
        let mut dev = Device::compile(&arch, &contexts).unwrap();
        // Constant inputs: after the first cycle nothing toggles.
        for _ in 0..10 {
            dev.step(&[false; 8]);
        }
        let quiet = dev.toggle_rate();
        dev.reset();
        // Pseudo-random inputs: the XOR tree churns.
        let mut lfsr = 0xACE1u16;
        for _ in 0..40 {
            let inputs: Vec<bool> = (0..8).map(|i| (lfsr >> i) & 1 == 1).collect();
            dev.step(&inputs);
            let bit = (lfsr ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1;
            lfsr = (lfsr >> 1) | (bit << 15);
        }
        let busy = dev.toggle_rate();
        assert!(busy > quiet, "busy {busy} vs quiet {quiet}");
        assert!(quiet < 0.1);
        assert!(busy > 0.2);
    }

    #[test]
    fn toggle_rate_is_zero_not_nan_before_any_cycle() {
        // Regression: cycles == 0 must short-circuit, never divide.
        let arch = ArchSpec::paper_default();
        let dev = Device::compile(&arch, &vec![library::parity(4); 2]).unwrap();
        let rate = dev.toggle_rate();
        assert!(!rate.is_nan(), "zero-cycle device produced NaN");
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn toggle_rate_is_zero_not_nan_on_a_lut_less_device() {
        // A pure-passthrough netlist maps to zero LUTs; with cycles > 0 the
        // rate divides by the LUT count, which must be guarded too. Covers
        // both the scalar and batched accounting paths (shared counters).
        let arch = ArchSpec::paper_default();
        let mut wire = mcfpga_netlist::Netlist::new("wire");
        let a = wire.input("a");
        wire.output("y", a);
        let mut dev = Device::compile(&arch, &vec![wire; 2]).unwrap();
        let out = dev.step(&[true]);
        assert_eq!(out, vec![true]);
        dev.step_batch(&[u64::MAX]);
        let rate = dev.toggle_rate();
        assert!(!rate.is_nan(), "LUT-less device produced NaN");
        assert_eq!(rate, 0.0);
    }

    #[test]
    fn context_switch_toggles_match_column_changes() {
        let arch = ArchSpec::paper_default();
        let contexts = vec![library::adder(4); 4];
        let dev = Device::compile(&arch, &contexts).unwrap();
        // Identical contexts: switching costs zero configuration toggles.
        assert_eq!(dev.context_switch_toggles(0, 3), 0);
        assert_eq!(dev.context_switch_toggles(1, 2), 0);
    }
}
