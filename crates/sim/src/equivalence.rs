//! Device-vs-reference equivalence checking.
//!
//! The strongest statement the reproduction can make about functional
//! correctness: drive the compiled fabric and the golden gate-level
//! netlists with the same stimulus — including context switches at
//! arbitrary cycles — and require bit-exact agreement on every output of
//! every cycle.
//!
//! Two drivers share that contract: the scalar [`check_device_equivalence`]
//! (one vector per cycle, the original stimulus distribution) and the
//! batched [`check_device_equivalence_batch`], which pushes
//! [`LANES`] independent stimulus streams per word
//! through the compiled kernel, with context switches applied at word
//! boundaries (all lanes switch together) and every lane replayed against
//! its own reference state.

use mcfpga_netlist::{Netlist, NetlistError, State};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::device::Device;
use crate::kernel::LANES;
use crate::multi::SimError;

/// An observed divergence. `lane` is the stimulus stream that diverged —
/// always 0 on the scalar path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceError {
    pub cycle: usize,
    pub context: usize,
    pub lane: usize,
    pub inputs: Vec<bool>,
    pub device: Vec<bool>,
    pub reference: Vec<bool>,
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence at cycle {} (context {}, lane {}): device {:?} vs reference {:?}",
            self.cycle, self.context, self.lane, self.device, self.reference
        )
    }
}

impl std::error::Error for EquivalenceError {}

/// Failure of an equivalence run, divergence and infrastructure separated:
/// a campaign must not confuse "the fault was caught" with "the golden
/// netlist could not be evaluated".
#[derive(Debug, Clone, PartialEq)]
pub enum EquivalenceCheckError {
    /// Device and reference disagreed (the signal the campaigns count).
    Divergence(EquivalenceError),
    /// The golden netlist itself failed to evaluate.
    Reference {
        cycle: usize,
        context: usize,
        error: NetlistError,
    },
    /// The device rejected the stimulus.
    Sim(SimError),
}

impl EquivalenceCheckError {
    /// The divergence record, if this failure is one.
    pub fn divergence(&self) -> Option<&EquivalenceError> {
        match self {
            EquivalenceCheckError::Divergence(e) => Some(e),
            _ => None,
        }
    }
}

impl std::fmt::Display for EquivalenceCheckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivalenceCheckError::Divergence(e) => write!(f, "{e}"),
            EquivalenceCheckError::Reference {
                cycle,
                context,
                error,
            } => write!(
                f,
                "reference evaluation failed at cycle {cycle} (context {context}): {error:?}"
            ),
            EquivalenceCheckError::Sim(e) => write!(f, "device rejected stimulus: {e}"),
        }
    }
}

impl std::error::Error for EquivalenceCheckError {}

impl From<EquivalenceError> for EquivalenceCheckError {
    fn from(e: EquivalenceError) -> Self {
        EquivalenceCheckError::Divergence(e)
    }
}

impl From<SimError> for EquivalenceCheckError {
    fn from(e: SimError) -> Self {
        EquivalenceCheckError::Sim(e)
    }
}

/// Run `cycles` random cycles with random context switches; compare the
/// device against the per-context reference netlists sharing one register
/// state (contexts of an aligned workload have identical register
/// structure, so the state vector is common).
pub fn check_device_equivalence(
    device: &mut Device,
    references: &[Netlist],
    cycles: usize,
    seed: u64,
) -> Result<(), EquivalenceCheckError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_inputs = references[0].inputs().len();
    device.reset();
    device.try_switch_context(0)?;
    let mut ref_state: State = references[0].initial_state();
    let mut context = 0usize;
    for cycle in 0..cycles {
        // Occasionally switch contexts (the defining operation).
        if rng.gen_bool(0.3) {
            context = rng.gen_range(0..references.len());
            device.try_switch_context(context)?;
        }
        let inputs: Vec<bool> = (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect();
        let dev_out = device.try_step(&inputs)?;
        let ref_out = references[context]
            .step(&inputs, &mut ref_state)
            .map_err(|error| EquivalenceCheckError::Reference {
                cycle,
                context,
                error,
            })?;
        if dev_out != ref_out {
            return Err(EquivalenceError {
                cycle,
                context,
                lane: 0,
                inputs,
                device: dev_out,
                reference: ref_out,
            }
            .into());
        }
    }
    Ok(())
}

/// The batched counterpart: `words` word-steps of [`LANES`] independent
/// random stimulus streams each, with random context switches at word
/// boundaries. Every lane is replayed scalar-wise against its own reference
/// state, so one call covers `words * LANES` vector-cycles.
pub fn check_device_equivalence_batch(
    device: &mut Device,
    references: &[Netlist],
    words: usize,
    seed: u64,
) -> Result<(), EquivalenceCheckError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_inputs = references[0].inputs().len();
    device.reset();
    device.try_switch_context(0)?;
    let mut ref_states: Vec<State> = (0..LANES).map(|_| references[0].initial_state()).collect();
    let mut context = 0usize;
    let mut in_words = vec![0u64; n_inputs];
    let mut out_words: Vec<u64> = Vec::new();
    let mut lane_inputs = vec![false; n_inputs];
    for word in 0..words {
        if rng.gen_bool(0.3) {
            context = rng.gen_range(0..references.len());
            device.try_switch_context(context)?;
        }
        for w in in_words.iter_mut() {
            *w = rng.next_u64();
        }
        device.try_step_batch_into(&in_words, &mut out_words)?;
        for (lane, ref_state) in ref_states.iter_mut().enumerate() {
            for (b, w) in lane_inputs.iter_mut().zip(&in_words) {
                *b = (w >> lane) & 1 == 1;
            }
            let ref_out = references[context]
                .step(&lane_inputs, ref_state)
                .map_err(|error| EquivalenceCheckError::Reference {
                    cycle: word,
                    context,
                    error,
                })?;
            let diverged = ref_out
                .iter()
                .enumerate()
                .any(|(o, &r)| ((out_words[o] >> lane) & 1 == 1) != r);
            if diverged {
                let device_bits = (0..ref_out.len())
                    .map(|o| (out_words[o] >> lane) & 1 == 1)
                    .collect();
                return Err(EquivalenceError {
                    cycle: word,
                    context,
                    lane,
                    inputs: lane_inputs.clone(),
                    device: device_bits,
                    reference: ref_out,
                }
                .into());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;
    use mcfpga_netlist::{library, workload, RandomNetlistParams};

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn random_workloads_are_equivalent() {
        for seed in [1u64, 2, 3] {
            let w = workload(
                RandomNetlistParams {
                    n_inputs: 7,
                    n_gates: 50,
                    n_outputs: 5,
                    dff_fraction: 0.0,
                },
                4,
                0.1,
                seed,
            );
            let mut dev = Device::compile(&arch(), &w).unwrap();
            check_device_equivalence(&mut dev, &w, 60, seed).unwrap();
            check_device_equivalence_batch(&mut dev, &w, 10, seed).unwrap();
        }
    }

    #[test]
    fn sequential_workloads_are_equivalent() {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 5,
                n_gates: 40,
                n_outputs: 4,
                dff_fraction: 0.2,
            },
            4,
            0.05,
            11,
        );
        let mut dev = Device::compile(&arch(), &w).unwrap();
        check_device_equivalence(&mut dev, &w, 80, 11).unwrap();
        check_device_equivalence_batch(&mut dev, &w, 20, 11).unwrap();
    }

    #[test]
    fn library_circuit_pairs_are_equivalent() {
        // Same circuit replicated in every context: the pure-sharing case.
        for circuit in [library::adder(4), library::alu(4), library::popcount(6)] {
            let contexts = vec![circuit.clone(), circuit.clone(), circuit.clone(), circuit];
            let mut dev = Device::compile(&arch(), &contexts).unwrap();
            check_device_equivalence(&mut dev, &contexts, 40, 3).unwrap();
            check_device_equivalence_batch(&mut dev, &contexts, 8, 3).unwrap();
        }
    }

    #[test]
    fn batch_checker_catches_an_injected_fault_with_lane_attribution() {
        let contexts = vec![library::parity(8); 4];
        let mut dev = Device::compile(&arch(), &contexts).unwrap();
        dev.inject_lut_fault(crate::faults::LutFault {
            lb: 0,
            output: 0,
            plane: 0,
            assignment: 3,
        });
        let err = check_device_equivalence_batch(&mut dev, &contexts, 20, 5)
            .expect_err("XOR-table upset must be visible to the batched checker");
        let div = err.divergence().expect("divergence, not infrastructure");
        assert!(div.lane < LANES);
        assert_ne!(div.device, div.reference);
    }

    #[test]
    fn divergence_reporting_shape() {
        // Not a real divergence test (the flow is correct); check Display.
        let e = EquivalenceError {
            cycle: 5,
            context: 2,
            lane: 17,
            inputs: vec![true],
            device: vec![false],
            reference: vec![true],
        };
        let s = e.to_string();
        assert!(s.contains("cycle 5"));
        assert!(s.contains("context 2"));
        assert!(s.contains("lane 17"));
        let wrapped: EquivalenceCheckError = e.into();
        assert!(wrapped.divergence().is_some());
        assert!(wrapped.to_string().contains("cycle 5"));
    }
}
