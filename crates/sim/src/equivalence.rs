//! Device-vs-reference equivalence checking.
//!
//! The strongest statement the reproduction can make about functional
//! correctness: drive the compiled fabric and the golden gate-level
//! netlists with the same stimulus — including context switches at
//! arbitrary cycles — and require bit-exact agreement on every output of
//! every cycle.

use mcfpga_netlist::{Netlist, State};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::Device;

/// An observed divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceError {
    pub cycle: usize,
    pub context: usize,
    pub inputs: Vec<bool>,
    pub device: Vec<bool>,
    pub reference: Vec<bool>,
}

impl std::fmt::Display for EquivalenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "divergence at cycle {} (context {}): device {:?} vs reference {:?}",
            self.cycle, self.context, self.device, self.reference
        )
    }
}

impl std::error::Error for EquivalenceError {}

/// Run `cycles` random cycles with random context switches; compare the
/// device against the per-context reference netlists sharing one register
/// state (contexts of an aligned workload have identical register
/// structure, so the state vector is common).
pub fn check_device_equivalence(
    device: &mut Device,
    references: &[Netlist],
    cycles: usize,
    seed: u64,
) -> Result<(), EquivalenceError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_inputs = references[0].inputs().len();
    device.reset();
    device.switch_context(0);
    let mut ref_state: State = references[0].initial_state();
    let mut context = 0usize;
    for cycle in 0..cycles {
        // Occasionally switch contexts (the defining operation).
        if rng.gen_bool(0.3) {
            context = rng.gen_range(0..references.len());
            device.switch_context(context);
        }
        let inputs: Vec<bool> = (0..n_inputs).map(|_| rng.gen_bool(0.5)).collect();
        let dev_out = device.step(&inputs);
        let ref_out = references[context]
            .step(&inputs, &mut ref_state)
            .expect("reference evaluation");
        if dev_out != ref_out {
            return Err(EquivalenceError {
                cycle,
                context,
                inputs,
                device: dev_out,
                reference: ref_out,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;
    use mcfpga_netlist::{library, workload, RandomNetlistParams};

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn random_workloads_are_equivalent() {
        for seed in [1u64, 2, 3] {
            let w = workload(
                RandomNetlistParams {
                    n_inputs: 7,
                    n_gates: 50,
                    n_outputs: 5,
                    dff_fraction: 0.0,
                },
                4,
                0.1,
                seed,
            );
            let mut dev = Device::compile(&arch(), &w).unwrap();
            check_device_equivalence(&mut dev, &w, 60, seed).unwrap();
        }
    }

    #[test]
    fn sequential_workloads_are_equivalent() {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 5,
                n_gates: 40,
                n_outputs: 4,
                dff_fraction: 0.2,
            },
            4,
            0.05,
            11,
        );
        let mut dev = Device::compile(&arch(), &w).unwrap();
        check_device_equivalence(&mut dev, &w, 80, 11).unwrap();
    }

    #[test]
    fn library_circuit_pairs_are_equivalent() {
        // Same circuit replicated in every context: the pure-sharing case.
        for circuit in [library::adder(4), library::alu(4), library::popcount(6)] {
            let contexts = vec![circuit.clone(), circuit.clone(), circuit.clone(), circuit];
            let mut dev = Device::compile(&arch(), &contexts).unwrap();
            check_device_equivalence(&mut dev, &contexts, 40, 3).unwrap();
        }
    }

    #[test]
    fn divergence_reporting_shape() {
        // Not a real divergence test (the flow is correct); check Display.
        let e = EquivalenceError {
            cycle: 5,
            context: 2,
            inputs: vec![true],
            device: vec![false],
            reference: vec![true],
        };
        let s = e.to_string();
        assert!(s.contains("cycle 5"));
        assert!(s.contains("context 2"));
    }
}
