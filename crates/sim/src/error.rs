//! The crate-wide error umbrella.
//!
//! The simulator exposes three failure domains: compile-time failures
//! ([`CompileError`]), runtime stimulus failures ([`SimError`]), and
//! equivalence-run failures ([`EquivalenceCheckError`]). Callers that drive
//! the whole lifecycle — most prominently the `mcfpga-serve` job layer —
//! want to hold *one* error type; [`enum@Error`] wraps all three with
//! `From` impls so `?` converts freely.

use crate::device::CompileError;
use crate::equivalence::{EquivalenceCheckError, EquivalenceError};
use crate::multi::SimError;

/// Any failure the simulator can report: compile, runtime, or equivalence.
///
/// This is the one error type serving layers should hold; the variants keep
/// the original typed payloads for callers that need to discriminate.
#[derive(Debug)]
pub enum Error {
    /// The compile pipeline failed (map / place / route / plane overflow).
    Compile(CompileError),
    /// A compiled device rejected its stimulus at runtime.
    Sim(SimError),
    /// An equivalence run failed: divergence or reference breakdown.
    Equivalence(EquivalenceCheckError),
}

impl Error {
    /// The runtime stimulus failure, if this is one.
    pub fn as_sim(&self) -> Option<&SimError> {
        match self {
            Error::Sim(e) => Some(e),
            _ => None,
        }
    }

    /// The compile failure, if this is one.
    pub fn as_compile(&self) -> Option<&CompileError> {
        match self {
            Error::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Compile(e) => write!(f, "compile failed: {e}"),
            Error::Sim(e) => write!(f, "simulation rejected input: {e}"),
            Error::Equivalence(e) => write!(f, "equivalence check failed: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Compile(e) => Some(e),
            Error::Sim(e) => Some(e),
            Error::Equivalence(e) => Some(e),
        }
    }
}

impl From<CompileError> for Error {
    fn from(e: CompileError) -> Self {
        Error::Compile(e)
    }
}

impl From<SimError> for Error {
    fn from(e: SimError) -> Self {
        Error::Sim(e)
    }
}

impl From<EquivalenceCheckError> for Error {
    fn from(e: EquivalenceCheckError) -> Self {
        Error::Equivalence(e)
    }
}

impl From<EquivalenceError> for Error {
    fn from(e: EquivalenceError) -> Self {
        Error::Equivalence(EquivalenceCheckError::Divergence(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umbrella_wraps_every_domain_with_from() {
        let sim: Error = SimError::ContextNotProgrammed {
            context: 7,
            programmed: 2,
        }
        .into();
        assert!(sim.as_sim().is_some());
        assert!(sim.as_compile().is_none());
        assert!(sim.to_string().contains("context 7"));

        let compile: Error = CompileError::EmptyWorkload.into();
        assert!(compile.as_compile().is_some());
        assert!(compile.to_string().contains("no contexts"));

        let eq: Error = EquivalenceError {
            cycle: 3,
            context: 1,
            lane: 0,
            inputs: vec![],
            device: vec![true],
            reference: vec![false],
        }
        .into();
        assert!(matches!(
            eq,
            Error::Equivalence(EquivalenceCheckError::Divergence(_))
        ));
    }

    #[test]
    fn question_mark_conversion_compiles() {
        fn serve_path() -> Result<(), Error> {
            fn sim_step() -> Result<(), SimError> {
                Err(SimError::InputArity {
                    context: 0,
                    expected: 4,
                    got: 2,
                })
            }
            sim_step()?;
            Ok(())
        }
        assert!(matches!(serve_path(), Err(Error::Sim(_))));
    }
}
