//! Fault injection: single-event upsets in configuration storage and
//! stuck routing switches, with detection via the equivalence checker.
//!
//! Two fault classes matter to the architecture:
//!
//! * **LUT plane bits** — an upset changes one function point of one plane;
//!   it manifests only in the contexts mapped to that plane and only for the
//!   affected input assignment.
//! * **Routing switches** — a stuck-off switch breaks connectivity in the
//!   contexts that needed it; [`crate::Device::check_routing`]-style
//!   re-derivation finds these *structurally*, without stimulus.
//!
//! The campaign utilities below quantify detection: how many random upsets
//! the randomized stimulus catches. Bits on *unused* planes or don't-care
//! assignments are genuinely silent — the reported coverage separates
//! activated from dormant faults.
//!
//! The campaign runs on the compiled bit-parallel kernel: one shared
//! stimulus schedule (context switches at word boundaries, 64 independent
//! vector streams per word) is evaluated once against the golden netlists,
//! then each fault gets a *clone* of the healthy per-context kernels with
//! the affected folded table bit flipped ([`crate::kernel`]), and its whole
//! vector set is replayed in words and compared against the golden output
//! words with early exit. Faults fan out across the same scoped worker pool
//! the compile pipeline uses, and the device itself is never mutated.

use mcfpga_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::device::Device;
use crate::kernel::{extract_lane, KernelScratch, LANES};
use crate::multi::{effective_workers, fan_out};

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutFault {
    pub lb: usize,
    pub output: usize,
    pub plane: usize,
    pub assignment: usize,
}

/// Result of a fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    pub injected: usize,
    /// Faults the randomized stimulus caught.
    pub detected: usize,
    /// Faults that stayed silent over the stimulus budget.
    pub silent: usize,
}

impl CampaignReport {
    pub fn detection_rate(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.detected as f64 / self.injected as f64
        }
    }
}

impl Device {
    /// Inject a LUT-bit upset. Returns the fault record for reporting.
    pub fn inject_lut_fault(&mut self, fault: LutFault) -> LutFault {
        self.lb_mut(fault.lb)
            .flip_lut_bit(fault.output, fault.plane, fault.assignment);
        fault
    }

    /// Remove a previously injected upset (flipping is an involution).
    pub fn clear_lut_fault(&mut self, fault: LutFault) {
        self.inject_lut_fault(fault);
    }
}

/// One word-step of the shared campaign stimulus.
struct ScheduleStep {
    context: usize,
    inputs: Vec<u64>,
}

/// Run a single-fault campaign: inject `n_faults` random LUT upsets one at a
/// time and test each against the golden netlists with `cycles` word-steps
/// of randomized stimulus (64 vector streams per word, context switches at
/// word boundaries) — `cycles * 64` vectors per fault.
pub fn lut_fault_campaign(
    device: &mut Device,
    references: &[Netlist],
    n_faults: usize,
    cycles: usize,
    seed: u64,
) -> CampaignReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_lbs = device.n_lbs();
    let outs = device.arch().lut.outputs;
    let mode = device.lb_mode();
    let faults: Vec<LutFault> = (0..n_faults)
        .map(|_| LutFault {
            lb: rng.gen_range(0..n_lbs),
            output: rng.gen_range(0..outs),
            plane: rng.gen_range(0..mode.planes),
            assignment: rng.gen_range(0..1usize << mode.inputs),
        })
        .collect();

    // The shared stimulus schedule: every fault sees the same words, so the
    // fault-free reference outputs are computed exactly once.
    let n_inputs = references[0].inputs().len();
    let mut sched_rng = StdRng::seed_from_u64(seed ^ 0x05EE_DFA0_7CA3_D1D0_u64);
    let mut context = 0usize;
    let schedule: Vec<ScheduleStep> = (0..cycles)
        .map(|_| {
            if sched_rng.gen_bool(0.3) {
                context = sched_rng.gen_range(0..references.len());
            }
            ScheduleStep {
                context,
                inputs: (0..n_inputs).map(|_| sched_rng.next_u64()).collect(),
            }
        })
        .collect();

    // Golden output words: each lane is an independent reference replay.
    let mut ref_states: Vec<_> = (0..LANES).map(|_| references[0].initial_state()).collect();
    let mut lane_inputs = vec![false; n_inputs];
    let expected: Vec<Vec<u64>> = schedule
        .iter()
        .map(|step| {
            let mut words: Vec<u64> = Vec::new();
            for (lane, state) in ref_states.iter_mut().enumerate() {
                extract_lane(&step.inputs, lane, &mut lane_inputs);
                let out = references[step.context]
                    .step(&lane_inputs, state)
                    .expect("reference evaluation");
                if lane == 0 {
                    words = vec![0u64; out.len()];
                }
                for (w, &b) in words.iter_mut().zip(&out) {
                    *w |= (b as u64) << lane;
                }
            }
            words
        })
        .collect();

    // Healthy per-context kernels and the lane-broadcast initial registers;
    // each fault flips its folded table bits on a clone.
    device.reset();
    let kernels = device.compiled_kernels();
    // Fault sites address pre-optimization LUT positions; the optimizer
    // renumbers, merges, and deletes instructions, so the campaign is only
    // meaningful on the direct lowering. `compiled_kernels` guarantees that
    // by construction — this assert pins the contract.
    assert!(
        kernels.iter().all(|k| !k.optimized()),
        "fault campaign requires unoptimized kernels"
    );
    let init_regs: Vec<u64> = device
        .registers()
        .iter()
        .map(|&b| if b { !0u64 } else { 0 })
        .collect();
    let fault_sites: Vec<Vec<(usize, usize)>> = faults
        .iter()
        .map(|f| device.fault_kernel_sites(f))
        .collect();

    let caught = fan_out(n_faults, effective_workers(n_faults), |_worker, f| {
        let mut kernels = kernels.clone();
        for &(c, position) in &fault_sites[f] {
            kernels[c].flip_table_bit(position, faults[f].assignment);
        }
        let mut regs = init_regs.clone();
        let mut scratch = KernelScratch::new();
        let mut out: Vec<u64> = Vec::new();
        for (step, want) in schedule.iter().zip(&expected) {
            kernels[step.context].step(&step.inputs, &mut regs, &mut scratch, &mut out);
            if out != *want {
                return true;
            }
        }
        false
    });
    let detected = caught.iter().filter(|&&c| c).count();
    CampaignReport {
        injected: n_faults,
        detected,
        silent: n_faults - detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equivalence::check_device_equivalence;
    use mcfpga_arch::ArchSpec;
    use mcfpga_netlist::{library, workload, RandomNetlistParams};

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn injected_fault_on_used_plane_is_detected() {
        let circuits = vec![library::parity(8); 4];
        let mut dev = Device::compile(&arch(), &circuits).unwrap();
        // The parity tree's LUTs are all on plane 0 (fully shared) and
        // every assignment of a XOR table matters: any flip must be caught.
        let fault = LutFault {
            lb: 0,
            output: 0,
            plane: 0,
            assignment: 3,
        };
        dev.inject_lut_fault(fault);
        assert!(
            check_device_equivalence(&mut dev, &circuits, 200, 5).is_err(),
            "XOR-table upset must be visible"
        );
        // Clearing restores equivalence.
        dev.clear_lut_fault(fault);
        dev.reset();
        check_device_equivalence(&mut dev, &circuits, 100, 5).unwrap();
    }

    #[test]
    fn campaign_detects_most_faults_on_dense_logic() {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 40,
                n_outputs: 6,
                dff_fraction: 0.0,
            },
            4,
            0.1,
            77,
        );
        let mut dev = Device::compile(&arch(), &w).unwrap();
        let report = lut_fault_campaign(&mut dev, &w, 30, 120, 13);
        assert_eq!(report.injected, 30);
        assert_eq!(report.detected + report.silent, 30);
        // Random 6-input netlists don't exercise every LUT assignment and
        // unused planes are dormant, but a healthy fraction must be caught.
        assert!(
            report.detection_rate() > 0.2,
            "detection rate {:.2}",
            report.detection_rate()
        );
        // After the campaign the device is fault-free again (the campaign
        // runs on kernel clones and never mutates the device).
        check_device_equivalence(&mut dev, &w, 60, 1).unwrap();
    }

    #[test]
    fn campaign_agrees_with_direct_scalar_injection() {
        // Every fault the batched campaign flags must be a real divergence:
        // inject it scalar-wise and confirm with the scalar checker; every
        // silent fault must survive the same scalar stimulus budget.
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 30,
                n_outputs: 4,
                dff_fraction: 0.1,
            },
            4,
            0.1,
            21,
        );
        let mut dev = Device::compile(&arch(), &w).unwrap();
        let report = lut_fault_campaign(&mut dev, &w, 12, 60, 7);
        // Re-derive the same fault list the campaign sampled.
        let mut rng = StdRng::seed_from_u64(7);
        let n_lbs = dev.n_lbs();
        let outs = dev.arch().lut.outputs;
        let mode = dev.lb_mode();
        let mut scalar_detected = 0usize;
        for _ in 0..12 {
            let fault = LutFault {
                lb: rng.gen_range(0..n_lbs),
                output: rng.gen_range(0..outs),
                plane: rng.gen_range(0..mode.planes),
                assignment: rng.gen_range(0..1usize << mode.inputs),
            };
            dev.inject_lut_fault(fault);
            if check_device_equivalence(&mut dev, &w, 120, 99).is_err() {
                scalar_detected += 1;
            }
            dev.clear_lut_fault(fault);
            dev.reset();
        }
        // The batched campaign pushes 64x the vectors per fault, so it can
        // only catch at least as much as a scalar pass of similar length.
        assert!(
            report.detected >= scalar_detected,
            "batched {} < scalar {}",
            report.detected,
            scalar_detected
        );
    }

    #[test]
    fn faults_on_unused_planes_are_silent() {
        // Fully shared workload: only plane 0 is ever selected; upsets on
        // plane 3 can never be observed.
        let circuits = vec![library::adder(4); 4];
        let mut dev = Device::compile(&arch(), &circuits).unwrap();
        let fault = LutFault {
            lb: 0,
            output: 0,
            plane: 3,
            assignment: 0,
        };
        dev.inject_lut_fault(fault);
        check_device_equivalence(&mut dev, &circuits, 150, 3)
            .expect("dormant-plane fault must stay silent");
    }
}
