//! Fault injection: single-event upsets in configuration storage and
//! stuck routing switches, with detection via the equivalence checker.
//!
//! Two fault classes matter to the architecture:
//!
//! * **LUT plane bits** — an upset changes one function point of one plane;
//!   it manifests only in the contexts mapped to that plane and only for the
//!   affected input assignment.
//! * **Routing switches** — a stuck-off switch breaks connectivity in the
//!   contexts that needed it; [`crate::Device::check_routing`]-style
//!   re-derivation finds these *structurally*, without stimulus.
//!
//! The campaign utilities below quantify detection: how many random upsets
//! the randomized equivalence run catches. Bits on *unused* planes or
//! don't-care assignments are genuinely silent — the reported coverage
//! separates activated from dormant faults.

use mcfpga_netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::device::Device;
use crate::equivalence::check_device_equivalence;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LutFault {
    pub lb: usize,
    pub output: usize,
    pub plane: usize,
    pub assignment: usize,
}

/// Result of a fault campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    pub injected: usize,
    /// Faults the randomized equivalence run caught.
    pub detected: usize,
    /// Faults that stayed silent over the stimulus budget.
    pub silent: usize,
}

impl CampaignReport {
    pub fn detection_rate(&self) -> f64 {
        if self.injected == 0 {
            0.0
        } else {
            self.detected as f64 / self.injected as f64
        }
    }
}

impl Device {
    /// Inject a LUT-bit upset. Returns the fault record for reporting.
    pub fn inject_lut_fault(&mut self, fault: LutFault) -> LutFault {
        self.lb_mut(fault.lb)
            .flip_lut_bit(fault.output, fault.plane, fault.assignment);
        fault
    }

    /// Remove a previously injected upset (flipping is an involution).
    pub fn clear_lut_fault(&mut self, fault: LutFault) {
        self.inject_lut_fault(fault);
    }
}

/// Run a single-fault campaign: inject `n_faults` random LUT upsets one at a
/// time and test each with `cycles` randomized cycles (with context
/// switches) against the golden netlists.
pub fn lut_fault_campaign(
    device: &mut Device,
    references: &[Netlist],
    n_faults: usize,
    cycles: usize,
    seed: u64,
) -> CampaignReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_lbs = device.n_lbs();
    let outs = device.arch().lut.outputs;
    let mode = device.lb_mode();
    let mut detected = 0usize;
    for i in 0..n_faults {
        let fault = LutFault {
            lb: rng.gen_range(0..n_lbs),
            output: rng.gen_range(0..outs),
            plane: rng.gen_range(0..mode.planes),
            assignment: rng.gen_range(0..1usize << mode.inputs),
        };
        device.inject_lut_fault(fault);
        let caught =
            check_device_equivalence(device, references, cycles, seed ^ (i as u64) << 16).is_err();
        if caught {
            detected += 1;
        }
        device.clear_lut_fault(fault);
        device.reset();
    }
    CampaignReport {
        injected: n_faults,
        detected,
        silent: n_faults - detected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcfpga_arch::ArchSpec;
    use mcfpga_netlist::{library, workload, RandomNetlistParams};

    fn arch() -> ArchSpec {
        ArchSpec::paper_default()
    }

    #[test]
    fn injected_fault_on_used_plane_is_detected() {
        let circuits = vec![library::parity(8); 4];
        let mut dev = Device::compile(&arch(), &circuits).unwrap();
        // The parity tree's LUTs are all on plane 0 (fully shared) and
        // every assignment of a XOR table matters: any flip must be caught.
        let fault = LutFault {
            lb: 0,
            output: 0,
            plane: 0,
            assignment: 3,
        };
        dev.inject_lut_fault(fault);
        assert!(
            check_device_equivalence(&mut dev, &circuits, 200, 5).is_err(),
            "XOR-table upset must be visible"
        );
        // Clearing restores equivalence.
        dev.clear_lut_fault(fault);
        dev.reset();
        check_device_equivalence(&mut dev, &circuits, 100, 5).unwrap();
    }

    #[test]
    fn campaign_detects_most_faults_on_dense_logic() {
        let w = workload(
            RandomNetlistParams {
                n_inputs: 6,
                n_gates: 40,
                n_outputs: 6,
                dff_fraction: 0.0,
            },
            4,
            0.1,
            77,
        );
        let mut dev = Device::compile(&arch(), &w).unwrap();
        let report = lut_fault_campaign(&mut dev, &w, 30, 120, 13);
        assert_eq!(report.injected, 30);
        assert_eq!(report.detected + report.silent, 30);
        // Random 6-input netlists don't exercise every LUT assignment and
        // unused planes are dormant, but a healthy fraction must be caught.
        assert!(
            report.detection_rate() > 0.2,
            "detection rate {:.2}",
            report.detection_rate()
        );
        // After the campaign the device is fault-free again.
        check_device_equivalence(&mut dev, &w, 60, 1).unwrap();
    }

    #[test]
    fn faults_on_unused_planes_are_silent() {
        // Fully shared workload: only plane 0 is ever selected; upsets on
        // plane 3 can never be observed.
        let circuits = vec![library::adder(4); 4];
        let mut dev = Device::compile(&arch(), &circuits).unwrap();
        let fault = LutFault {
            lb: 0,
            output: 0,
            plane: 3,
            assignment: 0,
        };
        dev.inject_lut_fault(fault);
        check_device_equivalence(&mut dev, &circuits, 150, 3)
            .expect("dormant-plane fault must stay silent");
    }
}
