//! The compiled, bit-parallel simulation kernel: 64·W stimulus vectors per
//! chunk of W machine words through the fabric model.
//!
//! The scalar paths ([`crate::Device::step`] / [`crate::MultiDevice::step`])
//! interpret the mapped netlist one bit at a time, resolving every LUT's
//! plane through the size-controller decoders on every cycle. Everything the
//! reproduction claims about functional correctness and fault coverage
//! multiplies thousands of cycles by that cost, so simulation throughput is
//! the binding constraint on how hard the architecture can be stressed.
//!
//! A [`CompiledKernel`] removes the interpretation entirely: per context,
//! the mapped netlist and the logic blocks' plane selection are lowered
//! *once* into a flat, levelized instruction stream (the emission order of
//! the mapped LUTs is already topological), with each instruction's truth
//! table folded into a packed `u64` mask read straight out of the MCMG-LUT
//! memory. Evaluation is generic over a chunk width `W`: every signal is a
//! `[u64; W]` chunk carrying **64·W independent stimulus vectors** — one bit
//! per lane — and every instruction is a handful of fixed-size array ops the
//! autovectorizer lifts to AVX2/AVX-512/NEON. The classic 64-lane path is
//! exactly the `W = 1` instantiation ([`CompiledKernel::step`] forwards to
//! [`CompiledKernel::step_wide`]), so chunk layouts, probe sampling, toggle
//! census, and lane-0 write-back are preserved bit-for-bit.
//!
//! Instructions default to a constant-seeded mux-tree reduction over the
//! packed table (`2^k - 1` chunk-ops per k-input LUT). The optional kernel
//! optimizer ([`crate::optimize`], enabled via [`crate::KernelOptions`])
//! rewrites instructions into specialized opcodes (`Op`) — direct
//! AND/OR/XOR/NOT/BUF/MUX forms costing 1–4 chunk-ops — after constant
//! folding, dead-code and duplicate elimination. Optimization never changes
//! any lane of any output or register; it only changes the instruction
//! stream, which is why observability consumers that address LUT positions
//! (probes, activity census, fault campaigns) always run on the unoptimized
//! stream.
//!
//! Lane semantics: lane `l` of every input, register, and output chunk is
//! one complete, independent stimulus stream (chunk word `l / 64`, bit
//! `l % 64`). Lane 0 is bit-for-bit identical to the scalar path given the
//! same stimulus; registers are carried per lane so sequential circuits
//! batch correctly. Context switches apply at chunk boundaries (all lanes
//! switch together), matching the equivalence checker's batched driver.
//!
//! Kernels are *configuration snapshots*: they must be rebuilt whenever LUT
//! memory mutates (fault injection via `flip_lut_bit`, reprogramming). The
//! devices cache kernels per context against a configuration epoch; the
//! fault campaign instead clones a healthy kernel and flips the folded table
//! bit directly (`CompiledKernel::flip_table_bit`), which is equivalent
//! and keeps the campaign embarrassingly parallel.

use mcfpga_map::MappedSource;

/// Stimulus vectors carried per machine word — one per bit lane. A width-`W`
/// chunk carries `LANES * W` vectors.
pub const LANES: usize = 64;

/// Chunk widths the runtime dispatcher instantiates. Powers of two up to a
/// 512-bit chunk (8 × u64 — one AVX-512 register).
pub const SUPPORTED_WIDTHS: &[usize] = &[1, 2, 4, 8];

/// A compact operand reference, resolved against the chunk-level state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) enum Operand {
    /// Primary-input chunk `i`.
    Input(u32),
    /// Register chunk `r` (previous cycle's committed value).
    Register(u32),
    /// Result chunk of instruction `l` (strictly earlier in the stream).
    Lut(u32),
    /// Constant broadcast to every lane.
    Const(bool),
}

impl Operand {
    fn from_source(s: MappedSource) -> Operand {
        match s {
            MappedSource::Input(i) => Operand::Input(i as u32),
            MappedSource::Register(r) => Operand::Register(r as u32),
            MappedSource::Lut(l) => Operand::Lut(l as u32),
            MappedSource::Const(c) => Operand::Const(c),
        }
    }
}

/// How an instruction is evaluated. Lowering always emits [`Op::Table`] (the
/// generic mux-tree over the packed truth table); the optimizer pass rewrites
/// shapes it recognizes into the direct forms. The packed `table` stays
/// semantically valid alongside every specialized opcode — structural
/// hashing, fault flips, and idempotent re-optimization all key off it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Op {
    /// Generic mux-tree reduction over the packed table: `2^k - 1` chunk-ops.
    Table,
    /// Zero-operand constant: broadcast table bit 0.
    Const,
    /// `w = x0` (table `0b10`).
    Buf,
    /// `w = !x0` (table `0b01`).
    Not,
    /// Arbitrary 2-input function, 4-bit table over `(x0, x1)`: 1–2 chunk-ops
    /// for every non-degenerate shape.
    Logic2(u8),
    /// `w = sel ? b : a` with `ops = [a, b, sel]`.
    MuxSel2,
    /// 3-input majority.
    Maj3,
    /// AND of all operands, optionally inverted (AND/NAND chains of any k).
    AndAll { invert: bool },
    /// OR of all operands, optionally inverted (OR/NOR chains of any k).
    OrAll { invert: bool },
    /// XOR of all operands, optionally inverted (parity chains of any k).
    XorAll { invert: bool },
}

/// One levelized LUT instruction: up to 6 operands (the fabric's widest
/// mode) and the truth table folded into a `u64` mask, bit `a` = output for
/// address assignment `a` (operand 0 is the least-significant address bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct KernelInstr {
    pub(crate) ops: [Operand; 6],
    pub(crate) n_ops: u8,
    pub(crate) table: u64,
    pub(crate) op: Op,
}

impl KernelInstr {
    /// Chunk-ops this instruction costs per evaluated chunk — the optimizer's
    /// objective function and the bench's reported reduction metric.
    pub(crate) fn word_ops(&self) -> usize {
        let k = self.n_ops as usize;
        match self.op {
            Op::Table => {
                if k == 0 {
                    1
                } else {
                    (1 << k) - 1
                }
            }
            Op::Const | Op::Buf => 0,
            Op::Not => 1,
            Op::Logic2(t) => match t & 0xF {
                0b1000 | 0b1110 | 0b0110 => 1,
                _ => 2,
            },
            Op::MuxSel2 | Op::Maj3 => 4,
            Op::AndAll { invert } | Op::OrAll { invert } | Op::XorAll { invert } => {
                k - 1 + invert as usize
            }
        }
    }
}

/// Reusable evaluation scratch: one chunk per instruction plus the
/// next-register staging area. Creating one is cheap; reusing one across
/// cycles makes stepping allocation-free. The chunk layout is flat:
/// instruction `l`'s result occupies `lut_words[l*W .. (l+1)*W]`, so at
/// `W = 1` the layout is exactly one word per LUT, which is what the toggle
/// census and probe consumers index.
#[derive(Debug, Default, Clone)]
pub struct KernelScratch {
    /// Current-cycle result chunks, instruction-major (exposed
    /// crate-internally for toggle accounting and probe sampling).
    pub(crate) lut_words: Vec<u64>,
    /// Next register values, staged so sources still read the old state.
    next_regs: Vec<u64>,
}

impl KernelScratch {
    pub fn new() -> KernelScratch {
        KernelScratch::default()
    }
}

/// A context's netlist + configuration lowered to a flat instruction stream.
///
/// `PartialEq` compares the full lowered form (instruction stream, output
/// and register taps) — two equal kernels are bit-for-bit interchangeable,
/// which is how the serving layer proves cache hits return the cold-compile
/// artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledKernel {
    pub(crate) n_inputs: usize,
    pub(crate) n_regs: usize,
    pub(crate) instrs: Vec<KernelInstr>,
    pub(crate) outputs: Vec<Operand>,
    pub(crate) dffs: Vec<Operand>,
    /// True once the optimizer pass has rewritten the stream. Optimized
    /// kernels compute identical lanes but their instruction positions no
    /// longer address mapped LUT positions — probes, census, and fault
    /// campaigns must use unoptimized kernels.
    pub(crate) optimized: bool,
}

impl CompiledKernel {
    /// Lower a context: `luts` yields, in topological (emission) order, each
    /// LUT position's input sources and its packed truth table as currently
    /// held by the hardware model (so injected faults fold in naturally).
    pub fn build<'a>(
        n_inputs: usize,
        n_regs: usize,
        luts: impl Iterator<Item = (&'a [MappedSource], u64)>,
        outputs: impl Iterator<Item = MappedSource>,
        dffs: impl Iterator<Item = MappedSource>,
    ) -> CompiledKernel {
        let instrs = luts
            .map(|(srcs, table)| {
                assert!(srcs.len() <= 6, "LUT wider than the 6-input fabric mode");
                let mut ops = [Operand::Const(false); 6];
                for (slot, &s) in ops.iter_mut().zip(srcs) {
                    *slot = Operand::from_source(s);
                }
                KernelInstr {
                    ops,
                    n_ops: srcs.len() as u8,
                    table,
                    op: Op::Table,
                }
            })
            .collect();
        CompiledKernel {
            n_inputs,
            n_regs,
            instrs,
            outputs: outputs.map(Operand::from_source).collect(),
            dffs: dffs.map(Operand::from_source).collect(),
            optimized: false,
        }
    }

    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    pub fn n_instrs(&self) -> usize {
        self.instrs.len()
    }

    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Whether the optimizer pass has run on this kernel (see
    /// [`crate::KernelOptions`]).
    pub fn optimized(&self) -> bool {
        self.optimized
    }

    /// Total chunk-ops one step costs across the stream — the metric the
    /// optimizer shrinks and the bench reports before/after.
    pub fn word_ops(&self) -> usize {
        self.instrs.iter().map(|i| i.word_ops()).sum()
    }

    /// Flip one folded truth-table bit — the kernel-level image of
    /// `flip_lut_bit` on the position's active plane. Flips at assignments
    /// above the instruction's own address space (`2^n_ops`) are dormant,
    /// exactly as they are on the scalar path. The instruction falls back to
    /// the generic table evaluator: a specialized opcode no longer matches
    /// the mutated table. (In practice faults are only ever injected into
    /// unoptimized kernels, where every opcode is already `Table`.)
    pub(crate) fn flip_table_bit(&mut self, position: usize, assignment: usize) {
        self.instrs[position].table ^= 1u64 << assignment;
        self.instrs[position].op = Op::Table;
    }

    /// One clock edge over 64 lanes: the `W = 1` instantiation of
    /// [`CompiledKernel::step_wide`], kept as the canonical narrow path.
    pub fn step(
        &self,
        inputs: &[u64],
        regs: &mut [u64],
        scratch: &mut KernelScratch,
        out: &mut Vec<u64>,
    ) {
        self.step_wide::<1>(inputs, regs, scratch, out);
    }

    /// One clock edge over `64 * W` lanes: evaluate every instruction,
    /// derive the output chunks, and commit the next register chunks.
    ///
    /// All buffers are chunk-flattened and signal-major: `inputs` holds
    /// `n_inputs * W` words (`inputs[i*W + w]` = word `w` of input `i`),
    /// `regs` holds `n_regs * W` words, and `out` is cleared and refilled
    /// with `n_outputs * W` words. No allocation happens after the scratch's
    /// first use.
    pub fn step_wide<const W: usize>(
        &self,
        inputs: &[u64],
        regs: &mut [u64],
        scratch: &mut KernelScratch,
        out: &mut Vec<u64>,
    ) {
        debug_assert_eq!(inputs.len(), self.n_inputs * W, "input word count");
        debug_assert_eq!(regs.len(), self.n_regs * W, "register word count");
        scratch.lut_words.resize(self.instrs.len() * W, 0);
        let mut mux = [[0u64; W]; 32];
        for i in 0..self.instrs.len() {
            let c =
                eval_instr_wide::<W>(&self.instrs[i], inputs, regs, &scratch.lut_words, &mut mux);
            scratch.lut_words[i * W..(i + 1) * W].copy_from_slice(&c);
        }
        out.clear();
        for &o in &self.outputs {
            out.extend_from_slice(&load::<W>(o, inputs, regs, &scratch.lut_words));
        }
        // Stage next-state chunks first: a DFF source may read another
        // register's *old* value.
        scratch.next_regs.clear();
        for &d in &self.dffs {
            scratch
                .next_regs
                .extend_from_slice(&load::<W>(d, inputs, regs, &scratch.lut_words));
        }
        regs.copy_from_slice(&scratch.next_regs);
    }

    /// Per-instruction mask of the registers' transitive fanin cone — the
    /// instructions [`CompiledKernel::step_state_cone_wide`] must evaluate
    /// to advance register state without producing outputs. The stream is
    /// topological, so one reverse sweep closes the cone.
    pub(crate) fn state_cone(&self) -> Vec<bool> {
        let mut needed = vec![false; self.instrs.len()];
        for &d in &self.dffs {
            if let Operand::Lut(l) = d {
                needed[l as usize] = true;
            }
        }
        for i in (0..self.instrs.len()).rev() {
            if needed[i] {
                let instr = &self.instrs[i];
                for &op in &instr.ops[..instr.n_ops as usize] {
                    if let Operand::Lut(l) = op {
                        needed[l as usize] = true;
                    }
                }
            }
        }
        needed
    }

    /// Advance only the register state by one edge, evaluating just the
    /// instructions in `cone` (from [`CompiledKernel::state_cone`]). Used as
    /// the sequential prologue that seeds word-block-parallel throughput
    /// runs: the cone is closed under operand references, so skipped
    /// instructions are never read.
    pub(crate) fn step_state_cone_wide<const W: usize>(
        &self,
        cone: &[bool],
        inputs: &[u64],
        regs: &mut [u64],
        scratch: &mut KernelScratch,
    ) {
        debug_assert_eq!(cone.len(), self.instrs.len());
        scratch.lut_words.resize(self.instrs.len() * W, 0);
        let mut mux = [[0u64; W]; 32];
        for (i, &live) in cone.iter().enumerate() {
            if !live {
                continue;
            }
            let c =
                eval_instr_wide::<W>(&self.instrs[i], inputs, regs, &scratch.lut_words, &mut mux);
            scratch.lut_words[i * W..(i + 1) * W].copy_from_slice(&c);
        }
        scratch.next_regs.clear();
        for &d in &self.dffs {
            scratch
                .next_regs
                .extend_from_slice(&load::<W>(d, inputs, regs, &scratch.lut_words));
        }
        regs.copy_from_slice(&scratch.next_regs);
    }
}

/// Load one operand's `W`-word chunk. The fixed-size copy compiles to one
/// vector load at every supported width.
#[inline]
fn load<const W: usize>(op: Operand, inputs: &[u64], regs: &[u64], lut_words: &[u64]) -> [u64; W] {
    let mut c = [0u64; W];
    match op {
        Operand::Input(i) => c.copy_from_slice(&inputs[i as usize * W..][..W]),
        Operand::Register(r) => c.copy_from_slice(&regs[r as usize * W..][..W]),
        Operand::Lut(l) => c.copy_from_slice(&lut_words[l as usize * W..][..W]),
        Operand::Const(true) => c = [!0u64; W],
        Operand::Const(false) => {}
    }
    c
}

#[inline]
fn map1<const W: usize>(a: [u64; W], f: impl Fn(u64) -> u64) -> [u64; W] {
    let mut o = [0u64; W];
    for (ow, &aw) in o.iter_mut().zip(&a) {
        *ow = f(aw);
    }
    o
}

#[inline]
fn zip2<const W: usize>(a: [u64; W], b: [u64; W], f: impl Fn(u64, u64) -> u64) -> [u64; W] {
    let mut o = [0u64; W];
    for (i, ow) in o.iter_mut().enumerate() {
        *ow = f(a[i], b[i]);
    }
    o
}

#[inline]
fn zip3<const W: usize>(
    a: [u64; W],
    b: [u64; W],
    c: [u64; W],
    f: impl Fn(u64, u64, u64) -> u64,
) -> [u64; W] {
    let mut o = [0u64; W];
    for (i, ow) in o.iter_mut().enumerate() {
        *ow = f(a[i], b[i], c[i]);
    }
    o
}

/// Evaluate one instruction across all `64 * W` lanes.
#[inline]
fn eval_instr_wide<const W: usize>(
    instr: &KernelInstr,
    inputs: &[u64],
    regs: &[u64],
    lut_words: &[u64],
    mux: &mut [[u64; W]; 32],
) -> [u64; W] {
    let ld = |op: Operand| load::<W>(op, inputs, regs, lut_words);
    match instr.op {
        Op::Table => eval_table_wide::<W>(instr, inputs, regs, lut_words, mux),
        Op::Const => {
            if instr.table & 1 == 1 {
                [!0u64; W]
            } else {
                [0u64; W]
            }
        }
        Op::Buf => ld(instr.ops[0]),
        Op::Not => map1(ld(instr.ops[0]), |a| !a),
        Op::Logic2(t) => eval_logic2::<W>(t, ld(instr.ops[0]), ld(instr.ops[1])),
        Op::MuxSel2 => zip3(
            ld(instr.ops[0]),
            ld(instr.ops[1]),
            ld(instr.ops[2]),
            |a, b, s| (a & !s) | (b & s),
        ),
        Op::Maj3 => zip3(
            ld(instr.ops[0]),
            ld(instr.ops[1]),
            ld(instr.ops[2]),
            |a, b, c| (a & b) | ((a | b) & c),
        ),
        Op::AndAll { invert } => fold_all::<W>(instr, invert, &ld, |a, b| a & b),
        Op::OrAll { invert } => fold_all::<W>(instr, invert, &ld, |a, b| a | b),
        Op::XorAll { invert } => fold_all::<W>(instr, invert, &ld, |a, b| a ^ b),
    }
}

#[inline]
fn fold_all<const W: usize>(
    instr: &KernelInstr,
    invert: bool,
    ld: &impl Fn(Operand) -> [u64; W],
    f: impl Fn(u64, u64) -> u64,
) -> [u64; W] {
    let mut acc = ld(instr.ops[0]);
    for &op in &instr.ops[1..instr.n_ops as usize] {
        let x = ld(op);
        for (aw, &xw) in acc.iter_mut().zip(&x) {
            *aw = f(*aw, xw);
        }
    }
    if invert {
        for aw in &mut acc {
            *aw = !*aw;
        }
    }
    acc
}

/// Direct 2-input evaluation: one chunk-op for AND/OR/XOR, two for the
/// inverted and asymmetric shapes, with a sum-of-minterms fallback keeping
/// the opcode total for degenerate tables (which the optimizer never emits).
#[inline]
fn eval_logic2<const W: usize>(t: u8, a: [u64; W], b: [u64; W]) -> [u64; W] {
    match t & 0xF {
        0b1000 => zip2(a, b, |a, b| a & b),
        0b1110 => zip2(a, b, |a, b| a | b),
        0b0110 => zip2(a, b, |a, b| a ^ b),
        0b0111 => zip2(a, b, |a, b| !(a & b)),
        0b0001 => zip2(a, b, |a, b| !(a | b)),
        0b1001 => zip2(a, b, |a, b| !(a ^ b)),
        0b0010 => zip2(a, b, |a, b| a & !b),
        0b0100 => zip2(a, b, |a, b| !a & b),
        0b1011 => zip2(a, b, |a, b| a | !b),
        0b1101 => zip2(a, b, |a, b| !a | b),
        t => zip2(a, b, move |a, b| {
            let mut w = 0u64;
            if t & 1 != 0 {
                w |= !a & !b;
            }
            if t & 2 != 0 {
                w |= a & !b;
            }
            if t & 4 != 0 {
                w |= !a & b;
            }
            if t & 8 != 0 {
                w |= a & b;
            }
            w
        }),
    }
}

/// Generic table evaluation: seed `2^(k-1)` chunks from the constant table
/// paired with operand 0, then fold the remaining k-1 operands mux-style.
/// Total cost `2^k - 1` chunk-muxes — about one bit-op per lane per LUT.
#[inline]
fn eval_table_wide<const W: usize>(
    instr: &KernelInstr,
    inputs: &[u64],
    regs: &[u64],
    lut_words: &[u64],
    mux: &mut [[u64; W]; 32],
) -> [u64; W] {
    let k = instr.n_ops as usize;
    if k == 0 {
        return if instr.table & 1 == 1 {
            [!0u64; W]
        } else {
            [0u64; W]
        };
    }
    let x0 = load::<W>(instr.ops[0], inputs, regs, lut_words);
    let half = 1usize << (k - 1);
    for (a, slot) in mux.iter_mut().enumerate().take(half) {
        // Table bits (2a, 2a+1) are the outputs for x0 = 0 / 1 under the
        // remaining address bits `a`; with constant table bits the first mux
        // level collapses to one of four chunks.
        match (instr.table >> (2 * a)) & 3 {
            0 => *slot = [0u64; W],
            1 => {
                for (sw, &xw) in slot.iter_mut().zip(&x0) {
                    *sw = !xw;
                }
            }
            2 => *slot = x0,
            _ => *slot = [!0u64; W],
        }
    }
    let mut width = half;
    for &opj in &instr.ops[1..k] {
        let xj = load::<W>(opj, inputs, regs, lut_words);
        width >>= 1;
        for a in 0..width {
            let (lo, hi) = (mux[2 * a], mux[2 * a + 1]);
            for (w, slot) in mux[a].iter_mut().enumerate() {
                *slot = (lo[w] & !xj[w]) | (hi[w] & xj[w]);
            }
        }
    }
    mux[0]
}

/// Broadcast a bool slice into lane-parallel words (every lane equal).
pub(crate) fn broadcast(bits: &[bool], words: &mut Vec<u64>) {
    broadcast_wide(bits, words, 1);
}

/// Broadcast a bool slice into `W`-word chunks (every lane of every word of
/// each signal's chunk equal).
pub(crate) fn broadcast_wide(bits: &[bool], words: &mut Vec<u64>, w: usize) {
    words.clear();
    for &b in bits {
        let word = if b { !0u64 } else { 0 };
        words.extend(std::iter::repeat_n(word, w));
    }
}

/// Extract lane `lane` of 1-word-per-signal `words` into a bool buffer.
pub(crate) fn extract_lane(words: &[u64], lane: usize, bits: &mut [bool]) {
    extract_lane_wide(words, 1, lane, bits);
}

/// Extract lane `lane` (of `64 * w`) from `w`-word chunks into a bool buffer.
pub(crate) fn extract_lane_wide(words: &[u64], w: usize, lane: usize, bits: &mut [bool]) {
    debug_assert_eq!(words.len(), bits.len() * w);
    debug_assert!(lane < LANES * w);
    let (word, bit) = (lane / LANES, lane % LANES);
    for (i, b) in bits.iter_mut().enumerate() {
        *b = (words[i * w + word] >> bit) & 1 == 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_instr(n_ops: u8, table: u64) -> KernelInstr {
        let mut ops = [Operand::Const(false); 6];
        for (i, op) in ops.iter_mut().enumerate().take(n_ops as usize) {
            *op = Operand::Input(i as u32);
        }
        KernelInstr {
            ops,
            n_ops,
            table,
            op: Op::Table,
        }
    }

    #[test]
    fn mux_tree_matches_direct_table_lookup() {
        // Every 3-input table, every address, on a lane-striped stimulus.
        for table in 0..256u64 {
            let instr = table_instr(3, table);
            // Lane l drives address l % 8.
            let mut inputs = [0u64; 3];
            for lane in 0..LANES {
                let a = lane % 8;
                for (i, w) in inputs.iter_mut().enumerate() {
                    *w |= (((a >> i) & 1) as u64) << lane;
                }
            }
            let mut mux = [[0u64; 1]; 32];
            let w = eval_instr_wide::<1>(&instr, &inputs, &[], &[], &mut mux)[0];
            for lane in 0..LANES {
                let a = lane % 8;
                assert_eq!(
                    (w >> lane) & 1 == 1,
                    (table >> a) & 1 == 1,
                    "table {table:#x} address {a}"
                );
            }
        }
    }

    #[test]
    fn zero_input_instruction_broadcasts_its_constant() {
        for (table, want) in [(0u64, 0u64), (1, !0)] {
            let instr = table_instr(0, table);
            let mut mux = [[0u64; 1]; 32];
            assert_eq!(
                eval_instr_wide::<1>(&instr, &[], &[], &[], &mut mux),
                [want]
            );
        }
    }

    #[test]
    fn wide_step_matches_word_by_word_narrow_steps() {
        // A small sequential kernel: r' = lut0 = in0 XOR r; out = lut1 = !lut0.
        let kernel = CompiledKernel::build(
            1,
            1,
            [
                (
                    &[MappedSource::Input(0), MappedSource::Register(0)][..],
                    0b0110u64,
                ),
                (&[MappedSource::Lut(0)][..], 0b01u64),
            ]
            .into_iter(),
            std::iter::once(MappedSource::Lut(1)),
            std::iter::once(MappedSource::Lut(0)),
        );
        const W: usize = 4;
        let stim: [u64; W] = [
            0xDEAD_BEEF_0123_4567,
            0x0F0F_1234_ABCD_8765,
            !0,
            0x8000_0000_0000_0001,
        ];
        // Wide: one step over all four words.
        let mut wide_regs = vec![0u64; W];
        let mut wide_scratch = KernelScratch::new();
        let mut wide_out = Vec::new();
        kernel.step_wide::<W>(&stim, &mut wide_regs, &mut wide_scratch, &mut wide_out);
        // Narrow: four independent 64-lane steps (lanes are independent
        // streams, so word w of the wide run is its own narrow run).
        for (w, &word) in stim.iter().enumerate() {
            let mut regs = vec![0u64];
            let mut scratch = KernelScratch::new();
            let mut out = Vec::new();
            kernel.step(&[word], &mut regs, &mut scratch, &mut out);
            assert_eq!(wide_out[w], out[0], "output word {w}");
            assert_eq!(wide_regs[w], regs[0], "register word {w}");
        }
    }

    #[test]
    fn specialized_opcodes_match_their_tables() {
        // For each specialized opcode/table pair, the direct evaluator must
        // agree with the generic mux-tree on dense random-ish stimulus.
        let x = [
            0xDEAD_BEEF_CAFE_F00Du64,
            0x0123_4567_89AB_CDEF,
            0xF0F0_F0F0_0F0F_0F0F,
        ];
        let cases: Vec<(Op, u8, u64)> = vec![
            (Op::Buf, 1, 0b10),
            (Op::Not, 1, 0b01),
            (Op::MuxSel2, 3, 0b1100_1010), // sel ? b : a
            (Op::Maj3, 3, 0b1110_1000),
            (Op::AndAll { invert: false }, 3, 0x80),
            (Op::AndAll { invert: true }, 3, 0x7F),
            (Op::OrAll { invert: false }, 3, 0xFE),
            (Op::OrAll { invert: true }, 3, 0x01),
            (Op::XorAll { invert: false }, 3, 0b1001_0110),
            (Op::XorAll { invert: true }, 3, 0b0110_1001),
        ];
        for (op, n_ops, table) in cases {
            let mut instr = table_instr(n_ops, table);
            let mut mux = [[0u64; 1]; 32];
            let want = eval_instr_wide::<1>(&instr, &x, &[], &[], &mut mux);
            instr.op = op;
            let got = eval_instr_wide::<1>(&instr, &x, &[], &[], &mut mux);
            assert_eq!(got, want, "{op:?} table {table:#x}");
        }
        // Every 2-input table through Logic2.
        for table in 0..16u64 {
            let mut instr = table_instr(2, table);
            let mut mux = [[0u64; 1]; 32];
            let want = eval_instr_wide::<1>(&instr, &x, &[], &[], &mut mux);
            instr.op = Op::Logic2(table as u8);
            let got = eval_instr_wide::<1>(&instr, &x, &[], &[], &mut mux);
            assert_eq!(got, want, "Logic2 table {table:#x}");
        }
    }

    #[test]
    fn registers_commit_after_sources_are_read() {
        // Two registers swapping each cycle: r0' = r1, r1' = r0. If commit
        // were interleaved, both would collapse to one value.
        let kernel = CompiledKernel::build(
            0,
            2,
            std::iter::empty(),
            std::iter::empty(),
            [MappedSource::Register(1), MappedSource::Register(0)].into_iter(),
        );
        let mut regs = vec![0xAAAA_AAAA_AAAA_AAAAu64, 0x5555_5555_5555_5555];
        let mut scratch = KernelScratch::new();
        let mut out = Vec::new();
        kernel.step(&[], &mut regs, &mut scratch, &mut out);
        assert_eq!(regs[0], 0x5555_5555_5555_5555);
        assert_eq!(regs[1], 0xAAAA_AAAA_AAAA_AAAA);
    }

    #[test]
    fn state_cone_prologue_advances_registers_like_a_full_step() {
        // out-cone LUT 1 is not needed to advance the register; the cone
        // step must still commit the same next state as a full step.
        let kernel = CompiledKernel::build(
            1,
            1,
            [
                (
                    &[MappedSource::Input(0), MappedSource::Register(0)][..],
                    0b0110u64,
                ),
                (&[MappedSource::Lut(0)][..], 0b01u64),
            ]
            .into_iter(),
            std::iter::once(MappedSource::Lut(1)),
            std::iter::once(MappedSource::Lut(0)),
        );
        let cone = kernel.state_cone();
        assert_eq!(cone, vec![true, false]);
        let stim = [0x1234_5678_9ABC_DEF0u64];
        let mut full_regs = vec![0xAAAAu64];
        let mut cone_regs = full_regs.clone();
        let mut s1 = KernelScratch::new();
        let mut s2 = KernelScratch::new();
        let mut out = Vec::new();
        kernel.step(&stim, &mut full_regs, &mut s1, &mut out);
        kernel.step_state_cone_wide::<1>(&cone, &stim, &mut cone_regs, &mut s2);
        assert_eq!(cone_regs, full_regs);
    }

    #[test]
    fn fault_flip_changes_only_the_addressed_assignment() {
        let mut kernel = CompiledKernel::build(
            2,
            0,
            std::iter::once((
                &[MappedSource::Input(0), MappedSource::Input(1)][..],
                0b0110u64, // XOR
            )),
            std::iter::once(MappedSource::Lut(0)),
            std::iter::empty(),
        );
        kernel.flip_table_bit(0, 3);
        let mut scratch = KernelScratch::new();
        let mut out = Vec::new();
        // Lane a drives address a.
        let inputs = [0b0010u64 | (0b1000), 0b1100u64];
        kernel.step(&inputs, &mut [], &mut scratch, &mut out);
        // XOR with bit 3 flipped: 0, 1, 1, 1 over addresses 0..4.
        for (lane, want) in [(0usize, false), (1, true), (2, true), (3, true)] {
            assert_eq!((out[0] >> lane) & 1 == 1, want, "lane {lane}");
        }
    }

    #[test]
    fn lane_helpers_round_trip_at_width() {
        let bits = [true, false, true, true];
        for w in [1usize, 2, 4] {
            let mut words = Vec::new();
            broadcast_wide(&bits, &mut words, w);
            assert_eq!(words.len(), bits.len() * w);
            for lane in [0usize, 1, 63, 64 * w - 1] {
                let mut got = [false; 4];
                extract_lane_wide(&words, w, lane, &mut got);
                assert_eq!(got, bits, "width {w} lane {lane}");
            }
        }
    }
}
