//! The compiled, bit-parallel simulation kernel: 64 stimulus vectors per
//! machine word through the fabric model.
//!
//! The scalar paths ([`crate::Device::step`] / [`crate::MultiDevice::step`])
//! interpret the mapped netlist one bit at a time, resolving every LUT's
//! plane through the size-controller decoders on every cycle. Everything the
//! reproduction claims about functional correctness and fault coverage
//! multiplies thousands of cycles by that cost, so simulation throughput is
//! the binding constraint on how hard the architecture can be stressed.
//!
//! A [`CompiledKernel`] removes the interpretation entirely: per context,
//! the mapped netlist and the logic blocks' plane selection are lowered
//! *once* into a flat, levelized instruction stream (the emission order of
//! the mapped LUTs is already topological), with each instruction's truth
//! table folded into a packed `u64` mask read straight out of the MCMG-LUT
//! memory. Evaluation then runs **64 independent stimulus vectors per
//! word** — one bit per lane — using a constant-seeded mux-tree reduction
//! (`2^k - 1` word-ops per LUT, ~1 bit-op per lane), with zero per-cycle
//! allocation: all scratch lives in a reusable [`KernelScratch`].
//!
//! Lane semantics: lane `l` of every input, register, and output word is one
//! complete, independent stimulus stream. Lane 0 is bit-for-bit identical to
//! the scalar path given the same stimulus; registers are carried per lane
//! so sequential circuits batch correctly. Context switches apply at word
//! boundaries (all 64 lanes switch together), matching the equivalence
//! checker's batched driver.
//!
//! Kernels are *configuration snapshots*: they must be rebuilt whenever LUT
//! memory mutates (fault injection via `flip_lut_bit`, reprogramming). The
//! devices cache kernels per context against a configuration epoch; the
//! fault campaign instead clones a healthy kernel and flips the folded table
//! bit directly (`CompiledKernel::flip_table_bit`), which is equivalent
//! and keeps the campaign embarrassingly parallel.

use mcfpga_map::MappedSource;

/// Stimulus vectors carried per machine word — one per bit lane.
pub const LANES: usize = 64;

/// A compact operand reference, resolved against the word-level state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Operand {
    /// Primary-input word `i`.
    Input(u32),
    /// Register word `r` (previous cycle's committed value).
    Register(u32),
    /// Result word of instruction `l` (strictly earlier in the stream).
    Lut(u32),
    /// Constant broadcast to every lane.
    Const(bool),
}

impl Operand {
    fn from_source(s: MappedSource) -> Operand {
        match s {
            MappedSource::Input(i) => Operand::Input(i as u32),
            MappedSource::Register(r) => Operand::Register(r as u32),
            MappedSource::Lut(l) => Operand::Lut(l as u32),
            MappedSource::Const(c) => Operand::Const(c),
        }
    }
}

/// One levelized LUT instruction: up to 6 operands (the fabric's widest
/// mode) and the truth table folded into a `u64` mask, bit `a` = output for
/// address assignment `a` (operand 0 is the least-significant address bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KernelInstr {
    ops: [Operand; 6],
    n_ops: u8,
    table: u64,
}

/// Reusable evaluation scratch: one word per instruction plus the mux-tree
/// reduction buffer and the next-register staging area. Creating one is
/// cheap; reusing one across cycles makes stepping allocation-free.
#[derive(Debug, Default, Clone)]
pub struct KernelScratch {
    /// Current-cycle result word per instruction (exposed crate-internally
    /// for toggle accounting).
    pub(crate) lut_words: Vec<u64>,
    /// Mux-tree workspace: at most `2^(6-1)` intermediate words.
    mux: [u64; 32],
    /// Next register values, staged so sources still read the old state.
    next_regs: Vec<u64>,
}

impl KernelScratch {
    pub fn new() -> KernelScratch {
        KernelScratch::default()
    }
}

/// A context's netlist + configuration lowered to a flat instruction stream.
///
/// `PartialEq` compares the full lowered form (instruction stream, output
/// and register taps) — two equal kernels are bit-for-bit interchangeable,
/// which is how the serving layer proves cache hits return the cold-compile
/// artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledKernel {
    n_inputs: usize,
    n_regs: usize,
    instrs: Vec<KernelInstr>,
    outputs: Vec<Operand>,
    dffs: Vec<Operand>,
}

impl CompiledKernel {
    /// Lower a context: `luts` yields, in topological (emission) order, each
    /// LUT position's input sources and its packed truth table as currently
    /// held by the hardware model (so injected faults fold in naturally).
    pub fn build<'a>(
        n_inputs: usize,
        n_regs: usize,
        luts: impl Iterator<Item = (&'a [MappedSource], u64)>,
        outputs: impl Iterator<Item = MappedSource>,
        dffs: impl Iterator<Item = MappedSource>,
    ) -> CompiledKernel {
        let instrs = luts
            .map(|(srcs, table)| {
                assert!(srcs.len() <= 6, "LUT wider than the 6-input fabric mode");
                let mut ops = [Operand::Const(false); 6];
                for (slot, &s) in ops.iter_mut().zip(srcs) {
                    *slot = Operand::from_source(s);
                }
                KernelInstr {
                    ops,
                    n_ops: srcs.len() as u8,
                    table,
                }
            })
            .collect();
        CompiledKernel {
            n_inputs,
            n_regs,
            instrs,
            outputs: outputs.map(Operand::from_source).collect(),
            dffs: dffs.map(Operand::from_source).collect(),
        }
    }

    pub fn n_inputs(&self) -> usize {
        self.n_inputs
    }

    pub fn n_regs(&self) -> usize {
        self.n_regs
    }

    pub fn n_instrs(&self) -> usize {
        self.instrs.len()
    }

    pub fn n_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Flip one folded truth-table bit — the kernel-level image of
    /// `flip_lut_bit` on the position's active plane. Flips at assignments
    /// above the instruction's own address space (`2^n_ops`) are dormant,
    /// exactly as they are on the scalar path.
    pub(crate) fn flip_table_bit(&mut self, position: usize, assignment: usize) {
        self.instrs[position].table ^= 1u64 << assignment;
    }

    /// One clock edge over 64 lanes: evaluate every instruction, derive the
    /// output words, and commit the next register words. `regs` must hold
    /// `n_regs` words; `out` is cleared and refilled (one word per primary
    /// output). No allocation happens after the scratch's first use.
    pub fn step(
        &self,
        inputs: &[u64],
        regs: &mut [u64],
        scratch: &mut KernelScratch,
        out: &mut Vec<u64>,
    ) {
        debug_assert_eq!(inputs.len(), self.n_inputs, "input word count");
        debug_assert_eq!(regs.len(), self.n_regs, "register word count");
        scratch.lut_words.resize(self.instrs.len(), 0);
        for i in 0..self.instrs.len() {
            let instr = &self.instrs[i];
            let w = eval_instr(instr, inputs, regs, &scratch.lut_words, &mut scratch.mux);
            scratch.lut_words[i] = w;
        }
        out.clear();
        out.extend(
            self.outputs
                .iter()
                .map(|&o| resolve(o, inputs, regs, &scratch.lut_words)),
        );
        // Stage next-state words first: a DFF source may read another
        // register's *old* value.
        scratch.next_regs.clear();
        scratch.next_regs.extend(
            self.dffs
                .iter()
                .map(|&d| resolve(d, inputs, regs, &scratch.lut_words)),
        );
        regs.copy_from_slice(&scratch.next_regs);
    }
}

#[inline]
fn resolve(op: Operand, inputs: &[u64], regs: &[u64], lut_words: &[u64]) -> u64 {
    match op {
        Operand::Input(i) => inputs[i as usize],
        Operand::Register(r) => regs[r as usize],
        Operand::Lut(l) => lut_words[l as usize],
        Operand::Const(true) => !0,
        Operand::Const(false) => 0,
    }
}

/// Evaluate one instruction across all 64 lanes: seed `2^(k-1)` words from
/// the constant table paired with operand 0, then fold the remaining k-1
/// operands mux-style. Total cost `2^k - 1` word-muxes — about one bit-op
/// per lane per LUT.
#[inline]
fn eval_instr(
    instr: &KernelInstr,
    inputs: &[u64],
    regs: &[u64],
    lut_words: &[u64],
    mux: &mut [u64; 32],
) -> u64 {
    let k = instr.n_ops as usize;
    if k == 0 {
        return if instr.table & 1 == 1 { !0 } else { 0 };
    }
    let x0 = resolve(instr.ops[0], inputs, regs, lut_words);
    let half = 1usize << (k - 1);
    for (a, slot) in mux.iter_mut().enumerate().take(half) {
        // Table bits (2a, 2a+1) are the outputs for x0 = 0 / 1 under the
        // remaining address bits `a`; with constant table bits the first mux
        // level collapses to one of four words.
        *slot = match (instr.table >> (2 * a)) & 3 {
            0 => 0,
            1 => !x0,
            2 => x0,
            _ => !0,
        };
    }
    let mut width = half;
    for j in 1..k {
        let xj = resolve(instr.ops[j], inputs, regs, lut_words);
        width >>= 1;
        for a in 0..width {
            mux[a] = (mux[2 * a] & !xj) | (mux[2 * a + 1] & xj);
        }
    }
    mux[0]
}

/// Broadcast a bool slice into lane-parallel words (every lane equal).
pub(crate) fn broadcast(bits: &[bool], words: &mut Vec<u64>) {
    words.clear();
    words.extend(bits.iter().map(|&b| if b { !0u64 } else { 0 }));
}

/// Extract lane `lane` of `words` into a bool buffer.
pub(crate) fn extract_lane(words: &[u64], lane: usize, bits: &mut [bool]) {
    debug_assert_eq!(words.len(), bits.len());
    for (b, w) in bits.iter_mut().zip(words) {
        *b = (w >> lane) & 1 == 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mux_tree_matches_direct_table_lookup() {
        // Every 3-input table, every address, on a lane-striped stimulus.
        for table in 0..256u64 {
            let instr = KernelInstr {
                ops: [
                    Operand::Input(0),
                    Operand::Input(1),
                    Operand::Input(2),
                    Operand::Const(false),
                    Operand::Const(false),
                    Operand::Const(false),
                ],
                n_ops: 3,
                table,
            };
            // Lane l drives address l % 8.
            let mut inputs = [0u64; 3];
            for lane in 0..LANES {
                let a = lane % 8;
                for (i, w) in inputs.iter_mut().enumerate() {
                    *w |= (((a >> i) & 1) as u64) << lane;
                }
            }
            let mut mux = [0u64; 32];
            let w = eval_instr(&instr, &inputs, &[], &[], &mut mux);
            for lane in 0..LANES {
                let a = lane % 8;
                assert_eq!(
                    (w >> lane) & 1 == 1,
                    (table >> a) & 1 == 1,
                    "table {table:#x} address {a}"
                );
            }
        }
    }

    #[test]
    fn zero_input_instruction_broadcasts_its_constant() {
        for (table, want) in [(0u64, 0u64), (1, !0)] {
            let instr = KernelInstr {
                ops: [Operand::Const(false); 6],
                n_ops: 0,
                table,
            };
            let mut mux = [0u64; 32];
            assert_eq!(eval_instr(&instr, &[], &[], &[], &mut mux), want);
        }
    }

    #[test]
    fn registers_commit_after_sources_are_read() {
        // Two registers swapping each cycle: r0' = r1, r1' = r0. If commit
        // were interleaved, both would collapse to one value.
        let kernel = CompiledKernel::build(
            0,
            2,
            std::iter::empty(),
            std::iter::empty(),
            [MappedSource::Register(1), MappedSource::Register(0)].into_iter(),
        );
        let mut regs = vec![0xAAAA_AAAA_AAAA_AAAAu64, 0x5555_5555_5555_5555];
        let mut scratch = KernelScratch::new();
        let mut out = Vec::new();
        kernel.step(&[], &mut regs, &mut scratch, &mut out);
        assert_eq!(regs[0], 0x5555_5555_5555_5555);
        assert_eq!(regs[1], 0xAAAA_AAAA_AAAA_AAAA);
    }

    #[test]
    fn fault_flip_changes_only_the_addressed_assignment() {
        let mut kernel = CompiledKernel::build(
            2,
            0,
            std::iter::once((
                &[MappedSource::Input(0), MappedSource::Input(1)][..],
                0b0110u64, // XOR
            )),
            std::iter::once(MappedSource::Lut(0)),
            std::iter::empty(),
        );
        kernel.flip_table_bit(0, 3);
        let mut scratch = KernelScratch::new();
        let mut out = Vec::new();
        // Lane a drives address a.
        let inputs = [0b0010u64 | (0b1000), 0b1100u64];
        kernel.step(&inputs, &mut [], &mut scratch, &mut out);
        // XOR with bit 3 flipped: 0, 1, 1, 1 over addresses 0..4.
        for (lane, want) in [(0usize, false), (1, true), (2, true), (3, true)] {
            assert_eq!((out[0] >> lane) & 1 == 1, want, "lane {lane}");
        }
    }
}
