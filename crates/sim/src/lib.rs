//! Configured-fabric simulation: the end-to-end device model.
//!
//! [`Device`] compiles a multi-context workload (one netlist per context,
//! structurally aligned) onto an architecture: mapping with a shared cover,
//! cross-context sharing, logic-block construction with locally controlled
//! MCMG-LUTs (plane selection through real RCM decoder netlists), placement,
//! routing, and switch-column extraction. It then *runs*: clock it with
//! inputs, switch contexts at any cycle, and registers carry state across —
//! the DPGA execution model the paper builds on.
//!
//! The simulator is the reproduction's correctness anchor: integration
//! tests drive the same stimuli through the device and through each
//! context's reference netlist and require bit-exact agreement, and the
//! routing check re-derives net connectivity purely from per-switch
//! configuration state.

pub mod device;
pub mod equivalence;
pub mod error;
pub mod faults;
pub mod kernel;
pub mod multi;
pub mod observe;
pub mod optimize;
pub mod temporal;

pub use device::{CompileError, CompileReport, Device};
pub use equivalence::{
    check_device_equivalence, check_device_equivalence_batch, EquivalenceCheckError,
    EquivalenceError,
};
pub use error::Error;
pub use faults::{lut_fault_campaign, CampaignReport, LutFault};
pub use kernel::{CompiledKernel, KernelScratch, LANES, SUPPORTED_WIDTHS};
pub use multi::{CompileOptions, ContextArtifacts, DeltaSeed, DeltaStats, MultiDevice, SimError};
pub use observe::{
    captures_to_waveform, switch_energy_pj, ActivityReport, LutActivity, ProbeCapture, ProbeSet,
    ReconfigEnergy, DEFAULT_PROBE_CAPACITY, SWITCH_ENERGY_PJ_PER_BIT,
};
pub use optimize::{KernelOptions, OptimizeStats};
pub use temporal::FabricTemporalExecutor;
